#include "ccq/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>

namespace ccq {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  CCQ_CHECK(data_.size() == shape_numel(shape_),
            "value count does not match shape " + shape_str(shape_));
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor({values.size()}, std::vector<float>(values));
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

std::size_t Tensor::dim(std::size_t d) const {
  CCQ_CHECK(d < shape_.size(), "dim index out of range");
  return shape_[d];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor t = *this;
  t.reshape(std::move(new_shape));
  return t;
}

void Tensor::reshape(Shape new_shape) {
  CCQ_CHECK(shape_numel(new_shape) == data_.size(),
            "reshape must preserve element count: " + shape_str(shape_) +
                " -> " + shape_str(new_shape));
  shape_ = std::move(new_shape);
}

float& Tensor::at(std::size_t flat_index) {
  CCQ_CHECK(flat_index < data_.size(), "flat index out of range");
  return data_[flat_index];
}

float Tensor::at(std::size_t flat_index) const {
  CCQ_CHECK(flat_index < data_.size(), "flat index out of range");
  return data_[flat_index];
}

void Tensor::check_rank(std::size_t want) const {
  CCQ_CHECK(shape_.size() == want,
            "rank mismatch: have " + shape_str(shape_));
}

std::size_t Tensor::flat2(std::size_t i, std::size_t j) const {
  CCQ_CHECK(i < shape_[0] && j < shape_[1], "index out of range");
  return i * shape_[1] + j;
}

std::size_t Tensor::flat3(std::size_t i, std::size_t j, std::size_t k) const {
  CCQ_CHECK(i < shape_[0] && j < shape_[1] && k < shape_[2],
            "index out of range");
  return (i * shape_[1] + j) * shape_[2] + k;
}

std::size_t Tensor::flat4(std::size_t i, std::size_t j, std::size_t k,
                          std::size_t l) const {
  CCQ_CHECK(i < shape_[0] && j < shape_[1] && k < shape_[2] && l < shape_[3],
            "index out of range");
  return ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l;
}

float& Tensor::operator()(std::size_t i) {
  check_rank(1);
  CCQ_CHECK(i < shape_[0], "index out of range");
  return data_[i];
}
float& Tensor::operator()(std::size_t i, std::size_t j) {
  check_rank(2);
  return data_[flat2(i, j)];
}
float& Tensor::operator()(std::size_t i, std::size_t j, std::size_t k) {
  check_rank(3);
  return data_[flat3(i, j, k)];
}
float& Tensor::operator()(std::size_t i, std::size_t j, std::size_t k,
                          std::size_t l) {
  check_rank(4);
  return data_[flat4(i, j, k, l)];
}
float Tensor::operator()(std::size_t i) const {
  check_rank(1);
  CCQ_CHECK(i < shape_[0], "index out of range");
  return data_[i];
}
float Tensor::operator()(std::size_t i, std::size_t j) const {
  check_rank(2);
  return data_[flat2(i, j)];
}
float Tensor::operator()(std::size_t i, std::size_t j, std::size_t k) const {
  check_rank(3);
  return data_[flat3(i, j, k)];
}
float Tensor::operator()(std::size_t i, std::size_t j, std::size_t k,
                         std::size_t l) const {
  check_rank(4);
  return data_[flat4(i, j, k, l)];
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  CCQ_CHECK(same_shape(*this, rhs), "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  CCQ_CHECK(same_shape(*this, rhs), "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& rhs) {
  CCQ_CHECK(same_shape(*this, rhs), "shape mismatch in *=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator+=(float rhs) {
  for (auto& v : data_) v += rhs;
  return *this;
}

Tensor& Tensor::operator*=(float rhs) {
  for (auto& v : data_) v *= rhs;
  return *this;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

float Tensor::sum() const {
  double acc = 0.0;  // accumulate in double for stability
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  CCQ_CHECK(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  CCQ_CHECK(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  CCQ_CHECK(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

std::size_t Tensor::argmax() const {
  CCQ_CHECK(!data_.empty(), "argmax of empty tensor");
  return static_cast<std::size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

float Tensor::sqnorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

float Tensor::abs_mean() const {
  CCQ_CHECK(!data_.empty(), "abs_mean of empty tensor");
  double acc = 0.0;
  for (float v : data_) acc += std::fabs(v);
  return static_cast<float>(acc / static_cast<double>(data_.size()));
}

bool Tensor::has_nonfinite() const {
  return std::any_of(data_.begin(), data_.end(),
                     [](float v) { return !std::isfinite(v); });
}

Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }
Tensor operator*(Tensor lhs, const Tensor& rhs) { return lhs *= rhs; }
Tensor operator*(Tensor lhs, float rhs) { return lhs *= rhs; }
Tensor operator*(float lhs, Tensor rhs) { return rhs *= lhs; }

bool same_shape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  CCQ_CHECK(same_shape(a, b), "max_abs_diff shape mismatch");
  float worst = 0.0f;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    worst = std::max(worst, std::fabs(da[i] - db[i]));
  }
  return worst;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor" << shape_str(t.shape()) << " {";
  const auto d = t.data();
  const std::size_t show = std::min<std::size_t>(d.size(), 8);
  for (std::size_t i = 0; i < show; ++i) {
    if (i != 0) os << ", ";
    os << d[i];
  }
  if (d.size() > show) os << ", …";
  return os << '}';
}

}  // namespace ccq
