#include "ccq/tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>
#include <utility>

#include "ccq/common/exec.hpp"

namespace ccq {

namespace {

// Thread-partitioning grains, fixed so the split (and therefore every
// chunked accumulation order) depends only on the element count.
// Elementwise ops engage the pool only on large tensors; reductions use
// a wider chunk so results for small tensors match the pre-chunking
// serial fold exactly.
constexpr std::size_t kElementwiseGrain = 1 << 15;
constexpr std::size_t kReduceChunk = 1 << 16;

}  // namespace

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(values.begin(), values.end()) {
  CCQ_CHECK(data_.size() == shape_numel(shape_),
            "value count does not match shape " + shape_str(shape_));
}

Tensor Tensor::adopt(Shape shape, FloatVec storage) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(storage);
  CCQ_CHECK(t.data_.size() == shape_numel(t.shape_),
            "adopted storage does not match shape " + shape_str(t.shape_));
  return t;
}

void Tensor::resize(Shape new_shape) {
  const std::size_t n = shape_numel(new_shape);
  shape_ = std::move(new_shape);
  data_.resize(n);
}

FloatVec Tensor::release_storage() {
  shape_.clear();
  return std::move(data_);
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor({values.size()}, std::vector<float>(values));
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

std::size_t Tensor::dim(std::size_t d) const {
  CCQ_CHECK(d < shape_.size(), "dim index out of range");
  return shape_[d];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor t = *this;
  t.reshape(std::move(new_shape));
  return t;
}

void Tensor::reshape(Shape new_shape) {
  CCQ_CHECK(shape_numel(new_shape) == data_.size(),
            "reshape must preserve element count: " + shape_str(shape_) +
                " -> " + shape_str(new_shape));
  shape_ = std::move(new_shape);
}

float& Tensor::at(std::size_t flat_index) {
  CCQ_CHECK(flat_index < data_.size(), "flat index out of range");
  return data_[flat_index];
}

float Tensor::at(std::size_t flat_index) const {
  CCQ_CHECK(flat_index < data_.size(), "flat index out of range");
  return data_[flat_index];
}

void Tensor::check_rank(std::size_t want) const {
  CCQ_CHECK(shape_.size() == want,
            "rank mismatch: have " + shape_str(shape_));
}

std::size_t Tensor::flat2(std::size_t i, std::size_t j) const {
  CCQ_CHECK(i < shape_[0] && j < shape_[1], "index out of range");
  return i * shape_[1] + j;
}

std::size_t Tensor::flat3(std::size_t i, std::size_t j, std::size_t k) const {
  CCQ_CHECK(i < shape_[0] && j < shape_[1] && k < shape_[2],
            "index out of range");
  return (i * shape_[1] + j) * shape_[2] + k;
}

std::size_t Tensor::flat4(std::size_t i, std::size_t j, std::size_t k,
                          std::size_t l) const {
  CCQ_CHECK(i < shape_[0] && j < shape_[1] && k < shape_[2] && l < shape_[3],
            "index out of range");
  return ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l;
}

float& Tensor::operator()(std::size_t i) {
  check_rank(1);
  CCQ_CHECK(i < shape_[0], "index out of range");
  return data_[i];
}
float& Tensor::operator()(std::size_t i, std::size_t j) {
  check_rank(2);
  return data_[flat2(i, j)];
}
float& Tensor::operator()(std::size_t i, std::size_t j, std::size_t k) {
  check_rank(3);
  return data_[flat3(i, j, k)];
}
float& Tensor::operator()(std::size_t i, std::size_t j, std::size_t k,
                          std::size_t l) {
  check_rank(4);
  return data_[flat4(i, j, k, l)];
}
float Tensor::operator()(std::size_t i) const {
  check_rank(1);
  CCQ_CHECK(i < shape_[0], "index out of range");
  return data_[i];
}
float Tensor::operator()(std::size_t i, std::size_t j) const {
  check_rank(2);
  return data_[flat2(i, j)];
}
float Tensor::operator()(std::size_t i, std::size_t j, std::size_t k) const {
  check_rank(3);
  return data_[flat3(i, j, k)];
}
float Tensor::operator()(std::size_t i, std::size_t j, std::size_t k,
                         std::size_t l) const {
  check_rank(4);
  return data_[flat4(i, j, k, l)];
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  CCQ_CHECK(same_shape(*this, rhs), "shape mismatch in +=");
  parallel_for(ExecContext::global(), data_.size(), kElementwiseGrain,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i)
                   data_[i] += rhs.data_[i];
               });
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  CCQ_CHECK(same_shape(*this, rhs), "shape mismatch in -=");
  parallel_for(ExecContext::global(), data_.size(), kElementwiseGrain,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i)
                   data_[i] -= rhs.data_[i];
               });
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& rhs) {
  CCQ_CHECK(same_shape(*this, rhs), "shape mismatch in *=");
  parallel_for(ExecContext::global(), data_.size(), kElementwiseGrain,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i)
                   data_[i] *= rhs.data_[i];
               });
  return *this;
}

Tensor& Tensor::operator+=(float rhs) {
  parallel_for(ExecContext::global(), data_.size(), kElementwiseGrain,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) data_[i] += rhs;
               });
  return *this;
}

Tensor& Tensor::operator*=(float rhs) {
  parallel_for(ExecContext::global(), data_.size(), kElementwiseGrain,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) data_[i] *= rhs;
               });
  return *this;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

float Tensor::sum() const {
  // Chunked double accumulation: chunk width is a constant and partials
  // combine in chunk-index order, so the value is the same for any
  // thread count (and for tensors under one chunk, identical to the
  // plain serial fold).
  const double acc = parallel_reduce(
      ExecContext::global(), data_.size(), kReduceChunk, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double part = 0.0;
        for (std::size_t i = lo; i < hi; ++i) part += data_[i];
        return part;
      },
      [](double a, double b) { return a + b; });
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  CCQ_CHECK(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  CCQ_CHECK(!data_.empty(), "min of empty tensor");
  // min/max combine exactly, so chunking cannot change the result.
  return parallel_reduce(
      ExecContext::global(), data_.size(), kReduceChunk,
      std::numeric_limits<float>::infinity(),
      [&](std::size_t lo, std::size_t hi) {
        return *std::min_element(data_.begin() + static_cast<long>(lo),
                                 data_.begin() + static_cast<long>(hi));
      },
      [](float a, float b) { return std::min(a, b); });
}

float Tensor::max() const {
  CCQ_CHECK(!data_.empty(), "max of empty tensor");
  return parallel_reduce(
      ExecContext::global(), data_.size(), kReduceChunk,
      -std::numeric_limits<float>::infinity(),
      [&](std::size_t lo, std::size_t hi) {
        return *std::max_element(data_.begin() + static_cast<long>(lo),
                                 data_.begin() + static_cast<long>(hi));
      },
      [](float a, float b) { return std::max(a, b); });
}

std::size_t Tensor::argmax() const {
  CCQ_CHECK(!data_.empty(), "argmax of empty tensor");
  // First-on-ties: chunk winners keep their absolute index and combine
  // in chunk order with a strict comparison, matching the serial scan.
  const auto best = parallel_reduce(
      ExecContext::global(), data_.size(), kReduceChunk,
      std::pair<std::size_t, float>{data_.size(),
                                    -std::numeric_limits<float>::infinity()},
      [&](std::size_t lo, std::size_t hi) {
        const auto it = std::max_element(data_.begin() + static_cast<long>(lo),
                                         data_.begin() + static_cast<long>(hi));
        return std::pair<std::size_t, float>{
            static_cast<std::size_t>(it - data_.begin()), *it};
      },
      [n = data_.size()](std::pair<std::size_t, float> a,
                         std::pair<std::size_t, float> b) {
        if (a.first == n) return b;  // `a` is the empty init sentinel
        return b.second > a.second ? b : a;
      });
  return best.first;
}

float Tensor::sqnorm() const {
  const double acc = parallel_reduce(
      ExecContext::global(), data_.size(), kReduceChunk, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double part = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          part += static_cast<double>(data_[i]) * data_[i];
        }
        return part;
      },
      [](double a, double b) { return a + b; });
  return static_cast<float>(acc);
}

float Tensor::abs_mean() const {
  CCQ_CHECK(!data_.empty(), "abs_mean of empty tensor");
  const double acc = parallel_reduce(
      ExecContext::global(), data_.size(), kReduceChunk, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double part = 0.0;
        for (std::size_t i = lo; i < hi; ++i) part += std::fabs(data_[i]);
        return part;
      },
      [](double a, double b) { return a + b; });
  return static_cast<float>(acc / static_cast<double>(data_.size()));
}

bool Tensor::has_nonfinite() const {
  return parallel_reduce(
      ExecContext::global(), data_.size(), kReduceChunk, false,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          if (!std::isfinite(data_[i])) return true;
        }
        return false;
      },
      [](bool a, bool b) { return a || b; });
}

Tensor operator+(Tensor lhs, const Tensor& rhs) { return lhs += rhs; }
Tensor operator-(Tensor lhs, const Tensor& rhs) { return lhs -= rhs; }
Tensor operator*(Tensor lhs, const Tensor& rhs) { return lhs *= rhs; }
Tensor operator*(Tensor lhs, float rhs) { return lhs *= rhs; }
Tensor operator*(float lhs, Tensor rhs) { return rhs *= lhs; }

bool same_shape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  CCQ_CHECK(same_shape(a, b), "max_abs_diff shape mismatch");
  float worst = 0.0f;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    worst = std::max(worst, std::fabs(da[i] - db[i]));
  }
  return worst;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor" << shape_str(t.shape()) << " {";
  const auto d = t.data();
  const std::size_t show = std::min<std::size_t>(d.size(), 8);
  for (std::size_t i = 0; i < show; ++i) {
    if (i != 0) os << ", ";
    os << d[i];
  }
  if (d.size() > show) os << ", …";
  return os << '}';
}

}  // namespace ccq
