// Binary tensor (de)serialisation for checkpoints.
//
// Format (little-endian): magic "CCQT", u32 version, u32 rank,
// u64 dims[rank], f32 data[numel].  A checkpoint file is a sequence of
// (u32 name_len, name bytes, tensor) records.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "ccq/tensor/tensor.hpp"

namespace ccq {

/// Write a single tensor record to a stream.
void write_tensor(std::ostream& os, const Tensor& t);

/// Read a single tensor record; throws ccq::Error on malformed input.
Tensor read_tensor(std::istream& is);

/// Named tensor collection (e.g. all parameters of a model).
using TensorMap = std::map<std::string, Tensor>;

/// Save / load a named collection to a file path.
void save_tensors(const std::string& path, const TensorMap& tensors);
TensorMap load_tensors(const std::string& path);

}  // namespace ccq
