// Blocked single-precision GEMM.
//
// All convolutions in the NN substrate lower to matrix multiply via
// im2col, so this kernel dominates experiment runtime.  It is a
// cache-blocked triple loop (no intrinsics) parallelised over row panels
// through the `ExecContext` each entry point accepts; the microbench
// `bench_kernels` guards regressions.
//
// Determinism: work is partitioned over disjoint M panels at a grain
// that depends only on the problem size, and each C element accumulates
// its k-products in ascending-p order regardless of the partition, so
// results are bit-identical for any thread count (see common/exec.hpp).
#pragma once

#include <cstddef>

#include "ccq/common/exec.hpp"
#include "ccq/tensor/tensor.hpp"

namespace ccq {

/// C[m,n] = alpha * sum_k A[m,k] * B[k,n] + beta * C[m,n]
/// Raw-pointer core; row-major with leading dimensions lda/ldb/ldc.
void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
          const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float beta, float* c, std::size_t ldc,
          const ExecContext& ctx = ExecContext::global());

/// C[m,n] = alpha * sum_k A[k,m] * B[k,n] + beta * C[m,n] — A transposed
/// in place (A is stored k-major), no temporary copy.
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, float alpha,
             const float* a, std::size_t lda, const float* b, std::size_t ldb,
             float beta, float* c, std::size_t ldc,
             const ExecContext& ctx = ExecContext::global());

/// C = A(m×k) · B(k×n) for rank-2 tensors. Shapes are validated.
Tensor matmul(const Tensor& a, const Tensor& b,
              const ExecContext& ctx = ExecContext::global());

/// C = Aᵀ(m×k) · B(k×n) where A is stored k-major as (k×m).
Tensor matmul_tn(const Tensor& a, const Tensor& b,
                 const ExecContext& ctx = ExecContext::global());

/// C = A(m×k) · Bᵀ(k×n) where B is stored n-major as (n×k).
Tensor matmul_nt(const Tensor& a, const Tensor& b,
                 const ExecContext& ctx = ExecContext::global());

// Write-into-destination variants: `c` is resized (capacity-reusing) and
// fully overwritten.  Same kernels and accumulation order as the
// returning forms, so results are bit-identical; these exist so hot
// paths can target workspace-backed tensors without allocating.
void matmul_into(const Tensor& a, const Tensor& b, Tensor& c,
                 const ExecContext& ctx = ExecContext::global());
void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& c,
                    const ExecContext& ctx = ExecContext::global());
void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& c,
                    const ExecContext& ctx = ExecContext::global());

/// Rank-2 transpose.
Tensor transpose2d(const Tensor& a);

}  // namespace ccq
