// Blocked single-precision GEMM.
//
// All convolutions in the NN substrate lower to matrix multiply via
// im2col, so this kernel dominates experiment runtime.  It is a simple
// cache-blocked triple loop (no intrinsics) tuned for the single-core CPU
// this repo targets; the microbench `bench_kernels` guards regressions.
#pragma once

#include <cstddef>

#include "ccq/tensor/tensor.hpp"

namespace ccq {

/// C[m,n] = alpha * sum_k A[m,k] * B[k,n] + beta * C[m,n]
/// Raw-pointer core; row-major with leading dimensions lda/ldb/ldc.
void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
          const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float beta, float* c, std::size_t ldc);

/// C = A(m×k) · B(k×n) for rank-2 tensors. Shapes are validated.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = Aᵀ(m×k) · B(k×n) where A is stored k-major as (k×m).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A(m×k) · Bᵀ(k×n) where B is stored n-major as (n×k).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Rank-2 transpose.
Tensor transpose2d(const Tensor& a);

}  // namespace ccq
