// Fixed-point requantization: the integer epilogue of the deployed
// datapath.
//
// A fused conv/linear layer turns its integer accumulator directly into
// the next layer's activation code:
//
//   code = clamp( rne((acc·M + B) >> shift), 0, qmax )
//
// where M is an int32 multiplier approximating channel_scale/act_scale
// in 2^-shift steps, B the folded bias pre-scaled by 2^shift, and the
// shift rounds to nearest with ties to even (the usual fixed-point
// convention; hardware requantizers implement exactly this).  The
// parameters are picked once per channel at plan-finalize time
// (ccq::hw::make_requant) under static no-overflow bounds, so applying
// them is pure int64 arithmetic — associative, thread- and
// blocking-invariant, and therefore bit-identical between the fused
// igemm epilogue and the naive reference loop.
//
// This header is the *definition* of the requantized code; both the
// engine's serving path and its `forward_reference` oracle call
// `requant_apply` on exact accumulators, which is what makes the
// differential bit-identity tests meaningful.
#pragma once

#include <algorithm>
#include <cstdint>

namespace ccq {

/// Per-channel fixed-point requantization parameters.
/// Contract (established by ccq::hw::make_requant): for every reachable
/// accumulator value |acc| <= acc_bound,
///   |acc·multiplier| <= 2^61  and  |bias| <= 2^61,
/// so acc·multiplier + bias never overflows int64, and 1 <= shift <= 62.
struct Requant {
  std::int32_t multiplier = 0;
  std::int32_t shift = 1;
  std::int64_t bias = 0;
};

/// Arithmetic right shift by `shift` in [1, 62], rounding to nearest
/// with ties to even.  Implemented as floor-shift plus a carry when the
/// remainder exceeds half a ulp (or equals it and the floor result is
/// odd).
inline std::int64_t rne_shift(std::int64_t v, std::int32_t shift) {
  const std::int64_t q = v >> shift;  // floor (arithmetic shift)
  const std::uint64_t rem =
      static_cast<std::uint64_t>(v) & ((std::uint64_t{1} << shift) - 1u);
  const std::uint64_t half = std::uint64_t{1} << (shift - 1);
  return q + ((rem > half || (rem == half && (q & 1) != 0)) ? 1 : 0);
}

/// Requantize one exact accumulator into a code in [0, qmax].  This is
/// the single expression both the fused igemm epilogue and the naive
/// reference loop evaluate — the engine's bit-identity spec.
inline std::int32_t requant_apply(std::int64_t acc, const Requant& r,
                                  std::int32_t qmax) {
  const std::int64_t v = acc * static_cast<std::int64_t>(r.multiplier) + r.bias;
  const std::int64_t q = rne_shift(v, r.shift);
  return static_cast<std::int32_t>(
      std::clamp<std::int64_t>(q, 0, static_cast<std::int64_t>(qmax)));
}

}  // namespace ccq
