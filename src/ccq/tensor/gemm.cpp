#include "ccq/tensor/gemm.hpp"

#include <algorithm>

namespace ccq {

namespace {

// Block sizes chosen so an (MC×KC) A-panel plus a (KC×NC) B-panel fit in
// L2 on typical x86 cores.
constexpr std::size_t kMc = 64;
constexpr std::size_t kKc = 128;
constexpr std::size_t kNc = 256;

}  // namespace

void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
          const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float beta, float* c, std::size_t ldc) {
  // Scale C by beta first so the accumulation loop is pure FMA.
  if (beta == 0.0f) {
    for (std::size_t i = 0; i < m; ++i) {
      std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
    }
  }
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      for (std::size_t ic = 0; ic < m; ic += kMc) {
        const std::size_t mc = std::min(kMc, m - ic);
        for (std::size_t i = 0; i < mc; ++i) {
          const float* arow = a + (ic + i) * lda + pc;
          float* crow = c + (ic + i) * ldc + jc;
          for (std::size_t p = 0; p < kc; ++p) {
            const float av = alpha * arow[p];
            if (av == 0.0f) continue;
            const float* brow = b + (pc + p) * ldb + jc;
            for (std::size_t j = 0; j < nc; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  CCQ_CHECK(a.rank() == 2 && b.rank() == 2, "matmul needs rank-2 tensors");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  CCQ_CHECK(b.dim(0) == k, "matmul inner dimensions differ");
  Tensor c({m, n});
  gemm(m, n, k, 1.0f, a.data().data(), k, b.data().data(), n, 0.0f,
       c.data().data(), n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  CCQ_CHECK(a.rank() == 2 && b.rank() == 2, "matmul_tn needs rank-2 tensors");
  CCQ_CHECK(b.dim(0) == a.dim(0), "matmul_tn inner dimensions differ");
  // Explicit transpose then plain GEMM keeps the inner loops contiguous;
  // the transpose cost is negligible next to the multiply.
  return matmul(transpose2d(a), b);
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  CCQ_CHECK(a.rank() == 2 && b.rank() == 2, "matmul_nt needs rank-2 tensors");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  CCQ_CHECK(b.dim(1) == k, "matmul_nt inner dimensions differ");
  Tensor c({m, n});
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  // Dot-product formulation: rows of both A and B are contiguous.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const float* arow = ap + i * k;
      const float* brow = bp + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      cp[i * n + j] = acc;
    }
  }
  return c;
}

Tensor transpose2d(const Tensor& a) {
  CCQ_CHECK(a.rank() == 2, "transpose2d needs a rank-2 tensor");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  const float* ap = a.data().data();
  float* tp = t.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) tp[j * m + i] = ap[i * n + j];
  }
  return t;
}

}  // namespace ccq
