#include "ccq/tensor/gemm.hpp"

#include <algorithm>

#include "ccq/common/telemetry.hpp"

namespace ccq {

namespace {

// Block sizes chosen so an (MC×KC) A-panel plus a (KC×NC) B-panel fit in
// L2 on typical x86 cores.
constexpr std::size_t kMc = 64;
constexpr std::size_t kKc = 128;
constexpr std::size_t kNc = 256;

// Row-panel grain for thread partitioning.  Smaller than kMc so matrices
// with few rows (conv weight panels, mini-batches) still split; a fixed
// constant keeps the partition a pure function of the problem size.
constexpr std::size_t kRowGrain = 16;

// Serial kernel over the row range [row0, row1).  Per-element
// accumulation order (jc, pc ascending) is independent of the range, so
// any row partition reproduces the full-matrix result bit for bit.
void gemm_rows(std::size_t row0, std::size_t row1, std::size_t n,
               std::size_t k, float alpha, const float* a, std::size_t lda,
               const float* b, std::size_t ldb, float beta, float* c,
               std::size_t ldc) {
  // Scale C by beta first so the accumulation loop is pure FMA.
  if (beta == 0.0f) {
    for (std::size_t i = row0; i < row1; ++i) {
      std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
  } else if (beta != 1.0f) {
    for (std::size_t i = row0; i < row1; ++i) {
      for (std::size_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
    }
  }
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      for (std::size_t ic = row0; ic < row1; ic += kMc) {
        const std::size_t mc = std::min(kMc, row1 - ic);
        for (std::size_t i = 0; i < mc; ++i) {
          const float* arow = a + (ic + i) * lda + pc;
          float* crow = c + (ic + i) * ldc + jc;
          for (std::size_t p = 0; p < kc; ++p) {
            const float av = alpha * arow[p];
            if (av == 0.0f) continue;
            const float* brow = b + (pc + p) * ldb + jc;
            for (std::size_t j = 0; j < nc; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

// Transpose-free Aᵀ·B over C rows [row0, row1): row i of C reads column
// i of A.  The rank-1-update loop order keeps B and C rows contiguous
// and accumulates each element in ascending-p order (identical to
// transposing A and running gemm_rows).
void gemm_tn_rows(std::size_t row0, std::size_t row1, std::size_t n,
                  std::size_t k, float alpha, const float* a, std::size_t lda,
                  const float* b, std::size_t ldb, float beta, float* c,
                  std::size_t ldc) {
  if (beta == 0.0f) {
    for (std::size_t i = row0; i < row1; ++i) {
      std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
  } else if (beta != 1.0f) {
    for (std::size_t i = row0; i < row1; ++i) {
      for (std::size_t j = 0; j < n; ++j) c[i * ldc + j] *= beta;
    }
  }
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      for (std::size_t i = row0; i < row1; ++i) {
        float* crow = c + i * ldc + jc;
        for (std::size_t p = 0; p < kc; ++p) {
          const float av = alpha * a[(pc + p) * lda + i];
          if (av == 0.0f) continue;
          const float* brow = b + (pc + p) * ldb + jc;
          for (std::size_t j = 0; j < nc; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

}  // namespace

void gemm(std::size_t m, std::size_t n, std::size_t k, float alpha,
          const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float beta, float* c, std::size_t ldc, const ExecContext& ctx) {
  telemetry::ScopedTimer timer(telemetry::Timer::kGemm);
  parallel_for(ctx, m, kRowGrain,
               [&](std::size_t row0, std::size_t row1) {
                 gemm_rows(row0, row1, n, k, alpha, a, lda, b, ldb, beta, c,
                           ldc);
               });
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, float alpha,
             const float* a, std::size_t lda, const float* b, std::size_t ldb,
             float beta, float* c, std::size_t ldc, const ExecContext& ctx) {
  telemetry::ScopedTimer timer(telemetry::Timer::kGemm);
  parallel_for(ctx, m, kRowGrain,
               [&](std::size_t row0, std::size_t row1) {
                 gemm_tn_rows(row0, row1, n, k, alpha, a, lda, b, ldb, beta,
                              c, ldc);
               });
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& c,
                 const ExecContext& ctx) {
  CCQ_CHECK(a.rank() == 2 && b.rank() == 2, "matmul needs rank-2 tensors");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  CCQ_CHECK(b.dim(0) == k, "matmul inner dimensions differ");
  c.resize({m, n});
  gemm(m, n, k, 1.0f, a.data().data(), k, b.data().data(), n, 0.0f,
       c.data().data(), n, ctx);
}

Tensor matmul(const Tensor& a, const Tensor& b, const ExecContext& ctx) {
  Tensor c;
  matmul_into(a, b, c, ctx);
  return c;
}

void matmul_tn_into(const Tensor& a, const Tensor& b, Tensor& c,
                    const ExecContext& ctx) {
  CCQ_CHECK(a.rank() == 2 && b.rank() == 2, "matmul_tn needs rank-2 tensors");
  CCQ_CHECK(b.dim(0) == a.dim(0), "matmul_tn inner dimensions differ");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  c.resize({m, n});
  gemm_tn(m, n, k, 1.0f, a.data().data(), m, b.data().data(), n, 0.0f,
          c.data().data(), n, ctx);
}

Tensor matmul_tn(const Tensor& a, const Tensor& b, const ExecContext& ctx) {
  Tensor c;
  matmul_tn_into(a, b, c, ctx);
  return c;
}

void matmul_nt_into(const Tensor& a, const Tensor& b, Tensor& c,
                    const ExecContext& ctx) {
  CCQ_CHECK(a.rank() == 2 && b.rank() == 2, "matmul_nt needs rank-2 tensors");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  CCQ_CHECK(b.dim(1) == k, "matmul_nt inner dimensions differ");
  c.resize({m, n});
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* cp = c.data().data();
  // Dot-product formulation: rows of both A and B are contiguous.  Each
  // C row is produced whole by one chunk, so any row split is exact.
  parallel_for(ctx, m, kRowGrain, [&](std::size_t row0, std::size_t row1) {
    for (std::size_t i = row0; i < row1; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const float* arow = ap + i * k;
        const float* brow = bp + j * k;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        cp[i * n + j] = acc;
      }
    }
  });
}

Tensor matmul_nt(const Tensor& a, const Tensor& b, const ExecContext& ctx) {
  Tensor c;
  matmul_nt_into(a, b, c, ctx);
  return c;
}

Tensor transpose2d(const Tensor& a) {
  CCQ_CHECK(a.rank() == 2, "transpose2d needs a rank-2 tensor");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  const float* ap = a.data().data();
  float* tp = t.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) tp[j * m + i] = ap[i * n + j];
  }
  return t;
}

}  // namespace ccq
