#include "ccq/tensor/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "ccq/common/fileio.hpp"

namespace ccq {

namespace {

constexpr char kMagic[4] = {'C', 'C', 'Q', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  CCQ_CHECK(static_cast<bool>(is), "truncated tensor stream");
  return v;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint32_t>(t.rank()));
  for (std::size_t d : t.shape()) write_pod(os, static_cast<std::uint64_t>(d));
  const auto data = t.data();
  os.write(reinterpret_cast<const char*>(data.data()),
           static_cast<std::streamsize>(data.size() * sizeof(float)));
  CCQ_CHECK(static_cast<bool>(os), "tensor write failed");
}

Tensor read_tensor(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  CCQ_CHECK(static_cast<bool>(is) && std::equal(magic, magic + 4, kMagic),
            "bad tensor magic");
  const auto version = read_pod<std::uint32_t>(is);
  CCQ_CHECK(version == kVersion, "unsupported tensor format version");
  const auto rank = read_pod<std::uint32_t>(is);
  CCQ_CHECK(rank <= 8, "implausible tensor rank");
  Shape shape(rank);
  for (auto& d : shape) {
    d = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
  }
  Tensor t(shape);
  auto data = t.data();
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  CCQ_CHECK(static_cast<bool>(is), "truncated tensor data");
  return t;
}

void save_tensors(const std::string& path, const TensorMap& tensors) {
  // Crash-safe: the record stream lands in a temp file that replaces
  // `path` atomically, so an interrupted save never leaves a truncated
  // checkpoint behind (and the previous one survives).
  atomic_write_file(path, [&](std::ostream& os) {
    write_pod(os, static_cast<std::uint64_t>(tensors.size()));
    for (const auto& [name, tensor] : tensors) {
      write_pod(os, static_cast<std::uint32_t>(name.size()));
      os.write(name.data(), static_cast<std::streamsize>(name.size()));
      write_tensor(os, tensor);
    }
  });
}

TensorMap load_tensors(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CCQ_CHECK(static_cast<bool>(is), "cannot open for read: " + path);
  const auto count = read_pod<std::uint64_t>(is);
  TensorMap out;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name;
    try {
      const auto name_len = read_pod<std::uint32_t>(is);
      name.assign(name_len, '\0');
      is.read(name.data(), name_len);
      CCQ_CHECK(static_cast<bool>(is), "truncated checkpoint name");
      out.emplace(std::move(name), read_tensor(is));
    } catch (const Error& e) {
      const std::string record =
          name.empty() ? "record " + std::to_string(i)
                       : "record " + std::to_string(i) + " ('" + name + "')";
      throw Error("checkpoint " + path + ", " + record + ": " + e.what());
    }
  }
  return out;
}

}  // namespace ccq
