#include "ccq/tensor/im2col.hpp"

namespace ccq {

namespace {

/// Shared lowering body: float for the training path, int32 codes for
/// the igemm deployment path.
template <typename T>
void im2col_impl(const T* image, const ConvGeometry& g, T* columns,
                 const ExecContext& ctx) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t spatial = oh * ow;
  const std::size_t kk = g.kernel * g.kernel;
  // One task item per column-matrix row (c, ky, kx); rows write disjoint
  // `columns` slices.  Grain keeps per-chunk work meaningful for the
  // tiny kernels (3×3 → 9 rows per channel).
  parallel_for(ctx, g.in_channels * kk, kk,
               [&](std::size_t row0, std::size_t row1) {
    for (std::size_t row = row0; row < row1; ++row) {
      const std::size_t c = row / kk;
      const std::size_t ky = (row / g.kernel) % g.kernel;
      const std::size_t kx = row % g.kernel;
      const T* plane = image + c * g.in_h * g.in_w;
      T* out = columns + row * spatial;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        // Signed arithmetic: padded coordinates can be negative.
        const long iy = static_cast<long>(oy * g.stride + ky) -
                        static_cast<long>(g.pad);
        if (iy < 0 || iy >= static_cast<long>(g.in_h)) {
          for (std::size_t ox = 0; ox < ow; ++ox) out[oy * ow + ox] = T{0};
          continue;
        }
        const T* src = plane + static_cast<std::size_t>(iy) * g.in_w;
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const long ix = static_cast<long>(ox * g.stride + kx) -
                          static_cast<long>(g.pad);
          out[oy * ow + ox] = (ix < 0 || ix >= static_cast<long>(g.in_w))
                                  ? T{0}
                                  : src[static_cast<std::size_t>(ix)];
        }
      }
    }
  });
}

}  // namespace

void im2col(const float* image, const ConvGeometry& g, float* columns,
            const ExecContext& ctx) {
  im2col_impl(image, g, columns, ctx);
}

void im2col(const std::int32_t* image, const ConvGeometry& g,
            std::int32_t* columns, const ExecContext& ctx) {
  im2col_impl(image, g, columns, ctx);
}

void im2col(const std::uint8_t* image, const ConvGeometry& g,
            std::uint8_t* columns, const ExecContext& ctx) {
  im2col_impl(image, g, columns, ctx);
}

void im2col(const std::int16_t* image, const ConvGeometry& g,
            std::int16_t* columns, const ExecContext& ctx) {
  im2col_impl(image, g, columns, ctx);
}

void col2im(const float* columns, const ConvGeometry& g, float* image,
            const ExecContext& ctx) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t spatial = oh * ow;
  const std::size_t kk = g.kernel * g.kernel;
  parallel_for(ctx, g.in_channels, 1, [&](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      float* plane = image + c * g.in_h * g.in_w;
      std::size_t row = c * kk;
      for (std::size_t ky = 0; ky < g.kernel; ++ky) {
        for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
          const float* in = columns + row * spatial;
          for (std::size_t oy = 0; oy < oh; ++oy) {
            const long iy = static_cast<long>(oy * g.stride + ky) -
                            static_cast<long>(g.pad);
            if (iy < 0 || iy >= static_cast<long>(g.in_h)) continue;
            float* dst = plane + static_cast<std::size_t>(iy) * g.in_w;
            for (std::size_t ox = 0; ox < ow; ++ox) {
              const long ix = static_cast<long>(ox * g.stride + kx) -
                              static_cast<long>(g.pad);
              if (ix < 0 || ix >= static_cast<long>(g.in_w)) continue;
              dst[static_cast<std::size_t>(ix)] += in[oy * ow + ox];
            }
          }
        }
      }
    }
  });
}

}  // namespace ccq
