// Internal seam between the igemm dispatch layer (igemm.cpp) and the
// vectorized microkernels (igemm_kernels.cpp, compiled with its own
// optimisation flags).  Not installed API — include igemm.hpp instead.
#pragma once

#include <cstddef>

#include "ccq/tensor/igemm.hpp"

namespace ccq::igemm_detail {

/// Dot-layout row padding (elements): depth is rounded up to a lane
/// multiple so the inner loops carry no scalar tail.  16 int16 lanes
/// covers SSE2 (8) and AVX2 (16); 32 8-bit lanes covers SSSE3 (16) and
/// AVX2 (32).  Padding zeros contribute zero products — exactness holds.
inline constexpr std::size_t kVec16Pad = 16;
inline constexpr std::size_t kPackedPad = 32;

inline constexpr std::size_t round_up(std::size_t n, std::size_t to) {
  return (n + to - 1) / to * to;
}

// ---- epilogue policies ------------------------------------------------------
// Every kernel finishes each output element by calling `store(idx, ch,
// acc)` on one of these: idx is the flat position in the m×n output, ch
// the epilogue channel (row for kWX, column for kXW).  Keeping the
// policy a template parameter lets the same microkernel bodies serve
// the float datapath and the fused requantizing one.

/// C[idx] = float(acc)·scale[ch] + bias[ch] — the training-parity
/// epilogue (identical expression to the naive engine loop).
struct FloatEpilogue {
  const float* scale;
  const float* bias;
  float* c;
  template <typename Acc>
  void store(std::size_t idx, std::size_t ch, Acc acc) const {
    c[idx] = static_cast<float>(acc) * scale[ch] + bias[ch];
  }
};

/// out[idx] = requant_apply(acc, rq[ch], qmax) — the fused epilogue
/// writing the next layer's activation codes directly (see
/// tensor/requant.hpp for why this is exact for any blocking/threading).
template <typename Out>
struct RequantEpilogue {
  const Requant* rq;
  Out* out;
  std::int32_t qmax;
  template <typename Acc>
  void store(std::size_t idx, std::size_t ch, Acc acc) const {
    out[idx] = static_cast<Out>(
        requant_apply(static_cast<std::int64_t>(acc), rq[ch], qmax));
  }
};

/// Invoke `f` with the op's epilogue policy object (igemm_run has
/// already validated that exactly one output target is set).
template <typename F>
void dispatch_epilogue(const IgemmOp& op, F&& f) {
  if (op.requant != nullptr) {
    if (op.out8 != nullptr) {
      f(RequantEpilogue<std::uint8_t>{op.requant, op.out8, op.requant_qmax});
    } else {
      f(RequantEpilogue<std::int16_t>{op.requant, op.out16, op.requant_qmax});
    }
  } else {
    f(FloatEpilogue{op.epilogue.scale, op.epilogue.bias, op.c});
  }
}

/// Invoke `f` with the op's typed activation-code pointer (u8 / i16 /
/// int32 — exactly one is set when k > 0; the int32 branch also covers
/// the degenerate k == 0 op with no codes at all).
template <typename F>
void with_x(const IgemmOp& op, F&& f) {
  if (op.x8 != nullptr) {
    f(op.x8);
  } else if (op.x16 != nullptr) {
    f(op.x16);
  } else {
    f(op.x);
  }
}

/// Execute a validated vec16 / vec-packed op (igemm_run has already
/// checked panel/form/shape/eligibility).  Both repack the activation
/// side into a Workspace-leased dot panel, then run the register-tiled
/// dot loops parallel over output rows.
void run_vec16(const IgemmOp& op, const ExecContext& ctx);
void run_vec_packed(const IgemmOp& op, const ExecContext& ctx);

/// True when this translation unit was compiled with 8-bit-lane SIMD
/// (SSSE3 maddubs or AVX2) — the build-level gate behind
/// `igemm_packed_simd`.
bool packed_simd();

}  // namespace ccq::igemm_detail
