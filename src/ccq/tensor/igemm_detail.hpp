// Internal seam between the igemm dispatch layer (igemm.cpp) and the
// vectorized microkernels (igemm_kernels.cpp, compiled with its own
// optimisation flags).  Not installed API — include igemm.hpp instead.
#pragma once

#include <cstddef>

#include "ccq/tensor/igemm.hpp"

namespace ccq::igemm_detail {

/// Dot-layout row padding (elements): depth is rounded up to a lane
/// multiple so the inner loops carry no scalar tail.  16 int16 lanes
/// covers SSE2 (8) and AVX2 (16); 32 8-bit lanes covers SSSE3 (16) and
/// AVX2 (32).  Padding zeros contribute zero products — exactness holds.
inline constexpr std::size_t kVec16Pad = 16;
inline constexpr std::size_t kPackedPad = 32;

inline constexpr std::size_t round_up(std::size_t n, std::size_t to) {
  return (n + to - 1) / to * to;
}

/// Execute a validated vec16 / vec-packed op (igemm_run has already
/// checked panel/form/shape/eligibility).  Both repack the activation
/// side into a Workspace-leased dot panel, then run the register-tiled
/// dot loops parallel over output rows.
void run_vec16(const IgemmOp& op, const ExecContext& ctx);
void run_vec_packed(const IgemmOp& op, const ExecContext& ctx);

/// True when this translation unit was compiled with 8-bit-lane SIMD
/// (SSSE3 maddubs or AVX2) — the build-level gate behind
/// `igemm_packed_simd`.
bool packed_simd();

}  // namespace ccq::igemm_detail
