#include "ccq/tensor/igemm.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <type_traits>

#include "ccq/common/error.hpp"
#include "ccq/common/telemetry.hpp"
#include "ccq/tensor/igemm_detail.hpp"

namespace ccq {

namespace {

/// Serial scalar microkernel over output rows [row0, row1).  One
/// accumulator strip of up to kIgemmMaxNc lives on the stack per row;
/// depth is walked in kc panels with the zero-multiplier skip of
/// tensor/gemm.  Integer math is exact, so the jc/pc blocking order
/// cannot change the result — only overflow could, and the caller's
/// accumulator choice rules that out.  The epilogue policy (float affine
/// or fixed-point requant, igemm_detail) consumes each finished
/// accumulator; for the float policy the expression shape matches the
/// naive engine loop, so outputs match it bit for bit.
template <typename TA, typename TB, typename Acc, bool kPerRowScale,
          typename Epi>
void igemm_rows(std::size_t row0, std::size_t row1, std::size_t n,
                std::size_t k, const TA* a, const TB* b, const Epi& epi,
                const IgemmBlocking& blk) {
  const std::size_t nc_max = std::min(std::max<std::size_t>(blk.nc, 1),
                                      kIgemmMaxNc);
  const std::size_t kc_max = std::max<std::size_t>(blk.kc, 1);
  Acc acc[kIgemmMaxNc];
  for (std::size_t i = row0; i < row1; ++i) {
    const TA* arow = a + i * k;
    for (std::size_t jc = 0; jc < n; jc += nc_max) {
      const std::size_t nc = std::min(nc_max, n - jc);
      std::fill(acc, acc + nc, Acc{0});
      for (std::size_t pc = 0; pc < k; pc += kc_max) {
        const std::size_t kc = std::min(kc_max, k - pc);
        for (std::size_t p = 0; p < kc; ++p) {
          const Acc av = static_cast<Acc>(arow[pc + p]);
          if (av == 0) continue;
          const TB* brow = b + (pc + p) * n + jc;
          for (std::size_t j = 0; j < nc; ++j) {
            acc[j] += av * static_cast<Acc>(brow[j]);
          }
        }
      }
      for (std::size_t j = 0; j < nc; ++j) {
        epi.store(i * n + jc + j, kPerRowScale ? i : jc + j, acc[j]);
      }
    }
  }
}

/// Scalar-kernel execution of a validated IgemmOp.  kWX reads the panel
/// as the left operand (rows×depth row-major); kXW reads it as the right
/// operand (depth×rows) — both are the layouts igemm_pack emits for
/// IgemmKernel::kScalar.  Dispatches over the op's activation code type
/// and epilogue policy (igemm_detail::with_x / dispatch_epilogue).
void run_scalar(const IgemmOp& op, const ExecContext& ctx) {
  const std::int16_t* w = op.panel->i16.data();
  const std::size_t grain = std::max<std::size_t>(op.blocking.row_grain, 1);
  igemm_detail::with_x(op, [&](const auto* x) {
    using TX = std::remove_cv_t<std::remove_pointer_t<decltype(x)>>;
    igemm_detail::dispatch_epilogue(op, [&](const auto& epi) {
      parallel_for(ctx, op.m, grain, [&](std::size_t row0, std::size_t row1) {
        if (op.form == IgemmForm::kWX) {
          if (op.accum == IgemmAccum::kInt32) {
            igemm_rows<std::int16_t, TX, std::int32_t, true>(
                row0, row1, op.n, op.k, w, x, epi, op.blocking);
          } else {
            igemm_rows<std::int16_t, TX, std::int64_t, true>(
                row0, row1, op.n, op.k, w, x, epi, op.blocking);
          }
        } else {
          if (op.accum == IgemmAccum::kInt32) {
            igemm_rows<TX, std::int16_t, std::int32_t, false>(
                row0, row1, op.n, op.k, x, w, epi, op.blocking);
          } else {
            igemm_rows<TX, std::int16_t, std::int64_t, false>(
                row0, row1, op.n, op.k, x, w, epi, op.blocking);
          }
        }
      });
    });
  });
}

}  // namespace

bool igemm_fits_int32(std::int64_t max_abs_a, std::int64_t max_abs_b,
                      std::size_t k) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int32_t>::max();
  if (max_abs_a <= 0 || max_abs_b <= 0 || k == 0) return true;
  if (max_abs_a > kMax / max_abs_b) return false;      // per-term overflow
  const std::int64_t per_term = max_abs_a * max_abs_b;
  return per_term <= kMax / static_cast<std::int64_t>(k);
}

std::int32_t igemm_max_abs(const std::vector<std::int32_t>& codes) {
  std::int32_t max_abs = 0;
  for (std::int32_t c : codes) {
    max_abs = std::max(max_abs, c < 0 ? -c : c);
  }
  return max_abs;
}

// ---- kernel registry --------------------------------------------------------

const char* igemm_kernel_str(IgemmKernel kernel) {
  switch (kernel) {
    case IgemmKernel::kScalar: return "scalar";
    case IgemmKernel::kVec16: return "vec16";
    case IgemmKernel::kVecPacked: return "vec-packed";
    case IgemmKernel::kAuto: return "auto";
  }
  return "?";
}

std::vector<std::string> igemm_kernel_names() {
  return {"scalar", "vec16", "vec-packed", "auto"};
}

IgemmKernel igemm_kernel_from_str(const std::string& name) {
  if (name == "scalar") return IgemmKernel::kScalar;
  if (name == "vec16") return IgemmKernel::kVec16;
  if (name == "vec-packed") return IgemmKernel::kVecPacked;
  if (name == "auto") return IgemmKernel::kAuto;
  std::string known;
  for (const std::string& k : igemm_kernel_names()) {
    if (!known.empty()) known += ", ";
    known += k;
  }
  throw Error("unknown igemm kernel '" + name + "' (available: " + known + ")");
}

IgemmKernel igemm_requested_kernel() {
  const char* env = std::getenv("CCQ_IGEMM_KERNEL");
  if (env == nullptr || *env == '\0') return IgemmKernel::kAuto;
  return igemm_kernel_from_str(env);
}

bool igemm_packed_simd() { return igemm_detail::packed_simd(); }

bool igemm_kernel_eligible(IgemmKernel kernel, std::int32_t w_max,
                           std::int64_t x_bound, IgemmAccum accum) {
  constexpr std::int64_t kI16Max = 32767;
  switch (kernel) {
    case IgemmKernel::kScalar:
      return true;
    case IgemmKernel::kVec16:
      // Activation codes narrow to int16 lanes; pairwise pmaddwd sums of
      // two products stay under the igemm_fits_int32 bound that licensed
      // the int32 accumulator.
      return accum == IgemmAccum::kInt32 && w_max <= kI16Max &&
             x_bound > 0 && x_bound <= kI16Max;
    case IgemmKernel::kVecPacked:
      // int8 weight lanes, uint8 activation lanes, and no intermediate
      // int16 saturation in maddubs: |pair| <= 2·w_max·x_bound <= 32767.
      return accum == IgemmAccum::kInt32 && w_max <= 127 && x_bound > 0 &&
             x_bound <= 255 &&
             2 * static_cast<std::int64_t>(w_max) * x_bound <= kI16Max;
    case IgemmKernel::kAuto:
      break;  // a selection policy, never directly executable
  }
  return false;
}

IgemmKernel igemm_select_kernel(IgemmKernel requested, std::int32_t w_max,
                                std::int64_t x_bound, IgemmAccum accum) {
  // An eligible explicit request is honoured as-is (including vec-packed
  // on builds without 8-bit SIMD — its portable loop still exists, and
  // forcing it is how tests and benchmarks pin a variant).  Ineligible
  // requests and kAuto fall down the density ladder.
  if (requested != IgemmKernel::kAuto &&
      igemm_kernel_eligible(requested, w_max, x_bound, accum)) {
    return requested;
  }
  if (igemm_packed_simd() &&
      igemm_kernel_eligible(IgemmKernel::kVecPacked, w_max, x_bound, accum)) {
    return IgemmKernel::kVecPacked;
  }
  if (igemm_kernel_eligible(IgemmKernel::kVec16, w_max, x_bound, accum)) {
    return IgemmKernel::kVec16;
  }
  return IgemmKernel::kScalar;
}

// ---- packing ----------------------------------------------------------------

namespace {

/// Range-check one weight code against a kernel's lane type, naming the
/// offending value and position on failure (packed panels are a
/// compile-time contract, not a silent narrowing).
void check_code_fits(std::int32_t v, std::int32_t lo, std::int32_t hi,
                     std::size_t r, std::size_t p, const char* lane) {
  if (v < lo || v > hi) {
    throw Error("igemm panel: weight code " + std::to_string(v) + " at (" +
                std::to_string(r) + ", " + std::to_string(p) +
                ") does not fit the " + lane + " lane format");
  }
}

}  // namespace

std::vector<std::int16_t> igemm_pack_panel(
    const std::vector<std::int32_t>& codes, std::size_t rows,
    std::size_t cols, bool transpose) {
  CCQ_CHECK(codes.size() == rows * cols,
            "igemm panel: code count does not match rows x cols");
  constexpr std::int32_t kLo = std::numeric_limits<std::int16_t>::min();
  constexpr std::int32_t kHi = std::numeric_limits<std::int16_t>::max();
  std::vector<std::int16_t> panel(codes.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t col = 0; col < cols; ++col) {
      const std::int32_t v = codes[r * cols + col];
      check_code_fits(v, kLo, kHi, r, col, "int16 panel");
      const std::size_t dst = transpose ? col * rows + r : r * cols + col;
      panel[dst] = static_cast<std::int16_t>(v);
    }
  }
  return panel;
}

IgemmPanel igemm_pack(const std::vector<std::int32_t>& codes,
                      std::size_t rows, std::size_t depth, IgemmForm form,
                      IgemmKernel kernel) {
  CCQ_CHECK(kernel != IgemmKernel::kAuto,
            "igemm_pack: kAuto is a selection policy — resolve it with "
            "igemm_select_kernel first");
  CCQ_CHECK(codes.size() == rows * depth,
            "igemm panel: code count does not match rows x depth");
  IgemmPanel panel;
  panel.kernel = kernel;
  panel.form = form;
  panel.rows = rows;
  panel.depth = depth;
  panel.max_abs = igemm_max_abs(codes);
  switch (kernel) {
    case IgemmKernel::kScalar:
      // The rank-1 layouts the scalar microkernel walks: kWX keeps the
      // row-major rows×depth matrix; kXW transposes to depth×rows.
      panel.stride = form == IgemmForm::kWX ? depth : rows;
      panel.i16 = igemm_pack_panel(codes, rows, depth,
                                   /*transpose=*/form == IgemmForm::kXW);
      break;
    case IgemmKernel::kVec16: {
      panel.stride =
          igemm_detail::round_up(depth, igemm_detail::kVec16Pad);
      panel.i16.assign(rows * panel.stride, 0);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t p = 0; p < depth; ++p) {
          const std::int32_t v = codes[r * depth + p];
          check_code_fits(v, -32768, 32767, r, p, "vec16 int16");
          panel.i16[r * panel.stride + p] = static_cast<std::int16_t>(v);
        }
      }
      break;
    }
    case IgemmKernel::kVecPacked: {
      panel.stride =
          igemm_detail::round_up(depth, igemm_detail::kPackedPad);
      panel.i8.assign(rows * panel.stride, 0);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t p = 0; p < depth; ++p) {
          const std::int32_t v = codes[r * depth + p];
          check_code_fits(v, -127, 127, r, p, "vec-packed int8");
          panel.i8[r * panel.stride + p] = static_cast<std::int8_t>(v);
        }
      }
      break;
    }
    case IgemmKernel::kAuto:
      break;  // unreachable (checked above)
  }
  return panel;
}

// ---- execution --------------------------------------------------------------

void igemm_run(const IgemmOp& op, const ExecContext& ctx) {
  CCQ_CHECK(op.panel != nullptr, "igemm_run: op has no packed panel");
  const IgemmPanel& panel = *op.panel;
  CCQ_CHECK(panel.kernel != IgemmKernel::kAuto,
            "igemm_run: panel was packed for kAuto (not executable)");
  CCQ_CHECK(panel.form == op.form,
            "igemm_run: panel form does not match op form");
  const std::size_t panel_rows = op.form == IgemmForm::kWX ? op.m : op.n;
  if (panel.rows != panel_rows || panel.depth != op.k) {
    throw Error("igemm_run: panel shape (" + std::to_string(panel.rows) +
                " x " + std::to_string(panel.depth) +
                ") does not match op (rows " + std::to_string(panel_rows) +
                ", depth " + std::to_string(op.k) + ")");
  }
  if (op.m == 0 || op.n == 0) return;
  if (op.requant != nullptr) {
    CCQ_CHECK((op.out8 != nullptr) != (op.out16 != nullptr),
              "igemm_run: requant epilogue needs exactly one code output "
              "(out8 or out16)");
    CCQ_CHECK(op.c == nullptr,
              "igemm_run: requant epilogue and float output are exclusive");
    CCQ_CHECK(op.requant_qmax > 0, "igemm_run: requant_qmax must be positive");
  } else {
    CCQ_CHECK(op.out8 == nullptr && op.out16 == nullptr,
              "igemm_run: code outputs need requant parameters");
    CCQ_CHECK(op.c != nullptr, "igemm_run: null output");
    CCQ_CHECK(op.epilogue.scale != nullptr && op.epilogue.bias != nullptr,
              "igemm_run: null epilogue scale/bias");
  }
  const int x_inputs = (op.x != nullptr ? 1 : 0) + (op.x8 != nullptr ? 1 : 0) +
                       (op.x16 != nullptr ? 1 : 0);
  CCQ_CHECK(op.k == 0 ? x_inputs <= 1 : x_inputs == 1,
            "igemm_run: exactly one activation code input (x, x8 or x16) "
            "must be set");
  if (!igemm_kernel_eligible(panel.kernel, panel.max_abs, op.x_bound,
                             op.accum)) {
    throw Error(
        std::string("igemm_run: kernel '") + igemm_kernel_str(panel.kernel) +
        "' is not eligible for this op (w_max=" +
        std::to_string(panel.max_abs) +
        ", x_bound=" + std::to_string(op.x_bound) + ", accum=" +
        (op.accum == IgemmAccum::kInt32 ? "int32" : "int64") +
        "); re-select with igemm_select_kernel and re-pack");
  }
  telemetry::ScopedTimer timer(telemetry::Timer::kIgemm);
  switch (panel.kernel) {
    case IgemmKernel::kScalar: {
      telemetry::ScopedTimer kt(telemetry::Timer::kIgemmScalar);
      run_scalar(op, ctx);
      break;
    }
    case IgemmKernel::kVec16: {
      telemetry::ScopedTimer kt(telemetry::Timer::kIgemmVec16);
      igemm_detail::run_vec16(op, ctx);
      break;
    }
    case IgemmKernel::kVecPacked: {
      telemetry::ScopedTimer kt(telemetry::Timer::kIgemmVecPacked);
      igemm_detail::run_vec_packed(op, ctx);
      break;
    }
    case IgemmKernel::kAuto:
      break;  // unreachable (checked above)
  }
}

}  // namespace ccq
