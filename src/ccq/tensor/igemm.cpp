#include "ccq/tensor/igemm.hpp"

#include <algorithm>
#include <limits>

#include "ccq/common/telemetry.hpp"

namespace ccq {

namespace {

/// Serial microkernel over output rows [row0, row1).  One accumulator
/// strip of up to kIgemmMaxNc lives on the stack per row; depth is
/// walked in kc panels with the zero-multiplier skip of tensor/gemm.
/// Integer math is exact, so the jc/pc blocking order cannot change the
/// result — only overflow could, and the caller's accumulator choice
/// rules that out.
template <typename TA, typename TB, typename Acc, bool kPerRowScale>
void igemm_rows(std::size_t row0, std::size_t row1, std::size_t n,
                std::size_t k, const TA* a, const TB* b, float* c,
                const float* scale, const float* bias,
                const IgemmBlocking& blk) {
  const std::size_t nc_max = std::min(std::max<std::size_t>(blk.nc, 1),
                                      kIgemmMaxNc);
  const std::size_t kc_max = std::max<std::size_t>(blk.kc, 1);
  Acc acc[kIgemmMaxNc];
  for (std::size_t i = row0; i < row1; ++i) {
    const TA* arow = a + i * k;
    for (std::size_t jc = 0; jc < n; jc += nc_max) {
      const std::size_t nc = std::min(nc_max, n - jc);
      std::fill(acc, acc + nc, Acc{0});
      for (std::size_t pc = 0; pc < k; pc += kc_max) {
        const std::size_t kc = std::min(kc_max, k - pc);
        for (std::size_t p = 0; p < kc; ++p) {
          const Acc av = static_cast<Acc>(arow[pc + p]);
          if (av == 0) continue;
          const TB* brow = b + (pc + p) * n + jc;
          for (std::size_t j = 0; j < nc; ++j) {
            acc[j] += av * static_cast<Acc>(brow[j]);
          }
        }
      }
      // Epilogue: identical expression shape to the naive engine loop
      // (float(acc) * scale + bias), so outputs match it bit for bit.
      float* crow = c + i * n + jc;
      for (std::size_t j = 0; j < nc; ++j) {
        const float s = kPerRowScale ? scale[i] : scale[jc + j];
        const float o = kPerRowScale ? bias[i] : bias[jc + j];
        crow[j] = static_cast<float>(acc[j]) * s + o;
      }
    }
  }
}

}  // namespace

bool igemm_fits_int32(std::int64_t max_abs_a, std::int64_t max_abs_b,
                      std::size_t k) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int32_t>::max();
  if (max_abs_a <= 0 || max_abs_b <= 0 || k == 0) return true;
  if (max_abs_a > kMax / max_abs_b) return false;      // per-term overflow
  const std::int64_t per_term = max_abs_a * max_abs_b;
  return per_term <= kMax / static_cast<std::int64_t>(k);
}

std::vector<std::int16_t> igemm_pack_panel(
    const std::vector<std::int32_t>& codes, std::size_t rows,
    std::size_t cols, bool transpose) {
  CCQ_CHECK(codes.size() == rows * cols,
            "igemm panel: code count does not match rows x cols");
  constexpr std::int32_t kLo = std::numeric_limits<std::int16_t>::min();
  constexpr std::int32_t kHi = std::numeric_limits<std::int16_t>::max();
  std::vector<std::int16_t> panel(codes.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t col = 0; col < cols; ++col) {
      const std::int32_t v = codes[r * cols + col];
      if (v < kLo || v > kHi) {
        throw Error("igemm panel: weight code " + std::to_string(v) +
                    " at (" + std::to_string(r) + ", " + std::to_string(col) +
                    ") does not fit the int16 panel format");
      }
      const std::size_t dst = transpose ? col * rows + r : r * cols + col;
      panel[dst] = static_cast<std::int16_t>(v);
    }
  }
  return panel;
}

std::int32_t igemm_max_abs(const std::vector<std::int32_t>& codes) {
  std::int32_t max_abs = 0;
  for (std::int32_t c : codes) {
    max_abs = std::max(max_abs, c < 0 ? -c : c);
  }
  return max_abs;
}

void igemm_wx(std::size_t m, std::size_t n, std::size_t k,
              const std::int16_t* w, const std::int32_t* x, float* c,
              const float* scale, const float* bias, IgemmAccum accum,
              const ExecContext& ctx, const IgemmBlocking& blk) {
  telemetry::ScopedTimer timer(telemetry::Timer::kIgemm);
  const std::size_t grain = std::max<std::size_t>(blk.row_grain, 1);
  parallel_for(ctx, m, grain, [&](std::size_t row0, std::size_t row1) {
    if (accum == IgemmAccum::kInt32) {
      igemm_rows<std::int16_t, std::int32_t, std::int32_t, true>(
          row0, row1, n, k, w, x, c, scale, bias, blk);
    } else {
      igemm_rows<std::int16_t, std::int32_t, std::int64_t, true>(
          row0, row1, n, k, w, x, c, scale, bias, blk);
    }
  });
}

void igemm_xw(std::size_t m, std::size_t n, std::size_t k,
              const std::int32_t* x, const std::int16_t* w, float* c,
              const float* scale, const float* bias, IgemmAccum accum,
              const ExecContext& ctx, const IgemmBlocking& blk) {
  telemetry::ScopedTimer timer(telemetry::Timer::kIgemm);
  const std::size_t grain = std::max<std::size_t>(blk.row_grain, 1);
  parallel_for(ctx, m, grain, [&](std::size_t row0, std::size_t row1) {
    if (accum == IgemmAccum::kInt32) {
      igemm_rows<std::int32_t, std::int16_t, std::int32_t, false>(
          row0, row1, n, k, x, w, c, scale, bias, blk);
    } else {
      igemm_rows<std::int32_t, std::int16_t, std::int64_t, false>(
          row0, row1, n, k, x, w, c, scale, bias, blk);
    }
  });
}

}  // namespace ccq
