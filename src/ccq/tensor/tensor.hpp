// Dense row-major float tensor.
//
// This is the numerical substrate for the whole reproduction: layers,
// quantizers and the CCQ controller all operate on `Tensor`.  Design
// choices, in order of importance for this repo:
//   * value semantics and contiguous storage — easy to reason about,
//     trivially serialisable, cache friendly for the GEMM-backed conv;
//   * float32 element type only — the paper quantizes *simulated* low
//     precision values stored in float (quantization-aware training with
//     a straight-through estimator), so a single element type suffices;
//   * explicit shape checks that throw `ccq::Error` — silent broadcasting
//     bugs are the classic failure mode of hand-rolled NN code.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ccq/common/alloc.hpp"
#include "ccq/common/error.hpp"
#include "ccq/common/rng.hpp"

namespace ccq {

/// Shape of a tensor: dimension sizes, outermost first.
using Shape = std::vector<std::size_t>;

/// Number of elements a shape describes (product of dims; 1 for scalars).
std::size_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" rendering.
std::string shape_str(const Shape& shape);

/// Dense row-major float tensor with value semantics.
class Tensor {
 public:
  /// Empty tensor (rank 0, zero elements).
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with every element set to `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor wrapping a copy of the provided values. Sizes must match.
  Tensor(Shape shape, std::vector<float> values);

  /// Tensor taking ownership of existing storage (no copy). Sizes must
  /// match.  This is the Workspace hand-off: pooled buffers become
  /// tensor storage without touching the heap.
  static Tensor adopt(Shape shape, FloatVec storage);

  // ---- factories -------------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// 1-D tensor from an initializer list.
  static Tensor from(std::initializer_list<float> values);
  /// i.i.d. N(0, stddev^2) entries.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);
  /// i.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi);

  // ---- structure -------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  /// Size of dimension `d` (bounds-checked).
  std::size_t dim(std::size_t d) const;

  /// Same data, new shape; element counts must match.
  Tensor reshaped(Shape new_shape) const;
  /// In-place reshape; element counts must match.
  void reshape(Shape new_shape);

  /// Re-dimension in place, reusing capacity when possible.  Elements in
  /// the retained prefix keep their values; any grown tail is zero.
  /// Unlike reshape, the element count may change.
  void resize(Shape new_shape);

  /// Give up ownership of the storage (for recycling into a Workspace
  /// pool); the tensor is left empty.
  FloatVec release_storage();

  // ---- element access ---------------------------------------------------
  std::span<float> data() { return {data_.data(), data_.size()}; }
  std::span<const float> data() const { return {data_.data(), data_.size()}; }
  float& at(std::size_t flat_index);
  float at(std::size_t flat_index) const;

  /// Indexed access for common ranks (bounds-checked).
  float& operator()(std::size_t i);
  float& operator()(std::size_t i, std::size_t j);
  float& operator()(std::size_t i, std::size_t j, std::size_t k);
  float& operator()(std::size_t i, std::size_t j, std::size_t k, std::size_t l);
  float operator()(std::size_t i) const;
  float operator()(std::size_t i, std::size_t j) const;
  float operator()(std::size_t i, std::size_t j, std::size_t k) const;
  float operator()(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const;

  // ---- in-place arithmetic ----------------------------------------------
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(const Tensor& rhs);  ///< elementwise
  Tensor& operator+=(float rhs);
  Tensor& operator*=(float rhs);

  /// Set every element to `v`.
  void fill(float v);
  /// y[i] = f(x[i]) applied in place.
  template <typename F>
  void apply(F&& f) {
    for (auto& v : data_) v = f(v);
  }

  // ---- reductions --------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Index of the maximum element (first on ties). Requires numel > 0.
  std::size_t argmax() const;
  /// Square of the L2 norm.
  float sqnorm() const;
  /// Mean of |x|.
  float abs_mean() const;

  /// True if any element is NaN or infinite.
  bool has_nonfinite() const;

 private:
  void check_rank(std::size_t want) const;
  std::size_t flat2(std::size_t i, std::size_t j) const;
  std::size_t flat3(std::size_t i, std::size_t j, std::size_t k) const;
  std::size_t flat4(std::size_t i, std::size_t j, std::size_t k,
                    std::size_t l) const;

  Shape shape_;
  FloatVec data_;
};

// ---- out-of-place arithmetic ---------------------------------------------
Tensor operator+(Tensor lhs, const Tensor& rhs);
Tensor operator-(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, const Tensor& rhs);  ///< elementwise
Tensor operator*(Tensor lhs, float rhs);
Tensor operator*(float lhs, Tensor rhs);

/// Exact shape equality.
bool same_shape(const Tensor& a, const Tensor& b);

/// max |a[i] - b[i]|; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace ccq
