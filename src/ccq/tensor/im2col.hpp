// im2col / col2im lowering for convolution.
//
// Convolution forward becomes: columns = im2col(x); y = W_mat · columns.
// Backward w.r.t. the input inverts the lowering with col2im (scatter-add).
#pragma once

#include <cstddef>
#include <cstdint>

#include "ccq/common/exec.hpp"
#include "ccq/tensor/tensor.hpp"

namespace ccq {

/// Static geometry of a 2-D convolution (square kernel/stride/pad).
struct ConvGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 1;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const {
    CCQ_CHECK(in_h + 2 * pad >= kernel, "conv kernel larger than padded input");
    return (in_h + 2 * pad - kernel) / stride + 1;
  }
  std::size_t out_w() const {
    CCQ_CHECK(in_w + 2 * pad >= kernel, "conv kernel larger than padded input");
    return (in_w + 2 * pad - kernel) / stride + 1;
  }
  /// Rows of the lowered column matrix: C·k·k.
  std::size_t patch_size() const { return in_channels * kernel * kernel; }
  /// Columns of the lowered matrix: out_h·out_w.
  std::size_t out_spatial() const { return out_h() * out_w(); }
};

/// Lower one image (C,H,W flattened in `image`) to a (patch_size ×
/// out_spatial) column matrix written to `columns`.  Parallel over
/// column-matrix rows (each row is written by exactly one chunk).
void im2col(const float* image, const ConvGeometry& g, float* columns,
            const ExecContext& ctx = ExecContext::global());

/// Integer-code overload (same lowering, zero padding): feeds the igemm
/// deployment path, where activations are int32 code buffers.
void im2col(const std::int32_t* image, const ConvGeometry& g,
            std::int32_t* columns,
            const ExecContext& ctx = ExecContext::global());

/// Narrow activation-code overloads for the fused integer datapath,
/// where layer outputs stay u8 (grids up to 8 bits) or i16 codes and
/// are lowered without ever widening to int32 or float.
void im2col(const std::uint8_t* image, const ConvGeometry& g,
            std::uint8_t* columns,
            const ExecContext& ctx = ExecContext::global());
void im2col(const std::int16_t* image, const ConvGeometry& g,
            std::int16_t* columns,
            const ExecContext& ctx = ExecContext::global());

/// Scatter-add a column matrix back to image gradient layout.  `image`
/// must be pre-zeroed by the caller (we accumulate).  Parallel over
/// channels: rows of one channel scatter only into that channel's plane,
/// and within a channel the serial (ky, kx) order is kept, so the
/// accumulation is deterministic for any thread count.
void col2im(const float* columns, const ConvGeometry& g, float* image,
            const ExecContext& ctx = ExecContext::global());

}  // namespace ccq
