// Blocked low-bit integer GEMM — the deployed MAC datapath.
//
// The integer engine (hw/integer_engine) computes every conv / linear
// layer over k-bit integer codes; this kernel family gives that path the
// same blocked/tiled treatment the float side gets from tensor/gemm:
//
//   * weight codes are packed once (plan-compile time) into row-major
//     `int16` panels (`igemm_pack_panel`) — ladder codes are doubled
//     k-bit values with k <= 15, so they always fit;
//   * activation codes arrive as `int32` buffers (Workspace `ints()`
//     leases, filled by the int overload of `im2col`);
//   * the microkernel is a cache-blocked rank-1-update loop (column
//     panels of `nc`, depth panels of `kc`, a register-resident
//     accumulator strip per output row) with zero-multiplier skipping —
//     quantized weights and ReLU-clipped activations are mostly zeros at
//     low bit widths;
//   * accumulation is `int32` when the statically computed bound
//     max|a|·max|b|·k fits (see `igemm_fits_int32`), else `int64`.
//
// Exactness: integer arithmetic is associative, so *any* blocking
// factor, panel order or thread partition produces the same sums —
// provided no intermediate overflows.  The int32 bound guarantees that
// for every partial sum (each is a subset of at most k terms of
// magnitude <= max|a|·max|b|), so results are bit-identical to a naive
// int64 triple loop for all blockings and thread counts
// (tests/igemm_property_test.cpp enforces this differentially).
//
// Activation codes are required to be representable in int32.  Codes on
// a quantized activation grid (<16 bits) always are; unbounded float
// activations already lose integer exactness in any float-held datapath
// beyond 2^24, so int32 is not a new restriction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ccq/common/exec.hpp"
#include "ccq/tensor/im2col.hpp"

namespace ccq {

/// Accumulator width for one igemm call.  Pick with `igemm_fits_int32`;
/// running the int32 path past its bound is signed-overflow UB, which is
/// why the engine selects the accumulator from a static per-layer bound
/// instead of trusting runtime luck.
enum class IgemmAccum : std::uint8_t { kInt32, kInt64 };

/// Cache-blocking factors.  The defaults mirror tensor/gemm (an `nc`
/// column panel of int32 activations plus a `kc` depth slice stay
/// L2-resident); tests sweep them to prove blocking never changes bits.
struct IgemmBlocking {
  std::size_t nc = 256;        ///< column-panel width (clamped to kIgemmMaxNc)
  std::size_t kc = 128;        ///< depth-panel height
  std::size_t row_grain = 8;   ///< output rows per parallel_for chunk
};

/// Upper bound on the accumulator strip held per output row (stack
/// storage in the microkernel); `nc` is clamped to it.
inline constexpr std::size_t kIgemmMaxNc = 512;

/// True when k products of magnitude <= max_abs_a * max_abs_b plus their
/// running sums provably fit an int32 accumulator:
/// max_abs_a · max_abs_b · k <= INT32_MAX, evaluated without overflow.
bool igemm_fits_int32(std::int64_t max_abs_a, std::int64_t max_abs_b,
                      std::size_t k);

/// Pack int32 weight codes into an int16 panel.  `codes` is row-major
/// rows×cols; `transpose` emits the cols×rows layout (linear layers feed
/// the panel as the right-hand operand).  Throws ccq::Error naming the
/// offending value when a code does not fit int16 — packed panels are a
/// compile-time contract, not a silent narrowing.
std::vector<std::int16_t> igemm_pack_panel(
    const std::vector<std::int32_t>& codes, std::size_t rows,
    std::size_t cols, bool transpose);

/// Largest |code| in a code vector (0 when empty).
std::int32_t igemm_max_abs(const std::vector<std::int32_t>& codes);

/// C[m,n] = float(sum_k W[m,k] · X[k,n]) · scale[m] + bias[m]
/// Weight-panel-left form (convolution after im2col): W is a packed
/// int16 panel (lda = k), X an int32 code matrix (ldb = n), C float
/// (ldc = n).  Scale/bias are per *row* (output channel).  Parallel over
/// output rows; deterministic and exact for any thread count/blocking.
void igemm_wx(std::size_t m, std::size_t n, std::size_t k,
              const std::int16_t* w, const std::int32_t* x, float* c,
              const float* scale, const float* bias, IgemmAccum accum,
              const ExecContext& ctx = ExecContext::global(),
              const IgemmBlocking& blk = {});

/// C[m,n] = float(sum_k X[m,k] · W[k,n]) · scale[n] + bias[n]
/// Activation-left form (linear layers): X is the int32 activation code
/// matrix (batch × in_features), W the *transposed* int16 weight panel
/// (in_features × out_features), so C lands row-major in the output
/// tensor's (batch × out_features) layout.  Scale/bias are per *column*
/// (output feature).
void igemm_xw(std::size_t m, std::size_t n, std::size_t k,
              const std::int32_t* x, const std::int16_t* w, float* c,
              const float* scale, const float* bias, IgemmAccum accum,
              const ExecContext& ctx = ExecContext::global(),
              const IgemmBlocking& blk = {});

}  // namespace ccq
