// Blocked low-bit integer GEMM — the deployed MAC datapath.
//
// The integer engine (hw/integer_engine) computes every conv / linear
// layer over k-bit integer codes; this kernel family gives that path the
// same blocked/tiled treatment the float side gets from tensor/gemm —
// plus explicitly vectorized microkernels behind a small named registry:
//
//   * weight codes are packed once (plan-compile / artifact-load time)
//     into an `IgemmPanel` whose layout is owned by the kernel that will
//     execute it (`igemm_pack`);
//   * activation codes arrive as `u8` / `i16` / `int32` buffers
//     (Workspace leases, filled by the matching `im2col` overload — the
//     fused datapath keeps layer outputs in their narrow code type);
//   * one igemm invocation is described by an `IgemmOp` — operand form,
//     shapes, packed panel, activation codes, epilogue (per-channel
//     float scale/bias, or fixed-point requantization writing the next
//     layer's codes directly), accumulator width, blocking — and
//     executed by `igemm_run`, which dispatches on the panel's kernel
//     variant;
//   * kernels: `scalar` (the cache-blocked rank-1-update loop, any
//     accumulator), `vec16` (register-tiled int16×int16→int32 widening
//     multiply-accumulate — `pmaddwd`-shaped, so SSE2/AVX2 intrinsics
//     where the feature gate allows and a compiler-vectorizable portable
//     loop elsewhere), `vec-packed` (weights and activations narrowed to
//     8-bit lanes for 2–4-bit layers, doubling arithmetic density per
//     vector op), and `auto` (pick the densest eligible kernel);
//   * accumulation is `int32` when the statically computed bound
//     max|a|·max|b|·k fits (see `igemm_fits_int32`), else `int64`.
//
// Exactness: integer arithmetic is associative, so *any* blocking
// factor, panel order, lane width or thread partition produces the same
// sums — provided no intermediate overflows.  The int32 bound guarantees
// that for every partial sum (each is a subset of at most k terms of
// magnitude <= max|a|·max|b|), and the vector kernels' eligibility rules
// (below) extend the same argument to their narrower intermediates, so
// results are bit-identical to a naive int64 triple loop for all kernels,
// blockings and thread counts (tests/igemm_property_test.cpp enforces
// this differentially).
//
// Activation codes are required to be representable in int32.  Codes on
// a quantized activation grid (<16 bits) always are; unbounded float
// activations already lose integer exactness in any float-held datapath
// beyond 2^24, so int32 is not a new restriction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ccq/common/exec.hpp"
#include "ccq/common/workspace.hpp"
#include "ccq/tensor/im2col.hpp"
#include "ccq/tensor/requant.hpp"

namespace ccq {

/// Accumulator width for one igemm call.  Pick with `igemm_fits_int32`;
/// running the int32 path past its bound is signed-overflow UB, which is
/// why the engine selects the accumulator from a static per-layer bound
/// instead of trusting runtime luck.
enum class IgemmAccum : std::uint8_t { kInt32, kInt64 };

/// Cache-blocking factors.  The defaults mirror tensor/gemm (an `nc`
/// column panel of int32 activations plus a `kc` depth slice stay
/// L2-resident); tests sweep them to prove blocking never changes bits.
/// The vector kernels honour `row_grain` (their parallel partition) and
/// ignore `nc`/`kc` — their dot-product layout is depth-contiguous, so
/// panelised rank-1 blocking does not apply.
struct IgemmBlocking {
  std::size_t nc = 256;        ///< column-panel width (clamped to kIgemmMaxNc)
  std::size_t kc = 128;        ///< depth-panel height
  std::size_t row_grain = 8;   ///< output rows per parallel_for chunk
};

/// Upper bound on the accumulator strip held per output row (stack
/// storage in the scalar microkernel); `nc` is clamped to it.
inline constexpr std::size_t kIgemmMaxNc = 512;

/// True when k products of magnitude <= max_abs_a * max_abs_b plus their
/// running sums provably fit an int32 accumulator:
/// max_abs_a · max_abs_b · k <= INT32_MAX, evaluated without overflow.
bool igemm_fits_int32(std::int64_t max_abs_a, std::int64_t max_abs_b,
                      std::size_t k);

/// Largest |code| in a code vector (0 when empty).
std::int32_t igemm_max_abs(const std::vector<std::int32_t>& codes);

// ---- kernel registry --------------------------------------------------------

/// Operand form of one igemm: which side the packed weight panel sits on.
///   kWX — C[m,n] = Σ_k W[m,k]·X[k,n], per-*row* epilogue (conv after
///         im2col: rows are output channels).
///   kXW — C[m,n] = Σ_k X[m,k]·W[k,n], per-*column* epilogue (linear
///         layers: rows are batch samples, columns output features).
enum class IgemmForm : std::uint8_t { kWX, kXW };

/// Named kernel variants.  `kAuto` is a selection policy, not an
/// executable kernel: `igemm_select_kernel` resolves it (and any
/// ineligible explicit request) to the densest eligible concrete kernel.
enum class IgemmKernel : std::uint8_t {
  kScalar,     ///< cache-blocked rank-1 updates; int32 or int64 accumulator
  kVec16,      ///< int16×int16→int32 widening-MAC dot kernel (SIMD)
  kVecPacked,  ///< 8-bit lanes (low-bit layers): 2× density over vec16
  kAuto,       ///< resolve per layer from bit width / code bounds
};

/// Registry introspection: the names `$CCQ_IGEMM_KERNEL` accepts, in
/// registry order ("scalar", "vec16", "vec-packed", "auto").
std::vector<std::string> igemm_kernel_names();

const char* igemm_kernel_str(IgemmKernel kernel);

/// Parse a kernel name.  Throws ccq::Error naming the unknown value and
/// listing the available kernels (mirroring the quant registry style).
IgemmKernel igemm_kernel_from_str(const std::string& name);

/// The kernel requested via `$CCQ_IGEMM_KERNEL` (kAuto when unset).
/// Throws the igemm_kernel_from_str error on an unknown name — callers
/// (plan finalize, artifact load) surface it with their own context.
IgemmKernel igemm_requested_kernel();

/// True when `kernel` can execute a problem with the given static
/// operand bounds exactly:
///   scalar     — always;
///   vec16      — int32 accumulator and activation codes known to lie in
///                [0, x_bound] with x_bound <= 32767 (codes narrow to
///                int16 lanes; pairwise pmaddwd intermediates stay under
///                the igemm_fits_int32 bound the caller established);
///   vec-packed — additionally w_max <= 127 (int8 weight lanes),
///                x_bound <= 255 (uint8 activation lanes) and
///                2·w_max·x_bound <= 32767 so pairwise products cannot
///                reach int16 saturation (true for every 2–4-bit ladder
///                rung, and for wider codes against small grids).
/// `x_bound` uses the engine's convention: > 0 asserts activation codes
/// lie in [0, x_bound]; 0 means unknown (vector kernels ineligible).
bool igemm_kernel_eligible(IgemmKernel kernel, std::int32_t w_max,
                           std::int64_t x_bound, IgemmAccum accum);

/// Resolve `requested` to a concrete executable kernel for a layer with
/// the given static bounds: kAuto (and any ineligible explicit request)
/// walks vec-packed → vec16 → scalar, preferring vec-packed only when
/// this build carries 8-bit SIMD for it (otherwise its portable loop is
/// no denser than vec16's).
IgemmKernel igemm_select_kernel(IgemmKernel requested, std::int32_t w_max,
                                std::int64_t x_bound, IgemmAccum accum);

/// True when this build has narrow-lane SIMD for vec-packed (SSSE3/AVX2
/// maddubs path) — the gate `igemm_select_kernel` consults for kAuto.
bool igemm_packed_simd();

// ---- packed weight panels ---------------------------------------------------

/// Weight codes packed for one kernel variant.  The layout is owned by
/// the kernel:
///   scalar     — i16, kWX: row-major rows×depth; kXW: transposed
///                depth×rows (the right-hand operand layout);
///   vec16      — i16, row-major rows×stride "dot layout" (each output
///                channel's codes contiguous over depth, zero-padded to
///                a lane-multiple stride) for both forms;
///   vec-packed — same dot layout in i8.
/// Padding zeros contribute zero products, so the padded dot is exact.
struct IgemmPanel {
  IgemmKernel kernel = IgemmKernel::kScalar;  ///< layout owner
  IgemmForm form = IgemmForm::kWX;
  std::size_t rows = 0;    ///< output channels / features
  std::size_t depth = 0;   ///< logical reduction length k
  std::size_t stride = 0;  ///< elements per packed row (>= depth)
  std::int32_t max_abs = 0;  ///< max |weight code|
  std::vector<std::int16_t> i16;  ///< scalar / vec16 storage
  std::vector<std::int8_t> i8;    ///< vec-packed storage

  bool empty() const { return i16.empty() && i8.empty(); }
};

/// Pack `rows`×`depth` row-major weight codes for `kernel`/`form`.
/// Throws ccq::Error naming the offending value when a code does not fit
/// the kernel's lane type (int16, or int8 for vec-packed) — packed
/// panels are a compile-time contract, not a silent narrowing.  `kernel`
/// must be concrete (resolve kAuto with `igemm_select_kernel` first).
IgemmPanel igemm_pack(const std::vector<std::int32_t>& codes,
                      std::size_t rows, std::size_t depth, IgemmForm form,
                      IgemmKernel kernel);

// ---- the op descriptor ------------------------------------------------------

/// Per-output-channel affine epilogue: C = float(acc) · scale + bias,
/// indexed by row (kWX) or column (kXW).
struct IgemmEpilogue {
  const float* scale = nullptr;
  const float* bias = nullptr;
};

/// One igemm invocation, fully described.  The activation code matrix is
/// given through exactly one of `x` / `x8` / `x16`, in the form's
/// natural layout (kWX: k×n feeding the panel from the right; kXW: m×k
/// feeding it from the left) — the narrow overloads let the fused
/// integer datapath hand layer outputs straight back in without a
/// widening pass.  The result goes to exactly one of:
///   * `c` — float epilogue: C = float(acc)·scale + bias (per row for
///     kWX, per column for kXW);
///   * `out8` / `out16` — requant epilogue: each accumulator is
///     requantized by the matching per-channel `requant` entry
///     (requant_apply, codes clamped to [0, requant_qmax]) and written
///     as the next layer's activation code.  The caller must have built
///     the Requant parameters against this op's true accumulator bound
///     (hw::make_requant) — that is what keeps acc·M + B inside int64.
/// `x_bound > 0` asserts the activation codes lie in [0, x_bound] (the
/// engine's statically threaded per-layer bound); 0 = unknown, which
/// confines execution to the scalar kernel.  `ws` provides pooled
/// scratch for the vector kernels' activation repacking (nullptr →
/// `Workspace::scratch()`).
struct IgemmOp {
  IgemmForm form = IgemmForm::kWX;
  std::size_t m = 0, n = 0, k = 0;  ///< C is m×n over reduction depth k
  const IgemmPanel* panel = nullptr;
  const std::int32_t* x = nullptr;    ///< int32 activation codes, or
  const std::uint8_t* x8 = nullptr;   ///< u8 codes (fused datapath), or
  const std::int16_t* x16 = nullptr;  ///< i16 codes (9–15-bit grids)
  float* c = nullptr;                 ///< float-epilogue output, or
  std::uint8_t* out8 = nullptr;       ///< requantized u8 codes, or
  std::int16_t* out16 = nullptr;      ///< requantized i16 codes
  IgemmEpilogue epilogue;
  const Requant* requant = nullptr;  ///< per-channel params (m or n entries)
  std::int32_t requant_qmax = 0;     ///< code ceiling: 2^act_bits − 1
  IgemmAccum accum = IgemmAccum::kInt64;
  IgemmBlocking blocking = {};
  std::int64_t x_bound = 0;
  Workspace* ws = nullptr;
};

/// Execute an op with the kernel its panel was packed for.  Validates
/// that the panel matches the op (form, shapes) and that the kernel is
/// eligible for the op's bounds — a mismatch throws ccq::Error rather
/// than risking inexact lanes.  Parallel over output rows; deterministic
/// and bit-identical across kernels, blockings and thread counts.
void igemm_run(const IgemmOp& op, const ExecContext& ctx = ExecContext::global());

/// Pack int32 weight codes into a bare int16 panel in the *scalar*
/// kernel's layout.  `igemm_pack` owns layout per kernel variant and
/// routes here for the scalar rows; exposed for packing tests.
std::vector<std::int16_t> igemm_pack_panel(
    const std::vector<std::int32_t>& codes, std::size_t rows,
    std::size_t cols, bool transpose);

}  // namespace ccq
