// Vectorized igemm microkernels (vec16, vec-packed).
//
// Both kernels compute C = A·Bᵀ over dot-layout panels: every operand
// row is depth-contiguous and zero-padded to a lane-multiple stride, so
// the inner loops are pure widening multiply-accumulate with no scalar
// tail.  The weight side arrives pre-packed (IgemmPanel, igemm_pack);
// the activation side is repacked here per call into Workspace-leased
// int16 / uint8 scratch (a transpose for kWX, a narrowing copy for kXW)
// — O(k·n) packing against O(m·k·n) math, and allocation-free warm.
//
// Exactness (what makes every lane sum provably overflow-free):
//   * vec16 — pmaddwd-shaped int16×int16→int32 pairs.  Each int32 lane
//     accumulates at most ⌈k/2⌉ pair sums of magnitude <= 2·|w|·|x|, so
//     |lane| <= k·max|w|·max|x|, which the int32-accumulator choice
//     (igemm_fits_int32) already bounds by INT32_MAX.
//   * vec-packed — maddubs-shaped uint8×int8→int16 pairs, then widened
//     by pmaddwd against ones.  Eligibility requires
//     2·max|w|·x_bound <= 32767, so the saturating int16 intermediate
//     never saturates; the int32 lane bound is the same subset argument.
// Padding zeros contribute zero products.  Integer adds are associative,
// so lane order / horizontal reduction order cannot change the bits.
//
// This translation unit is compiled with elevated optimisation (see
// src/CMakeLists.txt) so the portable fallback loops vectorize; on x86
// the SSE2 / SSSE3 / AVX2 intrinsic paths are selected by feature test
// macros at compile time.
#include "ccq/tensor/igemm_detail.hpp"

#include <algorithm>
#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__SSSE3__)
#include <tmmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ccq::igemm_detail {

namespace {

// ---- horizontal sums --------------------------------------------------------

#if defined(__SSE2__)
inline std::int32_t hsum_epi32(__m128i v) {
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(v);
}
#endif

#if defined(__AVX2__)
inline std::int32_t hsum_epi32(__m256i v) {
  return hsum_epi32(_mm_add_epi32(_mm256_castsi256_si128(v),
                                  _mm256_extracti128_si256(v, 1)));
}
#endif

// ---- vec16 dot products (int16 × int16 → int32) -----------------------------
// dot4 amortises the shared-row loads over four opposing rows — the
// register tiling that turns the dot kernel from load-bound to MAC-bound.

#if defined(__AVX2__)

inline void dot4(const std::int16_t* a, const std::int16_t* b0,
                 const std::int16_t* b1, const std::int16_t* b2,
                 const std::int16_t* b3, std::size_t kp,
                 std::int32_t out[4]) {
  __m256i acc0 = _mm256_setzero_si256(), acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256(), acc3 = _mm256_setzero_si256();
  for (std::size_t p = 0; p < kp; p += 16) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p));
    acc0 = _mm256_add_epi32(
        acc0, _mm256_madd_epi16(
                  av, _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(b0 + p))));
    acc1 = _mm256_add_epi32(
        acc1, _mm256_madd_epi16(
                  av, _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(b1 + p))));
    acc2 = _mm256_add_epi32(
        acc2, _mm256_madd_epi16(
                  av, _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(b2 + p))));
    acc3 = _mm256_add_epi32(
        acc3, _mm256_madd_epi16(
                  av, _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(b3 + p))));
  }
  out[0] = hsum_epi32(acc0);
  out[1] = hsum_epi32(acc1);
  out[2] = hsum_epi32(acc2);
  out[3] = hsum_epi32(acc3);
}

inline std::int32_t dot1(const std::int16_t* a, const std::int16_t* b,
                         std::size_t kp) {
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t p = 0; p < kp; p += 16) {
    acc = _mm256_add_epi32(
        acc, _mm256_madd_epi16(
                 _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p)),
                 _mm256_loadu_si256(
                     reinterpret_cast<const __m256i*>(b + p))));
  }
  return hsum_epi32(acc);
}

#elif defined(__SSE2__)

inline void dot4(const std::int16_t* a, const std::int16_t* b0,
                 const std::int16_t* b1, const std::int16_t* b2,
                 const std::int16_t* b3, std::size_t kp,
                 std::int32_t out[4]) {
  __m128i acc0 = _mm_setzero_si128(), acc1 = _mm_setzero_si128();
  __m128i acc2 = _mm_setzero_si128(), acc3 = _mm_setzero_si128();
  for (std::size_t p = 0; p < kp; p += 8) {
    const __m128i av =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p));
    acc0 = _mm_add_epi32(
        acc0, _mm_madd_epi16(av, _mm_loadu_si128(
                                     reinterpret_cast<const __m128i*>(b0 + p))));
    acc1 = _mm_add_epi32(
        acc1, _mm_madd_epi16(av, _mm_loadu_si128(
                                     reinterpret_cast<const __m128i*>(b1 + p))));
    acc2 = _mm_add_epi32(
        acc2, _mm_madd_epi16(av, _mm_loadu_si128(
                                     reinterpret_cast<const __m128i*>(b2 + p))));
    acc3 = _mm_add_epi32(
        acc3, _mm_madd_epi16(av, _mm_loadu_si128(
                                     reinterpret_cast<const __m128i*>(b3 + p))));
  }
  out[0] = hsum_epi32(acc0);
  out[1] = hsum_epi32(acc1);
  out[2] = hsum_epi32(acc2);
  out[3] = hsum_epi32(acc3);
}

inline std::int32_t dot1(const std::int16_t* a, const std::int16_t* b,
                         std::size_t kp) {
  __m128i acc = _mm_setzero_si128();
  for (std::size_t p = 0; p < kp; p += 8) {
    acc = _mm_add_epi32(
        acc, _mm_madd_epi16(
                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p)),
                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p))));
  }
  return hsum_epi32(acc);
}

#else  // portable widening-MAC loops; this TU's -O3 lets them vectorize

inline void dot4(const std::int16_t* a, const std::int16_t* b0,
                 const std::int16_t* b1, const std::int16_t* b2,
                 const std::int16_t* b3, std::size_t kp,
                 std::int32_t out[4]) {
  std::int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::size_t p = 0; p < kp; ++p) {
    const std::int32_t av = a[p];
    s0 += av * b0[p];
    s1 += av * b1[p];
    s2 += av * b2[p];
    s3 += av * b3[p];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

inline std::int32_t dot1(const std::int16_t* a, const std::int16_t* b,
                         std::size_t kp) {
  std::int32_t s = 0;
  for (std::size_t p = 0; p < kp; ++p) s += std::int32_t{a[p]} * b[p];
  return s;
}

#endif

// ---- vec-packed dot products (uint8 × int8 → int32) -------------------------
// Overloads on operand types: kWX iterates weight rows against four
// activation rows (i8 shared, u8 tiled); kXW the reverse.  maddubs takes
// (unsigned, signed) in that order, so each overload routes its vectors
// accordingly.

#if defined(__AVX2__)

inline __m256i madd_u8s8(__m256i xv, __m256i wv, __m256i ones) {
  return _mm256_madd_epi16(_mm256_maddubs_epi16(xv, wv), ones);
}

inline void dot4(const std::int8_t* w, const std::uint8_t* x0,
                 const std::uint8_t* x1, const std::uint8_t* x2,
                 const std::uint8_t* x3, std::size_t kp, std::int32_t out[4]) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc0 = _mm256_setzero_si256(), acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256(), acc3 = _mm256_setzero_si256();
  for (std::size_t p = 0; p < kp; p += 32) {
    const __m256i wv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + p));
    acc0 = _mm256_add_epi32(
        acc0, madd_u8s8(_mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(x0 + p)),
                        wv, ones));
    acc1 = _mm256_add_epi32(
        acc1, madd_u8s8(_mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(x1 + p)),
                        wv, ones));
    acc2 = _mm256_add_epi32(
        acc2, madd_u8s8(_mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(x2 + p)),
                        wv, ones));
    acc3 = _mm256_add_epi32(
        acc3, madd_u8s8(_mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(x3 + p)),
                        wv, ones));
  }
  out[0] = hsum_epi32(acc0);
  out[1] = hsum_epi32(acc1);
  out[2] = hsum_epi32(acc2);
  out[3] = hsum_epi32(acc3);
}

inline void dot4(const std::uint8_t* x, const std::int8_t* w0,
                 const std::int8_t* w1, const std::int8_t* w2,
                 const std::int8_t* w3, std::size_t kp, std::int32_t out[4]) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc0 = _mm256_setzero_si256(), acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256(), acc3 = _mm256_setzero_si256();
  for (std::size_t p = 0; p < kp; p += 32) {
    const __m256i xv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + p));
    acc0 = _mm256_add_epi32(
        acc0, madd_u8s8(xv,
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(w0 + p)),
                        ones));
    acc1 = _mm256_add_epi32(
        acc1, madd_u8s8(xv,
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(w1 + p)),
                        ones));
    acc2 = _mm256_add_epi32(
        acc2, madd_u8s8(xv,
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(w2 + p)),
                        ones));
    acc3 = _mm256_add_epi32(
        acc3, madd_u8s8(xv,
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(w3 + p)),
                        ones));
  }
  out[0] = hsum_epi32(acc0);
  out[1] = hsum_epi32(acc1);
  out[2] = hsum_epi32(acc2);
  out[3] = hsum_epi32(acc3);
}

inline std::int32_t dot1(const std::int8_t* w, const std::uint8_t* x,
                         std::size_t kp) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t p = 0; p < kp; p += 32) {
    acc = _mm256_add_epi32(
        acc,
        madd_u8s8(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + p)),
                  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + p)),
                  ones));
  }
  return hsum_epi32(acc);
}

inline std::int32_t dot1(const std::uint8_t* x, const std::int8_t* w,
                         std::size_t kp) {
  return dot1(w, x, kp);
}

constexpr bool kPackedSimd = true;

#elif defined(__SSSE3__)

inline __m128i madd_u8s8(__m128i xv, __m128i wv, __m128i ones) {
  return _mm_madd_epi16(_mm_maddubs_epi16(xv, wv), ones);
}

inline void dot4(const std::int8_t* w, const std::uint8_t* x0,
                 const std::uint8_t* x1, const std::uint8_t* x2,
                 const std::uint8_t* x3, std::size_t kp, std::int32_t out[4]) {
  const __m128i ones = _mm_set1_epi16(1);
  __m128i acc0 = _mm_setzero_si128(), acc1 = _mm_setzero_si128();
  __m128i acc2 = _mm_setzero_si128(), acc3 = _mm_setzero_si128();
  for (std::size_t p = 0; p < kp; p += 16) {
    const __m128i wv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + p));
    acc0 = _mm_add_epi32(
        acc0, madd_u8s8(_mm_loadu_si128(
                            reinterpret_cast<const __m128i*>(x0 + p)),
                        wv, ones));
    acc1 = _mm_add_epi32(
        acc1, madd_u8s8(_mm_loadu_si128(
                            reinterpret_cast<const __m128i*>(x1 + p)),
                        wv, ones));
    acc2 = _mm_add_epi32(
        acc2, madd_u8s8(_mm_loadu_si128(
                            reinterpret_cast<const __m128i*>(x2 + p)),
                        wv, ones));
    acc3 = _mm_add_epi32(
        acc3, madd_u8s8(_mm_loadu_si128(
                            reinterpret_cast<const __m128i*>(x3 + p)),
                        wv, ones));
  }
  out[0] = hsum_epi32(acc0);
  out[1] = hsum_epi32(acc1);
  out[2] = hsum_epi32(acc2);
  out[3] = hsum_epi32(acc3);
}

inline void dot4(const std::uint8_t* x, const std::int8_t* w0,
                 const std::int8_t* w1, const std::int8_t* w2,
                 const std::int8_t* w3, std::size_t kp, std::int32_t out[4]) {
  const __m128i ones = _mm_set1_epi16(1);
  __m128i acc0 = _mm_setzero_si128(), acc1 = _mm_setzero_si128();
  __m128i acc2 = _mm_setzero_si128(), acc3 = _mm_setzero_si128();
  for (std::size_t p = 0; p < kp; p += 16) {
    const __m128i xv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + p));
    acc0 = _mm_add_epi32(
        acc0, madd_u8s8(xv,
                        _mm_loadu_si128(
                            reinterpret_cast<const __m128i*>(w0 + p)),
                        ones));
    acc1 = _mm_add_epi32(
        acc1, madd_u8s8(xv,
                        _mm_loadu_si128(
                            reinterpret_cast<const __m128i*>(w1 + p)),
                        ones));
    acc2 = _mm_add_epi32(
        acc2, madd_u8s8(xv,
                        _mm_loadu_si128(
                            reinterpret_cast<const __m128i*>(w2 + p)),
                        ones));
    acc3 = _mm_add_epi32(
        acc3, madd_u8s8(xv,
                        _mm_loadu_si128(
                            reinterpret_cast<const __m128i*>(w3 + p)),
                        ones));
  }
  out[0] = hsum_epi32(acc0);
  out[1] = hsum_epi32(acc1);
  out[2] = hsum_epi32(acc2);
  out[3] = hsum_epi32(acc3);
}

inline std::int32_t dot1(const std::int8_t* w, const std::uint8_t* x,
                         std::size_t kp) {
  const __m128i ones = _mm_set1_epi16(1);
  __m128i acc = _mm_setzero_si128();
  for (std::size_t p = 0; p < kp; p += 16) {
    acc = _mm_add_epi32(
        acc, madd_u8s8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(x + p)),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + p)),
                       ones));
  }
  return hsum_epi32(acc);
}

inline std::int32_t dot1(const std::uint8_t* x, const std::int8_t* w,
                         std::size_t kp) {
  return dot1(w, x, kp);
}

constexpr bool kPackedSimd = true;

#else  // portable 8-bit loops (exact: int32 math on widened operands)

inline void dot4(const std::int8_t* w, const std::uint8_t* x0,
                 const std::uint8_t* x1, const std::uint8_t* x2,
                 const std::uint8_t* x3, std::size_t kp, std::int32_t out[4]) {
  std::int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::size_t p = 0; p < kp; ++p) {
    const std::int32_t wv = w[p];
    s0 += wv * x0[p];
    s1 += wv * x1[p];
    s2 += wv * x2[p];
    s3 += wv * x3[p];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

inline void dot4(const std::uint8_t* x, const std::int8_t* w0,
                 const std::int8_t* w1, const std::int8_t* w2,
                 const std::int8_t* w3, std::size_t kp, std::int32_t out[4]) {
  std::int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::size_t p = 0; p < kp; ++p) {
    const std::int32_t xv = x[p];
    s0 += xv * w0[p];
    s1 += xv * w1[p];
    s2 += xv * w2[p];
    s3 += xv * w3[p];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

inline std::int32_t dot1(const std::int8_t* w, const std::uint8_t* x,
                         std::size_t kp) {
  std::int32_t s = 0;
  for (std::size_t p = 0; p < kp; ++p) s += std::int32_t{w[p]} * x[p];
  return s;
}

inline std::int32_t dot1(const std::uint8_t* x, const std::int8_t* w,
                         std::size_t kp) {
  return dot1(w, x, kp);
}

constexpr bool kPackedSimd = false;

#endif

// ---- shared driver ----------------------------------------------------------

/// Dot-layout GEMM driver: C[i,j] = epilogue(dot(a_row_i, b_row_j)),
/// both operand rows `kp` elements apart.  Parallel over output rows in
/// `grain` chunks; 4-wide register tiling over j with a dot1 tail.  The
/// epilogue channel index is the row for kPerRow (kWX) and the column
/// otherwise (kXW) — the only asymmetry between the two forms once both
/// operands are in dot layout.  `Epi` is one of the igemm_detail
/// epilogue policies (float affine or fixed-point requant).
template <bool kPerRow, typename TA, typename TB, typename Epi>
void dot_driver(std::size_t m, std::size_t n, std::size_t kp, const TA* a,
                const TB* b, const Epi& epi, std::size_t grain,
                const ExecContext& ctx) {
  parallel_for(ctx, m, grain, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const TA* arow = a + i * kp;
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        std::int32_t out[4];
        dot4(arow, b + j * kp, b + (j + 1) * kp, b + (j + 2) * kp,
             b + (j + 3) * kp, kp, out);
        for (std::size_t t = 0; t < 4; ++t) {
          epi.store(i * n + j + t, kPerRow ? i : j + t, out[t]);
        }
      }
      for (; j < n; ++j) {
        const std::int32_t d = dot1(arow, b + j * kp, kp);
        epi.store(i * n + j, kPerRow ? i : j, d);
      }
    }
  });
}

/// Repack the activation codes into a dot-layout panel of `Dst` lanes:
/// kWX transposes the k×n matrix to n rows of k codes; kXW narrows (or,
/// when the fused datapath already delivers `Dst`-typed codes, copies)
/// the m×k rows in place.  Rows are zero-padded to `kp`.  Eligibility
/// (igemm_run) guarantees every code fits `Dst`.
template <typename Dst, typename Src>
void pack_x(const Src* x, const IgemmOp& op, std::size_t kp, Dst* xp,
            const ExecContext& ctx) {
  const std::size_t xrows = op.form == IgemmForm::kWX ? op.n : op.m;
  parallel_for(ctx, xrows, 64, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      Dst* row = xp + r * kp;
      if (op.form == IgemmForm::kWX) {
        for (std::size_t p = 0; p < op.k; ++p) {
          row[p] = static_cast<Dst>(x[p * op.n + r]);
        }
      } else {
        const Src* xrow = x + r * op.k;
        for (std::size_t p = 0; p < op.k; ++p) {
          row[p] = static_cast<Dst>(xrow[p]);
        }
      }
      for (std::size_t p = op.k; p < kp; ++p) row[p] = Dst{0};
    }
  });
}

}  // namespace

bool packed_simd() { return kPackedSimd; }

void run_vec16(const IgemmOp& op, const ExecContext& ctx) {
  const IgemmPanel& panel = *op.panel;
  const std::size_t kp = panel.stride;
  const std::size_t xrows = op.form == IgemmForm::kWX ? op.n : op.m;
  Workspace& ws = op.ws != nullptr ? *op.ws : Workspace::scratch();
  Workspace::ShortLease xp = ws.shorts(xrows * kp);
  with_x(op, [&](const auto* x) {
    pack_x<std::int16_t>(x, op, kp, xp.data(), ctx);
  });
  const std::size_t grain = std::max<std::size_t>(op.blocking.row_grain, 1);
  dispatch_epilogue(op, [&](const auto& epi) {
    if (op.form == IgemmForm::kWX) {
      dot_driver<true>(op.m, op.n, kp, panel.i16.data(), xp.data(), epi,
                       grain, ctx);
    } else {
      dot_driver<false>(op.m, op.n, kp, xp.data(), panel.i16.data(), epi,
                        grain, ctx);
    }
  });
}

void run_vec_packed(const IgemmOp& op, const ExecContext& ctx) {
  const IgemmPanel& panel = *op.panel;
  const std::size_t kp = panel.stride;
  const std::size_t xrows = op.form == IgemmForm::kWX ? op.n : op.m;
  Workspace& ws = op.ws != nullptr ? *op.ws : Workspace::scratch();
  Workspace::ByteLease xp = ws.bytes(xrows * kp);
  with_x(op, [&](const auto* x) {
    pack_x<std::uint8_t>(x, op, kp, xp.data(), ctx);
  });
  const std::size_t grain = std::max<std::size_t>(op.blocking.row_grain, 1);
  dispatch_epilogue(op, [&](const auto& epi) {
    if (op.form == IgemmForm::kWX) {
      dot_driver<true>(op.m, op.n, kp, panel.i8.data(), xp.data(), epi,
                       grain, ctx);
    } else {
      dot_driver<false>(op.m, op.n, kp, xp.data(), panel.i8.data(), epi,
                        grain, ctx);
    }
  });
}

}  // namespace ccq::igemm_detail
