#include "ccq/quant/act_quant.hpp"

#include <algorithm>
#include <cmath>

namespace ccq::quant {

ClipActQuant::ClipActQuant(float clip) : clip_(clip) {
  CCQ_CHECK(clip > 0.0f, "activation clip must be positive");
}

Tensor ClipActQuant::forward(const Tensor& x, Workspace& ws) {
  if (training_) input_ = x;  // eval fast path: STE mask never needed
  Tensor y = ws.tensor_uninit(x.shape());  // fully overwritten
  auto xp = x.data();
  auto yp = y.data();
  if (bits_ >= 32) {
    for (std::size_t i = 0; i < xp.size(); ++i) {
      yp[i] = std::clamp(xp[i], 0.0f, clip_);
    }
  } else {
    for (std::size_t i = 0; i < xp.size(); ++i) {
      yp[i] = quantize_unsigned(xp[i], bits_, clip_);
    }
  }
  return y;
}

Tensor ClipActQuant::backward(const Tensor& grad_out, Workspace& ws) {
  CCQ_CHECK(same_shape(grad_out, input_), "ClipActQuant grad mismatch");
  Tensor g = ws.tensor_uninit(grad_out.shape());
  auto xp = input_.data();
  auto gyp = grad_out.data();
  auto gp = g.data();
  for (std::size_t i = 0; i < xp.size(); ++i) {
    gp[i] = (xp[i] <= 0.0f || xp[i] >= clip_) ? 0.0f : gyp[i];
  }
  return g;
}

PactActivation::PactActivation(float alpha_init, std::string name)
    : alpha_(name + ".alpha", Tensor({1}, alpha_init)) {
  CCQ_CHECK(alpha_init > 0.0f, "alpha must start positive");
  // PACT regularises α with ordinary L2 so it shrinks toward a tight clip.
  alpha_.weight_decay_scale = 1.0f;
}

Tensor PactActivation::forward(const Tensor& x, Workspace& ws) {
  if (training_) input_ = x;  // eval fast path
  const float a = std::max(alpha_.value.at(0), 1e-3f);
  Tensor y = ws.tensor_uninit(x.shape());  // fully overwritten
  auto xp = x.data();
  auto yp = y.data();
  if (bits_ >= 32) {
    for (std::size_t i = 0; i < xp.size(); ++i) {
      yp[i] = std::clamp(xp[i], 0.0f, a);
    }
  } else {
    for (std::size_t i = 0; i < xp.size(); ++i) {
      yp[i] = quantize_unsigned(xp[i], bits_, a);
    }
  }
  return y;
}

Tensor PactActivation::backward(const Tensor& grad_out, Workspace& ws) {
  CCQ_CHECK(same_shape(grad_out, input_), "PactActivation grad mismatch");
  const float a = std::max(alpha_.value.at(0), 1e-3f);
  Tensor g = ws.tensor_uninit(grad_out.shape());
  auto xp = input_.data();
  auto gyp = grad_out.data();
  auto gp = g.data();
  double alpha_grad = 0.0;
  for (std::size_t i = 0; i < xp.size(); ++i) {
    if (xp[i] >= a) {
      // Saturated high: output is exactly α, so dL/dα += gy.
      alpha_grad += gyp[i];
      gp[i] = 0.0f;
    } else if (xp[i] <= 0.0f) {
      gp[i] = 0.0f;
    } else {
      // STE pass-through inside (0, α).
      gp[i] = gyp[i];
    }
  }
  alpha_.grad.at(0) += static_cast<float>(alpha_grad);
  return g;
}

void PactActivation::collect_parameters(std::vector<nn::Parameter*>& out) {
  out.push_back(&alpha_);
}

}  // namespace ccq::quant
