// Layer registry: the CCQ controller's view of a quantizable network.
//
// Model builders register one `QuantUnit` per quantizable layer (a conv
// or linear weight hook, its paired activation quantizer, the parameter
// count and per-sample MAC count).  The registry owns the *precision
// state*: where each layer sits on the bit ladder, which layers are
// frozen, and the resulting model compression ratio (weights-only, like
// the paper's Table II "Model Compression" column).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ccq/quant/act_quant.hpp"
#include "ccq/quant/ladder.hpp"
#include "ccq/quant/weight_hooks.hpp"

namespace ccq::quant {

/// One quantizable layer as seen by the controller.
struct QuantUnit {
  std::string name;
  std::shared_ptr<WeightQuantHook> weight_hook;  ///< shared with the layer
  QuantAct* act = nullptr;      ///< activation quantizer; null for last layer
  std::size_t weight_count = 0; ///< scalars in the layer's weight tensor
  std::size_t macs = 0;         ///< per-sample MACs (for the power model)
  std::size_t ladder_pos = 0;   ///< current position on the bit ladder
  bool frozen = false;          ///< excluded from competition (forced bits)
};

class LayerRegistry {
 public:
  explicit LayerRegistry(BitLadder ladder) : ladder_(std::move(ladder)) {}

  /// Register a unit; its hook/activation are set to the ladder's initial
  /// bits unless `start_at_fp` leaves them at 32.
  QuantUnit& add(QuantUnit unit, bool start_at_fp = false);

  std::size_t size() const { return units_.size(); }
  QuantUnit& unit(std::size_t i);
  const QuantUnit& unit(std::size_t i) const;
  const BitLadder& ladder() const { return ladder_; }

  /// Current weight bits of layer i (reads the hook).
  int bits_of(std::size_t i) const;

  /// Move layer i to ladder position `pos` (sets weight and act bits).
  void set_ladder_pos(std::size_t i, std::size_t pos);

  /// Put every non-frozen layer at ladder position `pos`.
  void set_all(std::size_t pos);

  /// Step layer i one ladder level down. Requires !at_floor(i).
  void step_down(std::size_t i);

  /// True when layer i is at the bottom of the ladder (or frozen) — a
  /// "sleeping expert" in the paper's competition.
  bool sleeping(std::size_t i) const;
  bool all_sleeping() const;

  /// Pin layer i to an explicit bit width and exclude it from the
  /// competition (used for fp-first/last baselines).
  void force_bits(std::size_t i, int bits);

  /// Σ weight_count over all units.
  std::size_t total_weights() const;

  /// Paper's model compression: 32·Σp / Σ(p·bits) over registered layers.
  double compression_ratio() const;

  /// Memory share of each layer at its current precision — the
  /// |Q_m|/Σ|Q_i| term of Eq. (7).
  std::vector<double> memory_shares() const;

  /// Bit summary, e.g. "8,8,4,…" in registration order.
  std::string bits_str() const;

  /// RAII probe: temporarily steps layer i one level down (competition's
  /// "quantize to the next level and evaluate"), restoring on destruction.
  class ProbeGuard {
   public:
    ProbeGuard(LayerRegistry& registry, std::size_t i);
    ~ProbeGuard();
    ProbeGuard(const ProbeGuard&) = delete;
    ProbeGuard& operator=(const ProbeGuard&) = delete;

   private:
    LayerRegistry& registry_;
    std::size_t index_;
    std::size_t saved_pos_;
  };

 private:
  BitLadder ladder_;
  std::vector<QuantUnit> units_;
};

}  // namespace ccq::quant
