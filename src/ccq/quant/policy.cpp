#include "ccq/quant/policy.hpp"

namespace ccq::quant {

std::string policy_str(Policy policy) {
  switch (policy) {
    case Policy::kDoReFa: return "DoReFa";
    case Policy::kWrpn: return "WRPN";
    case Policy::kPact: return "PACT";
    case Policy::kPactSawb: return "PACT-SAWB";
    case Policy::kLqNets: return "LQ-Nets";
    case Policy::kLsq: return "LSQ";
    case Policy::kMinMax: return "MinMax";
    case Policy::kPerChannel: return "PerChannel";
  }
  return "unknown";
}

Policy policy_from_str(const std::string& name) {
  if (name == "DoReFa" || name == "dorefa") return Policy::kDoReFa;
  if (name == "WRPN" || name == "wrpn") return Policy::kWrpn;
  if (name == "PACT" || name == "pact") return Policy::kPact;
  if (name == "PACT-SAWB" || name == "sawb") return Policy::kPactSawb;
  if (name == "LQ-Nets" || name == "lqnets") return Policy::kLqNets;
  if (name == "LSQ" || name == "lsq") return Policy::kLsq;
  if (name == "MinMax" || name == "minmax") return Policy::kMinMax;
  if (name == "PerChannel" || name == "perchannel") return Policy::kPerChannel;
  throw Error("unknown quantization policy: " + name);
}

std::shared_ptr<WeightQuantHook> QuantFactory::make_weight_hook(
    const std::string& name) const {
  switch (policy) {
    case Policy::kDoReFa:
    case Policy::kPact:
      return std::make_shared<DoReFaWeightHook>();
    case Policy::kWrpn:
      return std::make_shared<WrpnWeightHook>();
    case Policy::kPactSawb:
      return std::make_shared<SawbWeightHook>();
    case Policy::kLqNets:
      return std::make_shared<LqNetsWeightHook>();
    case Policy::kLsq:
      return std::make_shared<LsqWeightHook>(name);
    case Policy::kMinMax:
      return std::make_shared<MinMaxWeightHook>();
    case Policy::kPerChannel:
      return std::make_shared<PerChannelWeightHook>();
  }
  throw Error("unreachable policy");
}

std::unique_ptr<QuantAct> QuantFactory::make_activation(
    const std::string& name) const {
  switch (policy) {
    case Policy::kDoReFa:
    case Policy::kWrpn:
    case Policy::kMinMax:
      return std::make_unique<ClipActQuant>(fixed_act_clip);
    case Policy::kPact:
    case Policy::kPactSawb:
    case Policy::kLqNets:
    case Policy::kLsq:
    case Policy::kPerChannel:
      return std::make_unique<PactActivation>(pact_alpha_init, name);
  }
  throw Error("unreachable policy");
}

}  // namespace ccq::quant
