#include "ccq/quant/weight_hooks.hpp"

#include <algorithm>
#include <cmath>

namespace ccq::quant {

namespace {

/// Zero the gradient wherever the forward clip saturated (|w| > clip).
Tensor mask_saturated(const Tensor& w, Tensor grad, float clip) {
  auto wp = w.data();
  auto gp = grad.data();
  for (std::size_t i = 0; i < wp.size(); ++i) {
    if (std::fabs(wp[i]) > clip) gp[i] = 0.0f;
  }
  return grad;
}

}  // namespace

// ---- DoReFa ----------------------------------------------------------------

void DoReFaWeightHook::quantize_into(const Tensor& w, Tensor& dst) {
  if (bits_ >= 32) {
    dst = w;
    return;
  }
  auto wp = w.data();
  float max_tanh = 0.0f;
  std::vector<float>& t = tanh_scratch_;  // member: no per-call allocation
  t.resize(wp.size());
  for (std::size_t i = 0; i < wp.size(); ++i) {
    t[i] = std::tanh(wp[i]);
    max_tanh = std::max(max_tanh, std::fabs(t[i]));
  }
  dst.resize(w.shape());
  last_max_tanh_ = max_tanh;
  if (max_tanh == 0.0f) {  // all-zero weights
    dst.fill(0.0f);
    return;
  }
  auto qp = dst.data();
  const float out_scale = scale_preserving_ ? max_tanh : 1.0f;
  for (std::size_t i = 0; i < wp.size(); ++i) {
    const float unit = t[i] / (2.0f * max_tanh) + 0.5f;
    qp[i] = out_scale * (2.0f * quantize_unit(unit, bits_) - 1.0f);
  }
}

// ---- WRPN ------------------------------------------------------------------

void WrpnWeightHook::quantize_into(const Tensor& w, Tensor& dst) {
  if (bits_ >= 32) {
    dst = w;
    return;
  }
  quantize_symmetric_into(w, bits_, 1.0f, dst);
}

Tensor WrpnWeightHook::backward(const Tensor& w, Tensor grad_q) {
  if (bits_ >= 32) return grad_q;
  return mask_saturated(w, std::move(grad_q), 1.0f);
}

// ---- SAWB ------------------------------------------------------------------

float SawbWeightHook::clip_for(const Tensor& w, int bits) {
  // Coefficients in the spirit of Choi et al. (2018), Table 2 — the clip
  // that minimises quantization MSE for bell-shaped distributions is a
  // linear combination of √E[w²] and E[|w|].  Values beyond the published
  // {2,3,4} entries are extrapolated; tests verify they beat max-|w|.
  double c1 = 3.12, c2 = 2.064;
  switch (bits) {
    case 2: c1 = 3.12; c2 = 2.064; break;
    case 3: c1 = 7.2; c2 = 6.085; break;
    case 4: c1 = 12.7; c2 = 12.19; break;
    case 5: c1 = 17.3; c2 = 17.01; break;
    case 6: c1 = 22.0; c2 = 21.9; break;
    default: c1 = 28.0; c2 = 28.1; break;  // ≥7 bits: near max-|w|
  }
  double sq = 0.0, ab = 0.0;
  for (float v : w.data()) {
    sq += static_cast<double>(v) * v;
    ab += std::fabs(v);
  }
  const double n = static_cast<double>(w.numel());
  const double clip = c1 * std::sqrt(sq / n) - c2 * (ab / n);
  // Guard against degenerate statistics (e.g. near-constant weights).
  const float fallback = std::max(w.max(), -w.min());
  if (!(clip > 0.0)) return std::max(fallback, 1e-8f);
  return static_cast<float>(clip);
}

void SawbWeightHook::quantize_into(const Tensor& w, Tensor& dst) {
  if (bits_ >= 32) {
    dst = w;
    return;
  }
  last_clip_ = clip_for(w, bits_);
  quantize_symmetric_into(w, bits_, last_clip_, dst);
}

Tensor SawbWeightHook::backward(const Tensor& w, Tensor grad_q) {
  if (bits_ >= 32) return grad_q;
  return mask_saturated(w, std::move(grad_q), last_clip_);
}

// ---- LQ-Nets ---------------------------------------------------------------

float LqNetsWeightHook::fit_scale(const Tensor& w, int bits,
                                  int iterations) {
  CCQ_CHECK(bits >= 2 && bits < 32, "fit_scale bits out of range");
  const float n = symmetric_levels(bits);
  // Initialise from the robust 2·E[|w|] heuristic, then alternate
  //   assignment:  q_i = clip(round(w_i/s), −n, n)
  //   refit:       s   = Σ w_i q_i / Σ q_i²
  // which is coordinate descent on ‖w − s·q‖².
  float s = std::max(2.0f * w.abs_mean() / n, 1e-8f);
  auto wp = w.data();
  for (int it = 0; it < iterations; ++it) {
    double num = 0.0, den = 0.0;
    for (float v : wp) {
      const float code = std::clamp(std::round(v / s), -n, n);
      num += static_cast<double>(v) * code;
      den += static_cast<double>(code) * code;
    }
    if (den <= 0.0) break;
    const float next = static_cast<float>(num / den);
    if (!(next > 0.0f)) break;
    if (std::fabs(next - s) < 1e-9f) {
      s = next;
      break;
    }
    s = next;
  }
  return s;
}

void LqNetsWeightHook::quantize_into(const Tensor& w, Tensor& dst) {
  if (bits_ >= 32) {
    dst = w;
    return;
  }
  last_scale_ = fit_scale(w, bits_);
  const float clip = last_scale_ * symmetric_levels(bits_);
  quantize_symmetric_into(w, bits_, clip, dst);
}

Tensor LqNetsWeightHook::backward(const Tensor& w, Tensor grad_q) {
  if (bits_ >= 32) return grad_q;
  const float clip = last_scale_ * symmetric_levels(bits_);
  return mask_saturated(w, std::move(grad_q), clip);
}

// ---- LSQ -------------------------------------------------------------------

LsqWeightHook::LsqWeightHook(std::string name)
    : step_(name + ".step", Tensor({1}, 0.1f)) {
  step_.weight_decay_scale = 0.0f;
}

void LsqWeightHook::quantize_into(const Tensor& w, Tensor& dst) {
  if (bits_ >= 32) {
    dst = w;
    return;
  }
  if (!initialised_) {
    // LSQ init: s = 2·E[|w|]/√Q_max.
    const float qmax = symmetric_levels(bits_);
    step_.value.at(0) =
        std::max(2.0f * w.abs_mean() / std::sqrt(qmax), 1e-6f);
    // Gradient scale g = 1/√(n·Q_max) folded into the learning rate.
    step_.lr_scale = 1.0f / std::sqrt(static_cast<float>(w.numel()) * qmax);
    initialised_ = true;
  }
  const float s = std::max(step_.value.at(0), 1e-8f);
  const float n = symmetric_levels(bits_);
  dst.resize(w.shape());
  auto wp = w.data();
  auto qp = dst.data();
  for (std::size_t i = 0; i < wp.size(); ++i) {
    qp[i] = std::clamp(std::round(wp[i] / s), -n, n) * s;
  }
}

Tensor LsqWeightHook::backward(const Tensor& w, Tensor grad_q) {
  if (bits_ >= 32) return grad_q;
  const float s = std::max(step_.value.at(0), 1e-8f);
  const float n = symmetric_levels(bits_);
  auto wp = w.data();
  auto gp = grad_q.data();
  double step_grad = 0.0;
  for (std::size_t i = 0; i < wp.size(); ++i) {
    const float z = wp[i] / s;
    if (z <= -n) {
      step_grad += static_cast<double>(gp[i]) * (-n);
      gp[i] = 0.0f;  // saturated low
    } else if (z >= n) {
      step_grad += static_cast<double>(gp[i]) * n;
      gp[i] = 0.0f;  // saturated high
    } else {
      // d(q)/d(s) = round(z) − z inside the active range.
      step_grad += static_cast<double>(gp[i]) * (std::round(z) - z);
    }
  }
  step_.grad.at(0) += static_cast<float>(step_grad);
  return grad_q;
}

void LsqWeightHook::collect_parameters(std::vector<nn::Parameter*>& out) {
  out.push_back(&step_);
}

float LsqWeightHook::grid_step() const {
  if (bits_ >= 32 || !initialised_) return 0.0f;
  return std::max(step_.value.at(0), 1e-8f);
}

// ---- PerChannel ------------------------------------------------------------

void PerChannelWeightHook::quantize_into(const Tensor& w, Tensor& dst) {
  if (bits_ >= 32) {
    dst = w;
    return;
  }
  CCQ_CHECK(w.rank() >= 1, "per-channel quantization needs a shaped tensor");
  const std::size_t channels = w.dim(0);
  const std::size_t per_channel = w.numel() / channels;
  CCQ_CHECK(per_channel > 0, "empty channel");
  last_clips_.assign(channels, 1e-8f);
  dst.resize(w.shape());
  auto wp = w.data();
  auto qp = dst.data();
  for (std::size_t c = 0; c < channels; ++c) {
    const float* row = wp.data() + c * per_channel;
    float clip = 1e-8f;
    for (std::size_t i = 0; i < per_channel; ++i) {
      clip = std::max(clip, std::fabs(row[i]));
    }
    last_clips_[c] = clip;
    float* out = qp.data() + c * per_channel;
    for (std::size_t i = 0; i < per_channel; ++i) {
      out[i] = quantize_symmetric(row[i], bits_, clip);
    }
  }
}

Tensor PerChannelWeightHook::backward(const Tensor& w, Tensor grad_q) {
  // max-|w| clips never saturate strictly, so the STE is the identity.
  (void)w;
  return grad_q;
}

// ---- MinMax ----------------------------------------------------------------

void MinMaxWeightHook::quantize_into(const Tensor& w, Tensor& dst) {
  if (bits_ >= 32) {
    dst = w;
    return;
  }
  if (auto_clip_) {
    clip_ = std::max({std::fabs(w.max()), std::fabs(w.min()), 1e-8f});
  }
  quantize_symmetric_into(w, bits_, clip_, dst);
}

Tensor MinMaxWeightHook::backward(const Tensor& w, Tensor grad_q) {
  if (bits_ >= 32) return grad_q;
  return mask_saturated(w, std::move(grad_q), clip_);
}

}  // namespace ccq::quant
