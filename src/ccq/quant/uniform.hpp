// Core uniform quantization math shared by every policy.
//
// Paper Eq. (2): Q(z; N, α) maps values onto the N-bit grid C_α^N.  All
// policies in ccq::quant reduce to one of two grid shapes:
//   * unsigned:  k-bit levels {0, 1, …, 2^k−1} · α/(2^k−1)   (activations)
//   * symmetric: k-bit levels {−(2^(k−1)−1), …, +(2^(k−1)−1)} · step (weights)
// Quantization-aware training stores the *simulated* quantized value in
// float; the straight-through estimator lives in the weight hooks.
#pragma once

#include <cstdint>
#include <vector>

#include "ccq/tensor/tensor.hpp"

namespace ccq::quant {

/// Number of representable positive steps for a k-bit unsigned grid.
inline float unsigned_levels(int bits) {
  return static_cast<float>((1u << bits) - 1u);
}

/// Largest magnitude integer code of a symmetric k-bit grid (one code is
/// spent on the sign; zero is representable).
inline float symmetric_levels(int bits) {
  return static_cast<float>((1u << (bits - 1)) - 1u);
}

/// Quantize a value already normalised to [0, 1] onto the k-bit unsigned
/// grid (DoReFa's quantize_k).
float quantize_unit(float x, int bits);

/// Quantize `x` to the unsigned grid over [0, clip]; values are clipped.
float quantize_unsigned(float x, int bits, float clip);

/// Quantize `x` to the symmetric grid over [−clip, +clip].
float quantize_symmetric(float x, int bits, float clip);

/// Elementwise symmetric quantization of a tensor (bits ≥ 32 → copy).
Tensor quantize_symmetric(const Tensor& w, int bits, float clip);

/// Allocation-free variant: `dst` is resized (capacity-reusing) and
/// fully overwritten with the quantized values.
void quantize_symmetric_into(const Tensor& w, int bits, float clip,
                             Tensor& dst);

/// Mean-squared quantization error ‖w − Q(w)‖²/n for a symmetric grid —
/// paper Eq. (3)'s per-layer objective, used by calibrators and tests.
float quantization_mse(const Tensor& w, int bits, float clip);

/// The exact set of representable values of a symmetric k-bit grid with
/// the given clip (for property tests).
std::vector<float> symmetric_grid(int bits, float clip);

}  // namespace ccq::quant
