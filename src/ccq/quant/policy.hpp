// Quantization policy selection — the paper's "policy-agnostic" seam.
//
// A `Policy` names one of the quantization-aware-training schemes from
// the paper's comparison set; `QuantFactory` builds the matching weight
// hook and activation module for a layer.  The CCQ framework itself never
// looks inside a policy: it only moves layers down the bit ladder.
#pragma once

#include <memory>
#include <string>

#include "ccq/quant/act_quant.hpp"
#include "ccq/quant/weight_hooks.hpp"

namespace ccq::quant {

enum class Policy {
  kDoReFa,    ///< DoReFa weights + [0,1]-clipped quantized activations
  kWrpn,      ///< WRPN weights + [0,1]-clipped quantized activations
  kPact,      ///< DoReFa weights + PACT learnable-clip activations
  kPactSawb,  ///< SAWB weights + PACT activations (PACT-SAWB, Choi '18b)
  kLqNets,    ///< LQ-Nets alternating-fit weights + PACT activations
  kLsq,       ///< LSQ learnable-step weights + PACT activations
  kMinMax,    ///< naive max-|w| clip + [0,1]-clipped activations
  kPerChannel,  ///< per-output-channel max-|w| grids + PACT activations
};

std::string policy_str(Policy policy);
Policy policy_from_str(const std::string& name);

/// Builds per-layer quantizer objects for a chosen policy.
struct QuantFactory {
  Policy policy = Policy::kPact;
  /// Initial PACT clip (when the policy uses PACT activations).
  float pact_alpha_init = 6.0f;
  /// Fixed clip for DoReFa/WRPN-style activations.  The original papers
  /// clip to [0, 1]; on unit-variance BN outputs a hard 1.0 ceiling
  /// discards most of the signal and stalls training on our substrate, so
  /// the default widens the range (the grid merely rescales — the
  /// quantization structure is unchanged; see DESIGN.md substitutions).
  float fixed_act_clip = 2.0f;

  std::shared_ptr<WeightQuantHook> make_weight_hook(
      const std::string& name) const;
  std::unique_ptr<QuantAct> make_activation(const std::string& name) const;
};

}  // namespace ccq::quant
