// Quantized activation modules.
//
// These replace ReLU in quantization-aware models.  Bit width is mutable
// at runtime (the CCQ controller steps it down the ladder); 32 bits means
// the clip still applies but no discretisation happens, which is how the
// paper's "fp" activations behave under each policy.
#pragma once

#include "ccq/nn/module.hpp"
#include "ccq/quant/uniform.hpp"

namespace ccq::quant {

/// Common interface: an activation whose precision can be changed.
class QuantAct : public nn::Module {
 public:
  virtual void set_bits(int bits) {
    CCQ_CHECK(bits >= 1 && bits <= 32, "activation bits out of range");
    bits_ = bits;
  }
  int bits() const { return bits_; }

 protected:
  int bits_ = 32;
};

/// DoReFa / WRPN style activation: clip to [0, clip] (default 1) and
/// quantize on the unsigned grid.  Backward is STE inside the clip range.
class ClipActQuant : public QuantAct {
 public:
  explicit ClipActQuant(float clip = 1.0f);
  Tensor forward(const Tensor& x, Workspace& ws) override;
  Tensor backward(const Tensor& grad_out, Workspace& ws) override;
  std::string type_name() const override { return "ClipActQuant"; }
  float clip() const { return clip_; }

 private:
  float clip_;
  Tensor input_;
};

/// PACT (Choi et al. 2018): y = clip(x, 0, α) quantized to k bits, with a
/// *learnable* clipping value α.  dL/dα receives the gradient from every
/// saturated element (x ≥ α); α is L2-regularised by giving it a normal
/// weight-decay scale.  This is the policy the paper finds strongest,
/// because α re-adapts after every CCQ precision step (§IV.b).
class PactActivation : public QuantAct {
 public:
  explicit PactActivation(float alpha_init = 6.0f,
                          std::string name = "pact");
  Tensor forward(const Tensor& x, Workspace& ws) override;
  Tensor backward(const Tensor& grad_out, Workspace& ws) override;
  void collect_parameters(std::vector<nn::Parameter*>& out) override;
  std::string type_name() const override { return "PactActivation"; }

  float alpha() const { return alpha_.value.at(0); }
  nn::Parameter& alpha_param() { return alpha_; }

 private:
  nn::Parameter alpha_;
  Tensor input_;
};

}  // namespace ccq::quant
