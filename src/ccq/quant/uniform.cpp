#include "ccq/quant/uniform.hpp"

#include <algorithm>
#include <cmath>

namespace ccq::quant {

float quantize_unit(float x, int bits) {
  CCQ_CHECK(bits >= 1 && bits < 32, "quantize_unit bits out of range");
  const float n = unsigned_levels(bits);
  const float clipped = std::clamp(x, 0.0f, 1.0f);
  return std::round(clipped * n) / n;
}

float quantize_unsigned(float x, int bits, float clip) {
  CCQ_CHECK(clip > 0.0f, "clip must be positive");
  if (bits >= 32) return std::clamp(x, 0.0f, clip);
  return clip * quantize_unit(x / clip, bits);
}

float quantize_symmetric(float x, int bits, float clip) {
  CCQ_CHECK(clip > 0.0f, "clip must be positive");
  if (bits >= 32) return std::clamp(x, -clip, clip);
  CCQ_CHECK(bits >= 2, "symmetric grid needs at least 2 bits");
  const float n = symmetric_levels(bits);
  const float step = clip / n;
  const float clipped = std::clamp(x, -clip, clip);
  return std::round(clipped / step) * step;
}

Tensor quantize_symmetric(const Tensor& w, int bits, float clip) {
  Tensor q = w;
  q.apply([bits, clip](float v) { return quantize_symmetric(v, bits, clip); });
  return q;
}

void quantize_symmetric_into(const Tensor& w, int bits, float clip,
                             Tensor& dst) {
  dst.resize(w.shape());
  auto wp = w.data();
  auto dp = dst.data();
  for (std::size_t i = 0; i < wp.size(); ++i) {
    dp[i] = quantize_symmetric(wp[i], bits, clip);
  }
}

float quantization_mse(const Tensor& w, int bits, float clip) {
  CCQ_CHECK(w.numel() > 0, "empty tensor");
  double acc = 0.0;
  for (float v : w.data()) {
    const float q = quantize_symmetric(v, bits, clip);
    acc += static_cast<double>(v - q) * (v - q);
  }
  return static_cast<float>(acc / static_cast<double>(w.numel()));
}

std::vector<float> symmetric_grid(int bits, float clip) {
  CCQ_CHECK(bits >= 2 && bits < 32, "grid bits out of range");
  const int n = static_cast<int>(symmetric_levels(bits));
  std::vector<float> grid;
  grid.reserve(static_cast<std::size_t>(2 * n + 1));
  const float step = clip / static_cast<float>(n);
  for (int i = -n; i <= n; ++i) {
    grid.push_back(static_cast<float>(i) * step);
  }
  return grid;
}

}  // namespace ccq::quant
