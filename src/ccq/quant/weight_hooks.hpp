// Weight quantizers, one per policy from the paper's comparison set.
//
// Every hook simulates low-precision weights in float (quantization-aware
// training) and implements a straight-through estimator for the backward
// pass.  `set_bits` is the knob the CCQ controller turns: 32 restores
// full precision, anything lower snaps the layer onto that grid.
//
// Policies (paper §II / Table I–II):
//   DoReFa  — tanh-normalised weights on the unit grid (Zhou et al. '16;
//             scale-preserving by default here, see the class comment)
//   WRPN    — hard clip to [−1, 1] then uniform grid (Mishra et al. '17)
//   SAWB    — statistics-aware clip α = c1·√E[w²] − c2·E[|w|] (Choi '18)
//   LQ-Nets — per-layer scale learned by alternating minimisation of the
//             quantization MSE (Zhang et al. '18, 1-D basis case)
//   LSQ     — learnable step size trained by SGD with the LSQ gradient
//             (Esser et al. '19)
//   MinMax  — plain symmetric max-|w| clip (the naive baseline; also the
//             carrier for ACIQ/KL statically-calibrated clips)
#pragma once

#include <memory>
#include <string>

#include "ccq/nn/module.hpp"
#include "ccq/quant/uniform.hpp"

namespace ccq::quant {

/// Base of all weight hooks: holds the bit width and policy name.
class WeightQuantHook : public nn::QuantizerHook {
 public:
  int bits() const override { return bits_; }
  virtual void set_bits(int bits) {
    CCQ_CHECK(bits >= 2 && bits <= 32, "weight bits out of range");
    bits_ = bits;
  }
  virtual std::string policy_name() const = 0;

 protected:
  int bits_ = 32;
};

/// DoReFa: w_q = 2·quantize_k(tanh(w)/(2·max|tanh(w)|) + ½) − 1.
/// Backward: plain STE through the whole transform.
///
/// The original transform *normalises* the layer to [−1, 1]; networks
/// trained from scratch absorb that scale into BN.  CCQ instead quantizes
/// *pretrained* networks gradually, where an abrupt per-layer rescale
/// invalidates the downstream BN running statistics (the initial 8-bit
/// step would no longer be lossless).  With `scale_preserving` (default)
/// the output is multiplied back by max|tanh(w)| — the same grid up to a
/// per-layer constant, but the N(0) snap keeps the network calibrated.
class DoReFaWeightHook : public WeightQuantHook {
 public:
  explicit DoReFaWeightHook(bool scale_preserving = true)
      : scale_preserving_(scale_preserving) {}
  void quantize_into(const Tensor& w, Tensor& dst) override;
  std::string policy_name() const override { return "DoReFa"; }

  /// DoReFa's grid is half-offset with spacing 2·out_scale/(2^k − 1);
  /// out_scale is the max|tanh(w)| captured on the last quantize (1 when
  /// not scale-preserving).  0 before the first quantize or for all-zero
  /// weights (degenerate grid).
  float grid_step() const override {
    if (bits_ >= 32 || last_max_tanh_ == 0.0f) return 0.0f;
    const float out_scale = scale_preserving_ ? last_max_tanh_ : 1.0f;
    return 2.0f * out_scale / static_cast<float>(unsigned_levels(bits_));
  }

 private:
  bool scale_preserving_;
  float last_max_tanh_ = 0.0f;       ///< max|tanh(w)| of the last quantize
  std::vector<float> tanh_scratch_;  ///< reused across forwards
};

/// WRPN: clip to [−1, 1], then symmetric grid with 2^(k−1)−1 steps.
/// Backward: STE, zeroed where |w| > 1 (the clip is saturating).
class WrpnWeightHook : public WeightQuantHook {
 public:
  void quantize_into(const Tensor& w, Tensor& dst) override;
  Tensor backward(const Tensor& w, Tensor grad_q) override;
  std::string policy_name() const override { return "WRPN"; }

  float grid_step() const override {
    return bits_ >= 32 ? 0.0f
                       : 1.0f / static_cast<float>(symmetric_levels(bits_));
  }
};

/// SAWB: symmetric clip derived from the first two absolute moments with
/// per-bit-width coefficients fitted for bell-shaped weight distributions.
class SawbWeightHook : public WeightQuantHook {
 public:
  void quantize_into(const Tensor& w, Tensor& dst) override;
  Tensor backward(const Tensor& w, Tensor grad_q) override;
  std::string policy_name() const override { return "SAWB"; }

  /// The clip value chosen on the last forward (for tests/inspection).
  float last_clip() const { return last_clip_; }
  /// α(c1, c2) for a given bit width (exposed for tests).
  static float clip_for(const Tensor& w, int bits);

  float grid_step() const override {
    return bits_ >= 32 || last_clip_ <= 0.0f
               ? 0.0f
               : last_clip_ / static_cast<float>(symmetric_levels(bits_));
  }

 private:
  float last_clip_ = 0.0f;
};

/// LQ-Nets (1-D): alternate assignment/scale steps to minimise ‖w−q‖².
class LqNetsWeightHook : public WeightQuantHook {
 public:
  void quantize_into(const Tensor& w, Tensor& dst) override;
  Tensor backward(const Tensor& w, Tensor grad_q) override;
  std::string policy_name() const override { return "LQ-Nets"; }

  float last_scale() const { return last_scale_; }
  /// Alternating scale fit (exposed for tests). Returns the clip = s·n.
  static float fit_scale(const Tensor& w, int bits, int iterations = 5);

  /// The fitted scale *is* the grid step.
  float grid_step() const override {
    return bits_ >= 32 || last_scale_ <= 0.0f ? 0.0f : last_scale_;
  }

 private:
  float last_scale_ = 0.0f;
};

/// LSQ: the step size is a learnable parameter updated by SGD using the
/// gradient from Esser et al. (2019), with the 1/√(n·Q_max) gradient
/// scale folded into Parameter::lr_scale.
class LsqWeightHook : public WeightQuantHook {
 public:
  explicit LsqWeightHook(std::string name = "lsq");
  void quantize_into(const Tensor& w, Tensor& dst) override;
  Tensor backward(const Tensor& w, Tensor grad_q) override;
  void collect_parameters(std::vector<nn::Parameter*>& out) override;
  std::string policy_name() const override { return "LSQ"; }

  /// Changing precision re-arms the statistics-based step initialisation:
  /// a step fitted for 8-bit codes is an order of magnitude too small for
  /// a 2-bit grid and would collapse the layer.
  void set_bits(int bits) override {
    if (bits != bits_) initialised_ = false;
    WeightQuantHook::set_bits(bits);
  }

  float step() const { return step_.value.at(0); }

  /// The learned step (with the same 1e-8 floor quantize applies); 0
  /// until the first quantize initialises it.
  float grid_step() const override;

 private:
  nn::Parameter step_;
  bool initialised_ = false;
};

/// Per-output-channel symmetric max-|w| quantization — the granularity
/// TensorRT/HAWQ-era deployments use.  Each output channel (row of the
/// flattened weight matrix) gets its own clip, which costs one scale per
/// channel but removes the cross-channel dynamic-range coupling that
/// hurts per-tensor grids at low bits.  Extension beyond the paper
/// (DESIGN.md §6); the per-channel vs per-tensor gap is unit-tested.
class PerChannelWeightHook : public WeightQuantHook {
 public:
  void quantize_into(const Tensor& w, Tensor& dst) override;
  Tensor backward(const Tensor& w, Tensor grad_q) override;
  std::string policy_name() const override { return "PerChannel"; }

  const std::vector<float>& last_clips() const { return last_clips_; }

 private:
  std::vector<float> last_clips_;
};

/// Symmetric clip at a fixed value; clip = max|w| when `auto_clip`, else
/// whatever a static calibrator (ACIQ / KL) installed via `set_clip`.
class MinMaxWeightHook : public WeightQuantHook {
 public:
  explicit MinMaxWeightHook(bool auto_clip = true) : auto_clip_(auto_clip) {}
  void quantize_into(const Tensor& w, Tensor& dst) override;
  Tensor backward(const Tensor& w, Tensor grad_q) override;
  std::string policy_name() const override { return "MinMax"; }

  void set_clip(float clip) {
    CCQ_CHECK(clip > 0.0f, "clip must be positive");
    clip_ = clip;
    auto_clip_ = false;
  }
  float clip() const { return clip_; }

  float grid_step() const override {
    return bits_ >= 32 ? 0.0f
                       : clip_ / static_cast<float>(symmetric_levels(bits_));
  }

 private:
  bool auto_clip_;
  float clip_ = 1.0f;
};

}  // namespace ccq::quant
