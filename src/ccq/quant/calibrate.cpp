#include "ccq/quant/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "ccq/quant/uniform.hpp"

namespace ccq::quant {

float aciq_kappa(int bits, WeightDist dist) {
  CCQ_CHECK(bits >= 2 && bits <= 8, "ACIQ table covers 2..8 bits");
  // Optimal clipping multipliers from Banner et al. (2018), Table/fig. —
  // α* = κ·σ (Gaussian) or α* = κ·b (Laplace), b the Laplace diversity.
  static constexpr float kGauss[] = {1.71f, 2.15f, 2.55f, 2.93f,
                                     3.28f, 3.61f, 3.92f};
  static constexpr float kLaplace[] = {2.83f, 3.89f, 5.03f, 6.20f,
                                       7.41f, 8.64f, 9.89f};
  const int idx = bits - 2;
  return dist == WeightDist::kGaussian ? kGauss[idx] : kLaplace[idx];
}

float aciq_clip(const Tensor& w, int bits, WeightDist dist) {
  CCQ_CHECK(w.numel() > 0, "empty tensor");
  const double n = static_cast<double>(w.numel());
  double mean = 0.0;
  for (float v : w.data()) mean += v;
  mean /= n;
  double scale = 0.0;
  if (dist == WeightDist::kGaussian) {
    for (float v : w.data()) scale += (v - mean) * (v - mean);
    scale = std::sqrt(scale / n);
  } else {
    for (float v : w.data()) scale += std::fabs(v - mean);
    scale /= n;
  }
  const float clip = aciq_kappa(bits, dist) * static_cast<float>(scale);
  return std::max(clip, 1e-8f);
}

namespace {

/// KL(P ‖ Q) over two histograms after normalisation; zero-P bins are
/// skipped, zero-Q bins with P mass incur a large (smoothed) penalty.
double kl_divergence(const std::vector<double>& p,
                     const std::vector<double>& q) {
  double psum = 0.0, qsum = 0.0;
  for (double v : p) psum += v;
  for (double v : q) qsum += v;
  if (psum <= 0.0 || qsum <= 0.0) return 1e30;
  double kl = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] / psum;
    if (pi <= 0.0) continue;
    const double qi = std::max(q[i] / qsum, 1e-12);
    kl += pi * std::log(pi / qi);
  }
  return kl;
}

}  // namespace

float kl_calibrate_clip(const Tensor& w, int bits, int num_bins) {
  CCQ_CHECK(w.numel() > 0, "empty tensor");
  CCQ_CHECK(bits >= 2 && bits < 16, "kl_calibrate_clip bits out of range");
  CCQ_CHECK(num_bins >= 16, "need a reasonable histogram resolution");
  const float max_abs = std::max({std::fabs(w.max()), std::fabs(w.min())});
  if (max_abs <= 0.0f) return 1e-8f;

  // Histogram of |w|.
  std::vector<double> hist(static_cast<std::size_t>(num_bins), 0.0);
  const double bin_w = static_cast<double>(max_abs) / num_bins;
  for (float v : w.data()) {
    auto bin = static_cast<std::size_t>(std::fabs(v) / bin_w);
    if (bin >= hist.size()) bin = hist.size() - 1;
    hist[bin] += 1.0;
  }

  const int levels = 1 << (bits - 1);  // magnitude levels of the grid
  // Search thresholds from 2·levels upward: at i == levels the merge is
  // one-bin-per-level, Q equals P exactly and KL is trivially zero for
  // *any* amount of folded tail — a degenerate optimum that would always
  // pick the tightest clip at high precision.
  const int start = std::min(num_bins, std::max(2 * levels, num_bins / 8));
  // At high precision every threshold has near-zero divergence; without a
  // tolerance the argmin is decided by numerical noise and can select an
  // absurdly tight clip.  Prefer the *widest* clip within tolerance of
  // the optimum (outliers are only cut when they genuinely cost KL).
  constexpr double kTieTolerance = 1e-6;
  double best_kl = 1e30;
  int best_i = num_bins;
  for (int i = start; i <= num_bins; ++i) {
    // Reference P: first i bins, outliers folded into the last bin.
    std::vector<double> p(hist.begin(), hist.begin() + i);
    for (int j = i; j < num_bins; ++j) p[static_cast<std::size_t>(i) - 1] += hist[static_cast<std::size_t>(j)];

    // Quantized Q: merge the i bins into `levels` groups, then spread each
    // group's mass uniformly back over its non-empty source bins.
    std::vector<double> q(static_cast<std::size_t>(i), 0.0);
    const double group = static_cast<double>(i) / levels;
    for (int l = 0; l < levels; ++l) {
      const int lo = static_cast<int>(std::floor(l * group));
      const int hi = std::min(i, static_cast<int>(std::floor((l + 1) * group)));
      double mass = 0.0;
      int nonempty = 0;
      for (int j = lo; j < hi; ++j) {
        mass += p[static_cast<std::size_t>(j)];
        if (p[static_cast<std::size_t>(j)] > 0.0) ++nonempty;
      }
      if (nonempty == 0) continue;
      const double share = mass / nonempty;
      for (int j = lo; j < hi; ++j) {
        if (p[static_cast<std::size_t>(j)] > 0.0) q[static_cast<std::size_t>(j)] = share;
      }
    }
    const double kl = kl_divergence(p, q);
    if (kl < best_kl - kTieTolerance) {
      best_kl = kl;
      best_i = i;
    } else if (kl <= best_kl + kTieTolerance && i > best_i) {
      best_i = i;  // tie: keep the wider clip
    }
  }
  return static_cast<float>(best_i * bin_w);
}

}  // namespace ccq::quant
