// Static (post-training) clip calibration — the "static quantization"
// family from the paper's related work (§II.a).
//
//   * ACIQ (Banner et al. 2018): closed-form optimal clip assuming the
//     weights follow a Gaussian or Laplace distribution.
//   * KL / TensorRT (Migacz 2017): histogram search minimising the KL
//     divergence between the original and the quantized distribution.
//
// Both produce a clip value that can be installed into a MinMaxWeightHook
// for one-shot post-training quantization experiments and serve as the
// quantization-error-driven baselines CCQ is contrasted against.
#pragma once

#include "ccq/tensor/tensor.hpp"

namespace ccq::quant {

enum class WeightDist { kGaussian, kLaplace };

/// ACIQ analytic clip: α* = κ(bits) · scale, where scale is σ (Gaussian)
/// or b = E|w−μ| (Laplace) and κ comes from the paper's optimal-clipping
/// solution.
float aciq_clip(const Tensor& w, int bits, WeightDist dist);

/// The κ multiplier ACIQ uses for a bit width (exposed for tests).
float aciq_kappa(int bits, WeightDist dist);

/// KL-divergence calibration over a |w| histogram (TensorRT style).
/// Returns the clip threshold whose quantized distribution diverges least
/// from the original.  `num_bins` controls search resolution.
float kl_calibrate_clip(const Tensor& w, int bits, int num_bins = 512);

}  // namespace ccq::quant
