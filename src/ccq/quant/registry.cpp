#include "ccq/quant/registry.hpp"

namespace ccq::quant {

QuantUnit& LayerRegistry::add(QuantUnit unit, bool start_at_fp) {
  CCQ_CHECK(unit.weight_hook != nullptr, "unit needs a weight hook");
  CCQ_CHECK(unit.weight_count > 0, "unit needs a weight count");
  units_.push_back(std::move(unit));
  QuantUnit& u = units_.back();
  if (start_at_fp) {
    u.ladder_pos = 0;
    u.weight_hook->set_bits(32);
    if (u.act != nullptr) u.act->set_bits(32);
  } else {
    set_ladder_pos(units_.size() - 1, 0);
  }
  return u;
}

QuantUnit& LayerRegistry::unit(std::size_t i) {
  CCQ_CHECK(i < units_.size(), "unit index out of range");
  return units_[i];
}

const QuantUnit& LayerRegistry::unit(std::size_t i) const {
  CCQ_CHECK(i < units_.size(), "unit index out of range");
  return units_[i];
}

int LayerRegistry::bits_of(std::size_t i) const {
  return unit(i).weight_hook->bits();
}

void LayerRegistry::set_ladder_pos(std::size_t i, std::size_t pos) {
  QuantUnit& u = unit(i);
  CCQ_CHECK(!u.frozen, "cannot move a frozen layer: " + u.name);
  CCQ_CHECK(pos < ladder_.size(), "ladder position out of range");
  u.ladder_pos = pos;
  const int bits = ladder_.bits_at(pos);
  u.weight_hook->set_bits(bits);
  if (u.act != nullptr) u.act->set_bits(bits);
}

void LayerRegistry::set_all(std::size_t pos) {
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (!units_[i].frozen) set_ladder_pos(i, pos);
  }
}

void LayerRegistry::step_down(std::size_t i) {
  const QuantUnit& u = unit(i);
  CCQ_CHECK(!sleeping(i), "cannot step a sleeping layer: " + u.name);
  set_ladder_pos(i, u.ladder_pos + 1);
}

bool LayerRegistry::sleeping(std::size_t i) const {
  const QuantUnit& u = unit(i);
  return u.frozen || ladder_.is_last(u.ladder_pos);
}

bool LayerRegistry::all_sleeping() const {
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (!sleeping(i)) return false;
  }
  return true;
}

void LayerRegistry::force_bits(std::size_t i, int bits) {
  QuantUnit& u = unit(i);
  u.weight_hook->set_bits(bits);
  if (u.act != nullptr) u.act->set_bits(bits);
  u.frozen = true;
}

std::size_t LayerRegistry::total_weights() const {
  std::size_t total = 0;
  for (const auto& u : units_) total += u.weight_count;
  return total;
}

double LayerRegistry::compression_ratio() const {
  CCQ_CHECK(!units_.empty(), "empty registry");
  double fp_bits = 0.0, quant_bits = 0.0;
  for (const auto& u : units_) {
    fp_bits += 32.0 * static_cast<double>(u.weight_count);
    quant_bits += static_cast<double>(u.weight_hook->bits()) *
                  static_cast<double>(u.weight_count);
  }
  return fp_bits / quant_bits;
}

std::vector<double> LayerRegistry::memory_shares() const {
  std::vector<double> shares(units_.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < units_.size(); ++i) {
    shares[i] = static_cast<double>(units_[i].weight_count) *
                static_cast<double>(units_[i].weight_hook->bits());
    total += shares[i];
  }
  if (total > 0.0) {
    for (auto& s : shares) s /= total;
  }
  return shares;
}

std::string LayerRegistry::bits_str() const {
  std::string out;
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(bits_of(i));
  }
  return out;
}

LayerRegistry::ProbeGuard::ProbeGuard(LayerRegistry& registry, std::size_t i)
    : registry_(registry), index_(i), saved_pos_(registry.unit(i).ladder_pos) {
  registry_.step_down(index_);
}

LayerRegistry::ProbeGuard::~ProbeGuard() {
  registry_.set_ladder_pos(index_, saved_pos_);
}

}  // namespace ccq::quant
