// The bit-precision ladder N(0) > N(1) > … > N(K−1) (paper §III.B).
#pragma once

#include <string>
#include <vector>

#include "ccq/common/error.hpp"

namespace ccq::quant {

/// Strictly decreasing sequence of bit widths each layer steps down
/// through.  32 at the front means "start from full precision".
class BitLadder {
 public:
  /// Default ladder used by the experiments: 8 → 6 → 4 → 3 → 2.
  BitLadder() : BitLadder({8, 6, 4, 3, 2}) {}

  explicit BitLadder(std::vector<int> levels) : levels_(std::move(levels)) {
    CCQ_CHECK(!levels_.empty(), "empty bit ladder");
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      CCQ_CHECK(levels_[i] >= 1 && levels_[i] <= 32, "bit width out of range");
      if (i > 0) {
        CCQ_CHECK(levels_[i] < levels_[i - 1],
                  "ladder must be strictly decreasing");
      }
    }
  }

  std::size_t size() const { return levels_.size(); }
  int bits_at(std::size_t pos) const {
    CCQ_CHECK(pos < levels_.size(), "ladder position out of range");
    return levels_[pos];
  }
  int initial_bits() const { return levels_.front(); }
  int final_bits() const { return levels_.back(); }
  bool is_last(std::size_t pos) const { return pos + 1 >= levels_.size(); }
  const std::vector<int>& levels() const { return levels_; }

  std::string str() const {
    std::string out;
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      if (i != 0) out += "→";
      out += std::to_string(levels_[i]);
    }
    return out;
  }

 private:
  std::vector<int> levels_;
};

}  // namespace ccq::quant
