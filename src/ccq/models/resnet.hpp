// ResNet family builders (He et al. 2016) with quantization wiring.
//
// Topologies match the paper's evaluation set:
//   * ResNet20  — CIFAR variant: 3×3 stem, 3 stages × 3 basic blocks,
//                 widths {16, 32, 64}·w.
//   * ResNet18  — ImageNet variant: stages [2,2,2,2] of basic blocks,
//                 widths {64, 128, 256, 512}·w (CIFAR-style 3×3 stem —
//                 DESIGN.md documents the 224→32 spatial substitution).
//   * ResNet50  — stages [3,4,6,3] of bottleneck blocks (expansion 4).
//
// Every conv/linear weight gets a policy weight-hook; every activation is
// the policy's quantized activation.  Projection shortcuts are registered
// as weight-only units (no paired activation).  The first and the last
// layer are registered like any other — quantizing them is the point of
// the paper's Fig 5.
#pragma once

#include "ccq/models/model.hpp"

namespace ccq::models {

/// CIFAR-style ResNet-(6n+2): n basic blocks per stage, 3 stages.
QuantModel make_resnet_cifar(int blocks_per_stage, const ModelConfig& config,
                             const quant::QuantFactory& factory,
                             const quant::BitLadder& ladder,
                             const std::string& name);

/// ResNet20 (n = 3).
QuantModel make_resnet20(const ModelConfig& config,
                         const quant::QuantFactory& factory,
                         const quant::BitLadder& ladder);

/// ResNet18: basic blocks, stage plan [2,2,2,2], width {64,…,512}·w.
QuantModel make_resnet18(const ModelConfig& config,
                         const quant::QuantFactory& factory,
                         const quant::BitLadder& ladder);

/// ResNet50: bottleneck blocks, stage plan [3,4,6,3], expansion 4.
QuantModel make_resnet50(const ModelConfig& config,
                         const quant::QuantFactory& factory,
                         const quant::BitLadder& ladder);

}  // namespace ccq::models
