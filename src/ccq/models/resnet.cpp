#include "ccq/models/resnet.hpp"

#include <cmath>

#include "ccq/nn/conv.hpp"
#include "ccq/nn/linear.hpp"
#include "ccq/nn/norm.hpp"
#include "ccq/nn/pool.hpp"

namespace ccq::models {

namespace {

using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Linear;
using nn::Sequential;

std::size_t scaled(std::size_t channels, float width_multiplier) {
  const auto s = static_cast<std::size_t>(
      std::lround(static_cast<double>(channels) * width_multiplier));
  return std::max<std::size_t>(4, s);
}

/// Incremental network builder: tracks spatial dims for MAC accounting
/// and registers every quantizable unit in execution order.
struct Builder {
  const quant::QuantFactory& factory;
  quant::LayerRegistry& reg;
  bool start_at_fp;
  Rng rng;
  std::size_t h, w;
  int index = 0;

  std::string next_name(const std::string& kind) {
    return kind + std::to_string(index++);
  }

  /// Create a conv with an attached weight hook; returns the module and
  /// the registry slot (activation filled in by the caller).
  std::unique_ptr<Conv2d> conv(std::size_t in, std::size_t out,
                               std::size_t k, std::size_t stride,
                               std::size_t pad, quant::QuantUnit& slot) {
    const std::string name = next_name("conv");
    auto hook = factory.make_weight_hook(name);
    auto layer = std::make_unique<Conv2d>(in, out, k, stride, pad,
                                          /*bias=*/false, rng, name);
    layer->set_weight_quantizer(hook);
    slot.name = name;
    slot.weight_hook = std::move(hook);
    slot.weight_count = layer->weight().numel();
    slot.macs = layer->macs_per_sample(h, w);
    return layer;
  }

  std::unique_ptr<quant::QuantAct> act() {
    return factory.make_activation(next_name("act"));
  }

  void register_unit(quant::QuantUnit unit) {
    reg.add(std::move(unit), start_at_fp);
  }

  /// Basic block: conv3x3 — bn — act — conv3x3 — bn (+ shortcut) — act.
  nn::ModulePtr basic_block(std::size_t in, std::size_t out,
                            std::size_t stride) {
    quant::QuantUnit u1, u2;
    auto main = std::make_unique<Sequential>();
    auto c1 = conv(in, out, 3, stride, 1, u1);
    auto a1 = act();
    u1.act = a1.get();
    main->add_module(std::move(c1));
    main->add<BatchNorm2d>(out, 0.1f, 1e-5f, next_name("bn"));
    main->add_module(std::move(a1));

    // conv2 sees the post-stride spatial dims.
    const std::size_t h0 = h, w0 = w;
    h = (h + 2 - 3) / stride + 1;
    w = (w + 2 - 3) / stride + 1;
    auto c2 = conv(out, out, 3, 1, 1, u2);
    main->add_module(std::move(c2));
    main->add<BatchNorm2d>(out, 0.1f, 1e-5f, next_name("bn"));

    nn::ModulePtr shortcut;
    quant::QuantUnit us;
    bool has_proj = stride != 1 || in != out;
    if (has_proj) {
      auto sc = std::make_unique<Sequential>();
      // Projection shortcut operates on the block input dims.
      const std::size_t hs = h, ws = w;
      h = h0;
      w = w0;
      auto cs = conv(in, out, 1, stride, 0, us);
      h = hs;
      w = ws;
      sc->add_module(std::move(cs));
      sc->add<BatchNorm2d>(out, 0.1f, 1e-5f, next_name("bn"));
      shortcut = std::move(sc);
    }

    auto a2 = act();
    u2.act = a2.get();
    register_unit(std::move(u1));
    register_unit(std::move(u2));
    if (has_proj) register_unit(std::move(us));
    return std::make_unique<nn::Residual>(std::move(main),
                                          std::move(shortcut), std::move(a2));
  }

  /// Bottleneck block: 1×1 reduce — 3×3 (stride) — 1×1 expand (×4).
  nn::ModulePtr bottleneck_block(std::size_t in, std::size_t mid,
                                 std::size_t stride) {
    const std::size_t out = mid * 4;
    quant::QuantUnit u1, u2, u3;
    auto main = std::make_unique<Sequential>();
    auto c1 = conv(in, mid, 1, 1, 0, u1);
    auto a1 = act();
    u1.act = a1.get();
    main->add_module(std::move(c1));
    main->add<BatchNorm2d>(mid, 0.1f, 1e-5f, next_name("bn"));
    main->add_module(std::move(a1));

    auto c2 = conv(mid, mid, 3, stride, 1, u2);
    auto a2 = act();
    u2.act = a2.get();
    main->add_module(std::move(c2));
    main->add<BatchNorm2d>(mid, 0.1f, 1e-5f, next_name("bn"));
    main->add_module(std::move(a2));

    const std::size_t h0 = h, w0 = w;
    h = (h + 2 - 3) / stride + 1;
    w = (w + 2 - 3) / stride + 1;
    auto c3 = conv(mid, out, 1, 1, 0, u3);
    main->add_module(std::move(c3));
    main->add<BatchNorm2d>(out, 0.1f, 1e-5f, next_name("bn"));

    nn::ModulePtr shortcut;
    quant::QuantUnit us;
    const bool has_proj = stride != 1 || in != out;
    if (has_proj) {
      auto sc = std::make_unique<Sequential>();
      const std::size_t hs = h, ws = w;
      h = h0;
      w = w0;
      auto cs = conv(in, out, 1, stride, 0, us);
      h = hs;
      w = ws;
      sc->add_module(std::move(cs));
      sc->add<BatchNorm2d>(out, 0.1f, 1e-5f, next_name("bn"));
      shortcut = std::move(sc);
    }

    auto a3 = act();
    u3.act = a3.get();
    register_unit(std::move(u1));
    register_unit(std::move(u2));
    register_unit(std::move(u3));
    if (has_proj) register_unit(std::move(us));
    return std::make_unique<nn::Residual>(std::move(main),
                                          std::move(shortcut), std::move(a3));
  }
};

/// Generic residual-network assembler.
QuantModel build_resnet(const std::string& name, const ModelConfig& config,
                        const quant::QuantFactory& factory,
                        const quant::BitLadder& ladder,
                        const std::vector<int>& stage_blocks,
                        const std::vector<std::size_t>& stage_widths,
                        bool bottleneck) {
  CCQ_CHECK(stage_blocks.size() == stage_widths.size(),
            "stage plan mismatch");
  auto net = std::make_unique<Sequential>();
  auto registry = std::make_unique<quant::LayerRegistry>(ladder);
  Builder b{factory, *registry, config.start_at_fp, Rng(config.seed),
            config.image_size, config.image_size};

  // Stem: 3×3 conv (CIFAR style; DESIGN.md covers the ImageNet stem
  // substitution), then BN + quantized activation.
  const std::size_t stem_ch = scaled(stage_widths[0], config.width_multiplier);
  quant::QuantUnit stem_unit;
  auto stem = b.conv(config.in_channels, stem_ch, 3, 1, 1, stem_unit);
  auto stem_act = b.act();
  stem_unit.act = stem_act.get();
  net->add_module(std::move(stem));
  net->add<BatchNorm2d>(stem_ch, 0.1f, 1e-5f, b.next_name("bn"));
  net->add_module(std::move(stem_act));
  b.register_unit(std::move(stem_unit));

  std::size_t in_ch = stem_ch;
  for (std::size_t stage = 0; stage < stage_blocks.size(); ++stage) {
    const std::size_t width =
        scaled(stage_widths[stage], config.width_multiplier);
    for (int block = 0; block < stage_blocks[stage]; ++block) {
      const std::size_t stride = (stage > 0 && block == 0) ? 2 : 1;
      if (bottleneck) {
        net->add_module(b.bottleneck_block(in_ch, width, stride));
        in_ch = width * 4;
      } else {
        net->add_module(b.basic_block(in_ch, width, stride));
        in_ch = width;
      }
    }
  }

  net->add<nn::GlobalAvgPool>();
  const std::string fc_name = b.next_name("fc");
  auto fc_hook = factory.make_weight_hook(fc_name);
  auto fc = std::make_unique<Linear>(in_ch, config.num_classes, /*bias=*/true,
                                     b.rng, fc_name);
  fc->set_weight_quantizer(fc_hook);
  quant::QuantUnit fc_unit;
  fc_unit.name = fc_name;
  fc_unit.weight_hook = std::move(fc_hook);
  fc_unit.weight_count = fc->weight().numel();
  fc_unit.macs = fc->macs_per_sample();
  fc_unit.act = nullptr;  // logits are not re-activated
  net->add_module(std::move(fc));
  b.register_unit(std::move(fc_unit));

  return QuantModel(name, config, std::move(net), std::move(registry));
}

}  // namespace

QuantModel make_resnet_cifar(int blocks_per_stage, const ModelConfig& config,
                             const quant::QuantFactory& factory,
                             const quant::BitLadder& ladder,
                             const std::string& name) {
  CCQ_CHECK(blocks_per_stage >= 1, "need at least one block per stage");
  return build_resnet(name, config, factory, ladder,
                      {blocks_per_stage, blocks_per_stage, blocks_per_stage},
                      {16, 32, 64}, /*bottleneck=*/false);
}

QuantModel make_resnet20(const ModelConfig& config,
                         const quant::QuantFactory& factory,
                         const quant::BitLadder& ladder) {
  return make_resnet_cifar(3, config, factory, ladder, "ResNet20");
}

QuantModel make_resnet18(const ModelConfig& config,
                         const quant::QuantFactory& factory,
                         const quant::BitLadder& ladder) {
  return build_resnet("ResNet18", config, factory, ladder, {2, 2, 2, 2},
                      {64, 128, 256, 512}, /*bottleneck=*/false);
}

QuantModel make_resnet50(const ModelConfig& config,
                         const quant::QuantFactory& factory,
                         const quant::BitLadder& ladder) {
  return build_resnet("ResNet50", config, factory, ladder, {3, 4, 6, 3},
                      {64, 128, 256, 512}, /*bottleneck=*/true);
}

}  // namespace ccq::models
