#include "ccq/models/simple.hpp"

#include <cmath>

#include "ccq/nn/conv.hpp"
#include "ccq/nn/linear.hpp"
#include "ccq/nn/norm.hpp"
#include "ccq/nn/pool.hpp"

namespace ccq::models {

namespace {

std::size_t scaled(std::size_t channels, float width_multiplier) {
  const auto s = static_cast<std::size_t>(
      std::lround(static_cast<double>(channels) * width_multiplier));
  return std::max<std::size_t>(4, s);
}

}  // namespace

QuantModel make_simple_cnn(const ModelConfig& config,
                           const quant::QuantFactory& factory,
                           const quant::BitLadder& ladder) {
  auto net = std::make_unique<nn::Sequential>();
  auto registry = std::make_unique<quant::LayerRegistry>(ladder);
  Rng rng(config.seed);

  std::size_t h = config.image_size, w = config.image_size;
  std::size_t in_ch = config.in_channels;
  int index = 0;
  auto add_conv_block = [&](std::size_t out_ch, std::size_t stride) {
    const std::string name = "conv" + std::to_string(index);
    auto hook = factory.make_weight_hook(name);
    auto layer = std::make_unique<nn::Conv2d>(in_ch, out_ch, 3, stride, 1,
                                              /*bias=*/false, rng, name);
    layer->set_weight_quantizer(hook);
    auto act = factory.make_activation("act" + std::to_string(index));
    quant::QuantUnit unit;
    unit.name = name;
    unit.weight_hook = std::move(hook);
    unit.act = act.get();
    unit.weight_count = layer->weight().numel();
    unit.macs = layer->macs_per_sample(h, w);
    net->add_module(std::move(layer));
    net->add<nn::BatchNorm2d>(out_ch, 0.1f, 1e-5f,
                              "bn" + std::to_string(index));
    net->add_module(std::move(act));
    registry->add(std::move(unit), config.start_at_fp);
    h = (h + 2 - 3) / stride + 1;
    w = (w + 2 - 3) / stride + 1;
    in_ch = out_ch;
    ++index;
  };

  add_conv_block(scaled(16, config.width_multiplier), 1);
  add_conv_block(scaled(32, config.width_multiplier), 2);
  add_conv_block(scaled(48, config.width_multiplier), 2);
  add_conv_block(scaled(64, config.width_multiplier), 2);
  net->add<nn::GlobalAvgPool>();

  auto fc_hook = factory.make_weight_hook("fc");
  auto fc = std::make_unique<nn::Linear>(in_ch, config.num_classes,
                                         /*bias=*/true, rng, "fc");
  fc->set_weight_quantizer(fc_hook);
  quant::QuantUnit fc_unit;
  fc_unit.name = "fc";
  fc_unit.weight_hook = std::move(fc_hook);
  fc_unit.weight_count = fc->weight().numel();
  fc_unit.macs = fc->macs_per_sample();
  net->add_module(std::move(fc));
  registry->add(std::move(fc_unit), config.start_at_fp);

  return QuantModel("SimpleCNN", config, std::move(net), std::move(registry));
}

QuantModel make_mlp(const ModelConfig& config,
                    const quant::QuantFactory& factory,
                    const quant::BitLadder& ladder, std::size_t hidden) {
  auto net = std::make_unique<nn::Sequential>();
  auto registry = std::make_unique<quant::LayerRegistry>(ladder);
  Rng rng(config.seed);
  const std::size_t in_features =
      config.in_channels * config.image_size * config.image_size;

  net->add<nn::Flatten>();
  std::size_t dims[3] = {in_features, hidden, hidden};
  std::size_t outs[3] = {hidden, hidden, config.num_classes};
  for (int i = 0; i < 3; ++i) {
    const std::string name = "fc" + std::to_string(i);
    auto hook = factory.make_weight_hook(name);
    auto layer = std::make_unique<nn::Linear>(dims[i], outs[i], /*bias=*/true,
                                              rng, name);
    layer->set_weight_quantizer(hook);
    quant::QuantUnit unit;
    unit.name = name;
    unit.weight_hook = std::move(hook);
    unit.weight_count = layer->weight().numel();
    unit.macs = layer->macs_per_sample();
    net->add_module(std::move(layer));
    if (i < 2) {
      auto act = factory.make_activation("act" + std::to_string(i));
      unit.act = act.get();
      net->add_module(std::move(act));
    }
    registry->add(std::move(unit), config.start_at_fp);
  }
  return QuantModel("MLP", config, std::move(net), std::move(registry));
}

}  // namespace ccq::models
