// Quantizable model bundle: network + layer registry + metadata.
#pragma once

#include <memory>
#include <string>

#include "ccq/nn/container.hpp"
#include "ccq/quant/policy.hpp"
#include "ccq/quant/registry.hpp"

namespace ccq::models {

/// Architecture knobs shared by all builders.  `width_multiplier` scales
/// every channel count (DESIGN.md §2: the reproduction keeps the paper's
/// topologies but shrinks width to fit the single-core CPU budget).
struct ModelConfig {
  std::size_t num_classes = 10;
  std::size_t in_channels = 3;
  std::size_t image_size = 32;
  float width_multiplier = 1.0f;
  std::uint64_t seed = 7;
  /// When true, all layers start at 32-bit (for fp32 baseline training);
  /// the CCQ controller later drops them onto the ladder.
  bool start_at_fp = true;
};

/// A network plus the registry the CCQ controller manipulates.  The
/// registry's units reference modules owned by `net`, so the bundle is
/// move-only and `net` must outlive any registry use.
class QuantModel {
 public:
  QuantModel(std::string name, ModelConfig config,
             std::unique_ptr<nn::Sequential> net,
             std::unique_ptr<quant::LayerRegistry> registry)
      : name_(std::move(name)),
        config_(config),
        net_(std::move(net)),
        registry_(std::move(registry)) {}

  const std::string& name() const { return name_; }
  const ModelConfig& config() const { return config_; }
  nn::Sequential& net() { return *net_; }
  quant::LayerRegistry& registry() { return *registry_; }
  const quant::LayerRegistry& registry() const { return *registry_; }

  Tensor forward(const Tensor& x, Workspace& ws) {
    return net_->forward(x, ws);
  }
  Tensor backward(const Tensor& grad, Workspace& ws) {
    return net_->backward(grad, ws);
  }
  std::vector<nn::Parameter*> parameters() { return net_->parameters(); }
  void set_training(bool training) { net_->set_training(training); }

 private:
  std::string name_;
  ModelConfig config_;
  std::unique_ptr<nn::Sequential> net_;
  std::unique_ptr<quant::LayerRegistry> registry_;
};

}  // namespace ccq::models
