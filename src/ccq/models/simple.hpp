// Small reference models for examples, tests and fast experiments.
#pragma once

#include "ccq/models/model.hpp"

namespace ccq::models {

/// Four-conv CNN (stem + 3 stages) + linear head.  Fast enough for unit
/// tests and the quickstart example, with enough layers (5 quantizable
/// units) for a meaningful competition.
QuantModel make_simple_cnn(const ModelConfig& config,
                           const quant::QuantFactory& factory,
                           const quant::BitLadder& ladder);

/// Two-hidden-layer MLP over flattened images (3 quantizable units).
QuantModel make_mlp(const ModelConfig& config,
                    const quant::QuantFactory& factory,
                    const quant::BitLadder& ladder,
                    std::size_t hidden = 64);

}  // namespace ccq::models
