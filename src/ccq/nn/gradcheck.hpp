// Numerical gradient checking for tests.
#pragma once

#include <functional>

#include "ccq/nn/module.hpp"

namespace ccq::nn {

/// Result of comparing analytic vs central-difference gradients.
struct GradCheckResult {
  float max_abs_err = 0.0f;
  float max_rel_err = 0.0f;
  std::size_t checked = 0;
};

/// Compare a parameter's analytic gradient (already accumulated in
/// `param.grad` by the caller's backward pass) against central
/// differences of `loss_fn`, which must re-run the full forward pass and
/// return the scalar loss.  Only `max_entries` evenly-spaced entries are
/// probed to keep tests fast.
GradCheckResult check_parameter_grad(Parameter& param,
                                     const std::function<double()>& loss_fn,
                                     double eps = 1e-3,
                                     std::size_t max_entries = 24);

/// Same idea for input gradients: `analytic` holds dL/dx, `x` is mutated
/// in place for probing and restored afterwards.
GradCheckResult check_input_grad(Tensor& x, const Tensor& analytic,
                                 const std::function<double()>& loss_fn,
                                 double eps = 1e-3,
                                 std::size_t max_entries = 24);

}  // namespace ccq::nn
