#include "ccq/nn/conv.hpp"

#include "ccq/nn/init.hpp"
#include "ccq/tensor/gemm.hpp"

namespace ccq::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               bool bias, Rng& rng, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias) {
  CCQ_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
            "invalid conv configuration");
  Tensor w({out_channels, in_channels, kernel, kernel});
  he_normal(w, in_channels * kernel * kernel, rng);
  weight_ = Parameter(name + ".weight", std::move(w));
  if (has_bias_) {
    bias_ = Parameter(name + ".bias", Tensor({out_channels}));
  }
}

ConvGeometry Conv2d::geometry(std::size_t h, std::size_t w) const {
  return ConvGeometry{.in_channels = in_channels_,
                      .in_h = h,
                      .in_w = w,
                      .kernel = kernel_,
                      .stride = stride_,
                      .pad = pad_};
}

std::size_t Conv2d::macs_per_sample(std::size_t in_h, std::size_t in_w) const {
  const auto g = geometry(in_h, in_w);
  return out_channels_ * g.patch_size() * g.out_spatial();
}

Tensor Conv2d::forward(const Tensor& x) {
  CCQ_CHECK(x.rank() == 4, "Conv2d expects NCHW input");
  CCQ_CHECK(x.dim(1) == in_channels_, "Conv2d channel mismatch");
  input_ = x;
  qweight_ =
      weight_hook_ ? weight_hook_->quantize(weight_.value) : weight_.value;

  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const auto g = geometry(h, w);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t patch = g.patch_size(), spatial = g.out_spatial();

  Tensor y({n, out_channels_, oh, ow});
  std::vector<float> cols(patch * spatial);
  const float* wp = qweight_.data().data();
  for (std::size_t i = 0; i < n; ++i) {
    const float* xi = x.data().data() + i * in_channels_ * h * w;
    float* yi = y.data().data() + i * out_channels_ * spatial;
    im2col(xi, g, cols.data());
    gemm(out_channels_, spatial, patch, 1.0f, wp, patch, cols.data(), spatial,
         0.0f, yi, spatial);
    if (has_bias_) {
      for (std::size_t oc = 0; oc < out_channels_; ++oc) {
        const float b = bias_.value.at(oc);
        float* row = yi + oc * spatial;
        for (std::size_t s = 0; s < spatial; ++s) row[s] += b;
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  CCQ_CHECK(input_.rank() == 4, "backward before forward");
  const std::size_t n = input_.dim(0);
  const std::size_t h = input_.dim(2), w = input_.dim(3);
  const auto g = geometry(h, w);
  const std::size_t patch = g.patch_size(), spatial = g.out_spatial();
  CCQ_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == n &&
                grad_out.dim(1) == out_channels_ &&
                grad_out.dim(2) * grad_out.dim(3) == spatial,
            "Conv2d grad shape mismatch");

  Tensor grad_in(input_.shape());
  Tensor grad_qw(weight_.value.shape());  // dL/d(quantized weights)
  std::vector<float> cols(patch * spatial);
  std::vector<float> cols_grad(patch * spatial);
  const float* wp = qweight_.data().data();
  float* gwp = grad_qw.data().data();

  for (std::size_t i = 0; i < n; ++i) {
    const float* xi = input_.data().data() + i * in_channels_ * h * w;
    const float* gyi = grad_out.data().data() + i * out_channels_ * spatial;
    float* gxi = grad_in.data().data() + i * in_channels_ * h * w;

    // dW += gy (out × spatial) · colsᵀ (spatial × patch)
    im2col(xi, g, cols.data());
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float* gyrow = gyi + oc * spatial;
      float* gwrow = gwp + oc * patch;
      for (std::size_t p = 0; p < patch; ++p) {
        const float* crow = cols.data() + p * spatial;
        float acc = 0.0f;
        for (std::size_t s = 0; s < spatial; ++s) acc += gyrow[s] * crow[s];
        gwrow[p] += acc;
      }
    }

    // dcols = Wᵀ (patch × out) · gy (out × spatial), then scatter via col2im.
    std::fill(cols_grad.begin(), cols_grad.end(), 0.0f);
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float* wrow = wp + oc * patch;
      const float* gyrow = gyi + oc * spatial;
      for (std::size_t p = 0; p < patch; ++p) {
        const float wv = wrow[p];
        if (wv == 0.0f) continue;
        float* dst = cols_grad.data() + p * spatial;
        for (std::size_t s = 0; s < spatial; ++s) dst[s] += wv * gyrow[s];
      }
    }
    col2im(cols_grad.data(), g, gxi);

    if (has_bias_) {
      for (std::size_t oc = 0; oc < out_channels_; ++oc) {
        const float* gyrow = gyi + oc * spatial;
        float acc = 0.0f;
        for (std::size_t s = 0; s < spatial; ++s) acc += gyrow[s];
        bias_.grad.at(oc) += acc;
      }
    }
  }

  // Route the weight gradient through the quantizer's STE (identity when
  // no hook is attached).
  Tensor grad_w = weight_hook_
                      ? weight_hook_->backward(weight_.value, std::move(grad_qw))
                      : std::move(grad_qw);
  weight_.grad += grad_w;
  return grad_in;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
  if (weight_hook_) weight_hook_->collect_parameters(out);
}

}  // namespace ccq::nn
