#include "ccq/nn/conv.hpp"

#include "ccq/common/telemetry.hpp"
#include "ccq/nn/init.hpp"
#include "ccq/tensor/gemm.hpp"

namespace ccq::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               bool bias, Rng& rng, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias) {
  CCQ_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
            "invalid conv configuration");
  Tensor w({out_channels, in_channels, kernel, kernel});
  he_normal(w, in_channels * kernel * kernel, rng);
  weight_ = Parameter(name + ".weight", std::move(w));
  if (has_bias_) {
    bias_ = Parameter(name + ".bias", Tensor({out_channels}));
  }
}

ConvGeometry Conv2d::geometry(std::size_t h, std::size_t w) const {
  return ConvGeometry{.in_channels = in_channels_,
                      .in_h = h,
                      .in_w = w,
                      .kernel = kernel_,
                      .stride = stride_,
                      .pad = pad_};
}

std::size_t Conv2d::macs_per_sample(std::size_t in_h, std::size_t in_w) const {
  const auto g = geometry(in_h, in_w);
  return out_channels_ * g.patch_size() * g.out_spatial();
}

Tensor Conv2d::forward(const Tensor& x, Workspace& ws) {
  telemetry::ScopedTimer timer(telemetry::Timer::kConvForward);
  CCQ_CHECK(x.rank() == 4, "Conv2d expects NCHW input");
  CCQ_CHECK(x.dim(1) == in_channels_, "Conv2d channel mismatch");
  // Eval fast path: backward never runs, so skip the input cache.
  if (training_) input_ = x;  // copy-assign reuses capacity once warm
  if (weight_hook_) {
    weight_hook_->quantize_into(weight_.value, qweight_);
  } else {
    qweight_ = weight_.value;
  }

  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const auto g = geometry(h, w);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t patch = g.patch_size(), spatial = g.out_spatial();

  // Fully overwritten below (gemm beta=0 zero-fills each row panel).
  Tensor y = ws.tensor_uninit({n, out_channels_, oh, ow});
  const float* wp = qweight_.data().data();
  const ExecContext& ctx = exec();
  // Parallel over batch samples: each sample writes a disjoint output
  // slice and owns a private column buffer leased from the workspace
  // (per-thread arenas keep reuse thread-local).  With a single sample
  // the loop runs inline (no parallel region), so the inner im2col/GEMM
  // parallelise instead.
  parallel_for(ctx, n, 1, [&](std::size_t i0, std::size_t i1) {
    Workspace::FloatLease cols = ws.floats(patch * spatial);
    for (std::size_t i = i0; i < i1; ++i) {
      const float* xi = x.data().data() + i * in_channels_ * h * w;
      float* yi = y.data().data() + i * out_channels_ * spatial;
      im2col(xi, g, cols.data(), ctx);
      gemm(out_channels_, spatial, patch, 1.0f, wp, patch, cols.data(),
           spatial, 0.0f, yi, spatial, ctx);
      if (has_bias_) {
        for (std::size_t oc = 0; oc < out_channels_; ++oc) {
          const float b = bias_.value.at(oc);
          float* row = yi + oc * spatial;
          for (std::size_t s = 0; s < spatial; ++s) row[s] += b;
        }
      }
    }
  });
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out, Workspace& ws) {
  telemetry::ScopedTimer timer(telemetry::Timer::kConvBackward);
  CCQ_CHECK(input_.rank() == 4, "backward before forward");
  const std::size_t n = input_.dim(0);
  const std::size_t h = input_.dim(2), w = input_.dim(3);
  const auto g = geometry(h, w);
  const std::size_t patch = g.patch_size(), spatial = g.out_spatial();
  CCQ_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == n &&
                grad_out.dim(1) == out_channels_ &&
                grad_out.dim(2) * grad_out.dim(3) == spatial,
            "Conv2d grad shape mismatch");

  // col2im scatters with +=, and dW accumulates across samples: both
  // need zeroed workspace tensors, not uninit ones.
  Tensor grad_in = ws.tensor(input_.shape());
  Tensor grad_qw = ws.tensor(weight_.value.shape());  // dL/d(quantized w)
  Workspace::FloatLease cols = ws.floats(patch * spatial);
  Workspace::FloatLease cols_grad = ws.floats(patch * spatial);
  const float* wp = qweight_.data().data();
  float* gwp = grad_qw.data().data();
  const ExecContext& ctx = exec();

  // The sample loop stays serial: dW and dbias accumulate across samples
  // and their order must not depend on thread count.  Within a sample
  // every parallel loop writes disjoint rows, and each element's
  // reduction runs in the serial kernel order, so results are
  // bit-identical for any thread count.
  for (std::size_t i = 0; i < n; ++i) {
    const float* xi = input_.data().data() + i * in_channels_ * h * w;
    const float* gyi = grad_out.data().data() + i * out_channels_ * spatial;
    float* gxi = grad_in.data().data() + i * in_channels_ * h * w;

    // dW += gy (out × spatial) · colsᵀ (spatial × patch)
    im2col(xi, g, cols.data(), ctx);
    parallel_for(ctx, out_channels_, 4, [&](std::size_t oc0, std::size_t oc1) {
      for (std::size_t oc = oc0; oc < oc1; ++oc) {
        const float* gyrow = gyi + oc * spatial;
        float* gwrow = gwp + oc * patch;
        for (std::size_t p = 0; p < patch; ++p) {
          const float* crow = cols.data() + p * spatial;
          float acc = 0.0f;
          for (std::size_t s = 0; s < spatial; ++s) acc += gyrow[s] * crow[s];
          gwrow[p] += acc;
        }
      }
    });

    // dcols = Wᵀ (patch × out) · gy (out × spatial), then scatter via
    // col2im.  Parallel over patch rows; the inner oc loop keeps the
    // serial accumulation order per element.
    parallel_for(ctx, patch, 8, [&](std::size_t p0, std::size_t p1) {
      for (std::size_t p = p0; p < p1; ++p) {
        float* dst = cols_grad.data() + p * spatial;
        std::fill(dst, dst + spatial, 0.0f);
        for (std::size_t oc = 0; oc < out_channels_; ++oc) {
          const float wv = wp[oc * patch + p];
          if (wv == 0.0f) continue;
          const float* gyrow = gyi + oc * spatial;
          for (std::size_t s = 0; s < spatial; ++s) dst[s] += wv * gyrow[s];
        }
      }
    });
    col2im(cols_grad.data(), g, gxi, ctx);

    if (has_bias_) {
      for (std::size_t oc = 0; oc < out_channels_; ++oc) {
        const float* gyrow = gyi + oc * spatial;
        float acc = 0.0f;
        for (std::size_t s = 0; s < spatial; ++s) acc += gyrow[s];
        bias_.grad.at(oc) += acc;
      }
    }
  }

  // Route the weight gradient through the quantizer's STE (identity when
  // no hook is attached).
  Tensor grad_w = weight_hook_
                      ? weight_hook_->backward(weight_.value, std::move(grad_qw))
                      : std::move(grad_qw);
  weight_.grad += grad_w;
  ws.recycle(std::move(grad_w));
  return grad_in;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
  if (weight_hook_) weight_hook_->collect_parameters(out);
}

}  // namespace ccq::nn
