#include "ccq/nn/optim.hpp"

#include <cmath>

namespace ccq::nn {

Sgd::Sgd(std::vector<Parameter*> params, SgdConfig config)
    : config_(config) {
  rebind(std::move(params));
}

void Sgd::rebind(std::vector<Parameter*> params) {
  params_ = std::move(params);
  velocity_.clear();
  velocity_.reserve(params_.size());
  for (const auto* p : params_) {
    CCQ_CHECK(p != nullptr, "null parameter");
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::set_velocity(std::vector<Tensor> velocity) {
  CCQ_CHECK(velocity.size() == params_.size(),
            "velocity count does not match bound parameters");
  for (std::size_t i = 0; i < velocity.size(); ++i) {
    CCQ_CHECK(velocity[i].shape() == params_[i]->value.shape(),
              "velocity shape mismatch for " + params_[i]->name);
  }
  velocity_ = std::move(velocity);
}

void Sgd::step() {
  for (std::size_t idx = 0; idx < params_.size(); ++idx) {
    Parameter& p = *params_[idx];
    Tensor& vel = velocity_[idx];
    auto w = p.value.data();
    auto g = p.grad.data();
    auto v = vel.data();
    const float wd =
        static_cast<float>(config_.weight_decay) * p.weight_decay_scale;
    const float lr = static_cast<float>(config_.lr) * p.lr_scale;
    const float mom = static_cast<float>(config_.momentum);
    for (std::size_t i = 0; i < w.size(); ++i) {
      const float grad = g[i] + wd * w[i];
      v[i] = mom * v[i] + grad;
      const float update = config_.nesterov ? grad + mom * v[i] : v[i];
      w[i] -= lr * update;
    }
  }
}

void Sgd::zero_grad() {
  for (auto* p : params_) p->zero_grad();
}

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto* p : params_) {
    CCQ_CHECK(p != nullptr, "null parameter");
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++step_count_;
  const double b1 = config_.beta1, b2 = config_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(step_count_));
  for (std::size_t idx = 0; idx < params_.size(); ++idx) {
    Parameter& p = *params_[idx];
    auto w = p.value.data();
    auto g = p.grad.data();
    auto m = m_[idx].data();
    auto v = v_[idx].data();
    const float lr = static_cast<float>(config_.lr) * p.lr_scale;
    const float wd =
        static_cast<float>(config_.weight_decay) * p.weight_decay_scale;
    for (std::size_t i = 0; i < w.size(); ++i) {
      m[i] = static_cast<float>(b1) * m[i] +
             static_cast<float>(1.0 - b1) * g[i];
      v[i] = static_cast<float>(b2) * v[i] +
             static_cast<float>(1.0 - b2) * g[i] * g[i];
      const double mhat = m[i] / bias1;
      const double vhat = v[i] / bias2;
      // Decoupled weight decay (AdamW): shrink directly, not via grads.
      w[i] -= lr * static_cast<float>(mhat /
                                      (std::sqrt(vhat) + config_.eps)) +
              lr * wd * w[i];
    }
  }
}

void Adam::zero_grad() {
  for (auto* p : params_) p->zero_grad();
}

}  // namespace ccq::nn
