// 2-D convolution layer (NCHW, square kernel) lowered to GEMM via im2col.
#pragma once

#include <memory>

#include "ccq/nn/module.hpp"
#include "ccq/tensor/im2col.hpp"

namespace ccq::nn {

/// Convolution over (N, C, H, W) inputs.  Weights are stored as a rank-4
/// tensor (out_ch, in_ch, k, k) whose row-major layout doubles as the
/// (out_ch × in_ch·k·k) GEMM matrix.  Supports an optional weight
/// quantizer hook (the CCQ seam).
class Conv2d : public Module {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t pad, bool bias, Rng& rng,
         std::string name = "conv");

  Tensor forward(const Tensor& x, Workspace& ws) override;
  Tensor backward(const Tensor& grad_out, Workspace& ws) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string type_name() const override { return "Conv2d"; }

  /// Attach / replace / clear (nullptr) the weight quantizer.
  void set_weight_quantizer(std::shared_ptr<QuantizerHook> hook) {
    weight_hook_ = std::move(hook);
  }
  QuantizerHook* weight_quantizer() const { return weight_hook_.get(); }

  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  bool has_bias() const { return has_bias_; }
  Parameter& bias() { return bias_; }

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }
  std::size_t pad() const { return pad_; }

  /// Multiply-accumulate count for one sample at the given input size
  /// (used by the hardware power model).
  std::size_t macs_per_sample(std::size_t in_h, std::size_t in_w) const;

 private:
  ConvGeometry geometry(std::size_t h, std::size_t w) const;

  std::size_t in_channels_, out_channels_, kernel_, stride_, pad_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  std::shared_ptr<QuantizerHook> weight_hook_;

  // Forward cache.
  Tensor input_;
  Tensor qweight_;  ///< weights actually used (quantized or latent copy)
};

}  // namespace ccq::nn
