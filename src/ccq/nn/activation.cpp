#include "ccq/nn/activation.hpp"

namespace ccq::nn {

Tensor ReLU::forward(const Tensor& x, Workspace& ws) {
  Tensor y = ws.tensor_uninit(x.shape());
  const float* xp = x.data().data();
  float* yp = y.data().data();
  if (training_) {
    mask_.resize(x.shape());
    float* mp = mask_.data().data();
    for (std::size_t i = 0; i < x.numel(); ++i) {
      const bool on = xp[i] > 0.0f;
      mp[i] = on ? 1.0f : 0.0f;
      yp[i] = on ? xp[i] : 0.0f;
    }
  } else {
    // Eval fast path: no backward, so skip the mask entirely.
    for (std::size_t i = 0; i < x.numel(); ++i) {
      yp[i] = xp[i] > 0.0f ? xp[i] : 0.0f;
    }
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out, Workspace& ws) {
  CCQ_CHECK(same_shape(grad_out, mask_), "ReLU grad shape mismatch");
  Tensor g = ws.tensor_uninit(grad_out.shape());
  const float* gp = grad_out.data().data();
  const float* mp = mask_.data().data();
  float* dst = g.data().data();
  for (std::size_t i = 0; i < g.numel(); ++i) dst[i] = gp[i] * mp[i];
  return g;
}

}  // namespace ccq::nn
