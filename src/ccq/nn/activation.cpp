#include "ccq/nn/activation.hpp"

namespace ccq::nn {

Tensor ReLU::forward(const Tensor& x) {
  mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  const float* xp = x.data().data();
  float* mp = mask_.data().data();
  float* yp = y.data().data();
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const bool on = xp[i] > 0.0f;
    mp[i] = on ? 1.0f : 0.0f;
    yp[i] = on ? xp[i] : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  CCQ_CHECK(same_shape(grad_out, mask_), "ReLU grad shape mismatch");
  Tensor g = grad_out;
  g *= mask_;
  return g;
}

}  // namespace ccq::nn
