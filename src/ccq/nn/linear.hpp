// Fully-connected layer.
#pragma once

#include <memory>

#include "ccq/nn/module.hpp"

namespace ccq::nn {

/// y = x · Wᵀ + b over (N, in_features) inputs.  Weights are stored
/// (out_features × in_features).  Supports a weight quantizer hook.
class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, bool bias,
         Rng& rng, std::string name = "fc");

  Tensor forward(const Tensor& x, Workspace& ws) override;
  Tensor backward(const Tensor& grad_out, Workspace& ws) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string type_name() const override { return "Linear"; }

  void set_weight_quantizer(std::shared_ptr<QuantizerHook> hook) {
    weight_hook_ = std::move(hook);
  }
  QuantizerHook* weight_quantizer() const { return weight_hook_.get(); }

  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  bool has_bias() const { return has_bias_; }
  Parameter& bias() { return bias_; }

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }
  std::size_t macs_per_sample() const { return in_features_ * out_features_; }

 private:
  std::size_t in_features_, out_features_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  std::shared_ptr<QuantizerHook> weight_hook_;

  Tensor input_;
  Tensor qweight_;
};

}  // namespace ccq::nn
