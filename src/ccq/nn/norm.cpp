#include "ccq/nn/norm.hpp"

#include <cmath>

namespace ccq::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, float momentum, float eps,
                         std::string name)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      name_(name),
      gamma_(name + ".gamma", Tensor({channels}, 1.0f)),
      beta_(name + ".beta", Tensor({channels})),
      running_mean_({channels}),
      running_var_({channels}, 1.0f) {
  // BN affine parameters are conventionally exempt from weight decay.
  gamma_.weight_decay_scale = 0.0f;
  beta_.weight_decay_scale = 0.0f;
}

Tensor BatchNorm2d::forward(const Tensor& x, Workspace& ws) {
  CCQ_CHECK(x.rank() == 4 && x.dim(1) == channels_,
            "BatchNorm2d expects (N, C, H, W) with C=" +
                std::to_string(channels_));
  const std::size_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const std::size_t plane = h * w;
  const std::size_t count = n * plane;
  Tensor y = ws.tensor_uninit(x.shape());  // fully overwritten below
  const float* xp = x.data().data();
  float* yp = y.data().data();

  if (training_) {
    input_ = x;
    batch_mean_.assign(channels_, 0.0f);
    batch_inv_std_.assign(channels_, 0.0f);
    xhat_.resize(x.shape());  // capacity-reusing; fully overwritten
    float* xh = xhat_.data().data();
    for (std::size_t c = 0; c < channels_; ++c) {
      double sum = 0.0, sqsum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const float* src = xp + (i * channels_ + c) * plane;
        for (std::size_t s = 0; s < plane; ++s) {
          sum += src[s];
          sqsum += static_cast<double>(src[s]) * src[s];
        }
      }
      const double mean = sum / static_cast<double>(count);
      const double var =
          std::max(0.0, sqsum / static_cast<double>(count) - mean * mean);
      const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
      batch_mean_[c] = static_cast<float>(mean);
      batch_inv_std_[c] = inv_std;
      running_mean_.at(c) = (1.0f - momentum_) * running_mean_.at(c) +
                            momentum_ * static_cast<float>(mean);
      running_var_.at(c) = (1.0f - momentum_) * running_var_.at(c) +
                           momentum_ * static_cast<float>(var);
      const float g = gamma_.value.at(c), b = beta_.value.at(c);
      for (std::size_t i = 0; i < n; ++i) {
        const float* src = xp + (i * channels_ + c) * plane;
        float* hat = xh + (i * channels_ + c) * plane;
        float* dst = yp + (i * channels_ + c) * plane;
        for (std::size_t s = 0; s < plane; ++s) {
          const float xhv = (src[s] - static_cast<float>(mean)) * inv_std;
          hat[s] = xhv;
          dst[s] = g * xhv + b;
        }
      }
    }
  } else {
    for (std::size_t c = 0; c < channels_; ++c) {
      const float inv_std =
          1.0f / std::sqrt(running_var_.at(c) + eps_);
      const float mean = running_mean_.at(c);
      const float g = gamma_.value.at(c), b = beta_.value.at(c);
      for (std::size_t i = 0; i < n; ++i) {
        const float* src = xp + (i * channels_ + c) * plane;
        float* dst = yp + (i * channels_ + c) * plane;
        for (std::size_t s = 0; s < plane; ++s) {
          dst[s] = g * (src[s] - mean) * inv_std + b;
        }
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out, Workspace& ws) {
  CCQ_CHECK(training_, "BatchNorm2d backward only defined in training mode");
  CCQ_CHECK(same_shape(grad_out, input_), "BatchNorm2d grad shape mismatch");
  const std::size_t n = input_.dim(0), h = input_.dim(2), w = input_.dim(3);
  const std::size_t plane = h * w;
  const float count = static_cast<float>(n * plane);
  Tensor grad_in = ws.tensor_uninit(input_.shape());  // fully overwritten
  const float* gy = grad_out.data().data();
  const float* xh = xhat_.data().data();
  float* gx = grad_in.data().data();

  for (std::size_t c = 0; c < channels_; ++c) {
    // Accumulate dγ = Σ gy·x̂ and dβ = Σ gy.
    double sum_gy = 0.0, sum_gy_xhat = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t base = (i * channels_ + c) * plane;
      for (std::size_t s = 0; s < plane; ++s) {
        sum_gy += gy[base + s];
        sum_gy_xhat += static_cast<double>(gy[base + s]) * xh[base + s];
      }
    }
    gamma_.grad.at(c) += static_cast<float>(sum_gy_xhat);
    beta_.grad.at(c) += static_cast<float>(sum_gy);

    // dx = (γ/σ) * (gy − mean(gy) − x̂·mean(gy·x̂))
    const float g_over_std = gamma_.value.at(c) * batch_inv_std_[c];
    const float mean_gy = static_cast<float>(sum_gy) / count;
    const float mean_gy_xhat = static_cast<float>(sum_gy_xhat) / count;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t base = (i * channels_ + c) * plane;
      for (std::size_t s = 0; s < plane; ++s) {
        gx[base + s] = g_over_std * (gy[base + s] - mean_gy -
                                     xh[base + s] * mean_gy_xhat);
      }
    }
  }
  return grad_in;
}

void BatchNorm2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void BatchNorm2d::collect_buffers(std::vector<NamedBuffer>& out) {
  out.emplace_back(name_ + ".running_mean", &running_mean_);
  out.emplace_back(name_ + ".running_var", &running_var_);
}

}  // namespace ccq::nn
