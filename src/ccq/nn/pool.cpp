#include "ccq/nn/pool.hpp"

#include <algorithm>
#include <limits>

namespace ccq::nn {

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  CCQ_CHECK(kernel > 0 && stride > 0, "invalid pool config");
}

Tensor MaxPool2d::forward(const Tensor& x, Workspace& ws) {
  CCQ_CHECK(x.rank() == 4, "MaxPool2d expects NCHW input");
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  CCQ_CHECK(h >= kernel_ && w >= kernel_, "pool window larger than input");
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;
  Tensor y = ws.tensor_uninit({n, c, oh, ow});  // fully overwritten
  // Eval fast path: the argmax map only feeds backward.
  const bool record = training_;
  if (record) argmax_.assign(y.numel(), 0);
  const float* xp = x.data().data();
  float* yp = y.data().data();
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = xp + (i * c + ch) * h * w;
      const std::size_t plane_base = (i * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t iy = oy * stride_ + ky;
              const std::size_t ix = ox * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * w + ix;
              }
            }
          }
          yp[out_idx] = best;
          if (record) argmax_[out_idx] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out, Workspace& ws) {
  CCQ_CHECK(grad_out.numel() == argmax_.size(), "MaxPool2d grad mismatch");
  Tensor grad_in = ws.tensor(in_shape_);  // scatter-add needs zeros
  float* gx = grad_in.data().data();
  const float* gy = grad_out.data().data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) gx[argmax_[i]] += gy[i];
  return grad_in;
}

AvgPool2d::AvgPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  CCQ_CHECK(kernel > 0 && stride > 0, "invalid pool config");
}

Tensor AvgPool2d::forward(const Tensor& x, Workspace& ws) {
  CCQ_CHECK(x.rank() == 4, "AvgPool2d expects NCHW input");
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  CCQ_CHECK(h >= kernel_ && w >= kernel_, "pool window larger than input");
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  Tensor y = ws.tensor_uninit({n, c, oh, ow});  // fully overwritten
  const float* xp = x.data().data();
  float* yp = y.data().data();
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = xp + (i * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              acc += plane[(oy * stride_ + ky) * w + (ox * stride_ + kx)];
            }
          }
          yp[out_idx] = acc * inv;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out, Workspace& ws) {
  const std::size_t n = in_shape_[0], c = in_shape_[1], h = in_shape_[2],
                    w = in_shape_[3];
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;
  CCQ_CHECK(grad_out.rank() == 4 && grad_out.dim(2) == oh &&
                grad_out.dim(3) == ow,
            "AvgPool2d grad mismatch");
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  Tensor grad_in = ws.tensor(in_shape_);  // overlapping += needs zeros
  float* gx = grad_in.data().data();
  const float* gy = grad_out.data().data();
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      float* plane = gx + (i * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
          const float g = gy[out_idx] * inv;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              plane[(oy * stride_ + ky) * w + (ox * stride_ + kx)] += g;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor GlobalAvgPool::forward(const Tensor& x, Workspace& ws) {
  CCQ_CHECK(x.rank() == 4, "GlobalAvgPool expects NCHW input");
  in_shape_ = x.shape();
  const std::size_t n = x.dim(0), c = x.dim(1), plane = x.dim(2) * x.dim(3);
  const float inv = 1.0f / static_cast<float>(plane);
  Tensor y = ws.tensor_uninit({n, c});  // fully overwritten
  const float* xp = x.data().data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* src = xp + (i * c + ch) * plane;
      float acc = 0.0f;
      for (std::size_t s = 0; s < plane; ++s) acc += src[s];
      y(i, ch) = acc * inv;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out, Workspace& ws) {
  const std::size_t n = in_shape_[0], c = in_shape_[1],
                    plane = in_shape_[2] * in_shape_[3];
  CCQ_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == n &&
                grad_out.dim(1) == c,
            "GlobalAvgPool grad mismatch");
  const float inv = 1.0f / static_cast<float>(plane);
  Tensor grad_in = ws.tensor_uninit(in_shape_);  // fully overwritten
  float* gx = grad_in.data().data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = grad_out(i, ch) * inv;
      float* dst = gx + (i * c + ch) * plane;
      for (std::size_t s = 0; s < plane; ++s) dst[s] = g;
    }
  }
  return grad_in;
}

Tensor Flatten::forward(const Tensor& x, Workspace& ws) {
  CCQ_CHECK(x.rank() >= 2, "Flatten expects rank >= 2");
  in_shape_ = x.shape();
  Tensor y = ws.tensor_uninit({x.dim(0), x.numel() / x.dim(0)});
  std::copy(x.data().begin(), x.data().end(), y.data().begin());
  return y;
}

Tensor Flatten::backward(const Tensor& grad_out, Workspace& ws) {
  Tensor g = ws.tensor_uninit(in_shape_);
  std::copy(grad_out.data().begin(), grad_out.data().end(), g.data().begin());
  return g;
}

}  // namespace ccq::nn
