// Module graph for the NN substrate.
//
// The paper trains ResNets with quantization-aware training.  We model a
// network as a tree of `Module`s (containers own children by unique_ptr)
// with explicit `forward` / `backward` passes that cache whatever the
// backward pass needs.  There is no general autograd tape: the layer set
// the paper needs (conv / linear / BN / activations / pooling / residual
// add) has well-known closed-form backward rules, and an explicit graph
// keeps memory behaviour predictable on the single-core target.
//
// Quantization plugs in through `QuantizerHook`: a layer that owns
// weights consults its hook (if any) to obtain the quantized weights used
// in forward/backward, and routes the weight gradient back through the
// hook's straight-through estimator.  This is exactly the paper's
// "policy-agnostic" seam: DoReFa/WRPN/PACT/… are hooks, and the CCQ
// controller changes a layer's precision by re-configuring its hook.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ccq/common/exec.hpp"
#include "ccq/common/workspace.hpp"
#include "ccq/tensor/tensor.hpp"

namespace ccq::nn {

/// A learnable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Multiplier on the optimizer's weight decay (0 exempts BN scales and
  /// PACT clip values, following common practice).
  float weight_decay_scale = 1.0f;
  /// Multiplier on the optimizer's learning rate.
  float lr_scale = 1.0f;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0f); }
  std::size_t numel() const { return value.numel(); }
};

/// Weight-quantization seam (implemented by ccq::quant policies).
class QuantizerHook {
 public:
  virtual ~QuantizerHook() = default;

  /// Quantize latent weights `w` for use in this forward pass.  May keep
  /// state for the backward mapping (called once per forward).  The
  /// default funnels through quantize_into; hooks override at least one
  /// of the two.
  virtual Tensor quantize(const Tensor& w) {
    Tensor q(w.shape());
    quantize_into(w, q);
    return q;
  }

  /// Write-into-destination variant: `dst` is resized to w's shape,
  /// reusing its capacity, so a layer's cached `qweight_` stops
  /// reallocating once warm.  This is the primary implementation point
  /// for the repo's hooks.
  virtual void quantize_into(const Tensor& w, Tensor& dst) {
    dst = quantize(w);
  }

  /// Map dL/d(quantized w) back to dL/d(latent w).  The default is the
  /// plain straight-through estimator (identity).
  virtual Tensor backward(const Tensor& w, Tensor grad_q) {
    (void)w;
    return grad_q;
  }

  /// Current weight bit width (32 means "not quantized").
  virtual int bits() const = 0;

  /// Uniform grid spacing of the most recent quantize() output, or 0
  /// when unknown / non-uniform (e.g. per-channel grids).  The integer
  /// engine consumes this to encode weight codes without re-inferring
  /// the step from the tensor's distinct values; hooks that quantize
  /// onto a single uniform grid should override it.
  virtual float grid_step() const { return 0.0f; }

  /// Hooks with learnable state (e.g. LSQ step size) expose it here so
  /// the owning layer registers it with the optimizer.
  virtual void collect_parameters(std::vector<Parameter*>& out) { (void)out; }
};

/// Base class for all network components.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  /// Compute outputs, drawing any result/scratch storage from `ws`; must
  /// cache anything backward needs (layers skip those caches when
  /// !training(), the eval fast path).  Callers may recycle the returned
  /// tensor into `ws` once consumed.
  virtual Tensor forward(const Tensor& x, Workspace& ws) = 0;

  /// Given dL/d(output), return dL/d(input) (storage drawn from `ws`)
  /// and accumulate parameter gradients.  Must be called after the
  /// matching forward in training mode.
  virtual Tensor backward(const Tensor& grad_out, Workspace& ws) = 0;

  /// Append this module's own parameters (containers recurse).
  virtual void collect_parameters(std::vector<Parameter*>& out) { (void)out; }

  /// Convenience: gather all parameters in the subtree.
  std::vector<Parameter*> parameters() {
    std::vector<Parameter*> out;
    collect_parameters(out);
    return out;
  }

  /// Named non-learnable state that checkpoints must persist (BatchNorm
  /// running statistics).  Containers recurse.
  using NamedBuffer = std::pair<std::string, Tensor*>;
  virtual void collect_buffers(std::vector<NamedBuffer>& out) { (void)out; }

  std::vector<NamedBuffer> buffers() {
    std::vector<NamedBuffer> out;
    collect_buffers(out);
    return out;
  }

  /// Total learnable scalar count in the subtree.
  std::size_t parameter_count() {
    std::size_t n = 0;
    for (const auto* p : parameters()) n += p->numel();
    return n;
  }

  /// Switch train/eval behaviour (BN statistics, etc.). Containers recurse.
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Pin the execution context the subtree's compute-heavy layers hand
  /// to their kernels.  Pass nullptr to fall back to the process-wide
  /// default.  The context must outlive the module.
  void set_exec_context(const ExecContext* ctx) {
    visit([ctx](Module& m) { m.exec_ = ctx; });
  }

  /// Context used by this module's kernel calls.
  const ExecContext& exec() const {
    return exec_ != nullptr ? *exec_ : ExecContext::global();
  }

  /// Short type tag for diagnostics ("Conv2d", "BatchNorm2d", …).
  virtual std::string type_name() const = 0;

  /// Depth-first visit of this module and (for containers) its subtree.
  /// Used by the quantization registry to discover quantizable layers.
  virtual void visit(const std::function<void(Module&)>& fn) { fn(*this); }

 protected:
  bool training_ = true;
  const ExecContext* exec_ = nullptr;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace ccq::nn
