#include "ccq/nn/schedule.hpp"

#include <cmath>
#include <limits>

#include "ccq/common/error.hpp"

namespace ccq::nn {

StepDecayLr::StepDecayLr(double base_lr, int step_epochs, double gamma)
    : base_lr_(base_lr), gamma_(gamma), step_epochs_(step_epochs) {
  CCQ_CHECK(step_epochs > 0, "step_epochs must be positive");
}

double StepDecayLr::next(double) {
  const double lr = base_lr_ * std::pow(gamma_, epoch_ / step_epochs_);
  ++epoch_;
  return lr;
}

CosineRestartLr::CosineRestartLr(double base_lr, double min_lr, int period)
    : base_lr_(base_lr), min_lr_(min_lr), period_(period) {
  CCQ_CHECK(period > 0, "cosine period must be positive");
}

double CosineRestartLr::next(double) {
  const int phase = epoch_ % period_;
  const double t = static_cast<double>(phase) / static_cast<double>(period_);
  const double lr =
      min_lr_ + 0.5 * (base_lr_ - min_lr_) * (1.0 + std::cos(M_PI * t));
  ++epoch_;
  return lr;
}

WarmupLr::WarmupLr(double base_lr, int warmup_epochs, LrSchedule* inner)
    : base_lr_(base_lr), warmup_epochs_(warmup_epochs), inner_(inner) {
  CCQ_CHECK(warmup_epochs >= 0, "warmup length must be non-negative");
}

double WarmupLr::next(double metric) {
  if (epoch_ < warmup_epochs_) {
    ++epoch_;
    return base_lr_ * static_cast<double>(epoch_) /
           static_cast<double>(warmup_epochs_);
  }
  ++epoch_;
  return inner_ != nullptr ? inner_->next(metric) : base_lr_;
}

void WarmupLr::reset() {
  epoch_ = 0;
  if (inner_ != nullptr) inner_->reset();
}

HybridPlateauCosineLr::HybridPlateauCosineLr(Config config)
    : config_(config) {
  CCQ_CHECK(config_.patience > 0, "patience must be positive");
  CCQ_CHECK(config_.cosine_period > 0, "cosine period must be positive");
  CCQ_CHECK(config_.bump_factor >= 1.0, "bump must not lower the rate");
  reset();
}

void HybridPlateauCosineLr::reset() {
  best_metric_ = -std::numeric_limits<double>::infinity();
  stall_epochs_ = 0;
  cosine_left_ = 0;
}

double HybridPlateauCosineLr::next(double metric) {
  if (cosine_left_ > 0) {
    // Decay from bump·base back to base over the remaining excursion.
    const int done = config_.cosine_period - cosine_left_;
    const double t =
        static_cast<double>(done) / static_cast<double>(config_.cosine_period);
    const double peak = config_.base_lr * config_.bump_factor;
    const double lr =
        config_.base_lr +
        0.5 * (peak - config_.base_lr) * (1.0 + std::cos(M_PI * t));
    --cosine_left_;
    // The excursion often finds a better optimum; track the metric so a
    // fresh plateau is required before the next bump.
    if (metric > best_metric_ + config_.min_delta) best_metric_ = metric;
    return lr;
  }

  if (metric > best_metric_ + config_.min_delta) {
    best_metric_ = metric;
    stall_epochs_ = 0;
  } else {
    ++stall_epochs_;
  }
  if (stall_epochs_ >= config_.patience) {
    stall_epochs_ = 0;
    // Peak now; the remaining period-1 epochs decay back to base.
    cosine_left_ = config_.cosine_period - 1;
    return config_.base_lr * config_.bump_factor;
  }
  return config_.base_lr;
}

}  // namespace ccq::nn
