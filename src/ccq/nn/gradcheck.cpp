#include "ccq/nn/gradcheck.hpp"

#include <cmath>

namespace ccq::nn {

namespace {

GradCheckResult check_entries(Tensor& values, const Tensor& analytic,
                              const std::function<double()>& loss_fn,
                              double eps, std::size_t max_entries) {
  GradCheckResult result;
  const std::size_t n = values.numel();
  CCQ_CHECK(analytic.numel() == n, "gradient size mismatch");
  const std::size_t stride = std::max<std::size_t>(1, n / max_entries);
  auto v = values.data();
  auto g = analytic.data();
  for (std::size_t i = 0; i < n; i += stride) {
    const float original = v[i];
    v[i] = original + static_cast<float>(eps);
    const double plus = loss_fn();
    v[i] = original - static_cast<float>(eps);
    const double minus = loss_fn();
    v[i] = original;
    const double numeric = (plus - minus) / (2.0 * eps);
    const double abs_err = std::fabs(numeric - g[i]);
    const double denom = std::max({std::fabs(numeric),
                                   static_cast<double>(std::fabs(g[i])),
                                   1e-6});
    result.max_abs_err =
        std::max(result.max_abs_err, static_cast<float>(abs_err));
    result.max_rel_err =
        std::max(result.max_rel_err, static_cast<float>(abs_err / denom));
    ++result.checked;
  }
  return result;
}

}  // namespace

GradCheckResult check_parameter_grad(Parameter& param,
                                     const std::function<double()>& loss_fn,
                                     double eps, std::size_t max_entries) {
  return check_entries(param.value, param.grad, loss_fn, eps, max_entries);
}

GradCheckResult check_input_grad(Tensor& x, const Tensor& analytic,
                                 const std::function<double()>& loss_fn,
                                 double eps, std::size_t max_entries) {
  return check_entries(x, analytic, loss_fn, eps, max_entries);
}

}  // namespace ccq::nn
