#include "ccq/nn/init.hpp"

#include <cmath>

namespace ccq::nn {

void he_normal(Tensor& w, std::size_t fan_in, Rng& rng) {
  CCQ_CHECK(fan_in > 0, "he_normal needs fan_in > 0");
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (auto& v : w.data()) v = static_cast<float>(rng.normal(0.0, stddev));
}

void xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    Rng& rng) {
  CCQ_CHECK(fan_in + fan_out > 0, "xavier needs positive fans");
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (auto& v : w.data()) v = static_cast<float>(rng.uniform(-a, a));
}

}  // namespace ccq::nn
