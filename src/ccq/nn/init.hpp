// Weight initialisation helpers.
#pragma once

#include "ccq/common/rng.hpp"
#include "ccq/tensor/tensor.hpp"

namespace ccq::nn {

/// He (Kaiming) normal initialisation: N(0, sqrt(2/fan_in)).
void he_normal(Tensor& w, std::size_t fan_in, Rng& rng);

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6/(fan_in+fan_out)).
void xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    Rng& rng);

}  // namespace ccq::nn
