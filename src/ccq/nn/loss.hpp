// Softmax cross-entropy loss with integer class labels.
#pragma once

#include <vector>

#include "ccq/tensor/tensor.hpp"

namespace ccq::nn {

/// Combined log-softmax + NLL over (N, C) logits; numerically stable.
/// forward() returns the mean loss; backward() returns dL/dlogits.
class SoftmaxCrossEntropy {
 public:
  float forward(const Tensor& logits, const std::vector<int>& labels);
  Tensor backward() const;

  /// Fraction of rows whose argmax equals the label (uses last forward).
  static float accuracy(const Tensor& logits, const std::vector<int>& labels);

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

}  // namespace ccq::nn
