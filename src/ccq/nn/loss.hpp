// Softmax cross-entropy loss with integer class labels.
#pragma once

#include <vector>

#include "ccq/common/workspace.hpp"
#include "ccq/tensor/tensor.hpp"

namespace ccq::nn {

/// Combined log-softmax + NLL over (N, C) logits; numerically stable.
/// forward() returns the mean loss; backward() returns dL/dlogits.
class SoftmaxCrossEntropy {
 public:
  SoftmaxCrossEntropy() = default;
  /// Workspace-backed variant: the softmax cache is drawn from (and on
  /// destruction recycled into) `ws`, so short-lived loss objects — one
  /// per evaluate/train call — stop re-allocating it.
  explicit SoftmaxCrossEntropy(Workspace& ws) : ws_(&ws) {}
  ~SoftmaxCrossEntropy() {
    if (ws_ != nullptr && !probs_.empty()) ws_->recycle(std::move(probs_));
  }

  float forward(const Tensor& logits, const std::vector<int>& labels);
  Tensor backward() const;

  /// Allocation-free variant: writes dL/dlogits into `grad` (resized,
  /// capacity-reusing).  Same values as backward().
  void backward_into(Tensor& grad) const;

  /// Fraction of rows whose argmax equals the label (uses last forward).
  static float accuracy(const Tensor& logits, const std::vector<int>& labels);

 private:
  Workspace* ws_ = nullptr;
  Tensor probs_;
  std::vector<int> labels_;
};

}  // namespace ccq::nn
