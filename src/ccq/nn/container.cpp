#include "ccq/nn/container.hpp"

namespace ccq::nn {

Module& Sequential::add_module(ModulePtr m) {
  CCQ_CHECK(m != nullptr, "cannot add a null module");
  children_.push_back(std::move(m));
  return *children_.back();
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor y = x;
  for (auto& child : children_) y = child->forward(y);
  return y;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& child : children_) child->collect_parameters(out);
}

void Sequential::collect_buffers(std::vector<NamedBuffer>& out) {
  for (auto& child : children_) child->collect_buffers(out);
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& child : children_) child->set_training(training);
}

Module& Sequential::child(std::size_t i) {
  CCQ_CHECK(i < children_.size(), "child index out of range");
  return *children_[i];
}

void Sequential::visit(const std::function<void(Module&)>& fn) {
  fn(*this);
  for (auto& child : children_) child->visit(fn);
}

Residual::Residual(ModulePtr main, ModulePtr shortcut, ModulePtr activation)
    : main_(std::move(main)),
      shortcut_(std::move(shortcut)),
      activation_(std::move(activation)) {
  CCQ_CHECK(main_ != nullptr, "residual block needs a main path");
}

Tensor Residual::forward(const Tensor& x) {
  Tensor y = main_->forward(x);
  if (shortcut_ != nullptr) {
    y += shortcut_->forward(x);
  } else {
    CCQ_CHECK(same_shape(y, x),
              "identity shortcut requires matching shapes; use a projection");
    y += x;
  }
  if (activation_ != nullptr) y = activation_->forward(y);
  return y;
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor g = activation_ != nullptr ? activation_->backward(grad_out)
                                    : grad_out;
  Tensor gx = main_->backward(g);
  if (shortcut_ != nullptr) {
    gx += shortcut_->backward(g);
  } else {
    gx += g;
  }
  return gx;
}

void Residual::collect_parameters(std::vector<Parameter*>& out) {
  main_->collect_parameters(out);
  if (shortcut_ != nullptr) shortcut_->collect_parameters(out);
  if (activation_ != nullptr) activation_->collect_parameters(out);
}

void Residual::collect_buffers(std::vector<NamedBuffer>& out) {
  main_->collect_buffers(out);
  if (shortcut_ != nullptr) shortcut_->collect_buffers(out);
  if (activation_ != nullptr) activation_->collect_buffers(out);
}

void Residual::set_training(bool training) {
  Module::set_training(training);
  main_->set_training(training);
  if (shortcut_ != nullptr) shortcut_->set_training(training);
  if (activation_ != nullptr) activation_->set_training(training);
}

void Residual::visit(const std::function<void(Module&)>& fn) {
  fn(*this);
  main_->visit(fn);
  if (shortcut_ != nullptr) shortcut_->visit(fn);
  if (activation_ != nullptr) activation_->visit(fn);
}

}  // namespace ccq::nn
