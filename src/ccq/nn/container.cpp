#include "ccq/nn/container.hpp"

#include <algorithm>

namespace ccq::nn {

Module& Sequential::add_module(ModulePtr m) {
  CCQ_CHECK(m != nullptr, "cannot add a null module");
  children_.push_back(std::move(m));
  return *children_.back();
}

Tensor Sequential::forward(const Tensor& x, Workspace& ws) {
  if (children_.empty()) {
    Tensor y = ws.tensor_uninit(x.shape());
    std::copy(x.data().begin(), x.data().end(), y.data().begin());
    return y;
  }
  // Recycle each intermediate as soon as the consuming child has run:
  // layers copy whatever backward needs out of their input, so nothing
  // retains a reference into the recycled storage.
  Tensor y = children_.front()->forward(x, ws);
  for (std::size_t i = 1; i < children_.size(); ++i) {
    Tensor next = children_[i]->forward(y, ws);
    ws.recycle(std::move(y));
    y = std::move(next);
  }
  return y;
}

Tensor Sequential::backward(const Tensor& grad_out, Workspace& ws) {
  if (children_.empty()) {
    Tensor g = ws.tensor_uninit(grad_out.shape());
    std::copy(grad_out.data().begin(), grad_out.data().end(),
              g.data().begin());
    return g;
  }
  Tensor g = children_.back()->backward(grad_out, ws);
  for (auto it = children_.rbegin() + 1; it != children_.rend(); ++it) {
    Tensor next = (*it)->backward(g, ws);
    ws.recycle(std::move(g));
    g = std::move(next);
  }
  return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& child : children_) child->collect_parameters(out);
}

void Sequential::collect_buffers(std::vector<NamedBuffer>& out) {
  for (auto& child : children_) child->collect_buffers(out);
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& child : children_) child->set_training(training);
}

Module& Sequential::child(std::size_t i) {
  CCQ_CHECK(i < children_.size(), "child index out of range");
  return *children_[i];
}

void Sequential::visit(const std::function<void(Module&)>& fn) {
  fn(*this);
  for (auto& child : children_) child->visit(fn);
}

Residual::Residual(ModulePtr main, ModulePtr shortcut, ModulePtr activation)
    : main_(std::move(main)),
      shortcut_(std::move(shortcut)),
      activation_(std::move(activation)) {
  CCQ_CHECK(main_ != nullptr, "residual block needs a main path");
}

Tensor Residual::forward(const Tensor& x, Workspace& ws) {
  Tensor y = main_->forward(x, ws);
  if (shortcut_ != nullptr) {
    Tensor s = shortcut_->forward(x, ws);
    y += s;
    ws.recycle(std::move(s));
  } else {
    CCQ_CHECK(same_shape(y, x),
              "identity shortcut requires matching shapes; use a projection");
    y += x;
  }
  if (activation_ != nullptr) {
    Tensor a = activation_->forward(y, ws);
    ws.recycle(std::move(y));
    y = std::move(a);
  }
  return y;
}

Tensor Residual::backward(const Tensor& grad_out, Workspace& ws) {
  // Avoid the legacy `Tensor g = grad_out` copy: read through a pointer
  // when there is no activation to differentiate.
  Tensor g_own;
  const Tensor* g = &grad_out;
  if (activation_ != nullptr) {
    g_own = activation_->backward(grad_out, ws);
    g = &g_own;
  }
  Tensor gx = main_->backward(*g, ws);
  if (shortcut_ != nullptr) {
    Tensor gs = shortcut_->backward(*g, ws);
    gx += gs;
    ws.recycle(std::move(gs));
  } else {
    gx += *g;
  }
  if (activation_ != nullptr) ws.recycle(std::move(g_own));
  return gx;
}

void Residual::collect_parameters(std::vector<Parameter*>& out) {
  main_->collect_parameters(out);
  if (shortcut_ != nullptr) shortcut_->collect_parameters(out);
  if (activation_ != nullptr) activation_->collect_parameters(out);
}

void Residual::collect_buffers(std::vector<NamedBuffer>& out) {
  main_->collect_buffers(out);
  if (shortcut_ != nullptr) shortcut_->collect_buffers(out);
  if (activation_ != nullptr) activation_->collect_buffers(out);
}

void Residual::set_training(bool training) {
  Module::set_training(training);
  main_->set_training(training);
  if (shortcut_ != nullptr) shortcut_->set_training(training);
  if (activation_ != nullptr) activation_->set_training(training);
}

void Residual::visit(const std::function<void(Module&)>& fn) {
  fn(*this);
  main_->visit(fn);
  if (shortcut_ != nullptr) shortcut_->visit(fn);
  if (activation_ != nullptr) activation_->visit(fn);
}

}  // namespace ccq::nn
