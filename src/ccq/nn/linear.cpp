#include "ccq/nn/linear.hpp"

#include "ccq/nn/init.hpp"
#include "ccq/tensor/gemm.hpp"

namespace ccq::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, bool bias,
               Rng& rng, std::string name)
    : in_features_(in_features), out_features_(out_features), has_bias_(bias) {
  CCQ_CHECK(in_features > 0 && out_features > 0, "invalid linear config");
  Tensor w({out_features, in_features});
  he_normal(w, in_features, rng);
  weight_ = Parameter(name + ".weight", std::move(w));
  if (has_bias_) bias_ = Parameter(name + ".bias", Tensor({out_features}));
}

Tensor Linear::forward(const Tensor& x, Workspace& ws) {
  CCQ_CHECK(x.rank() == 2 && x.dim(1) == in_features_,
            "Linear expects (N, in_features) input");
  if (training_) input_ = x;
  if (weight_hook_) {
    weight_hook_->quantize_into(weight_.value, qweight_);
  } else {
    qweight_ = weight_.value;
  }
  // y (N × out) = x (N × in) · Wᵀ (in × out)
  Tensor y = ws.tensor_uninit({x.dim(0), out_features_});
  matmul_nt_into(x, qweight_, y, exec());
  if (has_bias_) {
    const std::size_t n = y.dim(0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < out_features_; ++j) {
        y(i, j) += bias_.value.at(j);
      }
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out, Workspace& ws) {
  CCQ_CHECK(input_.rank() == 2, "backward before forward");
  CCQ_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == input_.dim(0) &&
                grad_out.dim(1) == out_features_,
            "Linear grad shape mismatch");
  // dW (out × in) = gyᵀ (out × N) · x (N × in)
  Tensor grad_qw = ws.tensor_uninit(weight_.value.shape());
  matmul_tn_into(grad_out, input_, grad_qw, exec());
  Tensor grad_w = weight_hook_
                      ? weight_hook_->backward(weight_.value, std::move(grad_qw))
                      : std::move(grad_qw);
  weight_.grad += grad_w;
  ws.recycle(std::move(grad_w));
  if (has_bias_) {
    const std::size_t n = grad_out.dim(0);
    for (std::size_t j = 0; j < out_features_; ++j) {
      float acc = 0.0f;
      for (std::size_t i = 0; i < n; ++i) acc += grad_out(i, j);
      bias_.grad.at(j) += acc;
    }
  }
  // dx (N × in) = gy (N × out) · W (out × in)
  Tensor grad_in = ws.tensor_uninit({grad_out.dim(0), in_features_});
  matmul_into(grad_out, qweight_, grad_in, exec());
  return grad_in;
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
  if (weight_hook_) weight_hook_->collect_parameters(out);
}

}  // namespace ccq::nn
