// Batch normalisation.
#pragma once

#include "ccq/nn/module.hpp"

namespace ccq::nn {

/// BatchNorm over (N, C, H, W): per-channel statistics across N·H·W.
/// Training mode uses batch statistics and maintains running estimates;
/// eval mode uses the running estimates.  Scale/shift (γ, β) are
/// learnable and exempt from weight decay.
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::size_t channels, float momentum = 0.1f,
                       float eps = 1e-5f, std::string name = "bn");

  Tensor forward(const Tensor& x, Workspace& ws) override;
  Tensor backward(const Tensor& grad_out, Workspace& ws) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<NamedBuffer>& out) override;
  std::string type_name() const override { return "BatchNorm2d"; }

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::size_t channels_;
  float momentum_, eps_;
  std::string name_;
  Parameter gamma_, beta_;
  Tensor running_mean_, running_var_;

  // Forward cache (training mode).
  Tensor input_;
  Tensor xhat_;
  std::vector<float> batch_mean_, batch_inv_std_;
};

}  // namespace ccq::nn
