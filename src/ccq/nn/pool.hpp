// Pooling and shape-adapter layers.
#pragma once

#include <vector>

#include "ccq/nn/module.hpp"

namespace ccq::nn {

/// Max pooling with square window/stride over (N, C, H, W).
class MaxPool2d : public Module {
 public:
  MaxPool2d(std::size_t kernel, std::size_t stride);
  Tensor forward(const Tensor& x, Workspace& ws) override;
  Tensor backward(const Tensor& grad_out, Workspace& ws) override;
  std::string type_name() const override { return "MaxPool2d"; }
  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }

 private:
  std::size_t kernel_, stride_;
  Shape in_shape_;
  std::vector<std::size_t> argmax_;  ///< flat input index per output element
};

/// Average pooling with square window/stride over (N, C, H, W).
class AvgPool2d : public Module {
 public:
  AvgPool2d(std::size_t kernel, std::size_t stride);
  Tensor forward(const Tensor& x, Workspace& ws) override;
  Tensor backward(const Tensor& grad_out, Workspace& ws) override;
  std::string type_name() const override { return "AvgPool2d"; }
  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }

 private:
  std::size_t kernel_, stride_;
  Shape in_shape_;
};

/// Global average pooling: (N, C, H, W) → (N, C).
class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& x, Workspace& ws) override;
  Tensor backward(const Tensor& grad_out, Workspace& ws) override;
  std::string type_name() const override { return "GlobalAvgPool"; }

 private:
  Shape in_shape_;
};

/// Flatten: (N, …) → (N, prod(…)).
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& x, Workspace& ws) override;
  Tensor backward(const Tensor& grad_out, Workspace& ws) override;
  std::string type_name() const override { return "Flatten"; }

 private:
  Shape in_shape_;
};

}  // namespace ccq::nn
