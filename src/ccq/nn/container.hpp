// Container modules: Sequential chains and residual blocks.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "ccq/nn/module.hpp"

namespace ccq::nn {

/// Chain of modules executed in order.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Construct and append a child; returns a reference to it.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto child = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *child;
    children_.push_back(std::move(child));
    return ref;
  }

  /// Append an already-constructed module.
  Module& add_module(ModulePtr m);

  Tensor forward(const Tensor& x, Workspace& ws) override;
  Tensor backward(const Tensor& grad_out, Workspace& ws) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<NamedBuffer>& out) override;
  void set_training(bool training) override;
  std::string type_name() const override { return "Sequential"; }

  std::size_t size() const { return children_.size(); }
  Module& child(std::size_t i);
  bool empty() const { return children_.empty(); }

  void visit(const std::function<void(Module&)>& fn) override;

 private:
  std::vector<ModulePtr> children_;
};

/// Residual block: y = act(main(x) + shortcut(x)).
/// The shortcut may be empty (identity).  The post-add activation is a
/// separate child so quantized activations can be substituted.
class Residual : public Module {
 public:
  Residual(ModulePtr main, ModulePtr shortcut, ModulePtr activation);

  Tensor forward(const Tensor& x, Workspace& ws) override;
  Tensor backward(const Tensor& grad_out, Workspace& ws) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<NamedBuffer>& out) override;
  void set_training(bool training) override;
  std::string type_name() const override { return "Residual"; }
  void visit(const std::function<void(Module&)>& fn) override;

  Module& main() { return *main_; }
  Module* shortcut() { return shortcut_.get(); }
  Module* activation() { return activation_.get(); }
  /// Replace the post-add activation (used when wiring quantized acts).
  void set_activation(ModulePtr act) { activation_ = std::move(act); }

 private:
  ModulePtr main_;
  ModulePtr shortcut_;    ///< nullptr = identity
  ModulePtr activation_;  ///< nullptr = linear (no activation)
};

}  // namespace ccq::nn
