// Learning-rate schedules.
//
// The paper's collaboration (fine-tuning) stage uses a *hybrid* schedule
// (§IV.g, Fig 4): hold a constant learning rate, and when the validation
// metric plateaus, briefly *raise* the learning rate and decay it back
// with a cosine — a perturbation that kicks the network out of the local
// minimum quantization pushed it into (motivated by SGDR warm restarts).
#pragma once

#include <vector>

namespace ccq::nn {

/// Stateful per-epoch learning-rate policy.  `next(metric)` is called once
/// per epoch with the current validation metric (higher = better) and
/// returns the learning rate to use for the *next* epoch.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual double next(double metric) = 0;
  virtual void reset() = 0;
};

/// Fixed learning rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(double lr) : lr_(lr) {}
  double next(double) override { return lr_; }
  void reset() override {}

 private:
  double lr_;
};

/// Multiply the rate by `gamma` every `step_epochs` epochs.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(double base_lr, int step_epochs, double gamma);
  double next(double) override;
  void reset() override { epoch_ = 0; }

 private:
  double base_lr_, gamma_;
  int step_epochs_;
  int epoch_ = 0;
};

/// Cosine annealing from `base_lr` down to `min_lr` over `period` epochs,
/// then restart (SGDR-style warm restarts).
class CosineRestartLr : public LrSchedule {
 public:
  CosineRestartLr(double base_lr, double min_lr, int period);
  double next(double) override;
  void reset() override { epoch_ = 0; }

 private:
  double base_lr_, min_lr_;
  int period_;
  int epoch_ = 0;
};

/// Linear warmup to `base_lr` over `warmup_epochs`, then delegate to an
/// inner schedule (or hold constant when none is given).
class WarmupLr : public LrSchedule {
 public:
  WarmupLr(double base_lr, int warmup_epochs, LrSchedule* inner = nullptr);
  double next(double metric) override;
  void reset() override;

 private:
  double base_lr_;
  int warmup_epochs_;
  LrSchedule* inner_;
  int epoch_ = 0;
};

/// Paper §IV.g hybrid schedule: constant `base_lr` until the metric fails
/// to improve by `min_delta` for `patience` consecutive epochs, then jump
/// to `bump_factor`·base_lr and cosine-decay back to base_lr over
/// `cosine_period` epochs; afterwards resume plateau watching.
class HybridPlateauCosineLr : public LrSchedule {
 public:
  struct Config {
    double base_lr = 1e-4;
    double bump_factor = 10.0;
    int patience = 3;
    double min_delta = 1e-4;
    int cosine_period = 5;
  };

  explicit HybridPlateauCosineLr(Config config);
  double next(double metric) override;
  void reset() override;

  /// True while a cosine excursion is in flight (exposed for tests/plots).
  bool in_cosine_phase() const { return cosine_left_ > 0; }

  /// Mutable schedule state, exposed so a persisted controller resumes
  /// mid-plateau / mid-excursion bit-exactly.
  struct State {
    double best_metric = 0.0;
    int stall_epochs = 0;
    int cosine_left = 0;
  };
  State state() const { return {best_metric_, stall_epochs_, cosine_left_}; }
  void set_state(const State& state) {
    best_metric_ = state.best_metric;
    stall_epochs_ = state.stall_epochs;
    cosine_left_ = state.cosine_left;
  }

 private:
  Config config_;
  double best_metric_;
  int stall_epochs_ = 0;
  int cosine_left_ = 0;
};

}  // namespace ccq::nn
