// Elementwise activations.
//
// Quantized activations (DoReFa clip, PACT with learnable clip) live in
// ccq::quant; this header provides the full-precision baseline.
#pragma once

#include "ccq/nn/module.hpp"

namespace ccq::nn {

/// Rectified linear unit.
class ReLU : public Module {
 public:
  Tensor forward(const Tensor& x, Workspace& ws) override;
  Tensor backward(const Tensor& grad_out, Workspace& ws) override;
  std::string type_name() const override { return "ReLU"; }

 private:
  Tensor mask_;  ///< 1 where x > 0
};

}  // namespace ccq::nn
