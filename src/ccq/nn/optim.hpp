// Stochastic gradient descent, the optimizer the paper fine-tunes with.
#pragma once

#include <vector>

#include "ccq/nn/module.hpp"

namespace ccq::nn {

struct SgdConfig {
  double lr = 0.1;
  double momentum = 0.9;
  double weight_decay = 5e-4;
  bool nesterov = false;
};

/// SGD with momentum and decoupled per-parameter weight-decay/lr scaling
/// (Parameter::weight_decay_scale / lr_scale).
class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, SgdConfig config);

  /// Apply one update from the accumulated gradients.
  void step();

  /// Clear all gradients.
  void zero_grad();

  double lr() const { return config_.lr; }
  void set_lr(double lr) { config_.lr = lr; }
  const SgdConfig& config() const { return config_; }

  /// Re-bind to a (possibly changed) parameter list, resetting momentum.
  void rebind(std::vector<Parameter*> params);

  /// Momentum buffers, aligned with the bound parameter list.  Exposed
  /// so controller save/restore round-trips optimizer state bit-exactly.
  const std::vector<Tensor>& velocity() const { return velocity_; }
  void set_velocity(std::vector<Tensor> velocity);

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig config_;
};

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;  ///< decoupled (AdamW-style)
};

/// Adam with decoupled weight decay.  Used by some fine-tuning recipes;
/// honours the same per-parameter scaling knobs as Sgd.
class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamConfig config);

  void step();
  void zero_grad();

  double lr() const { return config_.lr; }
  void set_lr(double lr) { config_.lr = lr; }
  const AdamConfig& config() const { return config_; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  AdamConfig config_;
  long step_count_ = 0;
};

}  // namespace ccq::nn
