#include "ccq/nn/loss.hpp"

#include <cmath>

#include "ccq/common/error.hpp"

namespace ccq::nn {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<int>& labels) {
  CCQ_CHECK(logits.rank() == 2, "loss expects (N, C) logits");
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  CCQ_CHECK(n > 0, "loss over an empty batch");
  CCQ_CHECK(labels.size() == n, "label count mismatch");
  if (ws_ != nullptr && probs_.empty()) {
    probs_ = ws_->tensor_uninit(logits.shape());  // pool-backed cache
  } else {
    probs_.resize(logits.shape());  // capacity-reusing; fully overwritten
  }
  labels_ = labels;
  const float* lp = logits.data().data();
  float* pp = probs_.data().data();
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = lp + i * c;
    float* prow = pp + i * c;
    const int label = labels[i];
    CCQ_CHECK(label >= 0 && static_cast<std::size_t>(label) < c,
              "label out of range");
    float maxv = row[0];
    for (std::size_t j = 1; j < c; ++j) maxv = std::max(maxv, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      prow[j] = std::exp(row[j] - maxv);
      denom += prow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < c; ++j) prow[j] *= inv;
    total += -std::log(
        std::max(static_cast<double>(prow[label]), 1e-12));
  }
  return static_cast<float>(total / static_cast<double>(n));
}

void SoftmaxCrossEntropy::backward_into(Tensor& grad) const {
  CCQ_CHECK(!probs_.empty(), "backward before forward");
  const std::size_t n = probs_.dim(0), c = probs_.dim(1);
  grad.resize(probs_.shape());
  const float* pp = probs_.data().data();
  float* gp = grad.data().data();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < c; ++j) gp[i * c + j] = pp[i * c + j];
    gp[i * c + static_cast<std::size_t>(labels_[i])] -= 1.0f;
    for (std::size_t j = 0; j < c; ++j) gp[i * c + j] *= inv_n;
  }
}

Tensor SoftmaxCrossEntropy::backward() const {
  Tensor grad;
  backward_into(grad);
  return grad;
}

float SoftmaxCrossEntropy::accuracy(const Tensor& logits,
                                    const std::vector<int>& labels) {
  CCQ_CHECK(logits.rank() == 2, "accuracy expects (N, C) logits");
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  CCQ_CHECK(labels.size() == n, "label count mismatch");
  const float* lp = logits.data().data();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = lp + i * c;
    std::size_t best = 0;
    for (std::size_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (static_cast<int>(best) == labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(n);
}

}  // namespace ccq::nn
