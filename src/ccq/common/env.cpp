#include "ccq/common/env.hpp"

#include <cstdlib>

namespace ccq {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int>(parsed);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string{v};
}

int bench_scale() { return env_int("CCQ_BENCH_SCALE", 1); }

}  // namespace ccq
