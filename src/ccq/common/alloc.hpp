// Allocation instrumentation for float tensor storage.
//
// `FloatVec` is the storage type behind `Tensor` and the `Workspace`
// buffer pool.  It is a std::vector<float> whose allocator bumps a
// process-wide counter on every heap allocation when the build defines
// CCQ_COUNT_ALLOCS (a CMake option, ON by default; the definition is
// PUBLIC on ccq_common so every translation unit agrees on it).  Tests
// and benches read the counter through `alloc_stats` to assert the
// steady-state contract: a warm workspace-backed forward performs zero
// new float-storage allocations.
//
// Scope note: the counter covers float *storage* — the dominant term by
// orders of magnitude.  Small bookkeeping allocations (Shape vectors,
// pool map nodes) go through std::allocator and are not counted.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccq {

namespace alloc_stats {

#ifdef CCQ_COUNT_ALLOCS
namespace detail {
inline std::atomic<std::uint64_t> count{0};
inline std::atomic<std::uint64_t> bytes{0};
}  // namespace detail

/// Float-storage heap allocations since the last reset().
inline std::uint64_t count() { return detail::count.load(std::memory_order_relaxed); }
/// Bytes requested by those allocations.
inline std::uint64_t bytes() { return detail::bytes.load(std::memory_order_relaxed); }
inline void reset() {
  detail::count.store(0, std::memory_order_relaxed);
  detail::bytes.store(0, std::memory_order_relaxed);
}
inline void record(std::size_t n_bytes) {
  detail::count.fetch_add(1, std::memory_order_relaxed);
  detail::bytes.fetch_add(n_bytes, std::memory_order_relaxed);
}
constexpr bool enabled() { return true; }
#else
inline std::uint64_t count() { return 0; }
inline std::uint64_t bytes() { return 0; }
inline void reset() {}
inline void record(std::size_t) {}
constexpr bool enabled() { return false; }
#endif

}  // namespace alloc_stats

/// std::allocator drop-in that reports each allocation to alloc_stats.
/// Stateless, so it adds no footprint and all instances compare equal.
/// `Align` raises the storage alignment above the type's natural one —
/// the integer pools use 64 so SIMD kernels can assume cache-line-aligned
/// panel bases (vector *rows* may still be unaligned; kernels use
/// unaligned loads and the alignment only buys split-free starts).
template <typename T, std::size_t Align = alignof(T)>
struct CountingAllocator {
  using value_type = T;
  // Explicit rebind: the non-type Align parameter defeats the default
  // allocator_traits rebind (which only handles type parameter packs).
  template <typename U>
  struct rebind {
    using other = CountingAllocator<U, Align>;
  };

  CountingAllocator() noexcept = default;
  template <typename U, std::size_t A>
  CountingAllocator(const CountingAllocator<U, A>&) noexcept {}

  T* allocate(std::size_t n) {
    alloc_stats::record(n * sizeof(T));
    if constexpr (Align > alignof(std::max_align_t)) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{Align}));
    } else {
      return std::allocator<T>{}.allocate(n);
    }
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if constexpr (Align > alignof(std::max_align_t)) {
      ::operator delete(p, n * sizeof(T), std::align_val_t{Align});
    } else {
      std::allocator<T>{}.deallocate(p, n);
    }
  }

  friend bool operator==(const CountingAllocator&, const CountingAllocator&) {
    return true;
  }
};

/// Storage type for Tensor data and Workspace pool buffers.
using FloatVec = std::vector<float, CountingAllocator<float>>;

/// Storage types for the Workspace's integer pools (igemm activation
/// codes, im2col buffers, and the vector kernels' repacked int16 / uint8
/// activation panels).  Counted by the same allocator so the warm
/// zero-allocations contract covers the integer datapath too, and
/// 64-byte aligned for split-free vector loads from the buffer base.
using Int32Vec = std::vector<std::int32_t, CountingAllocator<std::int32_t, 64>>;
using Int16Vec = std::vector<std::int16_t, CountingAllocator<std::int16_t, 64>>;
using ByteVec = std::vector<std::uint8_t, CountingAllocator<std::uint8_t, 64>>;

}  // namespace ccq
