#include "ccq/common/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "ccq/common/error.hpp"

namespace ccq::telemetry {

namespace detail {

std::atomic<bool> g_metrics_enabled{[] {
  const char* env = std::getenv("CCQ_METRICS");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}()};

}  // namespace detail

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

// ---- names -----------------------------------------------------------------

const char* counter_name(Counter id) {
  switch (id) {
    case Counter::kProbes: return "ccq.probes";
    case Counter::kPicks: return "ccq.picks";
    case Counter::kRecoveryEpochs: return "ccq.recovery_epochs";
    case Counter::kWorkspaceHits: return "workspace.acquire_hits";
    case Counter::kWorkspaceMisses: return "workspace.acquire_misses";
    case Counter::kTraceEvents: return "trace.events";
    case Counter::kServeRequests: return "serve.requests";
    case Counter::kServeRejected: return "serve.rejected";
    case Counter::kServeBatches: return "serve.batches";
    case Counter::kServeShed: return "serve.shed";
    case Counter::kServeDeadlineMiss: return "serve.deadline_miss";
    case Counter::kCount: break;
  }
  return "?";
}

const char* gauge_name(Gauge id) {
  switch (id) {
    case Gauge::kLambda: return "ccq.lambda";
    case Gauge::kValAccuracy: return "ccq.val_accuracy";
    case Gauge::kCompression: return "ccq.compression";
    case Gauge::kLr: return "ccq.lr";
    case Gauge::kServeQueueDepth: return "serve.queue_depth";
    case Gauge::kCount: break;
  }
  return "?";
}

const char* timer_name(Timer id) {
  switch (id) {
    case Timer::kGemm: return "gemm";
    case Timer::kIgemm: return "hw.igemm";
    case Timer::kIgemmScalar: return "hw.igemm.scalar";
    case Timer::kIgemmVec16: return "hw.igemm.vec16";
    case Timer::kIgemmVecPacked: return "hw.igemm.vec_packed";
    case Timer::kHwRequant: return "hw.requant";
    case Timer::kConvForward: return "conv.forward";
    case Timer::kConvBackward: return "conv.backward";
    case Timer::kProbeEval: return "probe.eval";
    case Timer::kRecoveryEpoch: return "recovery.epoch";
    case Timer::kWorkspaceAcquire: return "workspace.acquire";
    case Timer::kServeLatency: return "serve.latency";
    case Timer::kServeBatchSize: return "serve.batch_size";
    case Timer::kCount: break;
  }
  return "?";
}

// ---- storage ---------------------------------------------------------------
// Everything is statically sized and atomic: recording never allocates,
// never locks, and is race-free under ThreadPool workers (TSan tier).

namespace {

struct TimerCell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> min_ns{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_ns{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
};

std::array<std::atomic<std::uint64_t>,
           static_cast<std::size_t>(Counter::kCount)>
    g_counters{};
// Gauges hold doubles bit-cast through uint64 so plain atomics suffice.
std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(Gauge::kCount)>
    g_gauges{};
std::array<TimerCell, static_cast<std::size_t>(Timer::kCount)> g_timers{};

int bucket_of(std::uint64_t ns) {
  const int b = static_cast<int>(std::bit_width(ns));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

TimerStats stats_of(const TimerCell& cell) {
  TimerStats stats;
  stats.count = cell.count.load(std::memory_order_relaxed);
  stats.total_ns = cell.total_ns.load(std::memory_order_relaxed);
  const std::uint64_t min = cell.min_ns.load(std::memory_order_relaxed);
  stats.min_ns = stats.count == 0 ? 0 : min;
  stats.max_ns = cell.max_ns.load(std::memory_order_relaxed);
  for (int b = 0; b < kHistogramBuckets; ++b) {
    stats.buckets[static_cast<std::size_t>(b)] =
        cell.buckets[static_cast<std::size_t>(b)].load(
            std::memory_order_relaxed);
  }
  return stats;
}

void reset_cell(TimerCell& cell) {
  cell.count.store(0, std::memory_order_relaxed);
  cell.total_ns.store(0, std::memory_order_relaxed);
  cell.min_ns.store(~std::uint64_t{0}, std::memory_order_relaxed);
  cell.max_ns.store(0, std::memory_order_relaxed);
  for (auto& b : cell.buckets) b.store(0, std::memory_order_relaxed);
}

}  // namespace

void add(Counter id, std::uint64_t delta) {
  if (!metrics_enabled()) return;
  g_counters[static_cast<std::size_t>(id)].fetch_add(
      delta, std::memory_order_relaxed);
}

void set_gauge(Gauge id, double value) {
  if (!metrics_enabled()) return;
  g_gauges[static_cast<std::size_t>(id)].store(std::bit_cast<std::uint64_t>(value),
                                               std::memory_order_relaxed);
}

void record_duration(Timer id, std::uint64_t ns) {
  if (!metrics_enabled()) return;
  TimerCell& cell = g_timers[static_cast<std::size_t>(id)];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.total_ns.fetch_add(ns, std::memory_order_relaxed);
  atomic_min(cell.min_ns, ns);
  atomic_max(cell.max_ns, ns);
  cell.buckets[static_cast<std::size_t>(bucket_of(ns))].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t ScopedTimer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t counter_value(Counter id) {
  return g_counters[static_cast<std::size_t>(id)].load(
      std::memory_order_relaxed);
}

double gauge_value(Gauge id) {
  return std::bit_cast<double>(g_gauges[static_cast<std::size_t>(id)].load(
      std::memory_order_relaxed));
}

TimerStats timer_stats(Timer id) {
  return stats_of(g_timers[static_cast<std::size_t>(id)]);
}

// ---- named metrics ---------------------------------------------------------
// Fixed-capacity slot arrays (stable addresses, no reallocation) so the
// record path stays lock-free; only registration takes the mutex.

namespace {

struct NamedRegistry {
  std::mutex mutex;
  // One name table per kind; slot i of the matching storage array
  // belongs to names[i].  size() doubles as the next free id.
  std::array<std::vector<std::string>, 3> names;
};

NamedRegistry& named_registry() {
  static NamedRegistry registry;
  return registry;
}

std::array<std::atomic<std::uint64_t>, kMaxNamedMetrics> g_named_counters{};
std::array<std::atomic<std::uint64_t>, kMaxNamedMetrics> g_named_gauges{};
std::array<TimerCell, kMaxNamedMetrics> g_named_timers{};

}  // namespace

int named_metric(NamedKind kind, const std::string& name) {
  NamedRegistry& registry = named_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto& names = registry.names[static_cast<std::size_t>(kind)];
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  // Capacity exhaustion degrades to "metrics disabled for this series"
  // (-1 no-ops through every record path) rather than throwing: the
  // serving stack registers per-model series at load time, and a
  // telemetry capacity limit must not turn into a model-load failure.
  if (names.size() >= kMaxNamedMetrics) return -1;
  names.push_back(name);
  return static_cast<int>(names.size() - 1);
}

int find_named_metric(NamedKind kind, const std::string& name) {
  NamedRegistry& registry = named_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto& names = registry.names[static_cast<std::size_t>(kind)];
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void add_named(int counter_id, std::uint64_t delta) {
  if (!metrics_enabled() || counter_id < 0) return;
  g_named_counters[static_cast<std::size_t>(counter_id)].fetch_add(
      delta, std::memory_order_relaxed);
}

void set_named_gauge(int gauge_id, double value) {
  if (!metrics_enabled() || gauge_id < 0) return;
  g_named_gauges[static_cast<std::size_t>(gauge_id)].store(
      std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
}

void record_named_duration(int timer_id, std::uint64_t ns) {
  if (!metrics_enabled() || timer_id < 0) return;
  TimerCell& cell = g_named_timers[static_cast<std::size_t>(timer_id)];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.total_ns.fetch_add(ns, std::memory_order_relaxed);
  atomic_min(cell.min_ns, ns);
  atomic_max(cell.max_ns, ns);
  cell.buckets[static_cast<std::size_t>(bucket_of(ns))].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t named_counter_value(int counter_id) {
  if (counter_id < 0) return 0;
  return g_named_counters[static_cast<std::size_t>(counter_id)].load(
      std::memory_order_relaxed);
}

double named_gauge_value(int gauge_id) {
  if (gauge_id < 0) return 0.0;
  return std::bit_cast<double>(
      g_named_gauges[static_cast<std::size_t>(gauge_id)].load(
          std::memory_order_relaxed));
}

TimerStats named_timer_stats(int timer_id) {
  if (timer_id < 0) return TimerStats{};
  return stats_of(g_named_timers[static_cast<std::size_t>(timer_id)]);
}

std::uint64_t approx_quantile(const TimerStats& stats, double q) {
  if (stats.count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(stats.count))));
  std::uint64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    seen += stats.buckets[static_cast<std::size_t>(b)];
    if (seen >= target) {
      return b >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << b);
    }
  }
  return stats.max_ns;
}

void reset_metrics() {
  for (auto& c : g_counters) c.store(0, std::memory_order_relaxed);
  for (auto& g : g_gauges) g.store(0, std::memory_order_relaxed);
  for (auto& cell : g_timers) reset_cell(cell);
  // Named slots are zeroed but stay registered: ids handed out earlier
  // remain valid across test-style resets.
  for (auto& c : g_named_counters) c.store(0, std::memory_order_relaxed);
  for (auto& g : g_named_gauges) g.store(0, std::memory_order_relaxed);
  for (auto& cell : g_named_timers) reset_cell(cell);
}

namespace {

Json timer_json(const TimerStats& stats) {
  Json t = Json::object();
  t.set("count", static_cast<double>(stats.count));
  t.set("total_ns", static_cast<double>(stats.total_ns));
  t.set("min_ns", static_cast<double>(stats.min_ns));
  t.set("max_ns", static_cast<double>(stats.max_ns));
  t.set("mean_ns", stats.count == 0
                       ? 0.0
                       : static_cast<double>(stats.total_ns) /
                             static_cast<double>(stats.count));
  // Histogram as [upper_bound_ns, count] pairs for non-empty buckets.
  Json hist = Json::array();
  for (int b = 0; b < kHistogramBuckets; ++b) {
    const std::uint64_t n = stats.buckets[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    Json pair = Json::array();
    pair.push_back(static_cast<double>(b >= 63 ? ~std::uint64_t{0}
                                               : (std::uint64_t{1} << b)));
    pair.push_back(static_cast<double>(n));
    hist.push_back(std::move(pair));
  }
  t.set("histogram_ns", std::move(hist));
  return t;
}

// Snapshot one kind's registered names (ids are the indices).
std::vector<std::string> named_names(NamedKind kind) {
  NamedRegistry& registry = named_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.names[static_cast<std::size_t>(kind)];
}

}  // namespace

Json metrics_to_json() {
  Json root = Json::object();
  Json counters = Json::object();
  for (int i = 0; i < static_cast<int>(Counter::kCount); ++i) {
    const auto id = static_cast<Counter>(i);
    counters.set(counter_name(id),
                 static_cast<double>(counter_value(id)));
  }
  const auto counter_names = named_names(NamedKind::kCounter);
  for (std::size_t i = 0; i < counter_names.size(); ++i) {
    counters.set(counter_names[i], static_cast<double>(named_counter_value(
                                       static_cast<int>(i))));
  }
  root.set("counters", std::move(counters));

  Json gauges = Json::object();
  for (int i = 0; i < static_cast<int>(Gauge::kCount); ++i) {
    const auto id = static_cast<Gauge>(i);
    gauges.set(gauge_name(id), gauge_value(id));
  }
  const auto gauge_names = named_names(NamedKind::kGauge);
  for (std::size_t i = 0; i < gauge_names.size(); ++i) {
    gauges.set(gauge_names[i], named_gauge_value(static_cast<int>(i)));
  }
  root.set("gauges", std::move(gauges));

  Json timers = Json::object();
  for (int i = 0; i < static_cast<int>(Timer::kCount); ++i) {
    const auto id = static_cast<Timer>(i);
    timers.set(timer_name(id), timer_json(timer_stats(id)));
  }
  const auto timer_names = named_names(NamedKind::kTimer);
  for (std::size_t i = 0; i < timer_names.size(); ++i) {
    timers.set(timer_names[i],
               timer_json(named_timer_stats(static_cast<int>(i))));
  }
  root.set("timers", std::move(timers));
  return root;
}

bool save_metrics(const std::string& path) {
  return metrics_to_json().save(path);
}

// ---- trace sink ------------------------------------------------------------

namespace {

struct TraceState {
  std::mutex mutex;
  std::ofstream out;
  std::atomic<bool> enabled{false};
};

TraceState& trace_state() {
  static TraceState state;
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("CCQ_TRACE");
    if (env != nullptr && *env != '\0') {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.out.open(env, std::ios::app);
      CCQ_CHECK(static_cast<bool>(state.out),
                std::string("cannot open CCQ_TRACE file ") + env);
      state.enabled.store(true, std::memory_order_relaxed);
    }
  });
  return state;
}

}  // namespace

void set_trace_path(const std::string& path) {
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.out.is_open()) state.out.close();
  state.enabled.store(false, std::memory_order_relaxed);
  if (path.empty()) return;
  state.out.open(path, std::ios::app);
  CCQ_CHECK(static_cast<bool>(state.out), "cannot open trace file " + path);
  state.enabled.store(true, std::memory_order_relaxed);
}

bool trace_enabled() {
  return trace_state().enabled.load(std::memory_order_relaxed);
}

void trace_event(const Json& event) {
  TraceState& state = trace_state();
  if (!state.enabled.load(std::memory_order_relaxed)) return;
  const std::string line = event.dump(-1);
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.out.is_open()) return;
    state.out << line << '\n';
  }
  add(Counter::kTraceEvents);
}

void flush_trace() {
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.out.is_open()) state.out.flush();
}

}  // namespace ccq::telemetry
