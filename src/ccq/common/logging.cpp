#include "ccq/common/logging.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>

namespace ccq {

namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("CCQ_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  const std::string v{env};
  if (v == "trace") return LogLevel::kTrace;
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

LogLevel& level_ref() {
  static LogLevel level = parse_env_level();
  return level;
}

}  // namespace

LogLevel log_level() { return level_ref(); }
void set_log_level(LogLevel level) { level_ref() = level; }

namespace detail {

void write_log_line(const std::string& line) {
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  std::cerr << line << '\n';
}

}  // namespace detail

}  // namespace ccq
