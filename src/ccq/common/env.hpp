// Environment-variable helpers for sizing experiments.
#pragma once

#include <string>

namespace ccq {

/// Read an integer env var, falling back to `fallback` when unset/invalid.
int env_int(const char* name, int fallback);

/// Read a string env var, falling back when unset.
std::string env_str(const char* name, const std::string& fallback);

/// Bench scale knob: 0 = smoke (CI), 1 = default, 2 = long runs.
/// Read from $CCQ_BENCH_SCALE.
int bench_scale();

}  // namespace ccq
