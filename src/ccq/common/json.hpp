// Minimal JSON reader/writer for experiment reports and telemetry.
//
// The bench harnesses emit machine-readable run records (per-step CCQ
// traces, table rows) alongside the console tables so results can be
// plotted or diffed without re-running experiments, and the telemetry
// subsystem emits JSONL event traces.  `parse` exists so tools and tests
// can read those artifacts back (trace-schema validation, resume
// tooling).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace ccq {

/// A JSON value (object keys stay in insertion order).
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool v) : value_(v) {}
  Json(double v) : value_(v) {}
  Json(int v) : value_(static_cast<double>(v)) {}
  Json(long v) : value_(static_cast<double>(v)) {}
  Json(std::size_t v) : value_(static_cast<double>(v)) {}
  Json(const char* v) : value_(std::string(v)) {}
  Json(std::string v) : value_(std::move(v)) {}

  /// Build an array.
  static Json array();
  /// Build an object.
  static Json object();

  /// Parse a JSON document (single value; surrounding whitespace ok).
  /// Throws `Error` on malformed input or trailing garbage.
  static Json parse(const std::string& text);

  /// Append to an array (must be an array).
  Json& push_back(Json v);
  /// Set an object field (must be an object); returns the stored value.
  Json& set(const std::string& key, Json v);
  /// Access an object field (creates the object on demand).
  Json& operator[](const std::string& key);

  bool is_null() const;
  bool is_bool() const;
  bool is_number() const;
  bool is_string() const;
  bool is_array() const;
  bool is_object() const;
  std::size_t size() const;

  /// Typed reads; each throws `Error` on a type mismatch.
  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;

  /// True when this is an object with field `key`.
  bool contains(const std::string& key) const;
  /// Object field access; throws when not an object or `key` is absent.
  const Json& at(const std::string& key) const;
  /// Array element access; throws when not an array or out of range.
  const Json& at(std::size_t index) const;

  /// Serialise; `indent` < 0 means compact single-line output.
  std::string dump(int indent = 2) const;

  /// Convenience: write to a file; returns false on IO error.
  bool save(const std::string& path, int indent = 2) const;

 private:
  struct Array;
  struct Object;
  using Value = std::variant<std::nullptr_t, bool, double, std::string,
                             std::shared_ptr<Array>, std::shared_ptr<Object>>;

  struct Array {
    std::vector<Json> items;
  };
  struct Object {
    std::vector<std::pair<std::string, Json>> fields;
  };

  void dump_to(std::string& out, int indent, int depth) const;
  static void append_escaped(std::string& out, const std::string& s);

  Value value_;
};

}  // namespace ccq
