// Error handling primitives shared across the CCQ libraries.
//
// We use exceptions for contract violations (shape mismatches, invalid
// configuration) because the library is host-side tooling, not a
// hard-real-time kernel.  `CCQ_CHECK` is the single choke point so that
// every failure carries file/line context.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ccq {

/// Exception type thrown on any contract violation inside the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise(const char* file, int line, const char* cond,
                               const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace ccq

/// Check a condition; on failure throw ccq::Error with context.
/// Usage: CCQ_CHECK(a == b) << optional stream-style message is NOT
/// supported; pass the message as the second argument instead:
///   CCQ_CHECK(a == b, "shapes differ");
#define CCQ_CHECK(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::ccq::detail::raise(__FILE__, __LINE__, #cond,                     \
                           ::std::string{__VA_ARGS__});                   \
    }                                                                     \
  } while (false)

/// Check that is kept in release builds too (alias; all checks are kept).
#define CCQ_ASSERT(cond, ...) CCQ_CHECK(cond, ##__VA_ARGS__)
