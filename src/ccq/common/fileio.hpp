// Crash-safe file output + content hashing.
//
// Snapshots, controller state and serve artifacts are the repo's durable
// outputs; a process killed mid-write must never leave a truncated file
// that a later `load_*` half-parses.  `atomic_write_file` gives every
// writer the standard fix: stream into a sibling temp file, then rename
// over the target (rename within a directory is atomic on POSIX).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace ccq {

/// Write `path` atomically: `writer` streams into `<path>.tmp`, which is
/// flushed, closed and renamed over `path` only if every write succeeded.
/// On writer failure (exception or stream error) the temp file is removed
/// and the previous contents of `path`, if any, are left untouched.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// 64-bit FNV-1a over a byte range (artifact checksums).  Chainable:
/// pass the previous digest as `seed` to hash discontiguous pieces.
inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = kFnv1aOffset);

}  // namespace ccq
