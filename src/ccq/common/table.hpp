// Plain-text table printer used by the bench harnesses to render the
// paper's tables and figure series as aligned console output plus a CSV
// sidecar for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ccq {

/// Accumulates rows of strings and prints them as an aligned table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Add a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a separator under the header.
  void print(std::ostream& os) const;

  /// Render as CSV (no alignment, comma separated, quoted when needed).
  void print_csv(std::ostream& os) const;

  /// Write the CSV form to a file; returns false on IO failure.
  bool save_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

  /// Format helper: fixed-precision float to string.
  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccq
