// Minimal command-line argument parser for the ccq tools.
//
// Grammar: `tool <command> [--key value]... [--flag]...`.  Unknown keys
// are collected and can be rejected by the caller; typed getters fall
// back to defaults.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ccq {

class Args {
 public:
  /// Parse argv (argv[0] skipped).  The first non-flag token becomes the
  /// command; `--key value` pairs and bare `--flag`s follow.
  Args(int argc, const char* const* argv);

  const std::string& command() const { return command_; }

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  int get_int(const std::string& key, int fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_flag(const std::string& key) const { return has(key); }

  /// Comma-separated integer list, e.g. --ladder 8,4,2.
  std::vector<int> get_int_list(const std::string& key,
                                std::vector<int> fallback) const;

  /// Keys that were provided but never queried (typo detection).
  std::vector<std::string> unused() const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace ccq
