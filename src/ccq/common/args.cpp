#include "ccq/common/args.hpp"

#include <cstdlib>
#include <sstream>

#include "ccq/common/error.hpp"

namespace ccq {

Args::Args(int argc, const char* const* argv) {
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    command_ = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    std::string token = argv[i];
    CCQ_CHECK(token.rfind("--", 0) == 0, "expected --key, got: " + token);
    const std::string key = token.substr(2);
    CCQ_CHECK(!key.empty(), "empty flag name");
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[key] = argv[i + 1];
      ++i;
    } else {
      values_[key] = "";  // bare flag
    }
  }
}

bool Args::has(const std::string& key) const {
  queried_[key] = true;
  return values_.count(key) != 0;
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int Args::get_int(const std::string& key, int fallback) const {
  const std::string v = get(key, "");
  if (v.empty()) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v.c_str(), &end, 10);
  CCQ_CHECK(end != v.c_str() && *end == '\0',
            "--" + key + " expects an integer, got: " + v);
  return static_cast<int>(parsed);
}

double Args::get_double(const std::string& key, double fallback) const {
  const std::string v = get(key, "");
  if (v.empty()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  CCQ_CHECK(end != v.c_str() && *end == '\0',
            "--" + key + " expects a number, got: " + v);
  return parsed;
}

std::vector<int> Args::get_int_list(const std::string& key,
                                    std::vector<int> fallback) const {
  const std::string v = get(key, "");
  if (v.empty()) return fallback;
  std::vector<int> out;
  std::stringstream ss(v);
  std::string part;
  while (std::getline(ss, part, ',')) {
    char* end = nullptr;
    const long parsed = std::strtol(part.c_str(), &end, 10);
    CCQ_CHECK(end != part.c_str() && *end == '\0',
              "--" + key + " expects integers, got: " + part);
    out.push_back(static_cast<int>(parsed));
  }
  CCQ_CHECK(!out.empty(), "--" + key + " list is empty");
  return out;
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!queried_.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace ccq
