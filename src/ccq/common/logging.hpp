// Minimal leveled logger.
//
// The CCQ controller narrates long-running experiments (competition
// rounds, recovery epochs); benches set the level from the environment
// variable CCQ_LOG (trace|debug|info|warn|error, default info).
#pragma once

#include <sstream>
#include <string>

namespace ccq {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log level (process-wide). Initialised from $CCQ_LOG once.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {

/// Emit one complete line to stderr under a process-wide mutex, so
/// concurrent log lines (ThreadPool workers, observers) never interleave
/// mid-line.
void write_log_line(const std::string& line);

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : enabled_(level >= log_level()) {
    if (enabled_) os_ << '[' << tag << "] ";
  }
  ~LogLine() {
    if (enabled_) write_log_line(os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace ccq

#define CCQ_LOG_TRACE ::ccq::detail::LogLine(::ccq::LogLevel::kTrace, "trace")
#define CCQ_LOG_DEBUG ::ccq::detail::LogLine(::ccq::LogLevel::kDebug, "debug")
#define CCQ_LOG_INFO ::ccq::detail::LogLine(::ccq::LogLevel::kInfo, "info")
#define CCQ_LOG_WARN ::ccq::detail::LogLine(::ccq::LogLevel::kWarn, "warn")
#define CCQ_LOG_ERROR ::ccq::detail::LogLine(::ccq::LogLevel::kError, "error")
