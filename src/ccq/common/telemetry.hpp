// Telemetry: process-wide metrics registry + JSONL event-trace sink.
//
// The CCQ controller is a long-running accuracy-driven loop; search-based
// mixed-precision frameworks (HAQ, ReLeQ) live or die by per-step signal
// traces.  This module exposes the equivalent as first-class data:
//
//   * Metrics — enum-indexed counters, gauges and log₂-bucketed duration
//     histograms with fixed pre-sized storage (no hashing, no heap
//     allocation on the record path, relaxed atomics so recording from
//     `ThreadPool` workers is race-free).  Enabled via `CCQ_METRICS=1`
//     or `set_metrics_enabled(true)`; when disabled every record call is
//     a single relaxed load + branch, so instrumented hot paths (GEMM,
//     conv, probe eval, workspace acquire) stay within noise.
//   * Scoped timers — RAII wall-clock spans feeding the histograms.
//   * Trace — a JSONL sink (`ccq::Json`, one compact object per line)
//     for structured controller events (probe / pick / recovery epoch;
//     see core/observers.hpp for the schema).  Enabled via
//     `CCQ_TRACE=<path>` or `set_trace_path`.
//
// docs/OBSERVABILITY.md documents metric names, the event schema and
// measured overheads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "ccq/common/json.hpp"

namespace ccq::telemetry {

// ---- enablement ------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_metrics_enabled;  // seeded from $CCQ_METRICS
}  // namespace detail

/// True when metric recording is on.  This is the hot-path gate: a single
/// relaxed atomic load.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on);

// ---- metric ids ------------------------------------------------------------

enum class Counter : int {
  kProbes,            ///< competition probe evaluations
  kPicks,             ///< quantization steps committed
  kRecoveryEpochs,    ///< collaboration fine-tuning epochs
  kWorkspaceHits,     ///< pool acquisitions served from a bucket
  kWorkspaceMisses,   ///< pool acquisitions that heap-allocated
  kTraceEvents,       ///< JSONL lines written to the trace sink
  kServeRequests,     ///< inference requests admitted to the serve queue
  kServeRejected,     ///< inference requests rejected (queue full / stopped)
  kServeBatches,      ///< dynamic batches flushed by serve workers
  kServeShed,         ///< requests shed by admission control (rejected at the
                      ///< door on a full queue, or evicted for priority)
  kServeDeadlineMiss, ///< requests dropped expired at dequeue time
  kCount
};

enum class Gauge : int {
  kLambda,           ///< current Eq. 7 mixing coefficient
  kValAccuracy,      ///< last validation accuracy seen by the controller
  kCompression,      ///< current model compression ratio
  kLr,               ///< last learning rate applied
  kServeQueueDepth,  ///< serve request queue depth after the last op
  kCount
};

enum class Timer : int {
  kGemm,              ///< blocked GEMM core (gemm / gemm_tn)
  kIgemm,             ///< blocked integer GEMM (igemm_run, all kernels)
  kIgemmScalar,       ///< igemm per-kernel axis: scalar rank-1 kernel
  kIgemmVec16,        ///< igemm per-kernel axis: vec16 SIMD kernel
  kIgemmVecPacked,    ///< igemm per-kernel axis: vec-packed 8-bit kernel
  kHwRequant,         ///< engine code-domain requant ops (input snap, pool means)
  kConvForward,       ///< Conv2d::forward
  kConvBackward,      ///< Conv2d::backward
  kProbeEval,         ///< evaluate_batch (the competition probe primitive)
  kRecoveryEpoch,     ///< one collaboration epoch (train + validate)
  kWorkspaceAcquire,  ///< Workspace::acquire
  kServeLatency,      ///< serve enqueue→reply wall time per request
  kServeBatchSize,    ///< serve batch sizes (unitless samples, not ns)
  kCount
};

const char* counter_name(Counter id);
const char* gauge_name(Gauge id);
const char* timer_name(Timer id);

// ---- recording (no-ops when metrics are disabled) --------------------------

void add(Counter id, std::uint64_t delta = 1);
void set_gauge(Gauge id, double value);
/// Record one duration sample into `id`'s histogram.
void record_duration(Timer id, std::uint64_t ns);

/// RAII wall-clock span over `id`.  Reads the clock only when metrics are
/// enabled at construction time.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer id)
      : id_(id), armed_(metrics_enabled()), start_ns_(armed_ ? now_ns() : 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (armed_) record_duration(id_, now_ns() - start_ns_);
  }

  /// Monotonic wall clock in nanoseconds.
  static std::uint64_t now_ns();

 private:
  Timer id_;
  bool armed_;
  std::uint64_t start_ns_;
};

// ---- readout ---------------------------------------------------------------

/// Log₂ duration buckets: bucket b counts samples with 2^(b−1) < ns ≤ 2^b
/// (bucket 0 counts 0–1 ns, the last bucket is open-ended).
inline constexpr int kHistogramBuckets = 48;

struct TimerStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;  ///< 0 when count == 0
  std::uint64_t max_ns = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

std::uint64_t counter_value(Counter id);
double gauge_value(Gauge id);
TimerStats timer_stats(Timer id);

// ---- named (dynamic) metrics -----------------------------------------------
// The enum registry covers process-wide series whose names are known at
// compile time.  Subsystems that host a runtime-determined *set* of
// instances — the serving stack's per-model `serve.<model>.*` series —
// register named metrics instead: registration (cold path, model load)
// interns the name under a mutex and hands back a stable id; recording
// through the id is the same lock-free fixed-storage scheme as the enum
// metrics, so per-model accounting adds nothing to the hot path beyond
// one extra atomic op per event.  Capacity is fixed
// (`kMaxNamedMetrics` per kind); once exhausted, registration returns
// -1 — the id every record/query path treats as "metrics disabled" —
// so a telemetry capacity limit never turns into a load failure in the
// subsystem registering the series.  Re-registering a name returns the
// existing id, so a hot-swapped model keeps accumulating into the same
// series across versions.

inline constexpr std::size_t kMaxNamedMetrics = 256;

enum class NamedKind : int { kCounter, kGauge, kTimer };

/// Register (or look up) a named metric; returns its stable id, or -1
/// when capacity is exhausted (recording through -1 is a no-op).
int named_metric(NamedKind kind, const std::string& name);

void add_named(int counter_id, std::uint64_t delta = 1);
void set_named_gauge(int gauge_id, double value);
void record_named_duration(int timer_id, std::uint64_t ns);

std::uint64_t named_counter_value(int counter_id);
double named_gauge_value(int gauge_id);
TimerStats named_timer_stats(int timer_id);

/// Look up a registered name; returns -1 when absent (no registration).
int find_named_metric(NamedKind kind, const std::string& name);

/// Approximate quantile from a log₂-bucket histogram: the upper bound of
/// the bucket holding the ceil(q·count)-th sample (0 when empty).
/// Resolution is a factor of two — enough for p50/p99 latency reporting.
std::uint64_t approx_quantile(const TimerStats& stats, double q);

/// Zero every counter/gauge/histogram (tests and benches).
void reset_metrics();

/// Snapshot the whole registry as a JSON object (counters, gauges, and
/// per-timer count/total/min/max/mean plus non-empty histogram buckets).
Json metrics_to_json();

/// Write `metrics_to_json()` to `path`; returns false on IO error.
bool save_metrics(const std::string& path);

// ---- JSONL event trace -----------------------------------------------------

/// (Re)direct the trace sink: opens `path` for appending events, closing
/// any previous sink; an empty path disables tracing.  Throws on open
/// failure.  First use is seeded from `$CCQ_TRACE`.
void set_trace_path(const std::string& path);

/// True when a trace sink is open.  Relaxed load — safe on hot paths.
bool trace_enabled();

/// Append one event as a compact single-line JSON object.  No-op when
/// tracing is disabled.  Thread-safe: lines never interleave.
void trace_event(const Json& event);

/// Flush the sink so far (tests read the file mid-process).
void flush_trace();

}  // namespace ccq::telemetry
