// Parallel execution subsystem: ThreadPool + ExecContext + parallel_for.
//
// Every compute kernel in the repo (GEMM, im2col-lowered convolution,
// elementwise tensor ops, batch assembly) accepts a `const ExecContext&`
// naming the thread budget it may use; a process-wide default is
// configured once from $CCQ_THREADS (or `--threads` in the CLI/benches).
//
// Determinism contract — the property the paper's seeded-RNG
// reproducibility rests on: work partitioning and per-element
// accumulation order are fixed functions of the *problem size*, never of
// the thread count.  Chunks always cover disjoint output regions and a
// chunk's internal loop order matches the serial kernel, so results are
// bit-identical for 1..N threads.  Reductions use a fixed chunk width and
// combine partials in chunk-index order for the same reason.
//
// Nested `parallel_for` calls (a kernel invoked from inside another
// parallel region) degrade to serial execution on the calling thread, so
// composite kernels can parallelise at whichever level has the most work
// without risking pool deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ccq {

/// Persistent worker pool.  Workers park on a condition variable between
/// jobs; `run` dispatches chunk indices dynamically (an atomic ticket),
/// which is safe under the determinism contract because chunk *content*
/// never depends on which thread executes it.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller participates in every job).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute a job, including the caller.
  std::size_t threads() const { return workers_.size() + 1; }

  /// Execute fn(chunk) for every chunk in [0, chunks).  Blocks until all
  /// chunks finish.  If any chunk throws, the first exception (in
  /// completion order) is rethrown here after the job drains.
  void run(std::size_t chunks, const std::function<void(std::size_t)>& fn);

 private:
  /// One dispatched job.  Owned via shared_ptr so a worker that wakes
  /// late for an already-retired job still holds valid state (and finds
  /// its ticket stream exhausted).
  struct Job {
    std::function<void(std::size_t)> fn;
    std::size_t chunks = 0;
    std::uint64_t seq = 0;               ///< distinguishes jobs for workers
    std::atomic<std::size_t> next{0};    ///< ticket dispenser
    std::size_t active = 0;              ///< workers inside (mutex-guarded)
    std::exception_ptr error;            ///< first failure (mutex-guarded)
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes workers for a new job
  std::condition_variable done_cv_;  ///< signals the caller on completion
  std::shared_ptr<Job> job_;         ///< in-flight job (mutex-guarded)
  std::uint64_t job_seq_ = 0;
  bool stopping_ = false;
};

/// Execution context handed to kernel entry points: a thread budget plus
/// the pool that services it.  Copyable (the pool is shared).  A
/// default-constructed context is serial.
class ExecContext {
 public:
  /// Serial context (1 thread, no pool).
  ExecContext() = default;

  /// Context owning a pool of `threads` threads (clamped to >= 1).
  explicit ExecContext(std::size_t threads, int verbosity = 0);

  std::size_t threads() const { return threads_; }
  int verbosity() const { return verbosity_; }
  ThreadPool* pool() const { return pool_.get(); }

  /// Process-wide default used by kernels when no context is passed.
  /// First use initialises it from $CCQ_THREADS (default 1).
  static const ExecContext& global();

  /// Replace the process-wide default thread budget.  Call during
  /// startup (CLI flag parsing), before compute kernels run; the swap is
  /// not synchronised against concurrent kernel launches.
  static void set_global_threads(std::size_t threads);

 private:
  std::size_t threads_ = 1;
  int verbosity_ = 0;
  std::shared_ptr<ThreadPool> pool_;
};

namespace detail {
/// True while the current thread executes inside a parallel_for body;
/// nested calls then run serially (see header comment).
bool in_parallel_region();

struct ParallelRegionGuard {
  ParallelRegionGuard();
  ~ParallelRegionGuard();
};

/// Threaded back end for parallel_chunks.  Only the multi-chunk pool
/// path pays for type erasure; the serial path in the template below
/// calls the body directly so single-thread code compiles exactly like
/// the plain loop it replaces.
void parallel_chunks_threaded(
    ThreadPool& pool, std::size_t total, std::size_t grain,
    std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);
}  // namespace detail

/// Number of chunks a range of `total` items splits into at `grain`
/// items per chunk.  Pure function of the problem size.
inline std::size_t chunk_count(std::size_t total, std::size_t grain) {
  if (grain == 0) grain = 1;
  return (total + grain - 1) / grain;
}

/// Run body(chunk, begin, end) over [0, total) split into grain-sized
/// chunks.  Chunk boundaries depend only on (total, grain).  Runs
/// serially (one body(0, 0, total) call) when the context is serial,
/// there is at most one chunk, or the caller is already inside a
/// parallel region.
template <typename Body>
void parallel_chunks(const ExecContext& ctx, std::size_t total,
                     std::size_t grain, Body&& body) {
  if (total == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(total, grain);
  ThreadPool* pool = ctx.pool();
  if (pool == nullptr || chunks <= 1 || detail::in_parallel_region()) {
    // Serial fallback: a single direct call covering the whole range.
    // Not wrapped in a region guard so that a lone-chunk caller (e.g. a
    // batch-1 convolution) still lets its inner kernels parallelise.
    body(std::size_t{0}, std::size_t{0}, total);
    return;
  }
  detail::parallel_chunks_threaded(*pool, total, grain, chunks, body);
}

/// Range-only convenience wrapper: body(begin, end).
template <typename Body>
void parallel_for(const ExecContext& ctx, std::size_t total, std::size_t grain,
                  Body&& body) {
  parallel_chunks(ctx, total, grain,
                  [&body](std::size_t, std::size_t begin, std::size_t end) {
                    body(begin, end);
                  });
}

/// Deterministic parallel reduction: chunk partials are computed at a
/// fixed grain and combined in chunk-index order, so the result is
/// independent of thread count (and equals the serial chunked fold).
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(const ExecContext& ctx, std::size_t total, std::size_t grain,
                  T init, ChunkFn&& chunk_fn, CombineFn&& combine) {
  const std::size_t chunks = chunk_count(total, grain);
  if (chunks <= 1) {
    return total == 0 ? init : combine(init, chunk_fn(std::size_t{0}, total));
  }
  if (grain == 0) grain = 1;
  std::vector<T> partials(chunks, init);
  parallel_chunks(ctx, total, grain,
                  [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                    // The serial fallback hands us one [0, total) chunk;
                    // re-split it so partials match the threaded layout.
                    for (std::size_t c = begin / grain;
                         c * grain < end; ++c) {
                      const std::size_t lo = c * grain;
                      const std::size_t hi = std::min(total, lo + grain);
                      partials[c] = chunk_fn(lo, hi);
                    }
                    (void)chunk;
                  });
  T acc = init;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

}  // namespace ccq
