// Workspace: a size-bucketed buffer pool for steady-state allocation reuse.
//
// The CCQ loop (Algorithm 1) is evaluation-heavy — every quantization
// step runs U probe forwards plus full-validation sweeps — and each
// forward used to heap-allocate its output tensors, im2col column
// buffers and quantized-weight temporaries from scratch.  A Workspace
// breaks that churn: layers acquire buffers from it, hand results back
// via `recycle`, and after one warm-up pass every acquisition is served
// from the pool (zero heap allocations; assert with CCQ_COUNT_ALLOCS /
// `alloc_stats`, see alloc.hpp).
//
// Design:
//   * Buffers live in power-of-two capacity buckets: `acquire(n)` pops
//     from the bucket for the smallest power of two >= n, so a buffer
//     recycled at one size is reusable for any request that rounds to
//     the same bucket.  A miss allocates one buffer at full bucket
//     capacity; steady-state shape jitter (e.g. a ragged final eval
//     chunk) therefore still hits the pool.
//   * Buffers are segregated into per-thread sub-arenas keyed by the
//     releasing/acquiring thread, so `parallel_for` workers never
//     exchange buffers — reuse stays thread-local (cache-warm) and the
//     pool's contents are deterministic per thread.  All bookkeeping is
//     mutex-guarded, so concurrent acquire/release from inside a
//     parallel region is safe.
//   * Pooling never changes numerics: a workspace tensor has the same
//     shape/content as its heap-allocated counterpart, so workspace and
//     legacy forwards are bit-identical (regression-tested).
//
// Lifetime contract: `reset()` frees only *pooled* (free) buffers —
// outstanding tensors and leases are unaffected and may still be
// recycled afterwards.  The Workspace must outlive its leases.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ccq/common/alloc.hpp"
#include "ccq/tensor/tensor.hpp"

namespace ccq {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // ---- raw buffer pool --------------------------------------------------
  /// A buffer of exactly `n` floats with unspecified contents.  Served
  /// from the calling thread's arena when a bucket match exists; falls
  /// back to one heap allocation of the full bucket capacity.
  FloatVec acquire(std::size_t n);

  /// Return a buffer to the calling thread's arena.  Zero-capacity
  /// buffers are dropped.
  void release(FloatVec&& buf);

  /// RAII scratch lease: acquires on construction, releases back to the
  /// pool on destruction.  Movable, not copyable.
  class FloatLease {
   public:
    FloatLease(Workspace& ws, std::size_t n)
        : ws_(&ws), buf_(ws.acquire(n)) {}
    FloatLease(FloatLease&& other) noexcept
        : ws_(other.ws_), buf_(std::move(other.buf_)) {
      other.ws_ = nullptr;
    }
    FloatLease& operator=(FloatLease&&) = delete;
    FloatLease(const FloatLease&) = delete;
    FloatLease& operator=(const FloatLease&) = delete;
    ~FloatLease() {
      if (ws_ != nullptr) ws_->release(std::move(buf_));
    }

    float* data() { return buf_.data(); }
    const float* data() const { return buf_.data(); }
    std::size_t size() const { return buf_.size(); }
    std::span<float> span() { return {buf_.data(), buf_.size()}; }

   private:
    Workspace* ws_;
    FloatVec buf_;
  };

  /// Lease `n` floats of scratch (unspecified contents).
  FloatLease floats(std::size_t n) { return FloatLease(*this, n); }

  // ---- integer buffer pools ---------------------------------------------
  // Same bucket/arena machinery over int32 / int16 / byte storage: the
  // igemm deployment path leases activation-code and im2col column
  // buffers (int32) plus the vector kernels' repacked int16 / uint8
  // activation panels here, so warm integer inference is allocation-free
  // alongside the float pool.  All integer pool storage is 64-byte
  // aligned (alloc.hpp) for split-free SIMD loads from the buffer base.

  /// A buffer of exactly `n` int32s with unspecified contents.
  Int32Vec acquire_ints(std::size_t n);

  /// Return an int32 buffer to the calling thread's arena.
  void release_ints(Int32Vec&& buf);

  /// RAII int32 scratch lease (mirror of FloatLease).
  class IntLease {
   public:
    IntLease(Workspace& ws, std::size_t n)
        : ws_(&ws), buf_(ws.acquire_ints(n)) {}
    IntLease(IntLease&& other) noexcept
        : ws_(other.ws_), buf_(std::move(other.buf_)) {
      other.ws_ = nullptr;
    }
    IntLease& operator=(IntLease&&) = delete;
    IntLease(const IntLease&) = delete;
    IntLease& operator=(const IntLease&) = delete;
    ~IntLease() {
      if (ws_ != nullptr) ws_->release_ints(std::move(buf_));
    }

    std::int32_t* data() { return buf_.data(); }
    const std::int32_t* data() const { return buf_.data(); }
    std::size_t size() const { return buf_.size(); }
    std::span<std::int32_t> span() { return {buf_.data(), buf_.size()}; }

   private:
    Workspace* ws_;
    Int32Vec buf_;
  };

  /// Lease `n` int32s of scratch (unspecified contents).
  IntLease ints(std::size_t n) { return IntLease(*this, n); }

  /// A buffer of exactly `n` int16s with unspecified contents.
  Int16Vec acquire_shorts(std::size_t n);

  /// Return an int16 buffer to the calling thread's arena.
  void release_shorts(Int16Vec&& buf);

  /// RAII int16 scratch lease (vec16 igemm activation panels).
  class ShortLease {
   public:
    ShortLease(Workspace& ws, std::size_t n)
        : ws_(&ws), buf_(ws.acquire_shorts(n)) {}
    ShortLease(ShortLease&& other) noexcept
        : ws_(other.ws_), buf_(std::move(other.buf_)) {
      other.ws_ = nullptr;
    }
    ShortLease& operator=(ShortLease&&) = delete;
    ShortLease(const ShortLease&) = delete;
    ShortLease& operator=(const ShortLease&) = delete;
    ~ShortLease() {
      if (ws_ != nullptr) ws_->release_shorts(std::move(buf_));
    }

    std::int16_t* data() { return buf_.data(); }
    const std::int16_t* data() const { return buf_.data(); }
    std::size_t size() const { return buf_.size(); }
    std::span<std::int16_t> span() { return {buf_.data(), buf_.size()}; }

   private:
    Workspace* ws_;
    Int16Vec buf_;
  };

  /// Lease `n` int16s of scratch (unspecified contents).
  ShortLease shorts(std::size_t n) { return ShortLease(*this, n); }

  /// A buffer of exactly `n` bytes with unspecified contents.
  ByteVec acquire_bytes(std::size_t n);

  /// Return a byte buffer to the calling thread's arena.
  void release_bytes(ByteVec&& buf);

  /// RAII byte scratch lease (vec-packed igemm activation panels).
  class ByteLease {
   public:
    ByteLease(Workspace& ws, std::size_t n)
        : ws_(&ws), buf_(ws.acquire_bytes(n)) {}
    ByteLease(ByteLease&& other) noexcept
        : ws_(other.ws_), buf_(std::move(other.buf_)) {
      other.ws_ = nullptr;
    }
    ByteLease& operator=(ByteLease&&) = delete;
    ByteLease(const ByteLease&) = delete;
    ByteLease& operator=(const ByteLease&) = delete;
    ~ByteLease() {
      if (ws_ != nullptr) ws_->release_bytes(std::move(buf_));
    }

    std::uint8_t* data() { return buf_.data(); }
    const std::uint8_t* data() const { return buf_.data(); }
    std::size_t size() const { return buf_.size(); }
    std::span<std::uint8_t> span() { return {buf_.data(), buf_.size()}; }

   private:
    Workspace* ws_;
    ByteVec buf_;
  };

  /// Lease `n` bytes of scratch (unspecified contents).
  ByteLease bytes(std::size_t n) { return ByteLease(*this, n); }

  // ---- pool-backed tensors (inline: header-only Tensor bridge) ----------
  /// Zero-filled tensor backed by pool storage.
  Tensor tensor(Shape shape) {
    const std::size_t n = shape_numel(shape);
    FloatVec buf = acquire(n);
    std::fill(buf.begin(), buf.end(), 0.0f);
    return Tensor::adopt(std::move(shape), std::move(buf));
  }

  /// Pool-backed tensor with unspecified contents (for outputs that are
  /// fully overwritten).
  Tensor tensor_uninit(Shape shape) {
    const std::size_t n = shape_numel(shape);
    return Tensor::adopt(std::move(shape), acquire(n));
  }

  /// Return a tensor's storage to the pool; `t` is left empty.
  void recycle(Tensor&& t) { release(t.release_storage()); }

  // ---- maintenance ------------------------------------------------------
  /// Drop every pooled (free) buffer.  Outstanding tensors/leases are
  /// untouched and may still be recycled into the (now empty) pool.
  void reset();

  /// Free buffers currently pooled across all arenas (test hook).
  std::size_t pooled_buffers() const;
  /// Bytes of float storage those buffers hold (by capacity).
  std::size_t pooled_bytes() const;

  /// Process-global workspace used by the legacy `forward(x)` shims, so
  /// callers that never thread a Workspace through still get pooling.
  static Workspace& scratch();

 private:
  // One free-list vector per power-of-two capacity bucket; float, int32,
  // int16 and byte storage pool separately (buffers never change element
  // type).
  struct Arena {
    std::vector<std::vector<FloatVec>> buckets;
    std::vector<std::vector<Int32Vec>> int_buckets;
    std::vector<std::vector<Int16Vec>> short_buckets;
    std::vector<std::vector<ByteVec>> byte_buckets;
  };

  template <typename Vec>
  Vec acquire_impl(std::vector<std::vector<Vec>> Arena::* buckets,
                   std::size_t n);
  template <typename Vec>
  void release_impl(std::vector<std::vector<Vec>> Arena::* buckets,
                    Vec&& buf);

  Arena& local_arena_locked();  // requires mutex_ held

  mutable std::mutex mutex_;
  std::unordered_map<std::thread::id, std::unique_ptr<Arena>> arenas_;
};

}  // namespace ccq
