#include "ccq/common/rng.hpp"

#include <cmath>

#include "ccq/common/error.hpp"

namespace ccq {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  CCQ_CHECK(n > 0, "uniform_int needs n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return r % n;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  while (u == 0.0) u = uniform();  // avoid log(0)
  const double v = uniform();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * M_PI * v;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  CCQ_CHECK(!weights.empty(), "categorical over empty weights");
  double total = 0.0;
  for (double w : weights) {
    CCQ_CHECK(w >= 0.0, "categorical weight must be non-negative");
    total += w;
  }
  CCQ_CHECK(total > 0.0, "categorical weights all zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  // Floating-point slack: return last positive-weight index.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace ccq
