#include "ccq/common/fileio.hpp"

#include <filesystem>
#include <fstream>

#include "ccq/common/error.hpp"

namespace ccq {

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      CCQ_CHECK(static_cast<bool>(os), "cannot open for write: " + tmp);
      writer(os);
      os.flush();
      CCQ_CHECK(static_cast<bool>(os), "write failed: " + tmp);
    }
    std::filesystem::rename(tmp, path);
  } catch (...) {
    std::error_code ec;  // best-effort cleanup; the original error wins
    std::filesystem::remove(tmp, ec);
    throw;
  }
}

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kPrime;
  }
  return hash;
}

}  // namespace ccq
