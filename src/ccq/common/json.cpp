#include "ccq/common/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "ccq/common/error.hpp"

namespace ccq {

Json Json::array() {
  Json j;
  j.value_ = std::make_shared<Array>();
  return j;
}

Json Json::object() {
  Json j;
  j.value_ = std::make_shared<Object>();
  return j;
}

bool Json::is_array() const {
  return std::holds_alternative<std::shared_ptr<Array>>(value_);
}

bool Json::is_object() const {
  return std::holds_alternative<std::shared_ptr<Object>>(value_);
}

std::size_t Json::size() const {
  if (is_array()) return std::get<std::shared_ptr<Array>>(value_)->items.size();
  if (is_object()) {
    return std::get<std::shared_ptr<Object>>(value_)->fields.size();
  }
  return 0;
}

Json& Json::push_back(Json v) {
  CCQ_CHECK(is_array(), "push_back on a non-array JSON value");
  auto& items = std::get<std::shared_ptr<Array>>(value_)->items;
  items.push_back(std::move(v));
  return items.back();
}

Json& Json::set(const std::string& key, Json v) {
  CCQ_CHECK(is_object(), "set on a non-object JSON value");
  auto& fields = std::get<std::shared_ptr<Object>>(value_)->fields;
  for (auto& [k, existing] : fields) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  fields.emplace_back(key, std::move(v));
  return fields.back().second;
}

Json& Json::operator[](const std::string& key) {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    value_ = std::make_shared<Object>();
  }
  CCQ_CHECK(is_object(), "operator[] on a non-object JSON value");
  auto& fields = std::get<std::shared_ptr<Object>>(value_)->fields;
  for (auto& [k, existing] : fields) {
    if (k == key) return existing;
  }
  fields.emplace_back(key, Json());
  return fields.back().second;
}

void Json::append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent < 0 ? "" : "\n" + std::string(static_cast<std::size_t>(indent) *
                                               (static_cast<std::size_t>(depth) + 1),
                                           ' ');
  const std::string close_pad =
      indent < 0 ? "" : "\n" + std::string(static_cast<std::size_t>(indent) *
                                               static_cast<std::size_t>(depth),
                                           ' ');
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (std::holds_alternative<bool>(value_)) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (std::holds_alternative<double>(value_)) {
    const double v = std::get<double>(value_);
    if (!std::isfinite(v)) {
      out += "null";  // JSON has no NaN/Inf
    } else if (v == std::floor(v) && std::fabs(v) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", v);
      out += buf;
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.10g", v);
      out += buf;
    }
  } else if (std::holds_alternative<std::string>(value_)) {
    append_escaped(out, std::get<std::string>(value_));
  } else if (is_array()) {
    const auto& items = std::get<std::shared_ptr<Array>>(value_)->items;
    if (items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i != 0) out += ',';
      out += pad;
      items[i].dump_to(out, indent, depth + 1);
    }
    out += close_pad;
    out += ']';
  } else {
    const auto& fields = std::get<std::shared_ptr<Object>>(value_)->fields;
    if (fields.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) out += ',';
      out += pad;
      append_escaped(out, fields[i].first);
      out += indent < 0 ? ":" : ": ";
      fields[i].second.dump_to(out, indent, depth + 1);
    }
    out += close_pad;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool Json::save(const std::string& path, int indent) const {
  std::ofstream os(path);
  if (!os) return false;
  os << dump(indent) << '\n';
  return static_cast<bool>(os);
}

}  // namespace ccq
