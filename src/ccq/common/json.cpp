#include "ccq/common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "ccq/common/error.hpp"

namespace ccq {

Json Json::array() {
  Json j;
  j.value_ = std::make_shared<Array>();
  return j;
}

Json Json::object() {
  Json j;
  j.value_ = std::make_shared<Object>();
  return j;
}

bool Json::is_null() const {
  return std::holds_alternative<std::nullptr_t>(value_);
}

bool Json::is_bool() const { return std::holds_alternative<bool>(value_); }

bool Json::is_number() const { return std::holds_alternative<double>(value_); }

bool Json::is_string() const {
  return std::holds_alternative<std::string>(value_);
}

bool Json::is_array() const {
  return std::holds_alternative<std::shared_ptr<Array>>(value_);
}

bool Json::is_object() const {
  return std::holds_alternative<std::shared_ptr<Object>>(value_);
}

bool Json::as_bool() const {
  CCQ_CHECK(is_bool(), "JSON value is not a boolean");
  return std::get<bool>(value_);
}

double Json::as_double() const {
  CCQ_CHECK(is_number(), "JSON value is not a number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  CCQ_CHECK(is_string(), "JSON value is not a string");
  return std::get<std::string>(value_);
}

bool Json::contains(const std::string& key) const {
  if (!is_object()) return false;
  for (const auto& [k, v] : std::get<std::shared_ptr<Object>>(value_)->fields) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(const std::string& key) const {
  CCQ_CHECK(is_object(), "at(key) on a non-object JSON value");
  for (const auto& [k, v] : std::get<std::shared_ptr<Object>>(value_)->fields) {
    if (k == key) return v;
  }
  throw Error("JSON object has no field \"" + key + "\"");
}

const Json& Json::at(std::size_t index) const {
  CCQ_CHECK(is_array(), "at(index) on a non-array JSON value");
  const auto& items = std::get<std::shared_ptr<Array>>(value_)->items;
  CCQ_CHECK(index < items.size(), "JSON array index out of range");
  return items[index];
}

std::size_t Json::size() const {
  if (is_array()) return std::get<std::shared_ptr<Array>>(value_)->items.size();
  if (is_object()) {
    return std::get<std::shared_ptr<Object>>(value_)->fields.size();
  }
  return 0;
}

Json& Json::push_back(Json v) {
  CCQ_CHECK(is_array(), "push_back on a non-array JSON value");
  auto& items = std::get<std::shared_ptr<Array>>(value_)->items;
  items.push_back(std::move(v));
  return items.back();
}

Json& Json::set(const std::string& key, Json v) {
  CCQ_CHECK(is_object(), "set on a non-object JSON value");
  auto& fields = std::get<std::shared_ptr<Object>>(value_)->fields;
  for (auto& [k, existing] : fields) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  fields.emplace_back(key, std::move(v));
  return fields.back().second;
}

Json& Json::operator[](const std::string& key) {
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    value_ = std::make_shared<Object>();
  }
  CCQ_CHECK(is_object(), "operator[] on a non-object JSON value");
  auto& fields = std::get<std::shared_ptr<Object>>(value_)->fields;
  for (auto& [k, existing] : fields) {
    if (k == key) return existing;
  }
  fields.emplace_back(key, Json());
  return fields.back().second;
}

void Json::append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent < 0 ? "" : "\n" + std::string(static_cast<std::size_t>(indent) *
                                               (static_cast<std::size_t>(depth) + 1),
                                           ' ');
  const std::string close_pad =
      indent < 0 ? "" : "\n" + std::string(static_cast<std::size_t>(indent) *
                                               static_cast<std::size_t>(depth),
                                           ' ');
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (std::holds_alternative<bool>(value_)) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (std::holds_alternative<double>(value_)) {
    const double v = std::get<double>(value_);
    if (!std::isfinite(v)) {
      out += "null";  // JSON has no NaN/Inf
    } else if (v == std::floor(v) && std::fabs(v) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", v);
      out += buf;
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.10g", v);
      out += buf;
    }
  } else if (std::holds_alternative<std::string>(value_)) {
    append_escaped(out, std::get<std::string>(value_));
  } else if (is_array()) {
    const auto& items = std::get<std::shared_ptr<Array>>(value_)->items;
    if (items.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i != 0) out += ',';
      out += pad;
      items[i].dump_to(out, indent, depth + 1);
    }
    out += close_pad;
    out += ']';
  } else {
    const auto& fields = std::get<std::shared_ptr<Object>>(value_)->fields;
    if (fields.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) out += ',';
      out += pad;
      append_escaped(out, fields[i].first);
      out += indent < 0 ? ":" : ": ";
      fields[i].second.dump_to(out, indent, depth + 1);
    }
    out += close_pad;
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool Json::save(const std::string& path, int indent) const {
  std::ofstream os(path);
  if (!os) return false;
  os << dump(indent) << '\n';
  return static_cast<bool>(os);
}

// ---- parsing ---------------------------------------------------------------

namespace {

/// Recursive-descent parser over the full JSON grammar (the subset
/// `dump` emits plus standard escapes and exponent forms).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    CCQ_CHECK(pos_ == text_.size(), "trailing garbage after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      obj.set(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // UTF-8 encode (surrogate pairs are passed through unpaired —
          // the writer only emits \u for control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number " + token);
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace ccq
