#include "ccq/common/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "ccq/common/error.hpp"

namespace ccq {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CCQ_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  CCQ_CHECK(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  print_csv(file);
  return static_cast<bool>(file);
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace ccq
