// Deterministic pseudo-random number generation.
//
// All stochastic components (weight init, data synthesis, layer sampling
// in the competition stage) draw from an explicitly seeded `Rng` so that
// every experiment in the repo is bit-reproducible run to run.  The
// generator is xoshiro256** seeded through splitmix64, which is fast,
// passes BigCrush, and is trivially portable.
#pragma once

#include <cstdint>
#include <vector>

namespace ccq {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience samplers.
class Rng {
 public:
  /// Seed via splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box-Muller (cached spare).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Sample an index from an (unnormalised) non-negative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-worker streams).
  Rng split();

  /// Full generator state, exposed so long-running controllers can
  /// persist and bit-exactly resume their random streams.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double spare_normal = 0.0;
    bool has_spare = false;
  };

  State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, spare_normal_, has_spare_};
  }
  void set_state(const State& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
    spare_normal_ = state.spare_normal;
    has_spare_ = state.has_spare;
  }

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace ccq
