#include "ccq/common/workspace.hpp"

#include <algorithm>
#include <bit>

#include "ccq/common/telemetry.hpp"

namespace ccq {

namespace {

// Bucket for a *request* of n floats: smallest power of two >= n.
std::size_t bucket_for_request(std::size_t n) {
  return n <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(n - 1));
}

// Bucket a *buffer* files under: largest power of two <= capacity, so
// any request that rounds up to this bucket fits without reallocating.
std::size_t bucket_for_capacity(std::size_t cap) {
  return static_cast<std::size_t>(std::bit_width(cap)) - 1;
}

}  // namespace

Workspace::Arena& Workspace::local_arena_locked() {
  auto& slot = arenas_[std::this_thread::get_id()];
  if (slot == nullptr) slot = std::make_unique<Arena>();
  return *slot;
}

template <typename Vec>
Vec Workspace::acquire_impl(std::vector<std::vector<Vec>> Arena::* buckets,
                            std::size_t n) {
  if (n == 0) return {};
  telemetry::ScopedTimer timer(telemetry::Timer::kWorkspaceAcquire);
  const std::size_t b = bucket_for_request(n);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Arena& arena = local_arena_locked();
    auto& pool = arena.*buckets;
    if (b < pool.size() && !pool[b].empty()) {
      Vec buf = std::move(pool[b].back());
      pool[b].pop_back();
      buf.resize(n);  // capacity >= bucket size >= n: no allocation
      telemetry::add(telemetry::Counter::kWorkspaceHits);
      return buf;
    }
  }
  // Miss: allocate once at full bucket capacity so later requests of any
  // size in this bucket reuse it.
  telemetry::add(telemetry::Counter::kWorkspaceMisses);
  Vec buf;
  buf.reserve(std::size_t{1} << b);
  buf.resize(n);
  return buf;
}

template <typename Vec>
void Workspace::release_impl(std::vector<std::vector<Vec>> Arena::* buckets,
                             Vec&& buf) {
  if (buf.capacity() == 0) return;
  const std::size_t b = bucket_for_capacity(buf.capacity());
  std::lock_guard<std::mutex> lock(mutex_);
  Arena& arena = local_arena_locked();
  auto& pool = arena.*buckets;
  if (pool.size() <= b) pool.resize(b + 1);
  pool[b].push_back(std::move(buf));
}

FloatVec Workspace::acquire(std::size_t n) {
  return acquire_impl(&Arena::buckets, n);
}

void Workspace::release(FloatVec&& buf) {
  release_impl(&Arena::buckets, std::move(buf));
}

Int32Vec Workspace::acquire_ints(std::size_t n) {
  return acquire_impl(&Arena::int_buckets, n);
}

void Workspace::release_ints(Int32Vec&& buf) {
  release_impl(&Arena::int_buckets, std::move(buf));
}

Int16Vec Workspace::acquire_shorts(std::size_t n) {
  return acquire_impl(&Arena::short_buckets, n);
}

void Workspace::release_shorts(Int16Vec&& buf) {
  release_impl(&Arena::short_buckets, std::move(buf));
}

ByteVec Workspace::acquire_bytes(std::size_t n) {
  return acquire_impl(&Arena::byte_buckets, n);
}

void Workspace::release_bytes(ByteVec&& buf) {
  release_impl(&Arena::byte_buckets, std::move(buf));
}

void Workspace::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [tid, arena] : arenas_) {
    for (auto& bucket : arena->buckets) bucket.clear();
    for (auto& bucket : arena->int_buckets) bucket.clear();
    for (auto& bucket : arena->short_buckets) bucket.clear();
    for (auto& bucket : arena->byte_buckets) bucket.clear();
  }
}

std::size_t Workspace::pooled_buffers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [tid, arena] : arenas_) {
    for (const auto& bucket : arena->buckets) n += bucket.size();
    for (const auto& bucket : arena->int_buckets) n += bucket.size();
    for (const auto& bucket : arena->short_buckets) n += bucket.size();
    for (const auto& bucket : arena->byte_buckets) n += bucket.size();
  }
  return n;
}

std::size_t Workspace::pooled_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bytes = 0;
  for (const auto& [tid, arena] : arenas_) {
    for (const auto& bucket : arena->buckets) {
      for (const auto& buf : bucket) bytes += buf.capacity() * sizeof(float);
    }
    for (const auto& bucket : arena->int_buckets) {
      for (const auto& buf : bucket) {
        bytes += buf.capacity() * sizeof(std::int32_t);
      }
    }
    for (const auto& bucket : arena->short_buckets) {
      for (const auto& buf : bucket) {
        bytes += buf.capacity() * sizeof(std::int16_t);
      }
    }
    for (const auto& bucket : arena->byte_buckets) {
      for (const auto& buf : bucket) bytes += buf.capacity();
    }
  }
  return bytes;
}

Workspace& Workspace::scratch() {
  static Workspace ws;
  return ws;
}

}  // namespace ccq
