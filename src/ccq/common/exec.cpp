#include "ccq/common/exec.hpp"

#include <algorithm>

#include "ccq/common/env.hpp"

namespace ccq {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t extra = threads < 2 ? 0 : threads - 1;
  workers_.reserve(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_seq = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stopping_ || (job_ != nullptr && job_->seq != seen_seq);
      });
      if (stopping_) return;
      job = job_;
      seen_seq = job->seq;
      ++job->active;
    }
    // Drain the ticket stream.  The ticket atomic belongs to this job
    // object, so a worker that woke late for an already-finished job
    // finds it exhausted and simply passes through.
    std::exception_ptr error;
    for (;;) {
      const std::size_t chunk = job->next.fetch_add(1);
      if (chunk >= job->chunks) break;
      try {
        job->fn(chunk);
      } catch (...) {
        if (!error) error = std::current_exception();
        // Keep draining: remaining chunks must still run so the caller
        // never waits on abandoned work and outputs stay well-defined.
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !job->error) job->error = error;
      --job->active;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::run(std::size_t chunks,
                     const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  if (workers_.empty() || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) fn(c);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->chunks = chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->seq = ++job_seq_;
    job_ = job;
  }
  work_cv_.notify_all();

  // The caller works through the same ticket stream as the workers.
  std::exception_ptr error;
  for (;;) {
    const std::size_t chunk = job->next.fetch_add(1);
    if (chunk >= chunks) break;
    try {
      fn(chunk);
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return job->active == 0; });
  if (error && !job->error) job->error = error;
  if (job_ == job) job_ = nullptr;
  const std::exception_ptr rethrow = job->error;
  lock.unlock();
  if (rethrow) std::rethrow_exception(rethrow);
}

ExecContext::ExecContext(std::size_t threads, int verbosity)
    : threads_(std::max<std::size_t>(1, threads)), verbosity_(verbosity) {
  if (threads_ > 1) pool_ = std::make_shared<ThreadPool>(threads_);
}

namespace {

ExecContext& mutable_global() {
  static ExecContext ctx(
      static_cast<std::size_t>(std::max(1, env_int("CCQ_THREADS", 1))));
  return ctx;
}

thread_local bool t_in_parallel = false;

}  // namespace

const ExecContext& ExecContext::global() { return mutable_global(); }

void ExecContext::set_global_threads(std::size_t threads) {
  mutable_global() = ExecContext(threads);
}

namespace detail {

bool in_parallel_region() { return t_in_parallel; }

ParallelRegionGuard::ParallelRegionGuard() { t_in_parallel = true; }
ParallelRegionGuard::~ParallelRegionGuard() { t_in_parallel = false; }

}  // namespace detail

namespace detail {

void parallel_chunks_threaded(
    ThreadPool& pool, std::size_t total, std::size_t grain,
    std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  pool.run(chunks, [&](std::size_t chunk) {
    ParallelRegionGuard guard;
    const std::size_t begin = chunk * grain;
    const std::size_t end = std::min(total, begin + grain);
    body(chunk, begin, end);
  });
}

}  // namespace detail

}  // namespace ccq
