// In-process inference server over the integer engine.
//
// The ROADMAP north star is serving, and mixed precision only pays off
// when the deployment stack exploits it (HAQ's argument): this module
// turns a packed artifact / compiled `IntegerNetwork` into a running
// service.  Architecture:
//
//   * a bounded MPSC request queue — producers `submit()` single CHW
//     samples and get a future; admission control rejects on a full
//     queue with a *typed* error (`QueueFullError`) instead of queueing
//     unboundedly, so overload surfaces at the caller immediately;
//   * dynamic batching — a worker flushes a batch when `max_batch`
//     requests are waiting or the oldest has waited `max_delay_us`,
//     trading latency for MAC-array utilisation.  Per-sample outputs of
//     the integer engine are independent of batch composition, so served
//     results are bit-identical to a direct `IntegerNetwork::forward`
//     regardless of how requests were coalesced (regression-tested);
//   * N worker threads, each owning a warm `Workspace` (steady-state
//     serving performs zero float-storage allocations) and its own
//     `ExecContext` (the process-global pool does not support concurrent
//     drivers);
//   * graceful drain — `shutdown()` stops admissions, serves everything
//     already queued, then joins the workers.  The destructor does the
//     same.
//
// Instrumented via ccq::telemetry (enable with CCQ_METRICS=1):
// serve.requests / serve.rejected / serve.batches counters, a
// serve.queue_depth gauge, a serve.latency enqueue→reply histogram
// (p50/p99 via `telemetry::approx_quantile`) and a serve.batch_size
// histogram.  docs/SERVING.md covers the tuning knobs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "ccq/common/exec.hpp"
#include "ccq/common/workspace.hpp"
#include "ccq/hw/integer_engine.hpp"

namespace ccq::serve {

struct ServeConfig {
  std::size_t workers = 1;     ///< batch-executing threads
  std::size_t max_batch = 8;   ///< flush when this many requests wait …
  std::uint64_t max_delay_us = 1000;  ///< … or the oldest waited this long
  std::size_t queue_capacity = 64;    ///< admission bound (reject beyond)
  std::size_t intra_op_threads = 1;   ///< kernel threads per worker
};

/// Admission rejected: the bounded queue already holds `queue_capacity`
/// requests.  Callers shed load or retry after a delay.
class QueueFullError : public Error {
 public:
  explicit QueueFullError(std::size_t capacity)
      : Error("serve queue full (capacity " + std::to_string(capacity) +
              "): request rejected") {}
};

/// Admission rejected: the server is shutting down (or already stopped).
class ServerStoppedError : public Error {
 public:
  ServerStoppedError() : Error("inference server is stopped") {}
};

class InferenceServer {
 public:
  /// Takes ownership of the compiled network and starts the workers.
  explicit InferenceServer(hw::IntegerNetwork net, ServeConfig config = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue one CHW sample.  The reply lands in `out` (resized to the
  /// logit shape, reusing its capacity — steady-state callers that keep
  /// the same tensor see zero allocations) and the future becomes ready
  /// once it is written.  Both `sample` and `out` must stay alive and
  /// untouched until then.  Throws QueueFullError / ServerStoppedError
  /// on admission failure, ccq::Error on a shape mismatch with earlier
  /// requests; inference failures surface through the future.
  std::future<void> submit(const Tensor& sample, Tensor& out);

  /// Block until the queue is empty and no batch is in flight.
  void drain();

  /// Stop admissions, serve every queued request, join the workers.
  /// Idempotent.
  void shutdown();

  std::size_t queue_depth() const;
  const ServeConfig& config() const { return config_; }
  const hw::IntegerNetwork& network() const { return net_; }

 private:
  struct Request {
    const Tensor* input;
    Tensor* output;
    std::promise<void> promise;
    std::uint64_t enqueue_ns;  ///< telemetry clock (serve.latency)
    std::chrono::steady_clock::time_point enqueue_tp;  ///< batching deadline
  };

  void worker_loop();
  void run_batch(std::vector<Request>& batch, Workspace& ws,
                 const ExecContext& ctx) const;

  hw::IntegerNetwork net_;
  ServeConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< queue gained work / stop requested
  std::condition_variable idle_cv_;  ///< queue drained and workers idle
  std::deque<Request> queue_;
  Shape sample_shape_;  ///< pinned by the first submit
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ccq::serve
