// Multi-model inference server over the integer engine.
//
// The ROADMAP north star is serving, and mixed precision only pays off
// when the deployment stack exploits it (HAQ's argument).  This module
// is the execution half of the fleet front end: a shared worker pool
// draining the per-model request queues of a `ModelRegistry`
// (serve/registry.hpp is the routing half).  Architecture:
//
//   * a registry of named, versioned models — `load()` publishes a
//     compiled network (or a packed .ccqa artifact) as the new current
//     version of a name, `resolve()` pins a version behind an opaque
//     refcounted `ModelHandle`, and `submit(handle, sample, out)`
//     routes one CHW sample to exactly that version.  Hot-swap is just
//     `load()` again under the same name: requests admitted against the
//     old version finish on the old version's network (bit-identical to
//     its artifact), new resolutions get the new one, and nothing is
//     lost or double-served across the cutover (regression-tested);
//   * per-model bounded queues with priority admission — a full model
//     queue sheds its lowest-priority request (typed `RequestShedError`
//     through the evicted future) to admit strictly higher-priority
//     traffic, and rejects the incomer with `QueueFullError` otherwise,
//     so overload surfaces immediately and never at a high-priority
//     caller while lower-priority work is queued.  Requests carrying a
//     `deadline_us` budget that expires while queued are dropped at
//     dequeue time (typed `DeadlineExceededError`) instead of wasting a
//     batch slot — serve/sla.hpp holds the policy primitives;
//   * dynamic batching per model — a worker flushes a model's queue
//     when `max_batch` requests wait or the oldest has waited
//     `max_delay_us` (both per-model `ModelConfig` knobs).  Per-sample
//     outputs of the integer engine are independent of batch
//     composition, so served results are bit-identical to a direct
//     `IntegerNetwork::forward` regardless of coalescing;
//   * N shared worker threads, each owning a warm `Workspace` and a
//     private `ExecContext` (server-wide `ServeConfig` knobs), picking
//     the next model to flush by weighted fair scheduling: every model
//     accrues virtual time at `samples / ModelConfig::weight` as it is
//     served and the flushable model with the least virtual time goes
//     next, so a hot model gets its weight's share and no more while a
//     quiet model's batch is never starved behind it;
//   * graceful drain — `shutdown()` stops admissions, serves everything
//     already queued (for every model), then joins the workers.
//
// Instrumented via ccq::telemetry (enable with CCQ_METRICS=1): the
// process-wide `serve.*` counters/gauges/histograms aggregate across
// models, and every model additionally records the same series under
// `serve.<name>.*` (named metrics; versions of one name share a
// series).  docs/SERVING.md covers the tuning knobs and the hot-swap
// protocol; docs/OBSERVABILITY.md the metric tables.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "ccq/common/exec.hpp"
#include "ccq/common/workspace.hpp"
#include "ccq/serve/registry.hpp"

namespace ccq::serve {

/// Server-wide knobs.  The batching/admission knobs that used to live
/// here are per-model now — see `ModelConfig` (serve/registry.hpp).
struct ServeConfig {
  std::size_t workers = 1;           ///< batch-executing threads (shared pool)
  std::size_t intra_op_threads = 1;  ///< kernel threads per worker
  /// Injectable clock (nanoseconds, monotone non-decreasing; must be
  /// callable from any thread).  Null = the real steady clock.  Every
  /// time-dependent serving decision — batching deadlines, request
  /// deadlines, latency samples, operating-point dwell — reads this
  /// seam, which is how `tests/serve_sla_test.cpp` asserts scheduler
  /// properties exactly under a virtual clock.  With an injected clock
  /// workers never park on a timer: deadlines are (re)evaluated at
  /// queue events (submit / retire / shutdown), so virtual-clock tests
  /// drive flushes explicitly (e.g. by filling `max_batch`).
  std::function<std::uint64_t()> now_fn;
};

/// Admission rejected: the model's bounded queue already holds
/// `queue_capacity` requests, none of them lower-priority than the
/// incoming request (a lower-priority one would have been shed to make
/// room — see `RequestShedError` in serve/sla.hpp).  Callers shed load
/// or retry after a delay.
class QueueFullError : public Error {
 public:
  QueueFullError(const std::string& model, std::size_t capacity)
      : Error("serve queue for model " + model + " full (capacity " +
              std::to_string(capacity) + "): request rejected") {}
};

/// Admission rejected: the server is shutting down (or already stopped).
class ServerStoppedError : public Error {
 public:
  ServerStoppedError() : Error("inference server is stopped") {}
};

/// Per-request submission knobs (the no-options overloads pass
/// defaults).
struct SubmitOptions {
  /// Service class.  A full queue sheds its lowest-priority request
  /// (FIFO within the class) to admit a strictly higher-priority one;
  /// batches serve higher classes first.
  Priority priority = Priority::kNormal;
  /// Queueing budget in microseconds, relative to admission; 0 = none.
  /// A request not dequeued into a batch within the budget is dropped
  /// at dequeue time — its future fails with `DeadlineExceededError`
  /// and no batch slot is spent on it.  The deadline bounds queueing,
  /// not execution: once batched, the request is served.
  std::uint64_t deadline_us = 0;
  /// Operating-point override: serve this request at exactly rung
  /// `rung` of the model's artifact.  −1 = let the model's
  /// `OperatingPointController` choose at flush time.  Out-of-range
  /// overrides are rejected at admission (ccq::Error naming the model's
  /// rung count).
  std::int32_t rung = -1;
  /// When non-null, receives the rung that served the request, written
  /// before its future becomes ready.  Must stay alive until then.
  std::int32_t* served_rung = nullptr;
};

class InferenceServer {
 public:
  /// Start the shared worker pool; models are loaded separately.
  explicit InferenceServer(ServeConfig config = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Publish `net` as the next version of `name` and start serving it:
  /// an atomic cutover — `resolve(name)` switches to the new version the
  /// moment load returns, while requests already admitted (or still
  /// submitted through old handles) finish on their admitted version.
  /// Returns a handle pinning the new version.
  ModelHandle load(std::string name, hw::IntegerNetwork net,
                   ModelConfig config = {});

  /// Load a packed .ccqa artifact (serve/artifact.hpp) and publish it.
  ModelHandle load(std::string name, const std::string& artifact_path,
                   ModelConfig config = {});

  /// Close admissions for every version of `name` (one version with the
  /// second form) and delist it from the registry.  Requests already
  /// queued are still served; later submits through stale handles
  /// reject with ModelRetiredError.  Unknown names are a no-op.
  void unload(const std::string& name);
  void unload(const std::string& name, std::uint64_t version);

  /// Pin the current (or an explicit) version of `name`.  Throws
  /// ModelNotFoundError when absent.
  ModelHandle resolve(const std::string& name) const;
  ModelHandle resolve(const std::string& name, std::uint64_t version) const;

  const ModelRegistry& registry() const { return registry_; }

  /// Enqueue one CHW sample for the version pinned by `model`.  The
  /// reply lands in `out` (resized to the logit shape, reusing its
  /// capacity) and the future becomes ready once it is written.  Both
  /// `sample` and `out` must stay alive and untouched until then.
  /// Throws QueueFullError / ServerStoppedError / ModelRetiredError on
  /// admission failure, ccq::Error when the sample geometry fails the
  /// network's own shape check (`IntegerNetwork::check_input` — only a
  /// validated geometry ever pins a version's batch shape) or mismatches
  /// earlier requests to the same version; inference failures surface
  /// through the future.
  std::future<void> submit(const ModelHandle& model, const Tensor& sample,
                           Tensor& out);
  /// As above with per-request options (operating-point override /
  /// served-rung report-back).
  std::future<void> submit(const ModelHandle& model, const Tensor& sample,
                           Tensor& out, const SubmitOptions& options);

  /// Convenience: resolve `name`'s current version and submit to it.
  std::future<void> submit(const std::string& name, const Tensor& sample,
                           Tensor& out);

  /// Block until every model's queue is empty and no batch is in flight.
  void drain();

  /// Stop admissions, serve every queued request, join the workers.
  /// Idempotent.
  void shutdown();

  /// Total queued requests across all models / for one model (all
  /// versions of the name).
  std::size_t queue_depth() const;
  std::size_t queue_depth(const std::string& name) const;

  const ServeConfig& config() const { return config_; }

 private:
  using ModelPtr = std::shared_ptr<detail::LoadedModel>;

  /// The server clock: `config_.now_fn` when injected, else the
  /// monotonic telemetry clock.  Called both under and outside mutex_.
  std::uint64_t now_ns() const;

  void worker_loop();
  void run_batch(detail::LoadedModel& model,
                 std::vector<detail::Request>& batch, Workspace& ws,
                 const ExecContext& ctx, std::size_t rung) const;
  /// Mark `models` retired and prune already-idle ones from the scan
  /// list (the worker pool prunes the rest as their queues drain).
  void retire(const std::vector<ModelPtr>& models);

  ModelRegistry registry_;
  ServeConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< queues gained work / stop requested
  std::condition_variable idle_cv_;  ///< all queues drained and workers idle
  /// Model versions the workers scan: every loaded version, including
  /// retired ones still draining.  Entries leave when retired with an
  /// empty queue and nothing in flight.
  std::vector<ModelPtr> active_;
  /// Bumped (under mutex_) whenever queue state changes in a way that
  /// can move a flush deadline earlier — a submit, a retirement.  A
  /// worker parked on the earliest deadline it computed re-parks only
  /// while the generation holds, so a new submission with a shorter
  /// per-model max_delay_us forces a rescan instead of waiting out a
  /// stale later deadline.
  std::uint64_t work_generation_ = 0;
  /// The fair scheduler's virtual clock: the vtime of the most recently
  /// picked model.  A model going idle→busy rejoins at this value, so
  /// idle time never accrues into a catch-up burst (serve/sla.hpp).
  double vclock_ = 0.0;
  std::size_t total_queued_ = 0;
  std::size_t total_in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ccq::serve
