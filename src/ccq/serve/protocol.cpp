#include "ccq/serve/protocol.hpp"

#include <cstring>

namespace ccq::serve::wire {

namespace {

// Local LEB128 writer/reader over std::string buffers — same encoding
// family as the .ccqa payload (artifact.cpp keeps its own copy: the two
// formats version independently and neither wants a shared header to
// couple them).

void put_u8(std::string& buf, std::uint8_t v) {
  buf.push_back(static_cast<char>(v));
}

void put_varint(std::string& buf, std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(buf, static_cast<std::uint8_t>(v | 0x80));
    v >>= 7;
  }
  put_u8(buf, static_cast<std::uint8_t>(v));
}

void put_str(std::string& buf, const std::string& s) {
  put_varint(buf, s.size());
  buf.append(s);
}

void put_zigzag(std::string& buf, std::int64_t v) {
  put_varint(buf, (static_cast<std::uint64_t>(v) << 1) ^
                      static_cast<std::uint64_t>(v >> 63));
}

void put_floats(std::string& buf, const std::vector<float>& v) {
  put_varint(buf, v.size());
  if (!v.empty()) {
    buf.append(reinterpret_cast<const char*>(v.data()),
               v.size() * sizeof(float));
  }
}

/// Bounds-checked cursor over one decoded frame body.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1, "a tag byte");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      need(1, "a varint byte");
      const auto b = static_cast<std::uint8_t>(data_[pos_++]);
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) return v;
    }
    throw ProtocolError("varint runs past 10 bytes");
  }
  std::string str() {
    const std::uint64_t n = varint();
    need(n, "a " + std::to_string(n) + "-byte string");
    std::string s(data_.substr(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  std::vector<float> floats() {
    const std::uint64_t n = varint();
    // Divide, don't multiply: n * sizeof(float) wraps for a hostile
    // count near 2^64 and would sail past the bounds check below.
    if (n > data_.size() / sizeof(float)) {
      throw ProtocolError("body truncated while reading " + std::to_string(n) +
                          " floats");
    }
    need(n * sizeof(float), std::to_string(n) + " floats");
    std::vector<float> v(static_cast<std::size_t>(n));
    if (n > 0) {
      std::memcpy(v.data(), data_.data() + pos_, v.size() * sizeof(float));
      pos_ += v.size() * sizeof(float);
    }
    return v;
  }
  std::int64_t zigzag() {
    const std::uint64_t u = varint();
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }
  /// True once the body is fully consumed — how optional trailing
  /// fields detect their own absence.
  bool done() const { return pos_ == data_.size(); }
  void finish(const char* what) const {
    if (pos_ != data_.size()) {
      throw ProtocolError(std::string(what) + " carries " +
                          std::to_string(data_.size() - pos_) +
                          " trailing bytes");
    }
  }

 private:
  void need(std::uint64_t n, const std::string& what) const {
    if (data_.size() - pos_ < n) {
      throw ProtocolError("body truncated while reading " + what);
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

// ---- framing ---------------------------------------------------------------

void append_frame(std::string& buffer, std::string_view body) {
  if (body.size() > kMaxFrameBytes) {
    throw ProtocolError("frame body of " + std::to_string(body.size()) +
                        " bytes exceeds the " +
                        std::to_string(kMaxFrameBytes) + "-byte cap");
  }
  const auto len = static_cast<std::uint32_t>(body.size());
  char prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  buffer.append(prefix, 4);
  buffer.append(body);
}

bool extract_frame(std::string& buffer, std::string& body) {
  if (buffer.size() < 4) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buffer[i]))
           << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    throw ProtocolError("declared frame length " + std::to_string(len) +
                        " exceeds the " + std::to_string(kMaxFrameBytes) +
                        "-byte cap");
  }
  if (buffer.size() - 4 < len) return false;
  body.assign(buffer, 4, len);
  buffer.erase(0, 4 + static_cast<std::size_t>(len));
  return true;
}

// ---- messages --------------------------------------------------------------

namespace {

// Optional trailing fields: {u8 field tag, value} pairs after the fixed
// fields.  Old decoders treat any trailing byte as garbage (their
// `finish` fires), and new decoders reject unknown tags the same way —
// extensibility without weakening the trailing-garbage rejection the
// codec tests lock in.
constexpr std::uint8_t kFieldPoint = 1;  ///< InferRequest: zigzag rung override
constexpr std::uint8_t kFieldPriority = 2;  ///< InferRequest: varint class
constexpr std::uint8_t kFieldDeadline = 3;  ///< InferRequest: varint budget us
constexpr std::uint8_t kFieldRung = 1;   ///< InferReply: varint served rung

constexpr std::uint64_t kMaxPriority = 2;  ///< highest service class on the wire

}  // namespace

std::string encode_request(const InferRequest& request) {
  std::string body;
  put_u8(body, static_cast<std::uint8_t>(MessageType::kInferRequest));
  put_str(body, request.model);
  put_varint(body, request.version);
  put_varint(body, request.channels);
  put_varint(body, request.height);
  put_varint(body, request.width);
  put_floats(body, request.data);
  if (request.has_point) {
    put_u8(body, kFieldPoint);
    put_zigzag(body, request.point);
  }
  if (request.has_priority) {
    put_u8(body, kFieldPriority);
    put_varint(body, request.priority);
  }
  if (request.has_deadline) {
    put_u8(body, kFieldDeadline);
    put_varint(body, request.deadline_us);
  }
  return body;
}

InferRequest decode_request(std::string_view body) {
  Cursor c(body);
  const auto tag = c.u8();
  if (tag != static_cast<std::uint8_t>(MessageType::kInferRequest)) {
    throw ProtocolError("expected an InferRequest (tag 1), got tag " +
                        std::to_string(tag));
  }
  InferRequest request;
  request.model = c.str();
  request.version = c.varint();
  request.channels = static_cast<std::size_t>(c.varint());
  request.height = static_cast<std::size_t>(c.varint());
  request.width = static_cast<std::size_t>(c.varint());
  request.data = c.floats();
  while (!c.done()) {
    const auto field = c.u8();
    if (field == kFieldPoint && !request.has_point) {
      request.has_point = true;
      request.point = static_cast<std::int32_t>(c.zigzag());
    } else if (field == kFieldPriority && !request.has_priority) {
      const std::uint64_t priority = c.varint();
      if (priority > kMaxPriority) {
        throw ProtocolError("InferRequest priority " +
                            std::to_string(priority) +
                            " out of range (0 low … 2 high)");
      }
      request.has_priority = true;
      request.priority = static_cast<std::uint8_t>(priority);
    } else if (field == kFieldDeadline && !request.has_deadline) {
      const std::uint64_t deadline_us = c.varint();
      if (deadline_us == 0) {
        // A zero budget would mean "no deadline" while claiming one —
        // reject the ambiguity instead of guessing (omit the tag).
        throw ProtocolError(
            "InferRequest deadline_us must be positive (omit the tag for "
            "no deadline)");
      }
      request.has_deadline = true;
      request.deadline_us = deadline_us;
    } else {
      throw ProtocolError("InferRequest carries unknown trailing field tag " +
                          std::to_string(field));
    }
  }
  c.finish("InferRequest");
  const std::string geometry = std::to_string(request.channels) + "x" +
                               std::to_string(request.height) + "x" +
                               std::to_string(request.width);
  // Checked geometry product: a hostile frame can declare dims whose
  // product wraps std::size_t (e.g. 2^32 x 2^32 x 1 "equals" zero
  // floats) and would otherwise be admitted with garbage dimensions.
  // Every dim is capped by the most floats one frame can carry, so the
  // staged products below never exceed kMaxFloats^2 < 2^45 — no wrap.
  constexpr std::uint64_t kMaxFloats = kMaxFrameBytes / sizeof(float);
  if (request.channels == 0 || request.height == 0 || request.width == 0 ||
      request.channels > kMaxFloats || request.height > kMaxFloats ||
      request.width > kMaxFloats) {
    throw ProtocolError("InferRequest geometry " + geometry +
                        " has a zero dimension or exceeds the " +
                        std::to_string(kMaxFloats) + "-float frame cap");
  }
  std::uint64_t numel =
      static_cast<std::uint64_t>(request.channels) * request.height;
  if (numel <= kMaxFloats) numel *= request.width;
  if (numel > kMaxFloats) {
    throw ProtocolError("InferRequest geometry " + geometry + " exceeds the " +
                        std::to_string(kMaxFloats) + "-float frame cap");
  }
  if (request.data.size() != numel) {
    throw ProtocolError("InferRequest geometry " + geometry + " wants " +
                        std::to_string(numel) + " floats, got " +
                        std::to_string(request.data.size()));
  }
  return request;
}

std::string encode_reply(const InferReply& reply) {
  std::string body;
  if (reply.ok) {
    put_u8(body, static_cast<std::uint8_t>(MessageType::kReplyOk));
    put_varint(body, reply.version);
    put_floats(body, reply.logits);
    if (reply.has_rung) {
      put_u8(body, kFieldRung);
      put_varint(body, reply.rung);
    }
  } else {
    put_u8(body, static_cast<std::uint8_t>(MessageType::kReplyError));
    put_str(body, reply.error);
  }
  return body;
}

InferReply decode_reply(std::string_view body) {
  Cursor c(body);
  const auto tag = c.u8();
  InferReply reply;
  if (tag == static_cast<std::uint8_t>(MessageType::kReplyOk)) {
    reply.ok = true;
    reply.version = c.varint();
    reply.logits = c.floats();
    while (!c.done()) {
      const auto field = c.u8();
      if (field == kFieldRung && !reply.has_rung) {
        reply.has_rung = true;
        reply.rung = static_cast<std::uint32_t>(c.varint());
      } else {
        throw ProtocolError("InferReply carries unknown trailing field tag " +
                            std::to_string(field));
      }
    }
    c.finish("InferReply");
  } else if (tag == static_cast<std::uint8_t>(MessageType::kReplyError)) {
    reply.ok = false;
    reply.error = c.str();
    c.finish("InferReply");
  } else {
    throw ProtocolError("expected an InferReply (tag 2 or 3), got tag " +
                        std::to_string(tag));
  }
  return reply;
}

}  // namespace ccq::serve::wire
