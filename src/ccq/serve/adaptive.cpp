#include "ccq/serve/adaptive.hpp"

#include <algorithm>

#include "ccq/common/error.hpp"

namespace ccq::serve {

OperatingPointController::OperatingPointController(OperatingPointPolicy policy,
                                                   std::size_t rung_count,
                                                   int latency_timer,
                                                   int rung_gauge,
                                                   int switch_counter)
    : policy_(policy),
      rung_count_(rung_count),
      latency_timer_(latency_timer),
      rung_gauge_(rung_gauge),
      switch_counter_(switch_counter) {
  CCQ_CHECK(rung_count_ >= 1, "a model serves at least one rung");
  if (rung_count_ > 1 && policy_.fixed_rung < 0) {
    CCQ_CHECK(policy_.restore_depth < policy_.degrade_depth,
              "operating-point policy needs restore_depth (" +
                  std::to_string(policy_.restore_depth) +
                  ") < degrade_depth (" +
                  std::to_string(policy_.degrade_depth) +
                  ") — the gap is the hysteresis band");
  }
  CCQ_CHECK(policy_.degrade_miss_rate >= 0.0 && policy_.degrade_miss_rate <= 1.0,
            "degrade_miss_rate must be within [0, 1], got " +
                std::to_string(policy_.degrade_miss_rate));
  if (policy_.fixed_rung >= 0) {
    CCQ_CHECK(static_cast<std::size_t>(policy_.fixed_rung) < rung_count_,
              "fixed_rung " + std::to_string(policy_.fixed_rung) +
                  " out of range: model has " + std::to_string(rung_count_) +
                  " rung(s)");
    current_ = static_cast<std::size_t>(policy_.fixed_rung);
  }
  telemetry::set_named_gauge(rung_gauge_, static_cast<double>(current_));
}

bool OperatingPointController::latency_degrade() {
  if (policy_.degrade_p99_us == 0 || latency_timer_ < 0) return false;
  const telemetry::TimerStats stats =
      telemetry::named_timer_stats(latency_timer_);
  // p99 over the window since the last decision: subtract the previous
  // snapshot bucket-wise so one historical spike cannot hold the model
  // degraded forever.
  telemetry::TimerStats window;
  window.count = stats.count - last_stats_.count;
  for (int b = 0; b < telemetry::kHistogramBuckets; ++b) {
    window.buckets[b] = stats.buckets[b] - last_stats_.buckets[b];
  }
  last_stats_ = stats;
  if (window.count == 0) return false;
  const std::uint64_t p99_ns = telemetry::approx_quantile(window, 0.99);
  return p99_ns > policy_.degrade_p99_us * 1000;
}

bool OperatingPointController::deadline_degrade(const LoadSignals& signals) {
  if (policy_.degrade_miss_rate <= 0.0) return false;
  if (signals.admitted < last_admitted_ ||
      signals.deadline_misses < last_misses_) {
    // Counters went backwards: the caller mixed signal sources (the
    // two-argument `decide` carries no counters) or reset them.  An
    // unsigned window would wrap to ~2^64 and degrade forever —
    // resnapshot instead and report a quiet window.
    last_admitted_ = signals.admitted;
    last_misses_ = signals.deadline_misses;
    return false;
  }
  // Window against the previous decision, like the latency trigger.
  const std::uint64_t admitted = signals.admitted - last_admitted_;
  const std::uint64_t misses = signals.deadline_misses - last_misses_;
  last_admitted_ = signals.admitted;
  last_misses_ = signals.deadline_misses;
  if (admitted == 0) return misses > 0;
  return static_cast<double>(misses) >
         policy_.degrade_miss_rate * static_cast<double>(admitted);
}

std::size_t OperatingPointController::decide(const LoadSignals& signals) {
  if (rung_count_ == 1 || policy_.fixed_rung >= 0) return current_;

  // Evaluate the windowed triggers unconditionally so their snapshots
  // advance every decision, not only when depth is quiet.
  const bool hot_latency = latency_degrade();
  const bool hot_deadlines = deadline_degrade(signals);

  if (switched_once_ &&
      signals.now_ns - last_switch_ns_ < policy_.min_dwell_us * 1000) {
    return current_;
  }

  std::size_t next = current_;
  if (signals.queue_depth >= policy_.degrade_depth || hot_latency ||
      hot_deadlines) {
    next = std::min(current_ + 1, rung_count_ - 1);
  } else if (signals.queue_depth <= policy_.restore_depth && current_ > 0) {
    next = current_ - 1;
  }
  if (next != current_) {
    current_ = next;
    last_switch_ns_ = signals.now_ns;
    switched_once_ = true;
    telemetry::add_named(switch_counter_);
    telemetry::set_named_gauge(rung_gauge_, static_cast<double>(current_));
  }
  return current_;
}

}  // namespace ccq::serve
