#include "ccq/serve/artifact.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <type_traits>
#include <utility>

#include "ccq/common/fileio.hpp"

namespace ccq::serve {

namespace {

// ---- code packing ----------------------------------------------------------

std::uint32_t offsets_gcd(const std::vector<std::int32_t>& codes,
                          std::int32_t min_code) {
  std::uint64_t g = 0;
  for (std::int32_t c : codes) {
    g = std::gcd(g, static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(c) - min_code));
    if (g == 1) break;
  }
  return g == 0 ? 1 : static_cast<std::uint32_t>(g);
}

// ---- little-endian byte stream ---------------------------------------------

class ByteWriter {
 public:
  template <typename T>
  void pod(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const char*>(&v);
    buf_.append(p, sizeof(T));
  }
  /// LEB128: 7 value bits per byte, high bit = continuation.  Counts and
  /// geometry dims are almost always < 128, so they cost one byte instead
  /// of a fixed-width field — the slack that pays for the per-channel
  /// requant record inside the artifact's 4× compression budget.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      pod(static_cast<std::uint8_t>(v | 0x80));
      v >>= 7;
    }
    pod(static_cast<std::uint8_t>(v));
  }
  /// Zigzag-mapped varint for small signed values (0, −1, 1, −2, …).
  void zigzag(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }
  void str(const std::string& s) {
    varint(s.size());
    buf_.append(s.data(), s.size());
  }
  void floats(const std::vector<float>& v) {
    varint(v.size());
    buf_.append(reinterpret_cast<const char*>(v.data()),
                v.size() * sizeof(float));
  }
  void raw(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Cursor over the checksummed payload.  Every read is bounds-checked and
/// failures name the file plus the layer being parsed, so a malformed
/// artifact reports *where* it broke, not just "bad stream".
class ByteReader {
 public:
  ByteReader(std::string data, std::string path)
      : data_(std::move(data)), path_(std::move(path)) {}

  void set_context(const std::string& layer) { layer_ = layer; }

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T), "a " + std::to_string(sizeof(T)) + "-byte field");
    T v{};
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const auto b = pod<std::uint8_t>();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) return v;
    }
    fail("varint runs past 10 bytes");
  }
  std::int64_t zigzag() {
    const std::uint64_t u = varint();
    return static_cast<std::int64_t>(u >> 1) ^
           -static_cast<std::int64_t>(u & 1);
  }
  std::string str() {
    const auto n = static_cast<std::size_t>(varint());
    need(n, "a " + std::to_string(n) + "-byte name");
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  std::vector<float> floats() {
    const auto n = varint();
    need(n * sizeof(float), std::to_string(n) + " floats");
    std::vector<float> v(static_cast<std::size_t>(n));
    std::memcpy(v.data(), data_.data() + pos_, v.size() * sizeof(float));
    pos_ += v.size() * sizeof(float);
    return v;
  }
  std::vector<std::uint8_t> raw(std::size_t n) {
    need(n, std::to_string(n) + " packed bytes");
    std::vector<std::uint8_t> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n);
    pos_ += n;
    return v;
  }
  bool exhausted() const { return pos_ == data_.size(); }

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("artifact " + path_ +
                (layer_.empty() ? "" : " (layer '" + layer_ + "')") + ": " +
                what);
  }

 private:
  void need(std::size_t n, const std::string& what) const {
    if (data_.size() - pos_ < n) {
      fail("payload truncated while reading " + what);
    }
  }

  std::string data_;
  std::string path_;
  std::string layer_;
  std::size_t pos_ = 0;
};

// ---- layer (de)serialisation -----------------------------------------------

const char* kind_str(hw::IntLayerPlan::Kind kind) {
  using Kind = hw::IntLayerPlan::Kind;
  switch (kind) {
    case Kind::kConv: return "conv";
    case Kind::kLinear: return "linear";
    case Kind::kMaxPool: return "maxpool";
    case Kind::kAvgPool: return "avgpool";
    case Kind::kGlobalAvgPool: return "globalavgpool";
    case Kind::kFlatten: return "flatten";
  }
  return "?";
}

void write_packed_codes(ByteWriter& w, const std::vector<std::int32_t>& codes) {
  const PackedCodes packed = pack_codes(codes);
  w.zigzag(packed.min_code);
  w.varint(packed.divisor);
  w.pod(packed.bits);
  w.varint(packed.count);
  w.varint(packed.bytes.size());
  w.raw(packed.bytes.data(), packed.bytes.size());
}

std::vector<std::int32_t> read_packed_codes(ByteReader& r) {
  PackedCodes packed;
  packed.min_code = static_cast<std::int32_t>(r.zigzag());
  packed.divisor = static_cast<std::uint32_t>(r.varint());
  packed.bits = r.pod<std::uint8_t>();
  packed.count = r.varint();
  const auto byte_count = r.varint();
  const std::size_t expect_bytes =
      (static_cast<std::size_t>(packed.count) * packed.bits + 7) / 8;
  if (byte_count != expect_bytes) {
    r.fail("packed code stream holds " + std::to_string(byte_count) +
           " bytes, but " + std::to_string(packed.count) + " codes at " +
           std::to_string(int(packed.bits)) + " bits need " +
           std::to_string(expect_bytes));
  }
  packed.bytes = r.raw(static_cast<std::size_t>(byte_count));
  return unpack_codes(packed);
}

// The fused fixed-point requantization record.  Only the per-channel
// parameters are stored; `out_qmax` and `acc_bound` are exact integer
// functions of the serialized act_bits / weight codes / geometry, so
// `finalize_plans` rederives them at load time and the exporter and
// loader always agree.
void write_requant(ByteWriter& w, const hw::IntLayerPlan& plan) {
  w.pod(static_cast<std::uint8_t>(plan.requant_fused ? 1 : 0));
  if (plan.requant_fused) {
    w.varint(plan.requant.size());
    for (const Requant& rq : plan.requant) {
      w.pod(rq.multiplier);
      w.pod(static_cast<std::uint8_t>(rq.shift));
      w.zigzag(rq.bias);
    }
  }
}

void read_requant(ByteReader& r, hw::IntLayerPlan& plan) {
  plan.requant.clear();
  plan.requant_fused = r.pod<std::uint8_t>() != 0;
  if (plan.requant_fused) {
    plan.requant.resize(static_cast<std::size_t>(r.varint()));
    for (Requant& rq : plan.requant) {
      rq.multiplier = r.pod<std::int32_t>();
      rq.shift = r.pod<std::uint8_t>();
      rq.bias = r.zigzag();
    }
  }
}

void write_plan(ByteWriter& w, const hw::IntLayerPlan& plan) {
  w.str(plan.name);
  w.pod(static_cast<std::uint8_t>(plan.kind));
  w.pod(static_cast<std::uint8_t>(plan.weight_bits));
  w.pod(static_cast<std::uint8_t>(plan.has_act ? 1 : 0));
  w.pod(static_cast<std::uint8_t>(plan.act_bits));
  w.pod(plan.act_clip);
  for (std::size_t dim : {plan.in_channels, plan.out_channels, plan.kernel,
                          plan.stride, plan.pad, plan.in_features,
                          plan.out_features, plan.pool_kernel,
                          plan.pool_stride}) {
    w.varint(dim);
  }
  write_packed_codes(w, plan.weight_codes);
  w.floats(plan.channel_scale);
  w.floats(plan.bias);
  write_requant(w, plan);
}

hw::IntLayerPlan read_plan(ByteReader& r) {
  hw::IntLayerPlan plan;
  plan.name = r.str();
  r.set_context(plan.name);
  const auto kind = r.pod<std::uint8_t>();
  if (kind > static_cast<std::uint8_t>(hw::IntLayerPlan::Kind::kFlatten)) {
    r.fail("unknown layer kind " + std::to_string(kind));
  }
  plan.kind = static_cast<hw::IntLayerPlan::Kind>(kind);
  plan.weight_bits = r.pod<std::uint8_t>();
  plan.has_act = r.pod<std::uint8_t>() != 0;
  plan.act_bits = r.pod<std::uint8_t>();
  plan.act_clip = r.pod<float>();
  for (std::size_t* dim : {&plan.in_channels, &plan.out_channels, &plan.kernel,
                           &plan.stride, &plan.pad, &plan.in_features,
                           &plan.out_features, &plan.pool_kernel,
                           &plan.pool_stride}) {
    *dim = static_cast<std::size_t>(r.varint());
  }
  plan.weight_codes = read_packed_codes(r);
  plan.channel_scale = r.floats();
  plan.bias = r.floats();
  read_requant(r, plan);
  // out_qmax / acc_bound are not serialized: finalize_plans rederives
  // them from act_bits and the unpacked weight codes.
  return plan;
}

// ---- v3 delta sections -----------------------------------------------------
// A delta record rewrites the precision-dependent halves of one layer
// plan relative to the next-lower rung: the codes section (weight bits +
// packed codes) and/or the metadata section (activation grid, channel
// scales, folded biases, requant record).  Identity and geometry never
// appear — they are invariant across rungs and live in the base records.

constexpr std::uint8_t kDeltaCodes = 1;  // flag bit 0
constexpr std::uint8_t kDeltaMeta = 2;   // flag bit 1

void write_delta_codes(ByteWriter& w, const hw::IntLayerPlan& plan) {
  w.pod(static_cast<std::uint8_t>(plan.weight_bits));
  write_packed_codes(w, plan.weight_codes);
}

void read_delta_codes(ByteReader& r, hw::IntLayerPlan& plan) {
  plan.weight_bits = r.pod<std::uint8_t>();
  plan.weight_codes = read_packed_codes(r);
}

void write_delta_meta(ByteWriter& w, const hw::IntLayerPlan& plan) {
  w.pod(static_cast<std::uint8_t>(plan.has_act ? 1 : 0));
  w.pod(static_cast<std::uint8_t>(plan.act_bits));
  w.pod(plan.act_clip);
  w.floats(plan.channel_scale);
  w.floats(plan.bias);
  write_requant(w, plan);
}

void read_delta_meta(ByteReader& r, hw::IntLayerPlan& plan) {
  plan.has_act = r.pod<std::uint8_t>() != 0;
  plan.act_bits = r.pod<std::uint8_t>();
  plan.act_clip = r.pod<float>();
  plan.channel_scale = r.floats();
  plan.bias = r.floats();
  read_requant(r, plan);
}

bool codes_equal(const hw::IntLayerPlan& a, const hw::IntLayerPlan& b) {
  return a.weight_bits == b.weight_bits && a.weight_codes == b.weight_codes;
}

bool meta_equal(const hw::IntLayerPlan& a, const hw::IntLayerPlan& b) {
  if (a.has_act != b.has_act || a.act_bits != b.act_bits ||
      a.act_clip != b.act_clip || a.channel_scale != b.channel_scale ||
      a.bias != b.bias || a.requant_fused != b.requant_fused ||
      a.requant.size() != b.requant.size()) {
    return false;
  }
  for (std::size_t c = 0; c < a.requant.size(); ++c) {
    if (a.requant[c].multiplier != b.requant[c].multiplier ||
        a.requant[c].shift != b.requant[c].shift ||
        a.requant[c].bias != b.requant[c].bias) {
      return false;
    }
  }
  return true;
}

/// Structural validation with expected-vs-found messages per layer.
void validate_plan(ByteReader& r, const hw::IntLayerPlan& plan,
                   std::size_t index) {
  using Kind = hw::IntLayerPlan::Kind;
  r.set_context(plan.name);
  const std::string at = "layer index " + std::to_string(index) + ", kind " +
                         kind_str(plan.kind);
  if (plan.kind == Kind::kConv || plan.kind == Kind::kLinear) {
    if (plan.weight_bits < 2 || plan.weight_bits > 15) {
      r.fail("weight bits " + std::to_string(plan.weight_bits) +
             " outside the quantized range [2, 15] (" + at + ")");
    }
    const std::size_t rows =
        plan.kind == Kind::kConv ? plan.out_channels : plan.out_features;
    const std::size_t cols =
        plan.kind == Kind::kConv
            ? plan.in_channels * plan.kernel * plan.kernel
            : plan.in_features;
    if (plan.weight_codes.size() != rows * cols) {
      r.fail("has " + std::to_string(plan.weight_codes.size()) +
             " weight codes, expected " + std::to_string(rows) + "×" +
             std::to_string(cols) + " = " + std::to_string(rows * cols) +
             " (" + at + ")");
    }
    if (plan.channel_scale.size() != rows || plan.bias.size() != rows) {
      r.fail("has " + std::to_string(plan.channel_scale.size()) +
             " scales / " + std::to_string(plan.bias.size()) +
             " biases, expected " + std::to_string(rows) +
             " output channels (" + at + ")");
    }
    if (plan.has_act && (plan.act_bits < 1 || plan.act_bits > 32)) {
      r.fail("activation bits " + std::to_string(plan.act_bits) +
             " out of range (" + at + ")");
    }
    if (plan.requant_fused) {
      if (plan.requant.size() != rows) {
        r.fail("fused requant record holds " +
               std::to_string(plan.requant.size()) +
               " channels, expected " + std::to_string(rows) + " (" + at +
               ")");
      }
      if (!plan.has_act || plan.act_bits >= 16) {
        r.fail("fused requant record on a layer without a quantized "
               "activation grid (" + at + ")");
      }
      for (const Requant& rq : plan.requant) {
        if (rq.shift < 1 || rq.shift > 62) {
          r.fail("fused requant shift " + std::to_string(rq.shift) +
                 " outside [1, 62] (" + at + ")");
        }
      }
    } else if (!plan.requant.empty()) {
      r.fail("unfused layer carries " + std::to_string(plan.requant.size()) +
             " requant channels (" + at + ")");
    }
  } else if (!plan.weight_codes.empty()) {
    r.fail("a pooling/reshape layer carries " +
           std::to_string(plan.weight_codes.size()) + " weight codes (" + at +
           ")");
  }
}

std::string hex(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

PackedCodes pack_codes(const std::vector<std::int32_t>& codes) {
  PackedCodes packed;
  packed.count = codes.size();
  if (codes.empty()) return packed;
  const auto [min_it, max_it] = std::minmax_element(codes.begin(), codes.end());
  packed.min_code = *min_it;
  packed.divisor = offsets_gcd(codes, packed.min_code);
  const std::uint64_t range =
      (static_cast<std::uint64_t>(static_cast<std::int64_t>(*max_it) -
                                  packed.min_code)) /
      packed.divisor;
  packed.bits = static_cast<std::uint8_t>(std::bit_width(range));
  if (packed.bits == 0) return packed;  // all codes equal: nothing to store
  packed.bytes.assign((codes.size() * packed.bits + 7) / 8, 0);
  std::size_t bit_pos = 0;
  for (std::int32_t c : codes) {
    std::uint64_t v = static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(c) - packed.min_code) /
                      packed.divisor;
    for (int b = 0; b < packed.bits; ++b, ++bit_pos) {
      if ((v >> b) & 1u) {
        packed.bytes[bit_pos / 8] |=
            static_cast<std::uint8_t>(1u << (bit_pos % 8));
      }
    }
  }
  return packed;
}

std::vector<std::int32_t> unpack_codes(const PackedCodes& packed) {
  std::vector<std::int32_t> codes(static_cast<std::size_t>(packed.count),
                                  packed.min_code);
  if (packed.bits == 0) return codes;
  CCQ_CHECK(packed.bytes.size() * 8 >= packed.count * packed.bits,
            "packed code stream shorter than its declared bit count");
  std::size_t bit_pos = 0;
  for (auto& code : codes) {
    std::uint64_t v = 0;
    for (int b = 0; b < packed.bits; ++b, ++bit_pos) {
      v |= static_cast<std::uint64_t>((packed.bytes[bit_pos / 8] >>
                                       (bit_pos % 8)) &
                                      1u)
           << b;
    }
    code = static_cast<std::int32_t>(
        packed.min_code +
        static_cast<std::int64_t>(v * packed.divisor));
  }
  return codes;
}

namespace {

/// v2 payload: full layer records of one rung.
std::string encode_single_payload(const hw::IntegerNetwork& net,
                                  std::size_t rung) {
  ByteWriter payload;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    write_plan(payload, net.plan(rung, i));
  }
  return payload.bytes();
}

/// v3 payload: rung table, base records, chained deltas (see artifact.hpp).
std::string encode_multi_payload(const hw::IntegerNetwork& net) {
  const std::size_t rungs = net.rung_count();
  const std::size_t base = rungs - 1;
  ByteWriter payload;
  payload.varint(rungs);
  for (std::size_t r = 0; r < rungs; ++r) {
    payload.zigzag(net.rung_info(r).trail_step);
    payload.pod(net.rung_info(r).val_acc);
  }
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    write_plan(payload, net.plan(base, i));
  }
  for (std::size_t r = base; r-- > 0;) {
    std::vector<std::pair<std::size_t, std::uint8_t>> deltas;
    for (std::size_t i = 0; i < net.layer_count(); ++i) {
      std::uint8_t flags = 0;
      if (!codes_equal(net.plan(r, i), net.plan(r + 1, i))) {
        flags |= kDeltaCodes;
      }
      if (!meta_equal(net.plan(r, i), net.plan(r + 1, i))) {
        flags |= kDeltaMeta;
      }
      if (flags != 0) deltas.emplace_back(i, flags);
    }
    payload.varint(deltas.size());
    for (const auto& [i, flags] : deltas) {
      payload.varint(i);
      payload.pod(flags);
      if (flags & kDeltaCodes) write_delta_codes(payload, net.plan(r, i));
      if (flags & kDeltaMeta) write_delta_meta(payload, net.plan(r, i));
    }
  }
  return payload.bytes();
}

/// Fixed header size: 4-byte magic, u32 version, u32 layer count,
/// u64 payload length, u64 checksum.
constexpr std::size_t kHeaderBytes = 28;

void write_artifact_file(const std::string& path, std::uint32_t version,
                         std::size_t layer_count, const std::string& body) {
  const std::uint64_t checksum = fnv1a(body.data(), body.size());
  atomic_write_file(path, [&](std::ostream& os) {
    ByteWriter header;
    header.raw(kArtifactMagic, sizeof(kArtifactMagic));
    header.pod(version);
    header.pod(static_cast<std::uint32_t>(layer_count));
    header.pod(static_cast<std::uint64_t>(body.size()));
    header.pod(checksum);
    os.write(header.bytes().data(),
             static_cast<std::streamsize>(header.bytes().size()));
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
  });
}

/// Everything a CCQA file holds, decoded and validated but not yet
/// compiled into kernels — shared by load_artifact and inspect_artifact.
struct ParsedArtifact {
  std::uint32_t version = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t payload_bytes = 0;
  std::vector<std::vector<hw::IntLayerPlan>> rungs;  ///< rung 0 = top
  std::vector<hw::RungInfo> info;
};

ParsedArtifact parse_artifact(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CCQ_CHECK(static_cast<bool>(is), "cannot open artifact: " + path);

  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || !std::equal(magic, magic + 4, kArtifactMagic)) {
    throw Error("artifact " + path + ": bad magic (not a ccq::serve artifact)");
  }
  auto read_u32 = [&] {
    std::uint32_t v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  auto read_u64 = [&] {
    std::uint64_t v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  const std::uint32_t version = read_u32();
  const std::uint32_t layer_count = read_u32();
  const std::uint64_t payload_bytes = read_u64();
  const std::uint64_t checksum = read_u64();
  if (!is) throw Error("artifact " + path + ": truncated header");
  // Version negotiation happens here, before a single payload byte is
  // read: the header layout is shared by every version, so an old
  // reader meeting a new file (and vice versa) always reaches this
  // diagnostic rather than a parse error deep inside a payload it was
  // never built to understand.
  if (version != kArtifactVersion && version != kArtifactVersionMulti) {
    throw Error(
        "artifact " + path + ": unsupported version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kArtifactVersion) + " and version " +
        std::to_string(kArtifactVersionMulti) +
        "); regenerate it with this build: ccq export --snapshot "
        "<snapshot.bin> --out " + path);
  }

  std::string body(static_cast<std::size_t>(payload_bytes), '\0');
  is.read(body.data(), static_cast<std::streamsize>(body.size()));
  if (!is || static_cast<std::uint64_t>(is.gcount()) != payload_bytes) {
    throw Error("artifact " + path + ": payload truncated (header declares " +
                std::to_string(payload_bytes) + " bytes, file holds " +
                std::to_string(is ? is.gcount() : 0) +
                ") — was the export interrupted?");
  }
  const std::uint64_t computed = fnv1a(body.data(), body.size());
  if (computed != checksum) {
    throw Error("artifact " + path + ": checksum mismatch (header " +
                hex(checksum) + ", payload hashes to " + hex(computed) +
                ") — file is corrupt");
  }
  // Reject bytes past the declared payload, like the payload-internal
  // exhaustion check below: an artifact with trailing garbage was not
  // written by this exporter, however plausible its prefix.
  if (is.peek() != std::ifstream::traits_type::eof()) {
    throw Error("artifact " + path + ": file holds bytes past the declared " +
                std::to_string(payload_bytes) +
                "-byte payload — truncated or concatenated write?");
  }

  ParsedArtifact parsed;
  parsed.version = version;
  parsed.payload_bytes = payload_bytes;
  parsed.file_bytes = payload_bytes + kHeaderBytes;
  ByteReader reader(std::move(body), path);

  if (version == kArtifactVersion) {
    std::vector<hw::IntLayerPlan> plans;
    plans.reserve(layer_count);
    for (std::uint32_t i = 0; i < layer_count; ++i) {
      plans.push_back(read_plan(reader));
      validate_plan(reader, plans.back(), i);
    }
    parsed.rungs.push_back(std::move(plans));
    parsed.info.push_back(hw::RungInfo{});
  } else {
    const auto rung_count = static_cast<std::size_t>(reader.varint());
    if (rung_count < 2) {
      reader.fail("multi-point artifact declares " +
                  std::to_string(rung_count) +
                  " rungs (a v3 file carries at least 2)");
    }
    parsed.info.resize(rung_count);
    for (auto& info : parsed.info) {
      info.trail_step = static_cast<std::int32_t>(reader.zigzag());
      info.val_acc = reader.pod<float>();
    }
    parsed.rungs.resize(rung_count);
    auto& base = parsed.rungs.back();
    base.reserve(layer_count);
    for (std::uint32_t i = 0; i < layer_count; ++i) {
      base.push_back(read_plan(reader));
      validate_plan(reader, base.back(), i);
    }
    for (std::size_t r = rung_count - 1; r-- > 0;) {
      parsed.rungs[r] = parsed.rungs[r + 1];
      const auto delta_count = static_cast<std::size_t>(reader.varint());
      std::size_t prev_index = 0;
      bool first = true;
      for (std::size_t d = 0; d < delta_count; ++d) {
        reader.set_context("");
        const auto index = static_cast<std::size_t>(reader.varint());
        if (index >= layer_count) {
          reader.fail("rung " + std::to_string(r) + " delta names layer " +
                      std::to_string(index) + " of " +
                      std::to_string(layer_count));
        }
        if (!first && index <= prev_index) {
          reader.fail("rung " + std::to_string(r) +
                      " deltas are not in ascending layer order");
        }
        first = false;
        prev_index = index;
        hw::IntLayerPlan& plan = parsed.rungs[r][index];
        reader.set_context(plan.name);
        const auto flags = reader.pod<std::uint8_t>();
        if (flags == 0 || (flags & ~(kDeltaCodes | kDeltaMeta)) != 0) {
          reader.fail("rung " + std::to_string(r) + " delta carries flags " +
                      std::to_string(flags));
        }
        if (flags & kDeltaCodes) read_delta_codes(reader, plan);
        if (flags & kDeltaMeta) read_delta_meta(reader, plan);
      }
      for (std::size_t i = 0; i < parsed.rungs[r].size(); ++i) {
        validate_plan(reader, parsed.rungs[r][i], i);
      }
    }
  }
  reader.set_context("");
  if (!reader.exhausted()) {
    reader.fail("trailing bytes after the declared " +
                std::to_string(layer_count) + " layers");
  }
  return parsed;
}

}  // namespace

void export_artifact(const hw::IntegerNetwork& net, const std::string& path) {
  if (net.rung_count() == 1) {
    write_artifact_file(path, kArtifactVersion, net.layer_count(),
                        encode_single_payload(net, 0));
  } else {
    write_artifact_file(path, kArtifactVersionMulti, net.layer_count(),
                        encode_multi_payload(net));
  }
}

void export_artifact(models::QuantModel& model, const std::string& path) {
  export_artifact(hw::IntegerNetwork::compile(model), path);
}

hw::IntegerNetwork load_artifact(const std::string& path) {
  ParsedArtifact parsed = parse_artifact(path);
  // from_plans / from_rungs re-finalize: every layer of every rung
  // selects its igemm kernel (honouring $CCQ_IGEMM_KERNEL) and re-packs
  // its weight panel in that kernel's layout, so a loaded artifact
  // serves with the same per-layer kernel choices a freshly compiled
  // network would get on this host.  Re-throw with the artifact path so
  // a bad kernel override at load time names what was being loaded.
  try {
    if (parsed.version == kArtifactVersion) {
      return hw::IntegerNetwork::from_plans(std::move(parsed.rungs.front()));
    }
    return hw::IntegerNetwork::from_rungs(std::move(parsed.rungs),
                                          std::move(parsed.info));
  } catch (const Error& e) {
    throw Error("artifact " + path + ": " + e.what());
  }
}

ArtifactInfo inspect_artifact(const std::string& path) {
  ParsedArtifact parsed = parse_artifact(path);
  ArtifactInfo info;
  info.version = parsed.version;
  info.rung_count = parsed.rungs.size();
  info.layer_count = parsed.rungs.front().size();
  info.file_bytes = parsed.file_bytes;
  info.payload_bytes = parsed.payload_bytes;
  info.rungs = parsed.info;
  info.layers.reserve(info.layer_count);
  for (std::size_t i = 0; i < info.layer_count; ++i) {
    ArtifactLayerInfo layer;
    layer.name = parsed.rungs.front()[i].name;
    layer.kind = kind_str(parsed.rungs.front()[i].kind);
    for (const auto& rung : parsed.rungs) {
      const hw::IntLayerPlan& plan = rung[i];
      const bool weighted = plan.kind == hw::IntLayerPlan::Kind::kConv ||
                            plan.kind == hw::IntLayerPlan::Kind::kLinear;
      layer.weight_bits.push_back(weighted ? plan.weight_bits : 0);
      layer.act_bits.push_back(plan.has_act ? plan.act_bits : 0);
      layer.requant_fused.push_back(plan.requant_fused);
    }
    info.layers.push_back(std::move(layer));
  }
  // fp32-equivalent of the serialized tensors at one rung (weights,
  // per-channel scales, folded biases) — rung choice is irrelevant, the
  // counts are geometry, which is rung-invariant.
  for (const auto& plan : parsed.rungs.front()) {
    info.float_bytes += 4 * (plan.weight_codes.size() +
                             plan.channel_scale.size() + plan.bias.size());
  }
  return info;
}

// ---- multi-point build -----------------------------------------------------

namespace {

/// Scoped restore of every non-frozen layer's ladder position —
/// build_multipoint re-bins the registry per candidate rung and must
/// put the model back even when a compile throws.
class LadderPositionGuard {
 public:
  explicit LadderPositionGuard(quant::LayerRegistry& registry)
      : registry_(registry) {
    saved_.resize(registry.size());
    for (std::size_t i = 0; i < registry.size(); ++i) {
      saved_[i] = registry.unit(i).ladder_pos;
    }
  }
  ~LadderPositionGuard() {
    for (std::size_t i = 0; i < registry_.size(); ++i) {
      if (registry_.unit(i).frozen) continue;
      if (registry_.unit(i).ladder_pos != saved_[i]) {
        registry_.set_ladder_pos(i, saved_[i]);
      }
    }
  }
  LadderPositionGuard(const LadderPositionGuard&) = delete;
  LadderPositionGuard& operator=(const LadderPositionGuard&) = delete;

 private:
  quant::LayerRegistry& registry_;
  std::vector<std::size_t> saved_;
};

/// Ladder positions of configuration t: every non-frozen layer starts at
/// position 0 (the descent's initial quantization) and the first `t`
/// trail steps are replayed on top.
std::vector<std::size_t> config_at(const quant::LayerRegistry& registry,
                                   const core::RungTrail& trail,
                                   std::size_t t) {
  std::vector<std::size_t> pos(registry.size(), 0);
  for (std::size_t s = 0; s < t; ++s) {
    const core::TrailStep& step = trail[s];
    CCQ_CHECK(step.layer < registry.size(),
              "rung trail step " + std::to_string(s) + " names layer " +
                  std::to_string(step.layer) + " outside the registry");
    CCQ_CHECK(!registry.unit(step.layer).frozen,
              "rung trail step " + std::to_string(s) + " moves frozen layer " +
                  registry.unit(step.layer).name);
    CCQ_CHECK(step.ladder_pos < registry.ladder().size(),
              "rung trail step " + std::to_string(s) + " puts layer " +
                  registry.unit(step.layer).name + " at ladder position " +
                  std::to_string(step.ladder_pos) + ", off the ladder (" +
                  registry.ladder().str() + ")");
    pos[step.layer] = step.ladder_pos;
  }
  return pos;
}

}  // namespace

hw::IntegerNetwork build_multipoint(models::QuantModel& model,
                                    const core::RungTrail& trail,
                                    const MultiPointOptions& options) {
  CCQ_CHECK(options.rungs >= 2,
            "a multi-point artifact needs at least 2 rungs (use "
            "export_artifact for a single operating point)");
  CCQ_CHECK(options.size_budget >= 1.0, "size budget below 1x is unmeetable");
  CCQ_CHECK(!trail.empty(),
            "model has no rung trail — multi-point export needs the ladder "
            "pick history (re-run `ccq run` with this build so the snapshot "
            "records it)");
  quant::LayerRegistry& registry = model.registry();
  const std::size_t total = trail.size();

  // The model must sit at the trail's final configuration: the replay
  // quantizes the *final* weights at historical bit widths, so a trail
  // that disagrees with the model would fabricate rungs the descent
  // never visited.
  const std::vector<std::size_t> final_pos = config_at(registry, trail, total);
  for (std::size_t i = 0; i < registry.size(); ++i) {
    if (registry.unit(i).frozen) continue;
    CCQ_CHECK(registry.unit(i).ladder_pos == final_pos[i],
              "rung trail ends with layer " + registry.unit(i).name +
                  " at ladder position " + std::to_string(final_pos[i]) +
                  ", but the model sits at " +
                  std::to_string(registry.unit(i).ladder_pos) +
                  " — snapshot and trail disagree");
  }

  LadderPositionGuard restore(registry);
  const std::string single_payload =
      encode_single_payload(hw::IntegerNetwork::compile(model), 0);
  const auto budget =
      static_cast<double>(single_payload.size() + kHeaderBytes) *
                      options.size_budget;

  // Candidate selection: `rungs` trail points evenly spaced over a span
  // ending at the final configuration.  When the encoding busts the
  // budget, shorten the span one step — candidates crowd toward the
  // final configuration, deltas shrink, and the encoding approaches the
  // single-point size.  One step (not a halving): the widest fitting
  // span keeps the most rungs after deduplication, and a trail is at
  // most 2× the layer count, so the retries stay cheap.
  std::size_t span = total;
  for (;;) {
    std::vector<std::size_t> steps;
    for (std::size_t j = 0; j < options.rungs; ++j) {
      const std::size_t t =
          total - span + span * j / (options.rungs - 1);
      if (steps.empty() || t > steps.back()) steps.push_back(t);
    }
    std::vector<std::vector<hw::IntLayerPlan>> rungs;
    std::vector<hw::RungInfo> info;
    for (std::size_t t : steps) {
      const std::vector<std::size_t> pos = config_at(registry, trail, t);
      for (std::size_t i = 0; i < registry.size(); ++i) {
        if (registry.unit(i).frozen) continue;
        if (registry.unit(i).ladder_pos != pos[i]) {
          registry.set_ladder_pos(i, pos[i]);
        }
      }
      const hw::IntegerNetwork compiled = hw::IntegerNetwork::compile(model);
      std::vector<hw::IntLayerPlan> plans;
      plans.reserve(compiled.layer_count());
      for (std::size_t i = 0; i < compiled.layer_count(); ++i) {
        plans.push_back(compiled.plan(i));
      }
      rungs.push_back(std::move(plans));
      hw::RungInfo rung;
      rung.trail_step =
          t == total ? -1 : static_cast<std::int32_t>(t);
      rung.val_acc = t > 0 ? trail[t - 1].val_acc : 0.0f;
      info.push_back(rung);
    }
    hw::IntegerNetwork net =
        hw::IntegerNetwork::from_rungs(std::move(rungs), std::move(info));
    const std::string multi_payload = encode_multi_payload(net);
    if (static_cast<double>(multi_payload.size() + kHeaderBytes) <= budget) {
      return net;
    }
    CCQ_CHECK(span > 1,
              "multi-point artifact cannot meet the " +
                  std::to_string(options.size_budget) +
                  "x size budget even with adjacent rungs — raise "
                  "MultiPointOptions::size_budget");
    span -= 1;
  }
}

}  // namespace ccq::serve
