#include "ccq/serve/artifact.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <type_traits>

#include "ccq/common/fileio.hpp"

namespace ccq::serve {

namespace {

// ---- code packing ----------------------------------------------------------

std::uint32_t offsets_gcd(const std::vector<std::int32_t>& codes,
                          std::int32_t min_code) {
  std::uint64_t g = 0;
  for (std::int32_t c : codes) {
    g = std::gcd(g, static_cast<std::uint64_t>(
                        static_cast<std::int64_t>(c) - min_code));
    if (g == 1) break;
  }
  return g == 0 ? 1 : static_cast<std::uint32_t>(g);
}

// ---- little-endian byte stream ---------------------------------------------

class ByteWriter {
 public:
  template <typename T>
  void pod(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const char*>(&v);
    buf_.append(p, sizeof(T));
  }
  /// LEB128: 7 value bits per byte, high bit = continuation.  Counts and
  /// geometry dims are almost always < 128, so they cost one byte instead
  /// of a fixed-width field — the slack that pays for the per-channel
  /// requant record inside the artifact's 4× compression budget.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      pod(static_cast<std::uint8_t>(v | 0x80));
      v >>= 7;
    }
    pod(static_cast<std::uint8_t>(v));
  }
  /// Zigzag-mapped varint for small signed values (0, −1, 1, −2, …).
  void zigzag(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }
  void str(const std::string& s) {
    varint(s.size());
    buf_.append(s.data(), s.size());
  }
  void floats(const std::vector<float>& v) {
    varint(v.size());
    buf_.append(reinterpret_cast<const char*>(v.data()),
                v.size() * sizeof(float));
  }
  void raw(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }
  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Cursor over the checksummed payload.  Every read is bounds-checked and
/// failures name the file plus the layer being parsed, so a malformed
/// artifact reports *where* it broke, not just "bad stream".
class ByteReader {
 public:
  ByteReader(std::string data, std::string path)
      : data_(std::move(data)), path_(std::move(path)) {}

  void set_context(const std::string& layer) { layer_ = layer; }

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T), "a " + std::to_string(sizeof(T)) + "-byte field");
    T v{};
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const auto b = pod<std::uint8_t>();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) return v;
    }
    fail("varint runs past 10 bytes");
  }
  std::int64_t zigzag() {
    const std::uint64_t u = varint();
    return static_cast<std::int64_t>(u >> 1) ^
           -static_cast<std::int64_t>(u & 1);
  }
  std::string str() {
    const auto n = static_cast<std::size_t>(varint());
    need(n, "a " + std::to_string(n) + "-byte name");
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  std::vector<float> floats() {
    const auto n = varint();
    need(n * sizeof(float), std::to_string(n) + " floats");
    std::vector<float> v(static_cast<std::size_t>(n));
    std::memcpy(v.data(), data_.data() + pos_, v.size() * sizeof(float));
    pos_ += v.size() * sizeof(float);
    return v;
  }
  std::vector<std::uint8_t> raw(std::size_t n) {
    need(n, std::to_string(n) + " packed bytes");
    std::vector<std::uint8_t> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n);
    pos_ += n;
    return v;
  }
  bool exhausted() const { return pos_ == data_.size(); }

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("artifact " + path_ +
                (layer_.empty() ? "" : " (layer '" + layer_ + "')") + ": " +
                what);
  }

 private:
  void need(std::size_t n, const std::string& what) const {
    if (data_.size() - pos_ < n) {
      fail("payload truncated while reading " + what);
    }
  }

  std::string data_;
  std::string path_;
  std::string layer_;
  std::size_t pos_ = 0;
};

// ---- layer (de)serialisation -----------------------------------------------

const char* kind_str(hw::IntLayerPlan::Kind kind) {
  using Kind = hw::IntLayerPlan::Kind;
  switch (kind) {
    case Kind::kConv: return "conv";
    case Kind::kLinear: return "linear";
    case Kind::kMaxPool: return "maxpool";
    case Kind::kAvgPool: return "avgpool";
    case Kind::kGlobalAvgPool: return "globalavgpool";
    case Kind::kFlatten: return "flatten";
  }
  return "?";
}

void write_plan(ByteWriter& w, const hw::IntLayerPlan& plan) {
  w.str(plan.name);
  w.pod(static_cast<std::uint8_t>(plan.kind));
  w.pod(static_cast<std::uint8_t>(plan.weight_bits));
  w.pod(static_cast<std::uint8_t>(plan.has_act ? 1 : 0));
  w.pod(static_cast<std::uint8_t>(plan.act_bits));
  w.pod(plan.act_clip);
  for (std::size_t dim : {plan.in_channels, plan.out_channels, plan.kernel,
                          plan.stride, plan.pad, plan.in_features,
                          plan.out_features, plan.pool_kernel,
                          plan.pool_stride}) {
    w.varint(dim);
  }
  const PackedCodes packed = pack_codes(plan.weight_codes);
  w.zigzag(packed.min_code);
  w.varint(packed.divisor);
  w.pod(packed.bits);
  w.varint(packed.count);
  w.varint(packed.bytes.size());
  w.raw(packed.bytes.data(), packed.bytes.size());
  w.floats(plan.channel_scale);
  w.floats(plan.bias);
  // v2: fused fixed-point requantization record.  Only the per-channel
  // parameters are stored; `out_qmax` and `acc_bound` are exact integer
  // functions of the serialized act_bits / weight codes / geometry, so
  // `finalize_plans` rederives them at load time and the exporter and
  // loader always agree.
  w.pod(static_cast<std::uint8_t>(plan.requant_fused ? 1 : 0));
  if (plan.requant_fused) {
    w.varint(plan.requant.size());
    for (const Requant& rq : plan.requant) {
      w.pod(rq.multiplier);
      w.pod(static_cast<std::uint8_t>(rq.shift));
      w.zigzag(rq.bias);
    }
  }
}

hw::IntLayerPlan read_plan(ByteReader& r) {
  hw::IntLayerPlan plan;
  plan.name = r.str();
  r.set_context(plan.name);
  const auto kind = r.pod<std::uint8_t>();
  if (kind > static_cast<std::uint8_t>(hw::IntLayerPlan::Kind::kFlatten)) {
    r.fail("unknown layer kind " + std::to_string(kind));
  }
  plan.kind = static_cast<hw::IntLayerPlan::Kind>(kind);
  plan.weight_bits = r.pod<std::uint8_t>();
  plan.has_act = r.pod<std::uint8_t>() != 0;
  plan.act_bits = r.pod<std::uint8_t>();
  plan.act_clip = r.pod<float>();
  for (std::size_t* dim : {&plan.in_channels, &plan.out_channels, &plan.kernel,
                           &plan.stride, &plan.pad, &plan.in_features,
                           &plan.out_features, &plan.pool_kernel,
                           &plan.pool_stride}) {
    *dim = static_cast<std::size_t>(r.varint());
  }
  PackedCodes packed;
  packed.min_code = static_cast<std::int32_t>(r.zigzag());
  packed.divisor = static_cast<std::uint32_t>(r.varint());
  packed.bits = r.pod<std::uint8_t>();
  packed.count = r.varint();
  const auto byte_count = r.varint();
  const std::size_t expect_bytes =
      (static_cast<std::size_t>(packed.count) * packed.bits + 7) / 8;
  if (byte_count != expect_bytes) {
    r.fail("packed code stream holds " + std::to_string(byte_count) +
           " bytes, but " + std::to_string(packed.count) + " codes at " +
           std::to_string(int(packed.bits)) + " bits need " +
           std::to_string(expect_bytes));
  }
  packed.bytes = r.raw(static_cast<std::size_t>(byte_count));
  const std::vector<std::int32_t> codes = unpack_codes(packed);
  plan.weight_codes = codes;
  plan.channel_scale = r.floats();
  plan.bias = r.floats();
  plan.requant_fused = r.pod<std::uint8_t>() != 0;
  if (plan.requant_fused) {
    plan.requant.resize(static_cast<std::size_t>(r.varint()));
    for (Requant& rq : plan.requant) {
      rq.multiplier = r.pod<std::int32_t>();
      rq.shift = r.pod<std::uint8_t>();
      rq.bias = r.zigzag();
    }
  }
  // out_qmax / acc_bound are not serialized: finalize_plans rederives
  // them from act_bits and the unpacked weight codes.
  return plan;
}

/// Structural validation with expected-vs-found messages per layer.
void validate_plan(ByteReader& r, const hw::IntLayerPlan& plan,
                   std::size_t index) {
  using Kind = hw::IntLayerPlan::Kind;
  r.set_context(plan.name);
  const std::string at = "layer index " + std::to_string(index) + ", kind " +
                         kind_str(plan.kind);
  if (plan.kind == Kind::kConv || plan.kind == Kind::kLinear) {
    if (plan.weight_bits < 2 || plan.weight_bits > 15) {
      r.fail("weight bits " + std::to_string(plan.weight_bits) +
             " outside the quantized range [2, 15] (" + at + ")");
    }
    const std::size_t rows =
        plan.kind == Kind::kConv ? plan.out_channels : plan.out_features;
    const std::size_t cols =
        plan.kind == Kind::kConv
            ? plan.in_channels * plan.kernel * plan.kernel
            : plan.in_features;
    if (plan.weight_codes.size() != rows * cols) {
      r.fail("has " + std::to_string(plan.weight_codes.size()) +
             " weight codes, expected " + std::to_string(rows) + "×" +
             std::to_string(cols) + " = " + std::to_string(rows * cols) +
             " (" + at + ")");
    }
    if (plan.channel_scale.size() != rows || plan.bias.size() != rows) {
      r.fail("has " + std::to_string(plan.channel_scale.size()) +
             " scales / " + std::to_string(plan.bias.size()) +
             " biases, expected " + std::to_string(rows) +
             " output channels (" + at + ")");
    }
    if (plan.has_act && (plan.act_bits < 1 || plan.act_bits > 32)) {
      r.fail("activation bits " + std::to_string(plan.act_bits) +
             " out of range (" + at + ")");
    }
    if (plan.requant_fused) {
      if (plan.requant.size() != rows) {
        r.fail("fused requant record holds " +
               std::to_string(plan.requant.size()) +
               " channels, expected " + std::to_string(rows) + " (" + at +
               ")");
      }
      if (!plan.has_act || plan.act_bits >= 16) {
        r.fail("fused requant record on a layer without a quantized "
               "activation grid (" + at + ")");
      }
      for (const Requant& rq : plan.requant) {
        if (rq.shift < 1 || rq.shift > 62) {
          r.fail("fused requant shift " + std::to_string(rq.shift) +
                 " outside [1, 62] (" + at + ")");
        }
      }
    } else if (!plan.requant.empty()) {
      r.fail("unfused layer carries " + std::to_string(plan.requant.size()) +
             " requant channels (" + at + ")");
    }
  } else if (!plan.weight_codes.empty()) {
    r.fail("a pooling/reshape layer carries " +
           std::to_string(plan.weight_codes.size()) + " weight codes (" + at +
           ")");
  }
}

std::string hex(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

PackedCodes pack_codes(const std::vector<std::int32_t>& codes) {
  PackedCodes packed;
  packed.count = codes.size();
  if (codes.empty()) return packed;
  const auto [min_it, max_it] = std::minmax_element(codes.begin(), codes.end());
  packed.min_code = *min_it;
  packed.divisor = offsets_gcd(codes, packed.min_code);
  const std::uint64_t range =
      (static_cast<std::uint64_t>(static_cast<std::int64_t>(*max_it) -
                                  packed.min_code)) /
      packed.divisor;
  packed.bits = static_cast<std::uint8_t>(std::bit_width(range));
  if (packed.bits == 0) return packed;  // all codes equal: nothing to store
  packed.bytes.assign((codes.size() * packed.bits + 7) / 8, 0);
  std::size_t bit_pos = 0;
  for (std::int32_t c : codes) {
    std::uint64_t v = static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(c) - packed.min_code) /
                      packed.divisor;
    for (int b = 0; b < packed.bits; ++b, ++bit_pos) {
      if ((v >> b) & 1u) {
        packed.bytes[bit_pos / 8] |=
            static_cast<std::uint8_t>(1u << (bit_pos % 8));
      }
    }
  }
  return packed;
}

std::vector<std::int32_t> unpack_codes(const PackedCodes& packed) {
  std::vector<std::int32_t> codes(static_cast<std::size_t>(packed.count),
                                  packed.min_code);
  if (packed.bits == 0) return codes;
  CCQ_CHECK(packed.bytes.size() * 8 >= packed.count * packed.bits,
            "packed code stream shorter than its declared bit count");
  std::size_t bit_pos = 0;
  for (auto& code : codes) {
    std::uint64_t v = 0;
    for (int b = 0; b < packed.bits; ++b, ++bit_pos) {
      v |= static_cast<std::uint64_t>((packed.bytes[bit_pos / 8] >>
                                       (bit_pos % 8)) &
                                      1u)
           << b;
    }
    code = static_cast<std::int32_t>(
        packed.min_code +
        static_cast<std::int64_t>(v * packed.divisor));
  }
  return codes;
}

void export_artifact(const hw::IntegerNetwork& net, const std::string& path) {
  ByteWriter payload;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    write_plan(payload, net.plan(i));
  }
  const std::string& body = payload.bytes();
  const std::uint64_t checksum = fnv1a(body.data(), body.size());

  atomic_write_file(path, [&](std::ostream& os) {
    ByteWriter header;
    header.raw(kArtifactMagic, sizeof(kArtifactMagic));
    header.pod(kArtifactVersion);
    header.pod(static_cast<std::uint32_t>(net.layer_count()));
    header.pod(static_cast<std::uint64_t>(body.size()));
    header.pod(checksum);
    os.write(header.bytes().data(),
             static_cast<std::streamsize>(header.bytes().size()));
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
  });
}

void export_artifact(models::QuantModel& model, const std::string& path) {
  export_artifact(hw::IntegerNetwork::compile(model), path);
}

hw::IntegerNetwork load_artifact(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CCQ_CHECK(static_cast<bool>(is), "cannot open artifact: " + path);

  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || !std::equal(magic, magic + 4, kArtifactMagic)) {
    throw Error("artifact " + path + ": bad magic (not a ccq::serve artifact)");
  }
  auto read_u32 = [&] {
    std::uint32_t v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  auto read_u64 = [&] {
    std::uint64_t v{};
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  const std::uint32_t version = read_u32();
  const std::uint32_t layer_count = read_u32();
  const std::uint64_t payload_bytes = read_u64();
  const std::uint64_t checksum = read_u64();
  if (!is) throw Error("artifact " + path + ": truncated header");
  if (version != kArtifactVersion) {
    throw Error("artifact " + path + ": unsupported version " +
                std::to_string(version) + " (this build reads version " +
                std::to_string(kArtifactVersion) + ")");
  }

  std::string body(static_cast<std::size_t>(payload_bytes), '\0');
  is.read(body.data(), static_cast<std::streamsize>(body.size()));
  if (!is || static_cast<std::uint64_t>(is.gcount()) != payload_bytes) {
    throw Error("artifact " + path + ": payload truncated (header declares " +
                std::to_string(payload_bytes) + " bytes, file holds " +
                std::to_string(is ? is.gcount() : 0) +
                ") — was the export interrupted?");
  }
  const std::uint64_t computed = fnv1a(body.data(), body.size());
  if (computed != checksum) {
    throw Error("artifact " + path + ": checksum mismatch (header " +
                hex(checksum) + ", payload hashes to " + hex(computed) +
                ") — file is corrupt");
  }

  ByteReader reader(std::move(body), path);
  std::vector<hw::IntLayerPlan> plans;
  plans.reserve(layer_count);
  for (std::uint32_t i = 0; i < layer_count; ++i) {
    plans.push_back(read_plan(reader));
    validate_plan(reader, plans.back(), i);
  }
  reader.set_context("");
  if (!reader.exhausted()) {
    reader.fail("trailing bytes after the declared " +
                std::to_string(layer_count) + " layers");
  }
  // from_plans re-finalizes: every layer selects its igemm kernel
  // (honouring $CCQ_IGEMM_KERNEL) and re-packs its weight panel in that
  // kernel's layout, so a loaded artifact serves with the same
  // per-layer kernel choices a freshly compiled network would get on
  // this host.  Re-throw with the artifact path so a bad kernel
  // override at load time names what was being loaded.
  try {
    return hw::IntegerNetwork::from_plans(std::move(plans));
  } catch (const Error& e) {
    throw Error("artifact " + path + ": " + e.what());
  }
}

}  // namespace ccq::serve
