#include "ccq/serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "ccq/serve/server.hpp"

namespace ccq::serve {

namespace {

std::string errno_str() { return std::strerror(errno); }

/// write() until the buffer is gone; false on a broken peer.
bool send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read one frame body, buffering partial reads.  Returns false on a
/// clean or broken hang-up; ProtocolError propagates on malformed bytes.
bool recv_frame(int fd, std::string& buffer, std::string& body) {
  char chunk[4096];
  for (;;) {
    if (wire::extract_frame(buffer, body)) return true;
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer closed
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

// ---- TcpServer -------------------------------------------------------------

struct TcpServer::Impl {
  InferenceServer& server;
  int listen_fd = -1;
  std::uint16_t port = 0;
  std::atomic<bool> stopping{false};
  std::thread accept_thread;

  /// One live connection.  Keyed by a monotonic id, never by the raw fd:
  /// a closed fd number is recycled by the next descriptor the process
  /// opens, so an fd-keyed table would let stop() shut down an unrelated
  /// socket through a stale entry.
  struct Conn {
    int fd = -1;
    std::thread thread;
  };

  std::mutex conn_mutex;  ///< guards conns/finished/next_conn_id
  std::uint64_t next_conn_id = 0;
  std::map<std::uint64_t, Conn> conns;  ///< live connections
  /// Threads of connections that already exited, awaiting a (near-
  /// instant) join — the accept loop reaps these per accept, stop()
  /// reaps the rest, so the server never accumulates one un-reaped
  /// thread object per connection over its lifetime.
  std::vector<std::thread> finished;

  explicit Impl(InferenceServer& server_in) : server(server_in) {}

  void serve_connection(std::uint64_t id, int fd) {
    std::string buffer;
    std::string frame;
    std::string out_bytes;
    Tensor output;
    try {
      while (!stopping.load(std::memory_order_relaxed) &&
             recv_frame(fd, buffer, frame)) {
        wire::InferReply reply;
        try {
          wire::InferRequest request = wire::decode_request(frame);
          const ModelHandle model =
              server.resolve(request.model, request.version);
          const Tensor sample(
              {request.channels, request.height, request.width},
              std::move(request.data));
          SubmitOptions options;
          std::int32_t served_rung = -1;
          if (request.has_point) {
            options.rung = request.point;
            options.served_rung = &served_rung;
          }
          if (request.has_priority) {
            // Range-checked by the decoder (0..2).
            options.priority = static_cast<Priority>(request.priority);
          }
          if (request.has_deadline) options.deadline_us = request.deadline_us;
          server.submit(model, sample, output, options).get();
          reply.ok = true;
          reply.version = model.version();
          reply.logits.assign(output.data().begin(), output.data().end());
          if (request.has_point) {
            reply.has_rung = true;
            reply.rung = static_cast<std::uint32_t>(served_rung);
          }
        } catch (const wire::ProtocolError&) {
          throw;  // malformed bytes: drop the connection, not just the call
        } catch (const std::exception& error) {
          reply.ok = false;
          reply.error = error.what();
        }
        out_bytes.clear();
        wire::append_frame(out_bytes, wire::encode_reply(reply));
        if (!send_all(fd, out_bytes)) break;
      }
    } catch (const wire::ProtocolError&) {
      // Unframeable stream — nothing sane to reply to; close below.
    }
    // Deregister before closing: past the close() the fd number is up
    // for recycling, and stop() must never find it in the table.  The
    // thread handle moves to the reap list (a thread cannot join
    // itself); if stop() already emptied the table it owns the handle
    // and will join it directly.
    {
      std::lock_guard<std::mutex> lock(conn_mutex);
      const auto it = conns.find(id);
      if (it != conns.end()) {
        finished.push_back(std::move(it->second.thread));
        conns.erase(it);
      }
    }
    ::close(fd);
  }

  void reap_finished() {
    std::vector<std::thread> done;
    {
      std::lock_guard<std::mutex> lock(conn_mutex);
      done.swap(finished);
    }
    for (std::thread& thread : done) thread.join();
  }

  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener closed by stop()
      }
      if (stopping.load(std::memory_order_relaxed)) {
        ::close(fd);
        return;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      reap_finished();  // joins only already-exited connection threads
      // Hold conn_mutex across thread start: the connection's own
      // deregistration takes the same mutex, so its entry is always
      // installed before it can exit.
      std::lock_guard<std::mutex> lock(conn_mutex);
      const std::uint64_t id = next_conn_id++;
      Conn& conn = conns[id];
      conn.fd = fd;
      conn.thread = std::thread([this, id, fd] { serve_connection(id, fd); });
    }
  }
};

TcpServer::TcpServer(InferenceServer& server, std::uint16_t port)
    : impl_(std::make_unique<Impl>(server)) {
  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) {
    throw NetError("tcp listener: socket failed: " + errno_str());
  }
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const std::string why = errno_str();
    ::close(impl_->listen_fd);
    throw NetError("tcp listener: bind to port " + std::to_string(port) +
                   " failed: " + why);
  }
  if (::listen(impl_->listen_fd, 64) < 0) {
    const std::string why = errno_str();
    ::close(impl_->listen_fd);
    throw NetError("tcp listener: listen failed: " + why);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  impl_->port = ntohs(addr.sin_port);
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
}

TcpServer::~TcpServer() { stop(); }

std::uint16_t TcpServer::port() const { return impl_->port; }

void TcpServer::stop() {
  if (impl_->stopping.exchange(true)) return;
  // shutdown() unblocks accept(); connection reads unblock when their
  // fds shut down below.
  ::shutdown(impl_->listen_fd, SHUT_RDWR);
  ::close(impl_->listen_fd);
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(impl_->conn_mutex);
    // Every fd still in the table is still owned by its connection
    // thread (deregistration precedes close under this mutex), so the
    // shutdown() can never hit a recycled descriptor.  Closing stays
    // with the connection thread — exactly one close per fd.
    for (auto& [id, conn] : impl_->conns) {
      ::shutdown(conn.fd, SHUT_RDWR);
      threads.push_back(std::move(conn.thread));
    }
    impl_->conns.clear();
    for (std::thread& thread : impl_->finished) {
      threads.push_back(std::move(thread));
    }
    impl_->finished.clear();
  }
  for (auto& thread : threads) thread.join();
}

// ---- TcpClient -------------------------------------------------------------

struct TcpClient::Impl {
  int fd = -1;
  std::string buffer;
};

TcpClient::TcpClient(const std::string& host, std::uint16_t port)
    : impl_(std::make_unique<Impl>()) {
  impl_->fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->fd < 0) {
    throw NetError("tcp client: socket failed: " + errno_str());
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(impl_->fd);
    impl_->fd = -1;
    throw NetError("tcp client: bad IPv4 address " + host);
  }
  if (::connect(impl_->fd, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const std::string why = errno_str();
    ::close(impl_->fd);
    impl_->fd = -1;
    throw NetError("tcp client: connect to " + host + ":" +
                   std::to_string(port) + " failed: " + why);
  }
  const int one = 1;
  ::setsockopt(impl_->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpClient::~TcpClient() { close(); }

void TcpClient::close() {
  if (impl_->fd >= 0) {
    ::close(impl_->fd);
    impl_->fd = -1;
  }
}

wire::InferReply TcpClient::infer(const wire::InferRequest& request) {
  CCQ_CHECK(impl_->fd >= 0, "tcp client is closed");
  std::string out;
  wire::append_frame(out, wire::encode_request(request));
  if (!send_all(impl_->fd, out)) {
    throw NetError("tcp client: send failed: " + errno_str());
  }
  std::string frame;
  if (!recv_frame(impl_->fd, impl_->buffer, frame)) {
    throw NetError("tcp client: server closed the connection");
  }
  return wire::decode_reply(frame);
}

}  // namespace ccq::serve
