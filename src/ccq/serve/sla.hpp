// SLA primitives for the serving stack: priorities, deadlines, and
// weighted fair scheduling.
//
// PR 8/9 built multi-model serving with FIFO admission per model; this
// module adds the quality-of-service layer (ROADMAP item 1): every
// request carries a `Priority` and an optional relative deadline, a
// full queue sheds its lowest-priority request instead of blanket-
// rejecting, and the worker pool picks the next model to flush by
// weighted fair (virtual-time) accounting rather than oldest-request
// age, so a hot model cannot starve a quiet one.
//
// Everything here is deliberately thread-free and clock-free: callers
// pass `now_ns` in (the server routes it through its injectable clock,
// `ServeConfig::now_fn`), and the queue/flush/pick decisions are plain
// functions over plain state.  That is what makes the scheduler's
// properties — shed order, deadline expiry at dequeue, fair-share
// convergence, starvation freedom — assertable *exactly* in
// `tests/serve_sla_test.cpp`'s deterministic harness instead of
// probabilistically under real sleeps, while the `InferenceServer`
// worker loop runs the very same code paths under its mutex.
//
// Policy summary (docs/SERVING.md §SLA-aware serving):
//   * shed order — lowest priority class first, FIFO within a class
//     (the oldest request of the lowest class has already absorbed the
//     most queueing delay, so under overload it is the most likely to
//     miss its SLA anyway and dropping it loses the least);
//   * deadlines are *relative* budgets (`deadline_us` from admission)
//     bounding time-to-dequeue: an expired request is dropped at batch
//     composition time with a typed `DeadlineExceededError` instead of
//     occupying a batch slot.  Admission never rejects on deadline — a
//     relative budget cannot be expired at admission;
//   * fair scheduling — each model accrues virtual time at
//     `samples / weight` as it is served; the flushable model with the
//     least virtual time flushes next, and a model going idle→busy
//     rejoins at the scheduler's virtual clock so idle credit never
//     turns into a burst.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>

#include "ccq/common/error.hpp"

namespace ccq::serve {

/// Per-request service class.  Order matters: higher enumerator =
/// served sooner, shed later.
enum class Priority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

inline constexpr std::size_t kPriorityCount = 3;

const char* priority_name(Priority priority);
/// Parse "low" / "normal" / "high" (throws ccq::Error otherwise).
Priority priority_from_string(const std::string& name);

/// The request's queueing budget expired before a worker dequeued it:
/// dropped without occupying a batch slot.  Delivered through the
/// submit future (and, over the wire, as an error reply).
class DeadlineExceededError : public Error {
 public:
  DeadlineExceededError(const std::string& model, std::uint64_t deadline_us)
      : Error("request for model " + model + " missed its " +
              std::to_string(deadline_us) +
              "us deadline while queued: dropped at dequeue") {}
};

/// The request was admitted but later evicted to make room for
/// higher-priority traffic on a full queue.  Retryable, like
/// QueueFullError — delivered through the submit future.
class RequestShedError : public Error {
 public:
  RequestShedError(const std::string& model, Priority priority)
      : Error("request for model " + model + " (priority " +
              std::string(priority_name(priority)) +
              ") shed to admit higher-priority traffic") {}
};

inline constexpr std::uint64_t kNoEventNs =
    std::numeric_limits<std::uint64_t>::max();

/// Absolute expiry instant for a relative `deadline_us` budget admitted
/// at `now_ns`.  0 = no deadline.  Saturating in both the us→ns scale
/// and the addition, so a hostile u64-max budget admits as "effectively
/// never expires" instead of wrapping into the past.
inline std::uint64_t deadline_instant_ns(std::uint64_t now_ns,
                                         std::uint64_t deadline_us) {
  if (deadline_us == 0) return 0;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  if (deadline_us > kMax / 1000) return kMax;
  const std::uint64_t budget_ns = deadline_us * 1000;
  return budget_ns > kMax - now_ns ? kMax : now_ns + budget_ns;
}

inline bool deadline_expired(std::uint64_t deadline_ns, std::uint64_t now_ns) {
  return deadline_ns != 0 && now_ns >= deadline_ns;
}

/// One model's admission queue: a FIFO deque per priority class.
/// Requires `Request` to expose `priority`, `enqueue_ns` and
/// `deadline_ns` fields (the server's `detail::Request`; the
/// deterministic tests instantiate it over a four-field struct).
/// Not thread-safe — guarded by the owning server's mutex.
template <typename Request>
class SlaQueue {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(Request&& request) {
    classes_[static_cast<std::size_t>(request.priority)].push_back(
        std::move(request));
    ++size_;
  }

  /// Lowest priority class present.  Precondition: !empty().
  Priority lowest() const {
    for (std::size_t c = 0; c < kPriorityCount; ++c) {
      if (!classes_[c].empty()) return static_cast<Priority>(c);
    }
    return Priority::kHigh;  // unreachable under the precondition
  }

  /// Remove and return the oldest request of the lowest non-empty
  /// class — the shed-order contract.  Precondition: !empty().
  Request shed_lowest() {
    for (auto& dq : classes_) {
      if (dq.empty()) continue;
      Request shed = std::move(dq.front());
      dq.pop_front();
      --size_;
      return shed;
    }
    throw Error("shed_lowest on an empty SlaQueue");
  }

  /// Oldest request of the highest non-empty class — the next request a
  /// batch takes.  Precondition: !empty().
  const Request& front() const {
    for (std::size_t c = kPriorityCount; c-- > 0;) {
      if (!classes_[c].empty()) return classes_[c].front();
    }
    throw Error("front on an empty SlaQueue");
  }

  Request pop_front() {
    for (std::size_t c = kPriorityCount; c-- > 0;) {
      if (classes_[c].empty()) continue;
      Request request = std::move(classes_[c].front());
      classes_[c].pop_front();
      --size_;
      return request;
    }
    throw Error("pop_front on an empty SlaQueue");
  }

  /// Earliest admission instant across every queued request (the
  /// batch-fill flush deadline anchors on it).  Precondition: !empty().
  std::uint64_t oldest_enqueue_ns() const {
    std::uint64_t oldest = kNoEventNs;
    for (const auto& dq : classes_) {
      // Within a class the deque is FIFO, so the front is its oldest.
      if (!dq.empty()) oldest = std::min(oldest, dq.front().enqueue_ns);
    }
    return oldest;
  }

  /// Earliest expiry instant among queued requests; kNoEventNs when no
  /// request carries a deadline.  O(size) — deadlines are per-request,
  /// not FIFO-ordered, and queues are capacity-bounded.
  std::uint64_t earliest_deadline_ns() const {
    std::uint64_t earliest = kNoEventNs;
    for (const auto& dq : classes_) {
      for (const Request& request : dq) {
        if (request.deadline_ns != 0) {
          earliest = std::min(earliest, request.deadline_ns);
        }
      }
    }
    return earliest;
  }

  /// Remove every request whose deadline has passed, feeding each to
  /// `sink` in shed order (lowest class first, FIFO within a class).
  /// This is the dequeue-time expiry sweep: it runs when a worker
  /// flushes the model, so an expired request never reaches a batch.
  template <typename Sink>
  void expire(std::uint64_t now_ns, Sink&& sink) {
    for (auto& dq : classes_) {
      for (std::size_t i = 0; i < dq.size();) {
        if (deadline_expired(dq[i].deadline_ns, now_ns)) {
          sink(std::move(dq[i]));
          dq.erase(dq.begin() + static_cast<std::ptrdiff_t>(i));
          --size_;
        } else {
          ++i;
        }
      }
    }
  }

 private:
  std::array<std::deque<Request>, kPriorityCount> classes_;
  std::size_t size_ = 0;
};

/// The scheduler's per-model view at one decision instant — the whole
/// input to the flush/park/pick functions below.  The server builds one
/// per active model under its mutex; the deterministic test harness
/// builds them from simulated models.  Same functions, same decisions.
struct SchedView {
  std::size_t queued = 0;
  std::uint64_t oldest_ns = 0;               ///< oldest admission instant
  std::uint64_t earliest_deadline_ns = kNoEventNs;
  std::size_t max_batch = 1;
  std::uint64_t max_delay_ns = 0;
  bool force = false;  ///< stopping / retired: flush immediately
  double vtime = 0.0;  ///< virtual time accrued (served / weight)
};

/// A model flushes when the batch is full, the oldest request aged past
/// max_delay, any queued deadline expired (so the drop reply is prompt),
/// or draining is forced (stop / retirement).
inline bool sla_flushable(const SchedView& m, std::uint64_t now_ns) {
  if (m.queued == 0) return false;
  if (m.force || m.queued >= m.max_batch) return true;
  if (now_ns >= m.oldest_ns && now_ns - m.oldest_ns >= m.max_delay_ns) {
    return true;
  }
  return m.earliest_deadline_ns != kNoEventNs &&
         now_ns >= m.earliest_deadline_ns;
}

/// Next instant this model could become flushable without new arrivals
/// (what a worker parks until); kNoEventNs when its queue is empty.
inline std::uint64_t sla_next_event_ns(const SchedView& m) {
  if (m.queued == 0) return kNoEventNs;
  if (m.force || m.queued >= m.max_batch) return 0;  // due now
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t fill = m.max_delay_ns > kMax - m.oldest_ns
                                 ? kMax
                                 : m.oldest_ns + m.max_delay_ns;
  return std::min(fill, m.earliest_deadline_ns);
}

/// Weighted fair pick order between two flushable models: least virtual
/// time first (each model accrues `samples / weight` as it is served),
/// oldest front request as the tie-break so equal-share models still
/// drain oldest-first.
inline bool sla_prefer(const SchedView& a, const SchedView& b) {
  if (a.vtime != b.vtime) return a.vtime < b.vtime;
  return a.oldest_ns < b.oldest_ns;
}

}  // namespace ccq::serve
