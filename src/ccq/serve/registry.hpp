// Model registry: many packed artifacts, versioned, hot-swappable.
//
// The single-model `InferenceServer` of PR 4 served exactly one compiled
// network to in-process callers.  Fleet-scale serving (ROADMAP item 1)
// needs the opposite shape: one server hosting *many* models, each
// replaceable under traffic.  This module is the routing layer:
//
//   * `ModelRegistry` maps model names to an ordered list of loaded
//     versions.  `publish()` appends a new version and atomically makes
//     it the name's *current* version — an epoch-style cutover: requests
//     resolved before the publish keep the old version, requests
//     resolved after get the new one, and no resolution ever observes a
//     half-installed model.
//   * `ModelHandle` is the opaque, refcounted pin callers route requests
//     through.  A handle keeps its version alive (shared ownership of
//     the compiled network) no matter how many newer versions have been
//     published, so in-flight and even future submissions through an old
//     handle are served by the exact artifact that was resolved —
//     the hot-swap bit-identity contract.  A version's memory is
//     released when the last handle drops *and* the registry no longer
//     lists it.
//   * Versions stay resolvable by explicit number (`resolve(name, v)`)
//     until unloaded, so a canary can pin v2 while the fleet default
//     stays v1.
//
// The registry owns names, versions and the compiled networks; the
// *queue state* embedded in each `detail::LoadedModel` (request deque,
// in-flight count, admission flags) belongs to the `InferenceServer`
// that loaded the model and is guarded by that server's mutex — the
// registry never touches it.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ccq/common/error.hpp"
#include "ccq/hw/integer_engine.hpp"
#include "ccq/serve/adaptive.hpp"
#include "ccq/serve/sla.hpp"

namespace ccq::serve {

class InferenceServer;

/// Per-model serving knobs.  Split out of the old monolithic
/// `ServeConfig` (which now holds only server-wide knobs): batching
/// shape and admission bounds are properties of a model's traffic, not
/// of the worker pool, and every loaded model carries its own copy.
struct ModelConfig {
  std::size_t max_batch = 8;          ///< flush when this many requests wait …
  std::uint64_t max_delay_us = 1000;  ///< … or the oldest waited this long
  std::size_t queue_capacity = 64;    ///< per-model admission bound
  /// Fair-share weight against the other models on the same server: the
  /// worker pool serves flushable models in proportion to their weights
  /// (virtual-time accounting, serve/sla.hpp).  Must be positive and
  /// finite; 1.0 = an equal share.
  double weight = 1.0;
  /// p99 latency target in microseconds for the `serve.<name>.p99_vs_slo`
  /// gauge (ratio of observed p99 to this target; > 1 = violating).
  /// 0 disables the gauge.
  std::uint64_t slo_us = 0;
  /// Operating-point (serving rung) selection for multi-point models —
  /// inert on single-rung networks.  See serve/adaptive.hpp.
  OperatingPointPolicy adaptive;
};

/// Resolution failed: no model (or no such version) under that name.
class ModelNotFoundError : public Error {
 public:
  explicit ModelNotFoundError(const std::string& message) : Error(message) {}
};

/// Admission rejected: the version this handle pins has been unloaded.
/// Resolve the name again to reach the current version.
class ModelRetiredError : public Error {
 public:
  ModelRetiredError(const std::string& name, std::uint64_t version)
      : Error("model " + name + " v" + std::to_string(version) +
              " has been unloaded; resolve \"" + name +
              "\" again for the current version") {}
};

namespace detail {

/// One queued inference request (inputs/outputs are caller-owned).
struct Request {
  const Tensor* input = nullptr;
  Tensor* output = nullptr;
  std::promise<void> promise;
  /// Admission instant on the server clock (real steady clock, or the
  /// injected `ServeConfig::now_fn`): anchors the batching deadline,
  /// the latency sample and the request deadline.
  std::uint64_t enqueue_ns = 0;
  Priority priority = Priority::kNormal;
  /// Absolute expiry instant (server clock); 0 = no deadline.  Expiry
  /// is checked at dequeue time, never at admission.
  std::uint64_t deadline_ns = 0;
  std::uint64_t deadline_us = 0;  ///< original budget (for diagnostics)
  /// Explicit operating-point override (validated at admission); −1 =
  /// let the model's OperatingPointController choose at flush time.
  std::int32_t rung = -1;
  /// When non-null, receives the rung that actually served the request
  /// (written before the promise is fulfilled).
  std::int32_t* served_rung = nullptr;
};

/// One loaded model version: the compiled network plus its serving
/// state.  Everything above the `queue state` line is immutable after
/// construction; the queue state is guarded by the loading server's
/// mutex.
struct LoadedModel {
  LoadedModel(std::string name_in, std::uint64_t version_in,
              hw::IntegerNetwork net_in, ModelConfig config_in);

  const std::string name;
  const std::uint64_t version;
  const ModelConfig config;
  const hw::IntegerNetwork net;

  /// Per-model telemetry ids (`serve.<name>.*`), registered at load
  /// time; versions of the same name share one series.
  struct Metrics {
    int requests = -1;
    int rejected = -1;
    int batches = -1;
    int queue_depth = -1;
    int latency = -1;
    int batch_size = -1;
    int rung = -1;           ///< gauge: rung currently selected
    int rung_switches = -1;  ///< counter: operating-point transitions
    int deadline_miss = -1;  ///< counter: requests dropped expired at dequeue
    /// Counters: requests shed by admission control (rejected at the
    /// door or evicted for higher-priority traffic), per service class.
    std::array<int, kPriorityCount> shed = {-1, -1, -1};
    /// Timers: the latency series split by service class.
    std::array<int, kPriorityCount> latency_by_priority = {-1, -1, -1};
    int p99_vs_slo = -1;     ///< gauge: observed p99 / slo_us (when set)
  } metrics;

  // ---- queue state: guarded by the owning InferenceServer's mutex ----
  InferenceServer* owner = nullptr;  ///< server this version was loaded into
  SlaQueue<Request> queue;
  Shape pinned_shape;        ///< sample shape, pinned by the first submit
  std::size_t in_flight = 0;
  bool retired = false;      ///< unloaded: admissions closed, queue drains
  /// Virtual time accrued by the fair scheduler (served samples /
  /// config.weight) — the worker pool flushes the least-vtime model.
  double vtime = 0.0;
  std::uint64_t admitted = 0;         ///< requests admitted, lifetime
  std::uint64_t deadline_misses = 0;  ///< requests expired at dequeue, lifetime
  /// Rung selector — decisions happen at batch-flush time under the
  /// owner's mutex, hence queue state.
  OperatingPointController point;
};

}  // namespace detail

/// Opaque refcounted pin on one model version.  Copyable and cheap; all
/// accessors require a valid (non-default-constructed) handle.
class ModelHandle {
 public:
  ModelHandle() = default;

  bool valid() const { return model_ != nullptr; }
  explicit operator bool() const { return valid(); }

  const std::string& model_name() const { return model().name; }
  std::uint64_t version() const { return model().version; }
  const ModelConfig& config() const { return model().config; }
  const hw::IntegerNetwork& network() const { return model().net; }

 private:
  friend class ModelRegistry;
  friend class InferenceServer;

  explicit ModelHandle(std::shared_ptr<detail::LoadedModel> model)
      : model_(std::move(model)) {}

  detail::LoadedModel& model() const {
    CCQ_CHECK(model_ != nullptr, "using an empty ModelHandle");
    return *model_;
  }

  std::shared_ptr<detail::LoadedModel> model_;
};

/// Thread-safe name → versions table.  Standalone-usable, but normally
/// owned by an `InferenceServer`, whose `load()`/`unload()` keep the
/// worker pool's scan list in sync with publishes and retirements.
class ModelRegistry {
 public:
  /// Install `net` as the next version of `name` (versions count up from
  /// 1 per name) and make it the name's current version.  The cutover is
  /// atomic with respect to `resolve`.
  ModelHandle publish(std::string name, hw::IntegerNetwork net,
                      ModelConfig config);

  /// Pin the current version of `name`.  Throws ModelNotFoundError
  /// (listing the known names) when absent.
  ModelHandle resolve(const std::string& name) const;

  /// Pin a specific version (0 means current).  Throws
  /// ModelNotFoundError naming the available versions when absent.
  ModelHandle resolve(const std::string& name, std::uint64_t version) const;

  bool has(const std::string& name) const;
  std::vector<std::string> names() const;

  struct VersionInfo {
    std::uint64_t version = 0;
    bool current = false;
  };
  /// Loaded versions of `name`, oldest first (empty when unknown).
  std::vector<VersionInfo> versions(const std::string& name) const;

  /// Delist one version / every version of `name`, returning the removed
  /// models (empty when nothing matched).  Handles already pinning them
  /// stay alive; new resolutions no longer find them.
  std::vector<std::shared_ptr<detail::LoadedModel>> take(
      const std::string& name, std::uint64_t version);
  std::vector<std::shared_ptr<detail::LoadedModel>> take_all(
      const std::string& name);

 private:
  struct Entry {
    std::vector<std::shared_ptr<detail::LoadedModel>> versions;  // oldest first
    std::uint64_t next_version = 1;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ccq::serve
