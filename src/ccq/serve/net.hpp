// TCP front end: the serve/protocol codec bound to POSIX sockets.
//
// `TcpServer` puts an `InferenceServer` on a port: an accept loop hands
// each connection to its own thread, which reads length-prefixed
// `InferRequest` frames, routes them through the registry
// (`resolve(model, version)` + `submit`), and writes back an
// `InferReply` frame — logits plus the version that served the request,
// or the server-side error message (admission errors like a full queue
// or an unloaded model keep their diagnostics across the wire instead
// of dropping the connection).  Only malformed bytes (ProtocolError) or
// a peer hang-up close a connection.  Because requests route through
// the same `submit` path as in-process callers, socket replies are
// bit-identical to in-process results — serve_net_test locks that in
// across concurrent clients.
//
// `TcpClient` is the matching blocking client (one in-flight request
// per connection), used by the harness's TCP mode, the `ccq serve-bench
// --tcp` load generator, and tests.  The wire format is documented in
// serve/protocol.hpp and docs/SERVING.md for non-C++ clients.
//
// Threading: thread-per-connection is deliberate at this scale — the
// worker pool behind `submit` is the throughput bottleneck, connections
// are few (load generators, not the open internet), and the blocking
// read loop keeps per-connection state trivial.  `stop()` (or the
// destructor) closes the listener and every open connection, then joins
// all threads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ccq/serve/protocol.hpp"

namespace ccq::serve {

class InferenceServer;

/// Listener failures (bind/listen) and client connect/IO failures.
class NetError : public Error {
 public:
  explicit NetError(const std::string& message) : Error(message) {}
};

class TcpServer {
 public:
  /// Bind 127.0.0.1:`port` (0 picks an ephemeral port — tests) and start
  /// accepting.  Throws NetError when the bind fails.  `server` must
  /// outlive this front end.
  TcpServer(InferenceServer& server, std::uint16_t port);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (the kernel's pick when constructed with port 0).
  std::uint16_t port() const;

  /// Close the listener and all connections, join every thread.
  /// Idempotent.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Blocking client for one connection: `infer` writes a request frame
/// and waits for the reply frame.  Throws NetError on connect/IO
/// failure, wire::ProtocolError on malformed reply bytes.
class TcpClient {
 public:
  TcpClient(const std::string& host, std::uint16_t port);
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  wire::InferReply infer(const wire::InferRequest& request);

  void close();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ccq::serve
