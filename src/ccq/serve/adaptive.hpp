// Load-driven operating-point selection for multi-point models.
//
// A CCQA v3 artifact ships several serving rungs of one model: the same
// layer sequence compiled at the precision configurations the CCQ
// controller actually visited, rung 0 the most accurate and the last
// rung the cheapest (serve/artifact.hpp).  This module decides *which*
// rung a model serves from, batch by batch, as a function of load:
//
//   * degrade — when the model's queue depth reaches
//     `OperatingPointPolicy::degrade_depth` (or its recent p99 latency
//     exceeds `degrade_p99_us`), step one rung down: cheaper batches
//     drain the queue faster at a known, bounded accuracy cost (the
//     per-rung `val_acc` the artifact records);
//   * restore — when depth falls back to `restore_depth`, step one rung
//     up toward full quality.  The gap between the two thresholds is the
//     hysteresis band that keeps the operating point from oscillating on
//     noisy arrival streams, and `min_dwell_us` adds a time floor
//     between consecutive switches;
//   * decisions are taken at batch-flush time under the server mutex, so
//     a batch is always executed at exactly one rung — precision never
//     mixes within a batch, and every reply is bit-identical to
//     `IntegerNetwork::forward_reference` at the rung that served it.
//
// Single-rung models never switch (the controller is inert), so loading
// a v2 artifact through this stack changes nothing.  Callers can bypass
// the controller per request (`SubmitOptions::rung`) or pin the whole
// model with `fixed_rung`.
//
// Observability: `serve.<name>.rung` (gauge, current rung index) and
// `serve.<name>.rung_switches` (counter) — docs/OBSERVABILITY.md.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ccq/common/telemetry.hpp"

namespace ccq::serve {

/// Per-model operating-point policy (embedded in `ModelConfig`).
/// Defaults keep a lightly loaded model at rung 0 and shed precision
/// only under sustained queueing.
struct OperatingPointPolicy {
  /// Step one rung down when the queue holds this many requests at a
  /// flush decision.
  std::size_t degrade_depth = 16;
  /// Step one rung up when the queue has drained to this depth or less.
  /// Must be < degrade_depth (the gap is the hysteresis band).
  std::size_t restore_depth = 2;
  /// Also degrade when the model's recent p99 latency (from the
  /// `serve.<name>.latency` histogram, measured between decisions)
  /// exceeds this many microseconds.  0 disables the latency trigger.
  std::uint64_t degrade_p99_us = 0;
  /// Also degrade on deadline pressure: when the fraction of admitted
  /// requests that expired at dequeue, measured between decisions,
  /// exceeds this rate.  Misses are a sharper degrade signal than raw
  /// depth — a deep queue of lax-deadline requests is healthy, a
  /// shallow queue that keeps expiring is not.  0 disables; must be
  /// within [0, 1].
  double degrade_miss_rate = 0.0;
  /// Minimum time between consecutive rung switches.  0 = none.
  std::uint64_t min_dwell_us = 0;
  /// Pin the model to one rung (index into the artifact's rungs),
  /// disabling load-driven switching.  −1 = adaptive.
  std::int32_t fixed_rung = -1;
};

/// Everything a flush-time rung decision looks at.  The server fills
/// the deadline-pressure fields from the model's lifetime counters (the
/// controller windows them itself); the two-argument `decide` overload
/// leaves them zero, which keeps the miss trigger inert.
struct LoadSignals {
  std::size_t queue_depth = 0;
  std::uint64_t now_ns = 0;           ///< decision timestamp (server clock)
  std::uint64_t admitted = 0;         ///< requests admitted, lifetime
  std::uint64_t deadline_misses = 0;  ///< requests expired at dequeue, lifetime
};

/// One model's rung selector.  Not thread-safe by itself: `decide()` and
/// `current()` run under the owning `InferenceServer`'s mutex, which is
/// exactly where batch composition is fixed — the invariant that makes
/// rung switches atomic between batches.
class OperatingPointController {
 public:
  /// Inert single-rung controller (always rung 0).
  OperatingPointController() = default;

  /// `rung_count` is the model's `IntegerNetwork::rung_count()`;
  /// `latency_timer` / `rung_gauge` / `switch_counter` the model's named
  /// metric ids (−1 ids degrade to no-ops, matching telemetry).
  OperatingPointController(OperatingPointPolicy policy, std::size_t rung_count,
                           int latency_timer, int rung_gauge,
                           int switch_counter);

  /// Pick the rung for the batch being flushed.  Steps at most one rung
  /// per call and records the gauge/counter on a switch.
  std::size_t decide(const LoadSignals& signals);

  /// Depth-and-latency-only convenience (the deadline-pressure trigger
  /// stays inert): `now_ns` is the decision timestamp (server clock).
  std::size_t decide(std::size_t queue_depth, std::uint64_t now_ns) {
    return decide(LoadSignals{queue_depth, now_ns, 0, 0});
  }

  /// Rung currently selected (what `decide` returned last).
  std::size_t current() const { return current_; }

  std::size_t rung_count() const { return rung_count_; }
  const OperatingPointPolicy& policy() const { return policy_; }

 private:
  bool latency_degrade();  ///< p99-since-last-decision above threshold?
  /// Miss-rate-since-last-decision above policy's degrade_miss_rate?
  bool deadline_degrade(const LoadSignals& signals);

  OperatingPointPolicy policy_;
  std::size_t rung_count_ = 1;
  int latency_timer_ = -1;
  int rung_gauge_ = -1;
  int switch_counter_ = -1;

  std::size_t current_ = 0;
  std::uint64_t last_switch_ns_ = 0;
  bool switched_once_ = false;
  /// Histogram state at the previous decision — p99 is computed over the
  /// *delta* so an old latency spike cannot pin the model degraded.
  telemetry::TimerStats last_stats_;
  /// Counter state at the previous decision — the miss-rate trigger
  /// windows the same way, so one historical expiry burst cannot pin
  /// the model degraded.
  std::uint64_t last_admitted_ = 0;
  std::uint64_t last_misses_ = 0;
};

}  // namespace ccq::serve
