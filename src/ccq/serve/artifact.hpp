// Packed mixed-precision model artifacts — the deployment half of CCQ.
//
// A CCQ run ends with a mixed-precision policy, but a float snapshot
// (core/snapshot) still stores every weight as fp32: the compression the
// controller fought for never reaches the disk or the serving process.
// This module defines the packed artifact the `ccq::serve` stack ships:
// each layer of the compiled `hw::IntegerNetwork` is stored as bit-packed
// k-bit weight codes at the layer's final ladder precision plus its
// per-channel scales and folded biases, under a versioned header with a
// whole-payload checksum.  A ResNet-20-class model on an 8/4/2 ladder
// packs 4–16× smaller than its float snapshot.
//
// Layout (little-endian; counts, geometry dims and small signed values
// are LEB128 varints — zigzag-mapped when signed — so the per-channel
// requant record fits inside the same 4× compression budget as v1):
//   header  : magic "CCQA", u32 version, u32 layer_count,
//             u64 payload_bytes, u64 fnv1a(payload)
//   payload : one record per layer — name, kind, geometry, activation
//             grid, packed weight codes (min_code + divisor + bit width,
//             values LSB-first), per-channel scale + bias arrays, and
//             (version 2) the fused requantization record: a fused flag,
//             then per channel {i32 multiplier, u8 shift, zigzag bias}.
//             Serializing the requant parameters — instead of recomputing
//             them at load time — guarantees a served artifact replays
//             the exporter's exact integer datapath; `out_qmax` and
//             `acc_bound` are exact integer functions of the serialized
//             fields and are rederived by `finalize_plans` at load.
//
// Writes are crash-safe (temp file + atomic rename, common/fileio) and
// loads verify the checksum before parsing, so an interrupted export can
// never leave a half-parseable artifact behind.
//
// Only the portable plan fields are serialized.  The igemm payload (the
// packed int16 weight panels and static accumulator choice) is derived:
// `load_artifact` routes through `IntegerNetwork::from_plans`, which
// re-packs panels at load time — loaded networks serve through the same
// blocked kernels as freshly compiled ones, and the on-disk format stays
// independent of kernel panel layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ccq/hw/integer_engine.hpp"
#include "ccq/models/model.hpp"

namespace ccq::serve {

inline constexpr char kArtifactMagic[4] = {'C', 'C', 'Q', 'A'};
/// Version 2: adds the fused fixed-point requantization record per layer.
/// Older versions are rejected with a named diagnostic — requant fusion
/// changes the layer boundary numerics, so silently serving a v1 artifact
/// through the fused datapath would not replay the exporter's outputs.
inline constexpr std::uint32_t kArtifactVersion = 2;

/// Bit-packed integer codes: value[i] = min_code + divisor · packed[i],
/// each packed entry `bits` wide, appended LSB-first.  `divisor` is the
/// GCD of the offsets, so the doubled codes the integer engine uses
/// (even for zero-centred grids, odd for half-offset ones) pack at their
/// native k bits instead of k+1.
struct PackedCodes {
  std::int32_t min_code = 0;
  std::uint32_t divisor = 1;
  std::uint8_t bits = 0;  ///< bits per packed value; 0 when all equal
  std::uint64_t count = 0;
  std::vector<std::uint8_t> bytes;

  std::size_t packed_bytes() const { return bytes.size(); }
};

/// Pack / unpack a code vector losslessly (round-trip is exact).
PackedCodes pack_codes(const std::vector<std::int32_t>& codes);
std::vector<std::int32_t> unpack_codes(const PackedCodes& packed);

/// Serialize a compiled integer network as a packed artifact at `path`
/// (crash-safe: temp file + rename).
void export_artifact(const hw::IntegerNetwork& net, const std::string& path);

/// Compile `model` (must be sequential and fully quantized, the
/// `IntegerNetwork::compile` contract) and export it.
void export_artifact(models::QuantModel& model, const std::string& path);

/// Load a packed artifact back into a runnable integer network.  Throws
/// ccq::Error naming the file, the offending layer and the expected vs
/// found geometry/bits on any header, checksum or per-layer mismatch.
hw::IntegerNetwork load_artifact(const std::string& path);

}  // namespace ccq::serve
