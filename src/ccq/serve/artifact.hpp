// Packed mixed-precision model artifacts — the deployment half of CCQ.
//
// A CCQ run ends with a mixed-precision policy, but a float snapshot
// (core/snapshot) still stores every weight as fp32: the compression the
// controller fought for never reaches the disk or the serving process.
// This module defines the packed artifact the `ccq::serve` stack ships:
// each layer of the compiled `hw::IntegerNetwork` is stored as bit-packed
// k-bit weight codes at the layer's final ladder precision plus its
// per-channel scales and folded biases, under a versioned header with a
// whole-payload checksum.  A ResNet-20-class model on an 8/4/2 ladder
// packs 4–16× smaller than its float snapshot.
//
// Layout (little-endian; counts, geometry dims and small signed values
// are LEB128 varints — zigzag-mapped when signed — so the per-channel
// requant record fits inside the same 4× compression budget as v1):
//   header  : magic "CCQA", u32 version, u32 layer_count,
//             u64 payload_bytes, u64 fnv1a(payload)
//   payload : one record per layer — name, kind, geometry, activation
//             grid, packed weight codes (min_code + divisor + bit width,
//             values LSB-first), per-channel scale + bias arrays, and
//             (version 2) the fused requantization record: a fused flag,
//             then per channel {i32 multiplier, u8 shift, zigzag bias}.
//             Serializing the requant parameters — instead of recomputing
//             them at load time — guarantees a served artifact replays
//             the exporter's exact integer datapath; `out_qmax` and
//             `acc_bound` are exact integer functions of the serialized
//             fields and are rederived by `finalize_plans` at load.
//
// Version 3 — multi-point artifacts — keeps the same 28-byte header (so
// any reader negotiates the version before touching the payload) and
// replaces the payload with:
//   varint rung_count R, then per rung {zigzag trail_step, f32 val_acc};
//   the *base* rung (index R−1, the lowest-precision final configuration)
//   as R full v2-format layer records; then, for each higher rung
//   r = R−2 … 0, a chained delta against rung r+1: varint delta_count,
//   then per delta {varint layer_index, u8 flags} with flag bit 0
//   carrying a codes section (u8 weight_bits + packed codes) and bit 1 a
//   metadata section (activation grid, channel scales, folded biases,
//   requant record).  Layer identity and geometry are stored once, in
//   the base records.  Weight codes are shared across rungs by
//   construction — a layer's codes are re-encoded only at the rung where
//   its precision actually changes — which is what keeps a ≥3-rung
//   artifact within `MultiPointOptions::size_budget` of the single-point
//   export (`build_multipoint` measures and enforces it).
//
// Writes are crash-safe (temp file + atomic rename, common/fileio) and
// loads verify the checksum before parsing, so an interrupted export can
// never leave a half-parseable artifact behind.
//
// Only the portable plan fields are serialized.  The igemm payload (the
// packed int16 weight panels and static accumulator choice) is derived:
// `load_artifact` routes through `IntegerNetwork::from_plans`, which
// re-packs panels at load time — loaded networks serve through the same
// blocked kernels as freshly compiled ones, and the on-disk format stays
// independent of kernel panel layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ccq/core/trail.hpp"
#include "ccq/hw/integer_engine.hpp"
#include "ccq/models/model.hpp"

namespace ccq::serve {

inline constexpr char kArtifactMagic[4] = {'C', 'C', 'Q', 'A'};
/// Version 2: adds the fused fixed-point requantization record per layer.
/// Older versions are rejected with a named diagnostic — requant fusion
/// changes the layer boundary numerics, so silently serving a v1 artifact
/// through the fused datapath would not replay the exporter's outputs.
inline constexpr std::uint32_t kArtifactVersion = 2;
/// Version 3: the multi-point (multi-rung) payload described above.
/// Single-point networks still export as v2, so existing readers keep
/// working until a model actually ships more than one operating point.
inline constexpr std::uint32_t kArtifactVersionMulti = 3;

/// Bit-packed integer codes: value[i] = min_code + divisor · packed[i],
/// each packed entry `bits` wide, appended LSB-first.  `divisor` is the
/// GCD of the offsets, so the doubled codes the integer engine uses
/// (even for zero-centred grids, odd for half-offset ones) pack at their
/// native k bits instead of k+1.
struct PackedCodes {
  std::int32_t min_code = 0;
  std::uint32_t divisor = 1;
  std::uint8_t bits = 0;  ///< bits per packed value; 0 when all equal
  std::uint64_t count = 0;
  std::vector<std::uint8_t> bytes;

  std::size_t packed_bytes() const { return bytes.size(); }
};

/// Pack / unpack a code vector losslessly (round-trip is exact).
PackedCodes pack_codes(const std::vector<std::int32_t>& codes);
std::vector<std::int32_t> unpack_codes(const PackedCodes& packed);

/// Serialize a compiled integer network as a packed artifact at `path`
/// (crash-safe: temp file + rename).
void export_artifact(const hw::IntegerNetwork& net, const std::string& path);

/// Compile `model` (must be sequential and fully quantized, the
/// `IntegerNetwork::compile` contract) and export it.
void export_artifact(models::QuantModel& model, const std::string& path);

/// Load a packed artifact (v2 single-point or v3 multi-point) back into
/// a runnable integer network.  Throws ccq::Error naming the file, the
/// offending layer and the expected vs found geometry/bits on any
/// header, checksum or per-layer mismatch; an unsupported version fails
/// before any payload byte is read, naming the found and supported
/// versions and the regeneration command.
hw::IntegerNetwork load_artifact(const std::string& path);

// ---- multi-point (adaptive-precision) export -------------------------------

struct MultiPointOptions {
  /// Operating points to ship, highest precision first.  ≥ 2 (a single
  /// point is just `export_artifact`).  Candidate rungs are spaced
  /// evenly over the trail; identical configurations are deduplicated,
  /// so the artifact may carry fewer rungs than requested.
  std::size_t rungs = 3;
  /// Size ceiling as a multiple of the single-point artifact.  When the
  /// evenly spaced candidates bust it, the span shrinks toward the final
  /// configuration (smaller deltas) until the encoding fits; if even a
  /// two-rung artifact cannot fit, build_multipoint throws.
  double size_budget = 1.5;
};

/// Replay `trail` (the controller's ladder pick history — see
/// core/trail.hpp) against `model`'s *final* trained weights and compile
/// one plan set per selected operating point, returning a multi-rung
/// network ready for `export_artifact` (which writes it as CCQA v3) or
/// direct serving.  The model must currently sit at the trail's final
/// configuration; its ladder positions are restored on return.  Rung 0
/// is the earliest (highest-precision) selected configuration, the last
/// rung the final one.  Throws on an empty trail, a trail inconsistent
/// with the model, or an unmeetable size budget.
hw::IntegerNetwork build_multipoint(models::QuantModel& model,
                                    const core::RungTrail& trail,
                                    const MultiPointOptions& options);

// ---- inspection ------------------------------------------------------------

/// Per-layer précis of an artifact, one entry per rung for the
/// precision-dependent fields.
struct ArtifactLayerInfo {
  std::string name;
  std::string kind;
  std::vector<int> weight_bits;    ///< per rung; 0 for pool/reshape layers
  std::vector<int> act_bits;       ///< per rung; 0 when no activation grid
  std::vector<bool> requant_fused; ///< per rung
};

/// Summary returned by `inspect_artifact` (the `ccq inspect` payload).
struct ArtifactInfo {
  std::uint32_t version = 0;
  std::size_t rung_count = 0;
  std::size_t layer_count = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t payload_bytes = 0;
  /// fp32-equivalent bytes of the serialized tensors (weight codes,
  /// channel scales, folded biases at one rung) — the denominator of the
  /// packed-vs-float compression ratio `ccq inspect` prints.
  std::uint64_t float_bytes = 0;
  std::vector<hw::RungInfo> rungs;  ///< per-rung provenance (v3; one default entry for v2)
  std::vector<ArtifactLayerInfo> layers;
};

/// Parse and validate an artifact (v2 or v3) without building kernels or
/// packing panels.  Same failure contract as `load_artifact`.
ArtifactInfo inspect_artifact(const std::string& path);

}  // namespace ccq::serve
