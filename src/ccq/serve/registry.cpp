#include "ccq/serve/registry.hpp"

#include <algorithm>
#include <cmath>

#include "ccq/common/telemetry.hpp"

namespace ccq::serve {

namespace detail {

LoadedModel::LoadedModel(std::string name_in, std::uint64_t version_in,
                         hw::IntegerNetwork net_in, ModelConfig config_in)
    : name(std::move(name_in)),
      version(version_in),
      config(config_in),
      net(std::move(net_in)) {
  using telemetry::NamedKind;
  const std::string prefix = "serve." + name + ".";
  metrics.requests =
      telemetry::named_metric(NamedKind::kCounter, prefix + "requests");
  metrics.rejected =
      telemetry::named_metric(NamedKind::kCounter, prefix + "rejected");
  metrics.batches =
      telemetry::named_metric(NamedKind::kCounter, prefix + "batches");
  metrics.queue_depth =
      telemetry::named_metric(NamedKind::kGauge, prefix + "queue_depth");
  metrics.latency =
      telemetry::named_metric(NamedKind::kTimer, prefix + "latency");
  metrics.batch_size =
      telemetry::named_metric(NamedKind::kTimer, prefix + "batch_size");
  metrics.rung = telemetry::named_metric(NamedKind::kGauge, prefix + "rung");
  metrics.rung_switches =
      telemetry::named_metric(NamedKind::kCounter, prefix + "rung_switches");
  metrics.deadline_miss =
      telemetry::named_metric(NamedKind::kCounter, prefix + "deadline_miss");
  for (std::size_t p = 0; p < kPriorityCount; ++p) {
    const std::string suffix = priority_name(static_cast<Priority>(p));
    metrics.shed[p] = telemetry::named_metric(NamedKind::kCounter,
                                              prefix + "shed." + suffix);
    metrics.latency_by_priority[p] = telemetry::named_metric(
        NamedKind::kTimer, prefix + "latency." + suffix);
  }
  metrics.p99_vs_slo =
      telemetry::named_metric(NamedKind::kGauge, prefix + "p99_vs_slo");
  point = OperatingPointController(config.adaptive, net.rung_count(),
                                   metrics.latency, metrics.rung,
                                   metrics.rung_switches);
}

}  // namespace detail

ModelHandle ModelRegistry::publish(std::string name, hw::IntegerNetwork net,
                                   ModelConfig config) {
  CCQ_CHECK(!name.empty(), "model name must be non-empty");
  CCQ_CHECK(config.max_batch >= 1, "max_batch must be at least 1");
  CCQ_CHECK(config.queue_capacity >= 1, "queue_capacity must be at least 1");
  CCQ_CHECK(config.weight > 0.0 && std::isfinite(config.weight),
            "model weight must be positive and finite, got " +
                std::to_string(config.weight));
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  auto model = std::make_shared<detail::LoadedModel>(
      std::move(name), entry.next_version++, std::move(net), config);
  entry.versions.push_back(model);
  return ModelHandle(std::move(model));
}

ModelHandle ModelRegistry::resolve(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.versions.empty()) {
    std::string known;
    for (const auto& [candidate, entry] : entries_) {
      if (entry.versions.empty()) continue;
      known += known.empty() ? candidate : ", " + candidate;
    }
    throw ModelNotFoundError("no model named " + name + " (loaded: " +
                             (known.empty() ? "none" : known) + ")");
  }
  return ModelHandle(it->second.versions.back());
}

ModelHandle ModelRegistry::resolve(const std::string& name,
                                   std::uint64_t version) const {
  if (version == 0) return resolve(name);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    for (const auto& model : it->second.versions) {
      if (model->version == version) return ModelHandle(model);
    }
  }
  std::string available;
  if (it != entries_.end()) {
    for (const auto& model : it->second.versions) {
      available += (available.empty() ? "v" : ", v") +
                   std::to_string(model->version);
    }
  }
  throw ModelNotFoundError(
      "no version " + std::to_string(version) + " of model " + name +
      " (loaded: " + (available.empty() ? "none" : available) + ")");
}

bool ModelRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() && !it->second.versions.empty();
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.versions.empty()) out.push_back(name);
  }
  return out;
}

std::vector<ModelRegistry::VersionInfo> ModelRegistry::versions(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<VersionInfo> out;
  const auto it = entries_.find(name);
  if (it == entries_.end()) return out;
  for (const auto& model : it->second.versions) {
    out.push_back({model->version, model == it->second.versions.back()});
  }
  return out;
}

std::vector<std::shared_ptr<detail::LoadedModel>> ModelRegistry::take(
    const std::string& name, std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<detail::LoadedModel>> removed;
  const auto it = entries_.find(name);
  if (it == entries_.end()) return removed;
  auto& versions = it->second.versions;
  const auto match = std::find_if(
      versions.begin(), versions.end(),
      [&](const auto& model) { return model->version == version; });
  if (match != versions.end()) {
    removed.push_back(*match);
    versions.erase(match);
  }
  return removed;
}

std::vector<std::shared_ptr<detail::LoadedModel>> ModelRegistry::take_all(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<detail::LoadedModel>> removed;
  const auto it = entries_.find(name);
  if (it == entries_.end()) return removed;
  removed = std::move(it->second.versions);
  it->second.versions.clear();
  return removed;
}

}  // namespace ccq::serve
