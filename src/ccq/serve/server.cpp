#include "ccq/serve/server.hpp"

#include <algorithm>

#include "ccq/common/telemetry.hpp"

namespace ccq::serve {

InferenceServer::InferenceServer(hw::IntegerNetwork net, ServeConfig config)
    : net_(std::move(net)), config_(config) {
  CCQ_CHECK(config_.workers >= 1, "server needs at least one worker");
  CCQ_CHECK(config_.max_batch >= 1, "max_batch must be at least 1");
  CCQ_CHECK(config_.queue_capacity >= 1, "queue_capacity must be at least 1");
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<void> InferenceServer::submit(const Tensor& sample, Tensor& out) {
  CCQ_CHECK(sample.rank() == 3,
            "submit expects one CHW sample, got rank " +
                std::to_string(sample.rank()));
  Request request;
  request.input = &sample;
  request.output = &out;
  request.enqueue_ns = telemetry::ScopedTimer::now_ns();
  request.enqueue_tp = std::chrono::steady_clock::now();
  std::future<void> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      telemetry::add(telemetry::Counter::kServeRejected);
      throw ServerStoppedError();
    }
    if (queue_.size() >= config_.queue_capacity) {
      telemetry::add(telemetry::Counter::kServeRejected);
      throw QueueFullError(config_.queue_capacity);
    }
    if (sample_shape_.empty()) {
      sample_shape_ = sample.shape();
    } else {
      CCQ_CHECK(sample.shape() == sample_shape_,
                "sample shape " + shape_str(sample.shape()) +
                    " does not match this server's pinned input shape " +
                    shape_str(sample_shape_));
    }
    queue_.push_back(std::move(request));
    telemetry::add(telemetry::Counter::kServeRequests);
    telemetry::set_gauge(telemetry::Gauge::kServeQueueDepth,
                         static_cast<double>(queue_.size()));
  }
  // notify_all: a worker parked on the batch-fill deadline only re-checks
  // its predicate on wakeup, and the notified thread is not guaranteed to
  // be the one able to take the work.
  work_cv_.notify_all();
  return future;
}

void InferenceServer::worker_loop() {
  // Worker-owned execution state: a warm workspace (per-thread arenas
  // make reuse cache-local) and a private context so concurrent workers
  // never contend for the process-global pool.
  Workspace ws;
  const ExecContext ctx(config_.intra_op_threads);
  const auto delay = std::chrono::microseconds(config_.max_delay_us);
  std::vector<Request> batch;
  batch.reserve(config_.max_batch);

  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;  // drained: stop only once the queue is empty
      continue;
    }
    // Dynamic batching: hold the flush until the batch fills or the
    // oldest request's deadline passes.  A stop request flushes
    // immediately — drain latency beats utilisation during shutdown.
    if (!stopping_ && queue_.size() < config_.max_batch) {
      const auto deadline = queue_.front().enqueue_tp + delay;
      work_cv_.wait_until(lock, deadline, [&] {
        return stopping_ || queue_.size() >= config_.max_batch;
      });
    }
    if (queue_.empty()) continue;  // another worker flushed it meanwhile
    const std::size_t take = std::min(queue_.size(), config_.max_batch);
    batch.clear();
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    in_flight_ += take;
    telemetry::set_gauge(telemetry::Gauge::kServeQueueDepth,
                         static_cast<double>(queue_.size()));
    lock.unlock();
    run_batch(batch, ws, ctx);
    lock.lock();
    in_flight_ -= take;
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

void InferenceServer::run_batch(std::vector<Request>& batch, Workspace& ws,
                                const ExecContext& ctx) const {
  const std::size_t n = batch.size();
  telemetry::add(telemetry::Counter::kServeBatches);
  telemetry::record_duration(telemetry::Timer::kServeBatchSize, n);
  try {
    const Shape& chw = batch.front().input->shape();
    Tensor staging = ws.tensor_uninit({n, chw[0], chw[1], chw[2]});
    const std::size_t sample_floats = shape_numel(chw);
    for (std::size_t i = 0; i < n; ++i) {
      const auto src = batch[i].input->data();
      std::copy(src.begin(), src.end(),
                staging.data().begin() +
                    static_cast<std::ptrdiff_t>(i * sample_floats));
    }
    Tensor logits = net_.forward(staging, ws, ctx);
    ws.recycle(std::move(staging));
    const std::size_t classes = logits.dim(1);
    for (std::size_t i = 0; i < n; ++i) {
      Tensor& out = *batch[i].output;
      out.resize({classes});
      const auto row = logits.data().subspan(i * classes, classes);
      std::copy(row.begin(), row.end(), out.data().begin());
      telemetry::record_duration(
          telemetry::Timer::kServeLatency,
          telemetry::ScopedTimer::now_ns() - batch[i].enqueue_ns);
      batch[i].promise.set_value();
    }
    ws.recycle(std::move(logits));
  } catch (...) {
    // A failed batch fails each of its requests; later batches are
    // unaffected (the engine has no mutable state).
    const std::exception_ptr error = std::current_exception();
    for (Request& request : batch) {
      try {
        request.promise.set_exception(error);
      } catch (const std::future_error&) {
        // promise already satisfied (failure struck mid-reply loop)
      }
    }
  }
}

void InferenceServer::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void InferenceServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;  // already shut down
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

std::size_t InferenceServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace ccq::serve
