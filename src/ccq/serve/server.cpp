#include "ccq/serve/server.hpp"

#include <algorithm>
#include <chrono>

#include "ccq/common/telemetry.hpp"
#include "ccq/serve/artifact.hpp"

namespace ccq::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// The scheduler's view of one model at a decision instant.  All
/// flush/park/pick policy lives in serve/sla.hpp as pure functions over
/// this view — the deterministic scheduler tests drive the same code.
SchedView sched_view(const detail::LoadedModel& model, bool stopping) {
  SchedView view;
  view.queued = model.queue.size();
  if (view.queued > 0) {
    view.oldest_ns = model.queue.oldest_enqueue_ns();
    view.earliest_deadline_ns = model.queue.earliest_deadline_ns();
  }
  view.max_batch = model.config.max_batch;
  view.max_delay_ns = model.config.max_delay_us * 1000;
  view.force = stopping || model.retired;
  view.vtime = model.vtime;
  return view;
}

/// The telemetry clock is the steady clock in nanoseconds, so a park
/// deadline computed in server-clock ns maps back onto a wait_until
/// time point exactly (real-clock mode only — an injected clock parks
/// untimed, see ServeConfig::now_fn).
Clock::time_point to_time_point(std::uint64_t ns) {
  return Clock::time_point(std::chrono::duration_cast<Clock::duration>(
      std::chrono::nanoseconds(ns)));
}

}  // namespace

std::uint64_t InferenceServer::now_ns() const {
  return config_.now_fn ? config_.now_fn() : telemetry::ScopedTimer::now_ns();
}

InferenceServer::InferenceServer(ServeConfig config) : config_(config) {
  CCQ_CHECK(config_.workers >= 1, "server needs at least one worker");
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

ModelHandle InferenceServer::load(std::string name, hw::IntegerNetwork net,
                                  ModelConfig config) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw ServerStoppedError();
  }
  ModelHandle handle = registry_.publish(std::move(name), std::move(net),
                                         config);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A shutdown racing the publish: delist again so nothing dangles in
    // the registry without a worker pool behind it.
    if (stopping_) {
      registry_.take(handle.model_->name, handle.model_->version);
      throw ServerStoppedError();
    }
    handle.model_->owner = this;
    active_.push_back(handle.model_);
  }
  return handle;
}

ModelHandle InferenceServer::load(std::string name,
                                  const std::string& artifact_path,
                                  ModelConfig config) {
  return load(std::move(name), load_artifact(artifact_path), config);
}

void InferenceServer::unload(const std::string& name) {
  retire(registry_.take_all(name));
}

void InferenceServer::unload(const std::string& name, std::uint64_t version) {
  retire(registry_.take(name, version));
}

void InferenceServer::retire(const std::vector<ModelPtr>& models) {
  if (models.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++work_generation_;  // retired queues flush immediately: force rescans
    for (const ModelPtr& model : models) {
      model->retired = true;
      if (model->queue.empty() && model->in_flight == 0) {
        active_.erase(std::remove(active_.begin(), active_.end(), model),
                      active_.end());
      }
    }
  }
  // Wake the pool: retired queues flush immediately (no deadline hold).
  work_cv_.notify_all();
}

ModelHandle InferenceServer::resolve(const std::string& name) const {
  return registry_.resolve(name);
}

ModelHandle InferenceServer::resolve(const std::string& name,
                                     std::uint64_t version) const {
  return registry_.resolve(name, version);
}

std::future<void> InferenceServer::submit(const ModelHandle& model,
                                          const Tensor& sample, Tensor& out) {
  return submit(model, sample, out, SubmitOptions{});
}

std::future<void> InferenceServer::submit(const ModelHandle& model,
                                          const Tensor& sample, Tensor& out,
                                          const SubmitOptions& options) {
  CCQ_CHECK(sample.rank() == 3,
            "submit expects one CHW sample, got rank " +
                std::to_string(sample.rank()));
  detail::LoadedModel& loaded = model.model();
  CCQ_CHECK(options.rung < static_cast<std::int32_t>(loaded.net.rung_count()),
            "operating-point override " + std::to_string(options.rung) +
                " out of range: model " + loaded.name + " serves " +
                std::to_string(loaded.net.rung_count()) + " rung(s)");
  detail::Request request;
  request.input = &sample;
  request.output = &out;
  request.priority = options.priority;
  request.rung = options.rung < 0 ? -1 : options.rung;
  request.served_rung = options.served_rung;
  request.enqueue_ns = now_ns();
  request.deadline_us = options.deadline_us;
  // A deadline is a *relative* budget, so it cannot be expired at
  // admission; expiry is checked at dequeue (batch composition) time.
  request.deadline_ns = deadline_instant_ns(request.enqueue_ns,
                                            options.deadline_us);
  std::future<void> future = request.promise.get_future();
  // Shed victim, failed outside the lock (set_exception wakes a waiter).
  detail::Request shed;
  bool did_shed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CCQ_CHECK(loaded.owner == this,
              "ModelHandle for " + loaded.name + " v" +
                  std::to_string(loaded.version) +
                  " was not loaded into this server");
    if (stopping_) {
      telemetry::add(telemetry::Counter::kServeRejected);
      telemetry::add_named(loaded.metrics.rejected);
      throw ServerStoppedError();
    }
    if (loaded.retired) {
      telemetry::add(telemetry::Counter::kServeRejected);
      telemetry::add_named(loaded.metrics.rejected);
      throw ModelRetiredError(loaded.name, loaded.version);
    }
    if (loaded.pinned_shape.empty()) {
      // Only a geometry the compiled network accepts may pin the batch
      // shape: over the TCP front end the first request is untrusted,
      // and an unchecked pin would both drive the engine's conv loops
      // from hostile dims and poison every later well-formed submit.
      try {
        loaded.net.check_input(sample.dim(0), sample.dim(1), sample.dim(2));
      } catch (const Error&) {
        telemetry::add(telemetry::Counter::kServeRejected);
        telemetry::add_named(loaded.metrics.rejected);
        throw;
      }
      loaded.pinned_shape = sample.shape();
    } else {
      CCQ_CHECK(sample.shape() == loaded.pinned_shape,
                "sample shape " + shape_str(sample.shape()) +
                    " does not match the input shape " +
                    shape_str(loaded.pinned_shape) + " pinned for model " +
                    loaded.name + " v" + std::to_string(loaded.version));
    }
    if (loaded.queue.size() >= loaded.config.queue_capacity) {
      // Shed lowest-priority-first: evict the oldest request of the
      // lowest class when the incomer strictly outranks it (it has
      // absorbed the most queueing delay, so under overload it is the
      // most likely to miss its SLA anyway); otherwise the incomer is
      // the lowest and is the one shed — so a high-priority request is
      // never rejected while lower-priority work is queued.
      if (loaded.queue.lowest() < request.priority) {
        shed = loaded.queue.shed_lowest();
        did_shed = true;
        --total_queued_;
        telemetry::add(telemetry::Counter::kServeShed);
        telemetry::add_named(
            loaded.metrics.shed[static_cast<std::size_t>(shed.priority)]);
      } else {
        telemetry::add(telemetry::Counter::kServeRejected);
        telemetry::add_named(loaded.metrics.rejected);
        telemetry::add(telemetry::Counter::kServeShed);
        telemetry::add_named(
            loaded.metrics.shed[static_cast<std::size_t>(request.priority)]);
        throw QueueFullError(loaded.name, loaded.config.queue_capacity);
      }
    }
    if (loaded.queue.empty()) {
      // Idle→busy: rejoin the fair scheduler at its virtual clock so
      // the idle period never turns into a catch-up burst.
      loaded.vtime = std::max(loaded.vtime, vclock_);
    }
    loaded.queue.push(std::move(request));
    ++loaded.admitted;
    ++work_generation_;
    ++total_queued_;
    telemetry::add(telemetry::Counter::kServeRequests);
    telemetry::add_named(loaded.metrics.requests);
    telemetry::set_gauge(telemetry::Gauge::kServeQueueDepth,
                         static_cast<double>(total_queued_));
    telemetry::set_named_gauge(loaded.metrics.queue_depth,
                               static_cast<double>(loaded.queue.size()));
  }
  // notify_all: a worker parked on a batch-fill deadline only re-checks
  // its predicate on wakeup, and the notified thread is not guaranteed to
  // be the one able to take the work.
  work_cv_.notify_all();
  if (did_shed) {
    shed.promise.set_exception(std::make_exception_ptr(
        RequestShedError(loaded.name, shed.priority)));
  }
  return future;
}

std::future<void> InferenceServer::submit(const std::string& name,
                                          const Tensor& sample, Tensor& out) {
  return submit(resolve(name), sample, out);
}

void InferenceServer::worker_loop() {
  // Worker-owned execution state: a warm workspace (per-thread arenas
  // make reuse cache-local) and a private context so concurrent workers
  // never contend for the process-global pool.
  Workspace ws;
  const ExecContext ctx(config_.intra_op_threads);
  std::vector<detail::Request> batch;
  std::vector<detail::Request> expired;

  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || total_queued_ > 0; });
    if (total_queued_ == 0) {
      if (stopping_) return;  // drained: stop only once every queue is empty
      continue;
    }
    // Weighted fair pick (serve/sla.hpp): among flushable models, the
    // one with the least virtual time goes next.  If nothing is
    // flushable yet, park until the earliest flush/deadline event and
    // rescan.
    const std::uint64_t now = now_ns();
    ModelPtr target;
    SchedView target_view;
    for (const ModelPtr& model : active_) {
      const SchedView view = sched_view(*model, stopping_);
      if (!sla_flushable(view, now)) continue;
      if (!target || sla_prefer(view, target_view)) {
        target = model;
        target_view = view;
      }
    }
    if (!target) {
      std::uint64_t earliest = kNoEventNs;
      for (const ModelPtr& model : active_) {
        earliest =
            std::min(earliest, sla_next_event_ns(sched_view(*model, stopping_)));
      }
      // `earliest` is stale the moment queue state changes: a new submit
      // to a model with a shorter max_delay_us (or a tighter deadline)
      // creates an earlier event, and re-parking until the old one would
      // violate that model's latency bound.  The generation bump makes
      // the predicate pass so the outer loop re-derives the event set.
      const std::uint64_t parked_generation = work_generation_;
      const auto parked = [&] {
        if (stopping_ || work_generation_ != parked_generation) return true;
        const std::uint64_t tick = now_ns();
        return std::any_of(active_.begin(), active_.end(),
                           [&](const ModelPtr& model) {
                             return sla_flushable(sched_view(*model, stopping_),
                                                  tick);
                           });
      };
      if (config_.now_fn || earliest == kNoEventNs) {
        // No timed event (queued work can only become flushable through
        // a queue-state change), or an injected clock, where a timed
        // park against the real clock would be meaningless.  Either way
        // the park must yield the mutex — `continue` with a satisfied
        // wait predicate would spin without ever releasing it.
        work_cv_.wait(lock, parked);
      } else {
        work_cv_.wait_until(lock, to_time_point(earliest), parked);
      }
      continue;  // rescan with fresh deadlines
    }

    detail::LoadedModel& model = *target;
    // Advance the scheduler's virtual clock to the pick.
    vclock_ = std::max(vclock_, model.vtime);

    // Dequeue-time expiry sweep: requests whose deadline passed are
    // dropped before batch composition, so an expired request never
    // occupies a batch slot.  Their futures fail outside the lock.
    expired.clear();
    model.queue.expire(now, [&](detail::Request&& request) {
      expired.push_back(std::move(request));
    });
    if (!expired.empty()) {
      total_queued_ -= expired.size();
      model.deadline_misses += expired.size();
      telemetry::add(telemetry::Counter::kServeDeadlineMiss, expired.size());
      telemetry::add_named(model.metrics.deadline_miss, expired.size());
    }

    batch.clear();
    std::int32_t batch_rung = 0;
    if (!model.queue.empty()) {
      // Fix the batch's operating point before touching the queue: the
      // front request's explicit override wins, otherwise the model's
      // controller decides from the observed load (queue depth plus the
      // deadline-pressure window).  Only requests compatible with that
      // rung (no preference, or the same override) join the batch — a
      // batch is always one precision, structurally.
      batch_rung = model.queue.front().rung >= 0
                       ? model.queue.front().rung
                       : static_cast<std::int32_t>(model.point.decide(
                             {model.queue.size(), now, model.admitted,
                              model.deadline_misses}));
      batch.reserve(std::min(model.queue.size(), model.config.max_batch));
      while (batch.size() < model.config.max_batch && !model.queue.empty()) {
        const detail::Request& front = model.queue.front();
        if (front.rung >= 0 && front.rung != batch_rung) break;
        batch.push_back(model.queue.pop_front());
      }
    }
    const std::size_t take = batch.size();
    // Charge the fair scheduler: vtime grows by served samples over
    // weight, so a heavier model drains proportionally more batches.
    model.vtime += static_cast<double>(take) / model.config.weight;
    model.in_flight += take;
    total_queued_ -= take;
    total_in_flight_ += take;
    telemetry::set_gauge(telemetry::Gauge::kServeQueueDepth,
                         static_cast<double>(total_queued_));
    telemetry::set_named_gauge(model.metrics.queue_depth,
                               static_cast<double>(model.queue.size()));
    const bool more_work = total_queued_ > 0;
    lock.unlock();
    for (detail::Request& request : expired) {
      request.promise.set_exception(std::make_exception_ptr(
          DeadlineExceededError(model.name, request.deadline_us)));
    }
    expired.clear();
    if (more_work) work_cv_.notify_all();  // more work queued: wake peers
    if (take > 0) {
      run_batch(model, batch, ws, ctx, static_cast<std::size_t>(batch_rung));
    }
    lock.lock();
    model.in_flight -= take;
    total_in_flight_ -= take;
    if (model.retired && model.queue.empty() && model.in_flight == 0) {
      active_.erase(std::remove(active_.begin(), active_.end(), target),
                    active_.end());
    }
    if (total_queued_ == 0 && total_in_flight_ == 0) idle_cv_.notify_all();
  }
}

void InferenceServer::run_batch(detail::LoadedModel& model,
                                std::vector<detail::Request>& batch,
                                Workspace& ws, const ExecContext& ctx,
                                std::size_t rung) const {
  const std::size_t n = batch.size();
  telemetry::add(telemetry::Counter::kServeBatches);
  telemetry::add_named(model.metrics.batches);
  telemetry::record_duration(telemetry::Timer::kServeBatchSize, n);
  telemetry::record_named_duration(model.metrics.batch_size, n);
  try {
    const Shape& chw = batch.front().input->shape();
    Tensor staging = ws.tensor_uninit({n, chw[0], chw[1], chw[2]});
    const std::size_t sample_floats = shape_numel(chw);
    for (std::size_t i = 0; i < n; ++i) {
      const auto src = batch[i].input->data();
      std::copy(src.begin(), src.end(),
                staging.data().begin() +
                    static_cast<std::ptrdiff_t>(i * sample_floats));
    }
    Tensor logits = model.net.forward(staging, ws, ctx, rung);
    ws.recycle(std::move(staging));
    const std::size_t classes = logits.dim(1);
    for (std::size_t i = 0; i < n; ++i) {
      Tensor& out = *batch[i].output;
      out.resize({classes});
      const auto row = logits.data().subspan(i * classes, classes);
      std::copy(row.begin(), row.end(), out.data().begin());
      if (batch[i].served_rung != nullptr) {
        *batch[i].served_rung = static_cast<std::int32_t>(rung);
      }
      const std::uint64_t latency = now_ns() - batch[i].enqueue_ns;
      telemetry::record_duration(telemetry::Timer::kServeLatency, latency);
      telemetry::record_named_duration(model.metrics.latency, latency);
      telemetry::record_named_duration(
          model.metrics.latency_by_priority[static_cast<std::size_t>(
              batch[i].priority)],
          latency);
      batch[i].promise.set_value();
    }
    ws.recycle(std::move(logits));
    if (model.config.slo_us > 0 && telemetry::metrics_enabled()) {
      // p99-vs-SLO gauge over the model's lifetime latency histogram:
      // > 1 means the p99 budget is being violated.
      const telemetry::TimerStats stats =
          telemetry::named_timer_stats(model.metrics.latency);
      if (stats.count > 0) {
        const double p99_us =
            static_cast<double>(telemetry::approx_quantile(stats, 0.99)) /
            1000.0;
        telemetry::set_named_gauge(
            model.metrics.p99_vs_slo,
            p99_us / static_cast<double>(model.config.slo_us));
      }
    }
  } catch (...) {
    // A failed batch fails each of its requests; later batches are
    // unaffected (the engine has no mutable state).
    const std::exception_ptr error = std::current_exception();
    for (detail::Request& request : batch) {
      try {
        request.promise.set_exception(error);
      } catch (const std::future_error&) {
        // promise already satisfied (failure struck mid-reply loop)
      }
    }
  }
}

void InferenceServer::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock,
                [&] { return total_queued_ == 0 && total_in_flight_ == 0; });
}

void InferenceServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;  // already shut down
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

std::size_t InferenceServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_queued_;
}

std::size_t InferenceServer::queue_depth(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t depth = 0;
  for (const ModelPtr& model : active_) {
    if (model->name == name) depth += model->queue.size();
  }
  return depth;
}

}  // namespace ccq::serve
