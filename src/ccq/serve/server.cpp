#include "ccq/serve/server.hpp"

#include <algorithm>
#include <chrono>

#include "ccq/common/telemetry.hpp"
#include "ccq/serve/artifact.hpp"

namespace ccq::serve {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point flush_deadline(const detail::LoadedModel& model) {
  return model.queue.front().enqueue_tp +
         std::chrono::microseconds(model.config.max_delay_us);
}

}  // namespace

InferenceServer::InferenceServer(ServeConfig config) : config_(config) {
  CCQ_CHECK(config_.workers >= 1, "server needs at least one worker");
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

ModelHandle InferenceServer::load(std::string name, hw::IntegerNetwork net,
                                  ModelConfig config) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw ServerStoppedError();
  }
  ModelHandle handle = registry_.publish(std::move(name), std::move(net),
                                         config);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A shutdown racing the publish: delist again so nothing dangles in
    // the registry without a worker pool behind it.
    if (stopping_) {
      registry_.take(handle.model_->name, handle.model_->version);
      throw ServerStoppedError();
    }
    handle.model_->owner = this;
    active_.push_back(handle.model_);
  }
  return handle;
}

ModelHandle InferenceServer::load(std::string name,
                                  const std::string& artifact_path,
                                  ModelConfig config) {
  return load(std::move(name), load_artifact(artifact_path), config);
}

void InferenceServer::unload(const std::string& name) {
  retire(registry_.take_all(name));
}

void InferenceServer::unload(const std::string& name, std::uint64_t version) {
  retire(registry_.take(name, version));
}

void InferenceServer::retire(const std::vector<ModelPtr>& models) {
  if (models.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++work_generation_;  // retired queues flush immediately: force rescans
    for (const ModelPtr& model : models) {
      model->retired = true;
      if (model->queue.empty() && model->in_flight == 0) {
        active_.erase(std::remove(active_.begin(), active_.end(), model),
                      active_.end());
      }
    }
  }
  // Wake the pool: retired queues flush immediately (no deadline hold).
  work_cv_.notify_all();
}

ModelHandle InferenceServer::resolve(const std::string& name) const {
  return registry_.resolve(name);
}

ModelHandle InferenceServer::resolve(const std::string& name,
                                     std::uint64_t version) const {
  return registry_.resolve(name, version);
}

std::future<void> InferenceServer::submit(const ModelHandle& model,
                                          const Tensor& sample, Tensor& out) {
  return submit(model, sample, out, SubmitOptions{});
}

std::future<void> InferenceServer::submit(const ModelHandle& model,
                                          const Tensor& sample, Tensor& out,
                                          const SubmitOptions& options) {
  CCQ_CHECK(sample.rank() == 3,
            "submit expects one CHW sample, got rank " +
                std::to_string(sample.rank()));
  detail::LoadedModel& loaded = model.model();
  CCQ_CHECK(options.rung < static_cast<std::int32_t>(loaded.net.rung_count()),
            "operating-point override " + std::to_string(options.rung) +
                " out of range: model " + loaded.name + " serves " +
                std::to_string(loaded.net.rung_count()) + " rung(s)");
  detail::Request request;
  request.input = &sample;
  request.output = &out;
  request.rung = options.rung < 0 ? -1 : options.rung;
  request.served_rung = options.served_rung;
  request.enqueue_ns = telemetry::ScopedTimer::now_ns();
  request.enqueue_tp = Clock::now();
  std::future<void> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CCQ_CHECK(loaded.owner == this,
              "ModelHandle for " + loaded.name + " v" +
                  std::to_string(loaded.version) +
                  " was not loaded into this server");
    if (stopping_) {
      telemetry::add(telemetry::Counter::kServeRejected);
      telemetry::add_named(loaded.metrics.rejected);
      throw ServerStoppedError();
    }
    if (loaded.retired) {
      telemetry::add(telemetry::Counter::kServeRejected);
      telemetry::add_named(loaded.metrics.rejected);
      throw ModelRetiredError(loaded.name, loaded.version);
    }
    if (loaded.queue.size() >= loaded.config.queue_capacity) {
      telemetry::add(telemetry::Counter::kServeRejected);
      telemetry::add_named(loaded.metrics.rejected);
      throw QueueFullError(loaded.name, loaded.config.queue_capacity);
    }
    if (loaded.pinned_shape.empty()) {
      // Only a geometry the compiled network accepts may pin the batch
      // shape: over the TCP front end the first request is untrusted,
      // and an unchecked pin would both drive the engine's conv loops
      // from hostile dims and poison every later well-formed submit.
      try {
        loaded.net.check_input(sample.dim(0), sample.dim(1), sample.dim(2));
      } catch (const Error&) {
        telemetry::add(telemetry::Counter::kServeRejected);
        telemetry::add_named(loaded.metrics.rejected);
        throw;
      }
      loaded.pinned_shape = sample.shape();
    } else {
      CCQ_CHECK(sample.shape() == loaded.pinned_shape,
                "sample shape " + shape_str(sample.shape()) +
                    " does not match the input shape " +
                    shape_str(loaded.pinned_shape) + " pinned for model " +
                    loaded.name + " v" + std::to_string(loaded.version));
    }
    loaded.queue.push_back(std::move(request));
    ++work_generation_;
    ++total_queued_;
    telemetry::add(telemetry::Counter::kServeRequests);
    telemetry::add_named(loaded.metrics.requests);
    telemetry::set_gauge(telemetry::Gauge::kServeQueueDepth,
                         static_cast<double>(total_queued_));
    telemetry::set_named_gauge(loaded.metrics.queue_depth,
                               static_cast<double>(loaded.queue.size()));
  }
  // notify_all: a worker parked on a batch-fill deadline only re-checks
  // its predicate on wakeup, and the notified thread is not guaranteed to
  // be the one able to take the work.
  work_cv_.notify_all();
  return future;
}

std::future<void> InferenceServer::submit(const std::string& name,
                                          const Tensor& sample, Tensor& out) {
  return submit(resolve(name), sample, out);
}

void InferenceServer::worker_loop() {
  // Worker-owned execution state: a warm workspace (per-thread arenas
  // make reuse cache-local) and a private context so concurrent workers
  // never contend for the process-global pool.
  Workspace ws;
  const ExecContext ctx(config_.intra_op_threads);
  std::vector<detail::Request> batch;

  // A model's queue flushes when the batch is full, the oldest request's
  // deadline passed, or batching no longer pays (stop / retirement —
  // drain latency beats utilisation on the way out).
  const auto flushable = [this](const detail::LoadedModel& model,
                                Clock::time_point now) {
    if (model.queue.empty()) return false;
    if (stopping_ || model.retired) return true;
    if (model.queue.size() >= model.config.max_batch) return true;
    return now >= flush_deadline(model);
  };

  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || total_queued_ > 0; });
    if (total_queued_ == 0) {
      if (stopping_) return;  // drained: stop only once every queue is empty
      continue;
    }
    // Pick the flushable model whose front request waited longest
    // (oldest-first across models keeps tail latency fair under mixed
    // traffic).  If nothing is flushable yet, park until the earliest
    // batch-fill deadline and rescan.
    const auto now = Clock::now();
    ModelPtr target;
    for (const ModelPtr& model : active_) {
      if (!flushable(*model, now)) continue;
      if (!target ||
          model->queue.front().enqueue_tp < target->queue.front().enqueue_tp) {
        target = model;
      }
    }
    if (!target) {
      auto earliest = Clock::time_point::max();
      for (const ModelPtr& model : active_) {
        if (model->queue.empty()) continue;
        earliest = std::min(earliest, flush_deadline(*model));
      }
      if (earliest == Clock::time_point::max()) continue;
      // `earliest` is stale the moment queue state changes: a new submit
      // to a model with a shorter max_delay_us creates an earlier
      // deadline, and re-parking until the old one would violate that
      // model's latency bound.  The generation bump makes the predicate
      // pass so the outer loop re-derives the deadline set.
      const std::uint64_t parked_generation = work_generation_;
      work_cv_.wait_until(lock, earliest, [&] {
        if (stopping_ || work_generation_ != parked_generation) return true;
        const auto tick = Clock::now();
        return std::any_of(
            active_.begin(), active_.end(),
            [&](const ModelPtr& model) { return flushable(*model, tick); });
      });
      continue;  // rescan with fresh deadlines
    }

    detail::LoadedModel& model = *target;
    // Fix the batch's operating point before touching the queue: the
    // front request's explicit override wins, otherwise the model's
    // controller decides from the observed queue depth.  Only requests
    // compatible with that rung (no preference, or the same override)
    // join the batch — a batch is always one precision, structurally.
    const std::int32_t batch_rung =
        model.queue.front().rung >= 0
            ? model.queue.front().rung
            : static_cast<std::int32_t>(model.point.decide(
                  model.queue.size(), telemetry::ScopedTimer::now_ns()));
    const std::size_t limit = std::min(model.queue.size(),
                                       model.config.max_batch);
    batch.clear();
    batch.reserve(limit);
    while (batch.size() < limit) {
      detail::Request& front = model.queue.front();
      if (front.rung >= 0 && front.rung != batch_rung) break;
      batch.push_back(std::move(front));
      model.queue.pop_front();
    }
    const std::size_t take = batch.size();
    model.in_flight += take;
    total_queued_ -= take;
    total_in_flight_ += take;
    telemetry::set_gauge(telemetry::Gauge::kServeQueueDepth,
                         static_cast<double>(total_queued_));
    telemetry::set_named_gauge(model.metrics.queue_depth,
                               static_cast<double>(model.queue.size()));
    const bool more_work = total_queued_ > 0;
    lock.unlock();
    if (more_work) work_cv_.notify_all();  // more work queued: wake peers
    run_batch(model, batch, ws, ctx, static_cast<std::size_t>(batch_rung));
    lock.lock();
    model.in_flight -= take;
    total_in_flight_ -= take;
    if (model.retired && model.queue.empty() && model.in_flight == 0) {
      active_.erase(std::remove(active_.begin(), active_.end(), target),
                    active_.end());
    }
    if (total_queued_ == 0 && total_in_flight_ == 0) idle_cv_.notify_all();
  }
}

void InferenceServer::run_batch(detail::LoadedModel& model,
                                std::vector<detail::Request>& batch,
                                Workspace& ws, const ExecContext& ctx,
                                std::size_t rung) const {
  const std::size_t n = batch.size();
  telemetry::add(telemetry::Counter::kServeBatches);
  telemetry::add_named(model.metrics.batches);
  telemetry::record_duration(telemetry::Timer::kServeBatchSize, n);
  telemetry::record_named_duration(model.metrics.batch_size, n);
  try {
    const Shape& chw = batch.front().input->shape();
    Tensor staging = ws.tensor_uninit({n, chw[0], chw[1], chw[2]});
    const std::size_t sample_floats = shape_numel(chw);
    for (std::size_t i = 0; i < n; ++i) {
      const auto src = batch[i].input->data();
      std::copy(src.begin(), src.end(),
                staging.data().begin() +
                    static_cast<std::ptrdiff_t>(i * sample_floats));
    }
    Tensor logits = model.net.forward(staging, ws, ctx, rung);
    ws.recycle(std::move(staging));
    const std::size_t classes = logits.dim(1);
    for (std::size_t i = 0; i < n; ++i) {
      Tensor& out = *batch[i].output;
      out.resize({classes});
      const auto row = logits.data().subspan(i * classes, classes);
      std::copy(row.begin(), row.end(), out.data().begin());
      if (batch[i].served_rung != nullptr) {
        *batch[i].served_rung = static_cast<std::int32_t>(rung);
      }
      const std::uint64_t latency =
          telemetry::ScopedTimer::now_ns() - batch[i].enqueue_ns;
      telemetry::record_duration(telemetry::Timer::kServeLatency, latency);
      telemetry::record_named_duration(model.metrics.latency, latency);
      batch[i].promise.set_value();
    }
    ws.recycle(std::move(logits));
  } catch (...) {
    // A failed batch fails each of its requests; later batches are
    // unaffected (the engine has no mutable state).
    const std::exception_ptr error = std::current_exception();
    for (detail::Request& request : batch) {
      try {
        request.promise.set_exception(error);
      } catch (const std::future_error&) {
        // promise already satisfied (failure struck mid-reply loop)
      }
    }
  }
}

void InferenceServer::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock,
                [&] { return total_queued_ == 0 && total_in_flight_ == 0; });
}

void InferenceServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;  // already shut down
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

std::size_t InferenceServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_queued_;
}

std::size_t InferenceServer::queue_depth(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t depth = 0;
  for (const ModelPtr& model : active_) {
    if (model->name == name) depth += model->queue.size();
  }
  return depth;
}

}  // namespace ccq::serve
