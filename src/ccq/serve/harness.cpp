#include "ccq/serve/harness.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "ccq/common/telemetry.hpp"
#include "ccq/serve/net.hpp"

namespace ccq::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Split an NCHW batch into per-sample CHW tensors (inputs must outlive
/// their replies, so the split happens up front).
std::vector<Tensor> split_samples(const Tensor& samples) {
  const std::size_t n = samples.dim(0);
  const Shape chw{samples.dim(1), samples.dim(2), samples.dim(3)};
  const std::size_t sample_floats = shape_numel(chw);
  std::vector<Tensor> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Tensor sample(chw);
    const auto src = samples.data().subspan(i * sample_floats, sample_floats);
    std::copy(src.begin(), src.end(), sample.data().begin());
    inputs.push_back(std::move(sample));
  }
  return inputs;
}

/// Fire the scripted swap exactly once, after `swap_after` admissions.
struct SwapTrigger {
  const HarnessOptions& options;
  std::atomic<std::size_t> admitted{0};
  std::atomic<bool> fired{false};

  void on_admit() {
    if (options.swap_after == 0 || !options.on_swap) return;
    if (admitted.fetch_add(1, std::memory_order_relaxed) + 1 <
        options.swap_after) {
      return;
    }
    if (!fired.exchange(true)) options.on_swap();
  }
};

}  // namespace

std::uint64_t HarnessReport::latency_quantile_ns(double q) const {
  if (latency_ns.empty()) return 0;
  std::vector<std::uint64_t> sorted = latency_ns;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t index =
      rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
  index = std::min(index, sorted.size() - 1);
  return sorted[index];
}

ServeHarness::ServeHarness(InferenceServer& server, std::string model)
    : server_(&server), model_(std::move(model)) {}

ServeHarness::ServeHarness(std::string host, std::uint16_t port,
                           std::string model)
    : host_(std::move(host)), port_(port), model_(std::move(model)) {}

HarnessReport ServeHarness::run(const Tensor& samples,
                                const HarnessOptions& options) {
  CCQ_CHECK(samples.rank() == 4, "harness expects an NCHW sample batch");
  CCQ_CHECK(options.producers >= 1, "harness needs at least one producer");
  const bool tcp = server_ == nullptr;
  const bool open_loop = options.offered_rps > 0.0 || !options.ramp.empty();
  CCQ_CHECK(!(tcp && open_loop),
            "the open loop is in-process only (TCP clients are blocking, "
            "one request in flight per connection)");

  const std::vector<Tensor> inputs = split_samples(samples);
  const std::size_t n = inputs.size();
  const std::size_t producers = options.producers;

  // Scripted ramp: fix every request's offer time up front by walking
  // the stages, so the offered-load trajectory is exactly reproducible
  // run to run regardless of producer scheduling.
  std::vector<Clock::duration> offer_at;
  if (!options.ramp.empty()) {
    offer_at.reserve(n);
    auto cursor = Clock::duration::zero();
    for (const RampStage& stage : options.ramp) {
      CCQ_CHECK(stage.rps > 0.0 && stage.requests > 0,
                "every ramp stage needs a positive rps and request count");
      const auto gap = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / stage.rps));
      for (std::size_t i = 0; i < stage.requests; ++i) {
        offer_at.push_back(cursor);
        cursor += gap;
      }
    }
    CCQ_CHECK(offer_at.size() == n,
              "ramp stages offer " + std::to_string(offer_at.size()) +
                  " requests, the batch holds " + std::to_string(n));
  }

  CCQ_CHECK(options.priorities.empty() || options.priorities.size() == n,
            "per-sample priorities must match the sample count (" +
                std::to_string(options.priorities.size()) + " vs " +
                std::to_string(n) + ")");
  const auto priority_of = [&](std::size_t i) {
    return options.priorities.empty() ? options.priority
                                      : options.priorities[i];
  };

  HarnessReport report;
  report.outputs.resize(n);
  report.versions.assign(n, 0);
  report.rungs.assign(n, -1);
  std::vector<std::uint64_t> latencies(n, 0);
  std::vector<char> answered(n, 0);
  std::atomic<std::size_t> offered{0};
  std::atomic<std::size_t> admitted{0};
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> shed{0};
  std::atomic<std::size_t> deadline_missed{0};
  SwapTrigger swap{options};
  // First producer failure, rethrown after the join (an exception
  // escaping a thread would terminate the process instead).
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto capture_error = [&](std::exception_ptr error) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!first_error) first_error = error;
  };

  // Open-loop pacing: request i is *offered* at start + i/rps across the
  // whole fleet of producers, whether or not earlier replies arrived.
  const auto offer_interval =
      open_loop ? std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(1.0 / options.offered_rps))
                : Clock::duration::zero();

  const auto start = Clock::now();

  const auto produce = [&](std::size_t p) {
    if (tcp) {
      TcpClient client(host_, port_);
      for (std::size_t i = p; i < n; i += producers) {
        wire::InferRequest request;
        request.model = model_;
        request.channels = inputs[i].dim(0);
        request.height = inputs[i].dim(1);
        request.width = inputs[i].dim(2);
        request.data.assign(inputs[i].data().begin(), inputs[i].data().end());
        if (options.tag_points || options.rung >= 0) {
          request.has_point = true;
          request.point = options.rung;
        }
        if (priority_of(i) != Priority::kNormal) {
          request.has_priority = true;
          request.priority = static_cast<std::uint8_t>(priority_of(i));
        }
        if (options.deadline_us > 0) {
          request.has_deadline = true;
          request.deadline_us = options.deadline_us;
        }
        for (;;) {
          offered.fetch_add(1, std::memory_order_relaxed);
          const auto sent = Clock::now();
          const wire::InferReply reply = client.infer(request);
          if (reply.ok) {
            admitted.fetch_add(1, std::memory_order_relaxed);
            latencies[i] = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - sent)
                    .count());
            report.outputs[i] = Tensor::adopt(
                {reply.logits.size()},
                FloatVec(reply.logits.begin(), reply.logits.end()));
            report.versions[i] = reply.version;
            if (reply.has_rung) {
              report.rungs[i] = static_cast<std::int32_t>(reply.rung);
            }
            answered[i] = 1;
            swap.on_admit();
            break;
          }
          // Typed errors flattened to strings by the wire: a full queue
          // or a priority eviction is retryable, an expired deadline is
          // final (the budget was consumed queueing), anything else is
          // a real failure.
          if (reply.error.find("full (capacity") != std::string::npos) {
            rejected.fetch_add(1, std::memory_order_relaxed);
          } else if (reply.error.find("shed to admit") != std::string::npos) {
            admitted.fetch_add(1, std::memory_order_relaxed);
            shed.fetch_add(1, std::memory_order_relaxed);
          } else if (reply.error.find("missed its") != std::string::npos) {
            admitted.fetch_add(1, std::memory_order_relaxed);
            deadline_missed.fetch_add(1, std::memory_order_relaxed);
            break;
          } else {
            throw Error("tcp serve request failed: " + reply.error);
          }
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
      return;
    }
    // In-process: resolve a fresh handle per submission so a mid-run
    // hot-swap routes later submissions to the new current version.
    std::vector<std::pair<std::size_t, std::future<void>>> pending;
    SubmitOptions submit_options;
    submit_options.rung = options.rung;
    submit_options.deadline_us = options.deadline_us;
    for (std::size_t i = p; i < n; i += producers) {
      if (open_loop) {
        std::this_thread::sleep_until(
            start + (offer_at.empty() ? offer_interval * static_cast<long>(i)
                                      : offer_at[i]));
      }
      submit_options.priority = priority_of(i);
      for (;;) {
        const ModelHandle handle = server_->resolve(model_);
        try {
          const auto sent = Clock::now();
          // report.rungs was sized up front, so &rungs[i] stays valid
          // for the server to write at reply time.
          submit_options.served_rung = &report.rungs[i];
          std::future<void> reply = server_->submit(
              handle, inputs[i], report.outputs[i], submit_options);
          offered.fetch_add(1, std::memory_order_relaxed);
          admitted.fetch_add(1, std::memory_order_relaxed);
          report.versions[i] = handle.version();
          swap.on_admit();
          if (open_loop) {
            pending.emplace_back(i, std::move(reply));
          } else {
            reply.get();
            latencies[i] = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - sent)
                    .count());
            answered[i] = 1;
          }
          break;
        } catch (const QueueFullError&) {
          offered.fetch_add(1, std::memory_order_relaxed);
          rejected.fetch_add(1, std::memory_order_relaxed);
          if (open_loop) break;  // shed: offered load is offered, not owed
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        } catch (const RequestShedError&) {
          // Admitted, then evicted for higher-priority traffic while we
          // waited on the reply (closed loop only — the open loop parks
          // its futures in `pending`).  Retry: a fresh offer.
          shed.fetch_add(1, std::memory_order_relaxed);
          report.versions[i] = 0;
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        } catch (const DeadlineExceededError&) {
          // Admitted, then expired queueing.  No retry — the budget the
          // caller set was consumed; the sample stays unanswered.
          deadline_missed.fetch_add(1, std::memory_order_relaxed);
          report.versions[i] = 0;
          break;
        } catch (const ModelRetiredError&) {
          // Raced an unload/swap between resolve and submit: the next
          // resolve finds the current version.
        }
      }
    }
    for (auto& [i, reply] : pending) {
      try {
        reply.get();
        answered[i] = 1;
      } catch (const RequestShedError&) {
        shed.fetch_add(1, std::memory_order_relaxed);
        report.versions[i] = 0;
        report.rungs[i] = -1;
      } catch (const DeadlineExceededError&) {
        deadline_missed.fetch_add(1, std::memory_order_relaxed);
        report.versions[i] = 0;
        report.rungs[i] = -1;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      try {
        produce(p);
      } catch (...) {
        capture_error(std::current_exception());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.offered = offered.load(std::memory_order_relaxed);
  report.admitted = admitted.load(std::memory_order_relaxed);
  report.rejected = rejected.load(std::memory_order_relaxed);
  report.shed = shed.load(std::memory_order_relaxed);
  report.deadline_missed = deadline_missed.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (!answered[i]) continue;
    ++report.requests;
    if (!open_loop) report.latency_ns.push_back(latencies[i]);
  }
  return report;
}

}  // namespace ccq::serve
