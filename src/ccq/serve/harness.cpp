#include "ccq/serve/harness.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "ccq/common/telemetry.hpp"

namespace ccq::serve {

HarnessReport ServeHarness::run(const Tensor& samples,
                                std::size_t producers) {
  CCQ_CHECK(samples.rank() == 4, "harness expects an NCHW sample batch");
  CCQ_CHECK(producers >= 1, "harness needs at least one producer");
  const std::size_t n = samples.dim(0);
  const Shape chw{samples.dim(1), samples.dim(2), samples.dim(3)};
  const std::size_t sample_floats = shape_numel(chw);

  // Inputs must outlive their replies, so split the batch up front.
  std::vector<Tensor> inputs;
  inputs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Tensor sample(chw);
    const auto src = samples.data().subspan(i * sample_floats, sample_floats);
    std::copy(src.begin(), src.end(), sample.data().begin());
    inputs.push_back(std::move(sample));
  }

  HarnessReport report;
  report.outputs.resize(n);
  std::atomic<std::size_t> rejected{0};

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      std::vector<std::future<void>> replies;
      for (std::size_t i = p; i < n; i += producers) {
        for (;;) {
          try {
            replies.push_back(
                server_.submit(inputs[i], report.outputs[i]));
            break;
          } catch (const QueueFullError&) {
            rejected.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
        }
      }
      for (auto& reply : replies) reply.get();
    });
  }
  for (auto& thread : threads) thread.join();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.requests = n;
  report.rejected = rejected.load(std::memory_order_relaxed);
  return report;
}

}  // namespace ccq::serve
