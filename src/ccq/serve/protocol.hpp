// Wire protocol for the TCP serving front end.
//
// A deliberately minimal binary protocol — the serving story (ROADMAP
// item 1) needs a socket boundary, not a general RPC stack.  Two layers,
// both socket-free and unit-testable on plain byte buffers:
//
//   * Framing — every message travels as a length-prefixed frame:
//     a u32 little-endian body length followed by the body bytes.
//     `append_frame` emits one, `extract_frame` consumes one from a
//     receive buffer (returning false while the frame is still partial,
//     so callers can feed sockets chunk by chunk).  Declared lengths
//     beyond `kMaxFrameBytes` are rejected up front — a garbage or
//     hostile length never allocates.
//   * Body codec — one tag byte (`MessageType`) then LEB128
//     varint-delimited fields, the same encoding family as the .ccqa
//     artifact payload.  Floats travel as raw little-endian IEEE-754
//     bits, so a logit row round-trips the socket bit-identically to an
//     in-process `InferenceServer::submit` — the property
//     serve_net_test locks in.
//
// Messages:
//   InferRequest : model name, version (0 = the name's current version),
//                  C/H/W sample geometry, sample floats
//   InferReply   : ok + served version + logits, or an error string
//                  (the server-side exception message, so admission
//                  errors keep their types' diagnostics across the wire)
//
// Decoding failures — bad tag, truncated field, trailing bytes,
// oversized declared counts — throw `ProtocolError` naming what broke.
// serve/net.hpp binds this codec to POSIX sockets; docs/SERVING.md
// documents the protocol for non-C++ clients.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ccq/common/error.hpp"

namespace ccq::serve::wire {

/// Hard cap on a frame body.  A CHW float sample at 16 MiB is a
/// ~2M-element input — far beyond any CCQ model — so anything larger is
/// a corrupt or hostile length prefix, rejected before allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Malformed bytes on the wire: bad frame length, unknown message tag,
/// truncated or oversized field, trailing garbage.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& message)
      : Error("wire protocol: " + message) {}
};

// ---- framing ---------------------------------------------------------------

/// Append one frame (u32 LE length + body) to `buffer`.  Throws
/// ProtocolError when `body` exceeds kMaxFrameBytes.
void append_frame(std::string& buffer, std::string_view body);

/// Consume one complete frame from the front of `buffer` into `body`.
/// Returns false (buffer untouched) while the frame is still partial.
/// Throws ProtocolError when the declared length exceeds kMaxFrameBytes.
bool extract_frame(std::string& buffer, std::string& body);

// ---- messages --------------------------------------------------------------

enum class MessageType : std::uint8_t {
  kInferRequest = 1,
  kReplyOk = 2,
  kReplyError = 3,
};

/// One inference call: route `data` (a C×H×W sample, row-major) to
/// `model` at `version` (0 = whatever version is current server-side).
///
/// The operating-point override, priority and deadline travel as
/// *optional trailing fields* ({u8 field tag, varint value} after
/// `data`; zigzag for the signed rung override) — tag 1 = rung
/// override, tag 2 = priority, tag 3 = deadline_us.  A frame with none
/// of them is byte-identical to the pre-SLA protocol revisions
/// (golden-frame-tested), unknown or duplicate tags are rejected, and
/// an old server receiving a tag rejects the frame with its existing
/// trailing-bytes ProtocolError instead of silently ignoring it — a
/// request asking for a QoS the server cannot honour must not be
/// served at an arbitrary one.  Hostile values are rejected at decode:
/// a priority beyond the enum, a deadline of 0 (the tag would claim a
/// budget while meaning "none" — omit it instead).  A u64-max deadline
/// is legal and saturates server-side instead of wrapping.
struct InferRequest {
  std::string model;
  std::uint64_t version = 0;
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;
  std::vector<float> data;
  bool has_point = false;       ///< operating-point tag present
  std::int32_t point = -1;      ///< requested serving rung (−1 = server picks)
  bool has_priority = false;    ///< priority tag present
  std::uint8_t priority = 1;    ///< service class (0 low, 1 normal, 2 high)
  bool has_deadline = false;    ///< deadline tag present
  std::uint64_t deadline_us = 0;  ///< queueing budget from admission
};

/// The answer: logits plus the version that actually served the request
/// (so clients observe hot-swaps), or the server-side error message.
/// `rung` is echoed (same optional-trailing-field scheme) only when the
/// request carried an operating-point tag, so replies to untagged
/// requests stay byte-identical to the previous protocol revision.
struct InferReply {
  bool ok = false;
  std::uint64_t version = 0;    ///< served version (ok replies)
  std::vector<float> logits;    ///< ok replies
  std::string error;            ///< error replies
  bool has_rung = false;        ///< serving-rung tag present
  std::uint32_t rung = 0;       ///< rung that served the request
};

std::string encode_request(const InferRequest& request);
InferRequest decode_request(std::string_view body);

std::string encode_reply(const InferReply& reply);
InferReply decode_reply(std::string_view body);

}  // namespace ccq::serve::wire
