// ServeHarness: drive a multi-model server with concurrent producers.
//
// Tests, the `ccq serve-bench` CLI and the TCP load generator need the
// same machinery: split a batch of samples across P producer threads,
// route every sample to a *named* model, wait for the replies and hand
// back outputs in sample order — the shape that makes bit-identity
// checks against a direct `IntegerNetwork::forward` one `max_abs_diff`
// call.  On top of the PR-4 closed loop, this version adds:
//
//   * registry routing — the harness targets a model *name*, resolving a
//     fresh handle per submission, so a hot-swap mid-run redirects later
//     submissions to the new version while earlier ones finish on the
//     old.  `HarnessReport::versions` records which version served each
//     sample — the observable a swap test asserts on;
//   * a scripted swap hook — `swap_after`/`on_swap` fire a callback
//     (e.g. `server.load(...)` of v2) exactly once after N admitted
//     submissions, from a producer thread, mid-traffic;
//   * an open loop — `offered_rps > 0` paces submissions at a fixed
//     offered rate instead of waiting for each reply (closed loop
//     measures capacity, open loop measures latency under a load you
//     chose; the serve bench sweeps it).  Open-loop rejections are shed,
//     not retried — that is the point of offered load;
//   * a TCP mode — the same drive through `TcpClient` connections
//     against a `TcpServer` port, one connection per producer;
//   * SLA knobs — a service class per submission (uniform or
//     per-sample) and an optional queueing deadline, plus honest load
//     accounting: `offered` counts every submission *attempt* (a
//     closed-loop retry burst is many offers, not one), `admitted`
//     counts admissions, and `offered == admitted + rejected` always —
//     so a shed rate computed against `offered` reflects the true
//     offered load.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ccq/serve/server.hpp"

namespace ccq::serve {

/// One leg of a scripted open-loop load ramp: offer `requests`
/// submissions at `rps`, then move to the next stage.
struct RampStage {
  double rps = 0.0;
  std::size_t requests = 0;
};

struct HarnessOptions {
  std::size_t producers = 1;
  /// 0 = closed loop (submit → wait → next; per-request round-trip
  /// latencies are exact).  > 0 = open loop: pace submissions at this
  /// aggregate offered rate, shed rejections, wait for stragglers at the
  /// end; latency distributions then live in the server's telemetry
  /// histograms (`serve.*.latency`).
  double offered_rps = 0.0;
  /// Scripted open-loop schedule (overrides `offered_rps` when
  /// non-empty): request i's offer time is fixed up front by walking the
  /// stages, so an up-then-down rate ramp is exactly reproducible — the
  /// deterministic way to watch the operating-point controller degrade
  /// past the saturation knee and restore when load drops.  Stage
  /// request counts must sum to the sample count.
  std::vector<RampStage> ramp;
  /// Operating-point override attached to every submission (−1 = let
  /// the server's controller choose).
  std::int32_t rung = -1;
  /// TCP mode: carry the operating-point tag (with `rung`, possibly −1)
  /// on every request so replies echo the rung that served them into
  /// `HarnessReport::rungs`.  Requires a server speaking the tagged
  /// protocol revision.  In-process runs always report rungs.
  bool tag_points = false;
  /// After this many admitted submissions, run `on_swap` exactly once
  /// from a producer thread (0 = never).
  std::size_t swap_after = 0;
  std::function<void()> on_swap;
  /// Service class attached to every submission.
  Priority priority = Priority::kNormal;
  /// Per-sample service classes (overrides `priority` when non-empty;
  /// size must equal the sample count) — how a mixed-priority load is
  /// scripted deterministically.
  std::vector<Priority> priorities;
  /// Queueing budget attached to every submission (0 = none).  A
  /// request that exceeds it is dropped at dequeue time and counted in
  /// `HarnessReport::deadline_missed`, never retried — the budget was
  /// the point.
  std::uint64_t deadline_us = 0;
};

struct HarnessReport {
  /// Per-sample logits, in input-batch order.  Open loop: an empty
  /// tensor where the submission was shed.
  std::vector<Tensor> outputs;
  /// The model version that served each sample (0 where shed) — the
  /// observable hot-swap tests assert on.
  std::vector<std::uint64_t> versions;
  /// The serving rung that executed each sample (−1 where shed, or in
  /// TCP mode without `tag_points`) — the observable the adaptive
  /// serving tests assert on.
  std::vector<std::int32_t> rungs;
  std::size_t requests = 0;   ///< samples that got a served reply
  /// Submission *attempts*: every call at the admission door, so a
  /// closed-loop retry burst counts once per retry.  Always equals
  /// `admitted + rejected` — the denominator a shed rate is honest
  /// against.
  std::size_t offered = 0;
  std::size_t admitted = 0;  ///< attempts accepted by admission control
  std::size_t rejected = 0;  ///< attempts rejected at the door (queue full)
  /// Admitted requests evicted by a higher-priority arrival (closed
  /// loop retries them; each retry is a fresh offer).
  std::size_t shed = 0;
  /// Admitted requests dropped expired at dequeue time (never retried).
  std::size_t deadline_missed = 0;
  double wall_seconds = 0.0;  ///< first submit → last reply
  /// Exact per-request round-trip latencies (closed loop and TCP mode;
  /// empty in the in-process open loop — read the telemetry histograms).
  std::vector<std::uint64_t> latency_ns;

  /// Quantile over `latency_ns` (nearest-rank); 0 when empty.
  std::uint64_t latency_quantile_ns(double q) const;
};

class ServeHarness {
 public:
  /// Drive `server`'s model `model` in process.  Both must outlive the
  /// harness; the server is borrowed, not owned, so one server can sit
  /// behind many harnesses (and keep its models across runs).
  ServeHarness(InferenceServer& server, std::string model);

  /// Drive model `model` behind a TCP front end at `host:port` (one
  /// `TcpClient` connection per producer).  Closed loop only.
  ServeHarness(std::string host, std::uint16_t port, std::string model);

  /// Submit every sample of an NCHW batch (sample i goes to producer
  /// i % producers, each producer submits its share in order) and block
  /// until all replies arrived.  Closed loop retries queue-full
  /// rejections with a short backoff; open loop sheds them.
  HarnessReport run(const Tensor& samples, const HarnessOptions& options = {});

 private:
  InferenceServer* server_ = nullptr;  ///< in-process mode
  std::string host_;                   ///< TCP mode
  std::uint16_t port_ = 0;
  std::string model_;
};

}  // namespace ccq::serve
