// ServeHarness: drive an InferenceServer with concurrent producers.
//
// Tests and the `ccq serve-bench` CLI need the same machinery: split a
// batch of samples across P producer threads, submit every sample
// (retrying typed admission rejections with a short backoff), wait for
// all replies and hand the outputs back in sample order — the shape that
// makes bit-identity checks against a direct `IntegerNetwork::forward`
// one `max_abs_diff` call.
#pragma once

#include <cstddef>
#include <vector>

#include "ccq/serve/server.hpp"

namespace ccq::serve {

struct HarnessReport {
  /// Per-sample logits, in the order samples appeared in the input batch.
  std::vector<Tensor> outputs;
  std::size_t requests = 0;   ///< admitted submissions
  std::size_t rejected = 0;   ///< QueueFullError rejections (then retried)
  double wall_seconds = 0.0;  ///< first submit → last reply
};

class ServeHarness {
 public:
  ServeHarness(hw::IntegerNetwork net, ServeConfig config)
      : server_(std::move(net), config) {}

  /// Submit every sample of an NCHW batch from `producers` threads
  /// (sample i goes to producer i % producers, each producer submits its
  /// samples in order) and block until all replies arrived.  Rejected
  /// submissions are retried after a short backoff and counted.
  HarnessReport run(const Tensor& samples, std::size_t producers);

  InferenceServer& server() { return server_; }

 private:
  InferenceServer server_;
};

}  // namespace ccq::serve
