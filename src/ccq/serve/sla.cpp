#include "ccq/serve/sla.hpp"

namespace ccq::serve {

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::kLow: return "low";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
  }
  return "?";
}

Priority priority_from_string(const std::string& name) {
  if (name == "low") return Priority::kLow;
  if (name == "normal") return Priority::kNormal;
  if (name == "high") return Priority::kHigh;
  throw Error("unknown priority \"" + name +
              "\" (expected low, normal or high)");
}

}  // namespace ccq::serve
