#include "ccq/hw/integer_engine.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "ccq/nn/conv.hpp"
#include "ccq/nn/linear.hpp"
#include "ccq/nn/norm.hpp"
#include "ccq/nn/pool.hpp"
#include "ccq/quant/act_quant.hpp"

namespace ccq::hw {

namespace {

constexpr float kInputScale = 1.0f / 255.0f;  // 8-bit input quantization

/// Infer the uniform grid spacing of a quantized tensor from its distinct
/// values.  Returns 0 when the tensor is constant (degenerate layer).
float infer_step(const Tensor& q) {
  std::set<float> values(q.data().begin(), q.data().end());
  float step = 0.0f;
  float prev = 0.0f;
  bool first = true;
  for (float v : values) {
    if (!first) {
      const float gap = v - prev;
      if (gap > 1e-12f && (step == 0.0f || gap < step)) step = gap;
    }
    prev = v;
    first = false;
  }
  return step;
}

struct FoldedBn {
  std::vector<float> scale;  ///< γ/σ per channel
  std::vector<float> shift;  ///< β − γμ/σ per channel
};

FoldedBn fold_bn(const nn::BatchNorm2d* bn, std::size_t channels) {
  FoldedBn folded;
  folded.scale.assign(channels, 1.0f);
  folded.shift.assign(channels, 0.0f);
  if (bn == nullptr) return folded;
  // Access running stats / affine params through the public interface.
  const Tensor& mean = bn->running_mean();
  const Tensor& var = bn->running_var();
  auto* mutable_bn = const_cast<nn::BatchNorm2d*>(bn);
  const Tensor& gamma = mutable_bn->gamma().value;
  const Tensor& beta = mutable_bn->beta().value;
  for (std::size_t c = 0; c < channels; ++c) {
    const float inv_std = 1.0f / std::sqrt(var.at(c) + 1e-5f);
    folded.scale[c] = gamma.at(c) * inv_std;
    folded.shift[c] = beta.at(c) - gamma.at(c) * mean.at(c) * inv_std;
  }
  return folded;
}

/// Activation metadata from a quantized activation module.
void read_act(nn::Module* module, IntLayerPlan& plan) {
  if (auto* pact = dynamic_cast<quant::PactActivation*>(module)) {
    plan.has_act = true;
    plan.act_bits = pact->bits();
    plan.act_clip = std::max(pact->alpha(), 1e-3f);
  } else if (auto* clip = dynamic_cast<quant::ClipActQuant*>(module)) {
    plan.has_act = true;
    plan.act_bits = clip->bits();
    plan.act_clip = clip->clip();
  } else {
    throw Error("unsupported activation module in integer engine: " +
                module->type_name());
  }
}

float act_scale(const IntLayerPlan& plan) {
  CCQ_CHECK(plan.has_act, "layer has no activation grid");
  CCQ_CHECK(plan.act_bits < 16, "activation not quantized");
  return plan.act_clip /
         static_cast<float>((1u << plan.act_bits) - 1u);
}

}  // namespace

std::vector<std::int32_t> encode_doubled(const Tensor& q, float step,
                                         int bits, const std::string& layer) {
  CCQ_CHECK(step > 0.0f, "encode_doubled needs a positive grid step");
  std::vector<std::int32_t> codes;
  codes.reserve(q.numel());
  const float half = step / 2.0f;
  // Doubled codes of any b-bit grid (zero-centred or half-offset) lie in
  // ±2^b; anything beyond means the inferred step does not describe the
  // tensor, and lround would have narrowed it silently.
  const long envelope = 1L << bits;
  for (float v : q.data()) {
    const long c = std::lround(v / half);
    if (c > envelope || c < -envelope) {
      throw Error("integer engine: layer '" + layer + "': weight value " +
                  std::to_string(v) + " encodes to doubled code " +
                  std::to_string(c) + ", outside the " +
                  std::to_string(bits) + "-bit envelope of +/-" +
                  std::to_string(envelope));
    }
    codes.push_back(static_cast<std::int32_t>(c));
  }
  return codes;
}

IntegerNetwork IntegerNetwork::compile(models::QuantModel& model) {
  IntegerNetwork net;
  nn::Sequential& seq = model.net();
  float input_scale = kInputScale;  // scale of the incoming activations

  auto compile_weights = [&](nn::Parameter& weight,
                             nn::QuantizerHook* hook,
                             std::size_t out_channels,
                             const FoldedBn& bn,
                             const Tensor* conv_bias,
                             IntLayerPlan& plan) {
    CCQ_CHECK(hook != nullptr, "layer has no weight quantizer");
    CCQ_CHECK(hook->bits() < 16,
              "integer engine requires quantized weights (<16 bits)");
    const Tensor q = hook->quantize(weight.value);
    float step = infer_step(q);
    if (step == 0.0f) step = 1.0f;  // constant (all-zero) weights
    plan.weight_codes = encode_doubled(q, step, hook->bits(), plan.name);
    plan.weight_bits = hook->bits();
    plan.channel_scale.assign(out_channels, 0.0f);
    plan.bias.assign(out_channels, 0.0f);
    for (std::size_t c = 0; c < out_channels; ++c) {
      plan.channel_scale[c] =
          (step / 2.0f) * input_scale * bn.scale[c];
      const float base_bias =
          conv_bias != nullptr ? conv_bias->at(c) : 0.0f;
      plan.bias[c] = base_bias * bn.scale[c] + bn.shift[c];
    }
  };

  // Conv/linear plans are named after their registry unit (compile walks
  // the sequence in registration order), the rest after their type.
  std::size_t unit_idx = 0;
  auto unit_name = [&](const std::string& type, std::size_t i) {
    if (unit_idx < model.registry().size()) {
      return model.registry().unit(unit_idx++).name;
    }
    return type + "@" + std::to_string(i);
  };

  for (std::size_t i = 0; i < seq.size(); ++i) {
    nn::Module& module = seq.child(i);
    const std::string type = module.type_name();
    if (type == "Conv2d") {
      auto& conv = dynamic_cast<nn::Conv2d&>(module);
      IntLayerPlan plan;
      plan.kind = IntLayerPlan::Kind::kConv;
      plan.name = unit_name(type, i);
      plan.in_channels = conv.in_channels();
      plan.out_channels = conv.out_channels();
      plan.kernel = conv.kernel();
      plan.stride = conv.stride();
      plan.pad = conv.pad();
      // Optional BN directly after.
      const nn::BatchNorm2d* bn = nullptr;
      if (i + 1 < seq.size() &&
          seq.child(i + 1).type_name() == "BatchNorm2d") {
        bn = &dynamic_cast<nn::BatchNorm2d&>(seq.child(i + 1));
        ++i;
      }
      // Optional quantized activation after that.
      if (i + 1 < seq.size() &&
          (seq.child(i + 1).type_name() == "PactActivation" ||
           seq.child(i + 1).type_name() == "ClipActQuant")) {
        read_act(&seq.child(i + 1), plan);
        ++i;
      }
      const FoldedBn folded = fold_bn(bn, plan.out_channels);
      compile_weights(conv.weight(), conv.weight_quantizer(),
                      plan.out_channels, folded,
                      conv.has_bias() ? &conv.bias().value : nullptr, plan);
      if (plan.has_act) input_scale = act_scale(plan);
      net.plans_.push_back(std::move(plan));
    } else if (type == "Linear") {
      auto& fc = dynamic_cast<nn::Linear&>(module);
      IntLayerPlan plan;
      plan.kind = IntLayerPlan::Kind::kLinear;
      plan.name = unit_name(type, i);
      plan.in_features = fc.in_features();
      plan.out_features = fc.out_features();
      if (i + 1 < seq.size() &&
          (seq.child(i + 1).type_name() == "PactActivation" ||
           seq.child(i + 1).type_name() == "ClipActQuant")) {
        read_act(&seq.child(i + 1), plan);
        ++i;
      }
      const FoldedBn identity = fold_bn(nullptr, plan.out_features);
      compile_weights(fc.weight(), fc.weight_quantizer(), plan.out_features,
                      identity, fc.has_bias() ? &fc.bias().value : nullptr,
                      plan);
      if (plan.has_act) input_scale = act_scale(plan);
      net.plans_.push_back(std::move(plan));
    } else if (type == "MaxPool2d") {
      auto& pool = dynamic_cast<nn::MaxPool2d&>(module);
      IntLayerPlan plan;
      plan.kind = IntLayerPlan::Kind::kMaxPool;
      plan.name = type + "@" + std::to_string(i);
      plan.pool_kernel = pool.kernel();
      plan.pool_stride = pool.stride();
      net.plans_.push_back(plan);
    } else if (type == "AvgPool2d") {
      auto& pool = dynamic_cast<nn::AvgPool2d&>(module);
      IntLayerPlan plan;
      plan.kind = IntLayerPlan::Kind::kAvgPool;
      plan.name = type + "@" + std::to_string(i);
      plan.pool_kernel = pool.kernel();
      plan.pool_stride = pool.stride();
      net.plans_.push_back(plan);
    } else if (type == "GlobalAvgPool") {
      IntLayerPlan plan;
      plan.kind = IntLayerPlan::Kind::kGlobalAvgPool;
      plan.name = type + "@" + std::to_string(i);
      net.plans_.push_back(plan);
    } else if (type == "Flatten") {
      IntLayerPlan plan;
      plan.kind = IntLayerPlan::Kind::kFlatten;
      plan.name = type + "@" + std::to_string(i);
      net.plans_.push_back(plan);
    } else if (type == "Residual") {
      throw Error(
          "integer engine supports sequential topologies only; residual "
          "graphs run through the float simulation path");
    } else {
      throw Error("integer engine: unsupported module " + type);
    }
  }
  CCQ_CHECK(!net.plans_.empty(), "empty model");
  net.finalize_plans();
  return net;
}

IntegerNetwork IntegerNetwork::from_plans(std::vector<IntLayerPlan> plans) {
  CCQ_CHECK(!plans.empty(), "cannot build an integer network from 0 plans");
  IntegerNetwork net;
  net.plans_ = std::move(plans);
  net.finalize_plans();
  return net;
}

void IntegerNetwork::finalize_plans() {
  // Static bound on |incoming activation codes|, threaded layer to layer:
  // the input snap is 8-bit (codes in [0, 255]); a b-bit activation grid
  // emits codes in [0, 2^b − 1]; pooling and flatten keep values on (or,
  // for averages, requantized back onto) the current grid, so they
  // preserve the bound.  0 marks an unquantized producer — the consumer
  // then accumulates in int64 unconditionally.
  //
  // $CCQ_IGEMM_KERNEL is read once for the whole network (kAuto when
  // unset); each layer then resolves it against its own static bounds,
  // so a 2-bit conv can run vec-packed while the int64-accumulating
  // classifier head falls back to scalar in the same net.
  const IgemmKernel requested = igemm_requested_kernel();
  std::int64_t in_bound = 255;
  for (auto& plan : plans_) {
    if (plan.kind == IntLayerPlan::Kind::kConv ||
        plan.kind == IntLayerPlan::Kind::kLinear) {
      const bool conv = plan.kind == IntLayerPlan::Kind::kConv;
      const std::size_t rows =
          conv ? plan.out_channels : plan.out_features;
      const std::size_t depth =
          conv ? plan.in_channels * plan.kernel * plan.kernel
               : plan.in_features;
      plan.max_abs_code = igemm_max_abs(plan.weight_codes);
      plan.in_code_bound = in_bound;
      plan.accum =
          in_bound > 0 && igemm_fits_int32(plan.max_abs_code, in_bound, depth)
              ? IgemmAccum::kInt32
              : IgemmAccum::kInt64;
      plan.igemm_kernel = igemm_select_kernel(requested, plan.max_abs_code,
                                              plan.in_code_bound, plan.accum);
      // Conv consumes the panel on the left (kWX, per-row epilogue);
      // linear on the right (kXW), so outputs land row-major (batch×out).
      plan.panel = igemm_pack(plan.weight_codes, rows, depth,
                              conv ? IgemmForm::kWX : IgemmForm::kXW,
                              plan.igemm_kernel);
      in_bound = plan.has_act && plan.act_bits < 16
                     ? (std::int64_t{1} << plan.act_bits) - 1
                     : 0;
    }
  }
}

const IntLayerPlan& IntegerNetwork::plan(std::size_t i) const {
  CCQ_CHECK(i < plans_.size(), "plan index out of range");
  return plans_[i];
}

namespace {

/// Quantize a float activation tensor onto a uniform grid, writing the
/// integer codes (as exact floats, ready for im2col) into `codes`.
/// Reference-path twin of `to_int_codes`.
void to_codes(const Tensor& x, float scale, Tensor& codes) {
  codes.resize(x.shape());
  auto xp = x.data();
  auto cp = codes.data();
  for (std::size_t i = 0; i < xp.size(); ++i) {
    cp[i] = std::round(xp[i] / scale);
  }
}

/// Same grid snap, straight into an int32 code buffer for igemm.
/// std::lround and std::round share the round-half-away rule over the
/// identical float quotient, so these codes equal the reference path's
/// lround(to_codes(...)) bit for bit.
void to_int_codes(const Tensor& x, float scale, std::int32_t* codes) {
  auto xp = x.data();
  for (std::size_t i = 0; i < xp.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(std::lround(xp[i] / scale));
  }
}

/// Apply the layer's activation quantizer to a float tensor.
void apply_act(Tensor& x, const IntLayerPlan& plan) {
  if (!plan.has_act) return;
  auto xp = x.data();
  if (plan.act_bits >= 16) {
    for (auto& v : xp) v = std::clamp(v, 0.0f, plan.act_clip);
    return;
  }
  const float n = static_cast<float>((1u << plan.act_bits) - 1u);
  const float s = plan.act_clip / n;
  for (auto& v : xp) {
    v = std::clamp(std::round(std::clamp(v, 0.0f, plan.act_clip) / s),
                   0.0f, n) *
        s;
  }
}

}  // namespace

Tensor IntegerNetwork::forward(const Tensor& x) const {
  return forward(x, Workspace::scratch());
}

Tensor IntegerNetwork::forward(const Tensor& x, Workspace& ws) const {
  return forward(x, ws, ExecContext::global());
}

Tensor IntegerNetwork::forward(const Tensor& x, Workspace& ws,
                               const ExecContext& ctx) const {
  CCQ_CHECK(x.rank() == 4, "integer engine expects NCHW input");
  Tensor act = ws.tensor_uninit(x.shape());
  std::copy(x.data().begin(), x.data().end(), act.data().begin());
  float scale = kInputScale;
  // Snap the input onto its 8-bit grid (standard input quantization).
  {
    auto p = act.data();
    for (auto& v : p) {
      v = std::clamp(std::round(v / kInputScale), 0.0f, 255.0f) *
          kInputScale;
    }
  }

  for (const auto& plan : plans_) {
    switch (plan.kind) {
      case IntLayerPlan::Kind::kConv: {
        const std::size_t n = act.dim(0), h = act.dim(2), w = act.dim(3);
        const ConvGeometry g{.in_channels = plan.in_channels,
                             .in_h = h,
                             .in_w = w,
                             .kernel = plan.kernel,
                             .stride = plan.stride,
                             .pad = plan.pad};
        const std::size_t oh = g.out_h(), ow = g.out_w();
        const std::size_t patch = g.patch_size(), spatial = g.out_spatial();
        Workspace::IntLease xcodes = ws.ints(act.numel());
        to_int_codes(act, scale, xcodes.data());
        Tensor out = ws.tensor_uninit({n, plan.out_channels, oh, ow});
        Workspace::IntLease cols = ws.ints(patch * spatial);
        IgemmOp op;
        op.form = IgemmForm::kWX;
        op.m = plan.out_channels;
        op.n = spatial;
        op.k = patch;
        op.panel = &plan.panel;
        op.epilogue = {plan.channel_scale.data(), plan.bias.data()};
        op.accum = plan.accum;
        op.x_bound = plan.in_code_bound;
        op.ws = &ws;
        for (std::size_t img = 0; img < n; ++img) {
          im2col(xcodes.data() + img * plan.in_channels * h * w, g,
                 cols.data(), ctx);
          op.x = cols.data();
          op.c = out.data().data() + img * plan.out_channels * spatial;
          igemm_run(op, ctx);
        }
        ws.recycle(std::move(act));
        act = std::move(out);
        apply_act(act, plan);
        if (plan.has_act && plan.act_bits < 16) scale = act_scale(plan);
        break;
      }
      case IntLayerPlan::Kind::kLinear: {
        CCQ_CHECK(act.rank() == 2 && act.dim(1) == plan.in_features,
                  "linear input mismatch in integer engine");
        const std::size_t n = act.dim(0);
        Workspace::IntLease xcodes = ws.ints(act.numel());
        to_int_codes(act, scale, xcodes.data());
        Tensor out = ws.tensor_uninit({n, plan.out_features});
        IgemmOp op;
        op.form = IgemmForm::kXW;
        op.m = n;
        op.n = plan.out_features;
        op.k = plan.in_features;
        op.panel = &plan.panel;
        op.x = xcodes.data();
        op.c = out.data().data();
        op.epilogue = {plan.channel_scale.data(), plan.bias.data()};
        op.accum = plan.accum;
        op.x_bound = plan.in_code_bound;
        op.ws = &ws;
        igemm_run(op, ctx);
        ws.recycle(std::move(act));
        act = std::move(out);
        apply_act(act, plan);
        if (plan.has_act && plan.act_bits < 16) scale = act_scale(plan);
        break;
      }
      case IntLayerPlan::Kind::kMaxPool: {
        nn::MaxPool2d pool(plan.pool_kernel, plan.pool_stride);
        pool.set_training(false);  // inference: skip the argmax cache
        Tensor out = pool.forward(act, ws);
        ws.recycle(std::move(act));
        act = std::move(out);
        break;
      }
      case IntLayerPlan::Kind::kAvgPool: {
        nn::AvgPool2d pool(plan.pool_kernel, plan.pool_stride);
        pool.set_training(false);
        Tensor out = pool.forward(act, ws);
        ws.recycle(std::move(act));
        act = std::move(out);
        // Averaging leaves the grid; requantize onto the current scale
        // (what a fixed-point datapath does after a mean).
        auto p = act.data();
        for (auto& v : p) v = std::round(v / scale) * scale;
        break;
      }
      case IntLayerPlan::Kind::kGlobalAvgPool: {
        nn::GlobalAvgPool gap;
        gap.set_training(false);
        Tensor out = gap.forward(act, ws);
        ws.recycle(std::move(act));
        act = std::move(out);
        auto p = act.data();
        for (auto& v : p) v = std::round(v / scale) * scale;
        break;
      }
      case IntLayerPlan::Kind::kFlatten: {
        // In-place reshape: same element count, only the shape changes.
        act.resize({act.dim(0), act.numel() / act.dim(0)});
        break;
      }
    }
  }
  return act;
}

Tensor IntegerNetwork::forward_reference(const Tensor& x) const {
  return forward_reference(x, Workspace::scratch(), ExecContext::global());
}

Tensor IntegerNetwork::forward_reference(const Tensor& x, Workspace& ws,
                                         const ExecContext& ctx) const {
  CCQ_CHECK(x.rank() == 4, "integer engine expects NCHW input");
  Tensor act = ws.tensor_uninit(x.shape());
  std::copy(x.data().begin(), x.data().end(), act.data().begin());
  Tensor codes = ws.tensor_uninit(x.shape());  // reused by conv/linear
  float scale = kInputScale;
  {
    auto p = act.data();
    for (auto& v : p) {
      v = std::clamp(std::round(v / kInputScale), 0.0f, 255.0f) *
          kInputScale;
    }
  }

  for (const auto& plan : plans_) {
    switch (plan.kind) {
      case IntLayerPlan::Kind::kConv: {
        const std::size_t n = act.dim(0), h = act.dim(2), w = act.dim(3);
        const ConvGeometry g{.in_channels = plan.in_channels,
                             .in_h = h,
                             .in_w = w,
                             .kernel = plan.kernel,
                             .stride = plan.stride,
                             .pad = plan.pad};
        const std::size_t oh = g.out_h(), ow = g.out_w();
        const std::size_t patch = g.patch_size(), spatial = g.out_spatial();
        to_codes(act, scale, codes);
        Tensor out = ws.tensor_uninit({n, plan.out_channels, oh, ow});
        Workspace::FloatLease cols = ws.floats(patch * spatial);
        for (std::size_t img = 0; img < n; ++img) {
          const float* src =
              codes.data().data() + img * plan.in_channels * h * w;
          im2col(src, g, cols.data(), ctx);
          float* dst =
              out.data().data() + img * plan.out_channels * spatial;
          // Integer MACs are exact, so any partition over the disjoint
          // output-channel rows is trivially deterministic.
          parallel_for(ctx, plan.out_channels, 4,
                       [&](std::size_t oc0, std::size_t oc1) {
            for (std::size_t oc = oc0; oc < oc1; ++oc) {
              const std::int32_t* wrow = plan.weight_codes.data() + oc * patch;
              for (std::size_t s = 0; s < spatial; ++s) {
                std::int64_t acc = 0;  // the integer MAC datapath
                for (std::size_t p = 0; p < patch; ++p) {
                  acc += static_cast<std::int64_t>(wrow[p]) *
                         static_cast<std::int64_t>(
                             std::lround(cols.data()[p * spatial + s]));
                }
                dst[oc * spatial + s] =
                    static_cast<float>(acc) * plan.channel_scale[oc] +
                    plan.bias[oc];
              }
            }
          });
        }
        ws.recycle(std::move(act));
        act = std::move(out);
        apply_act(act, plan);
        if (plan.has_act && plan.act_bits < 16) scale = act_scale(plan);
        break;
      }
      case IntLayerPlan::Kind::kLinear: {
        CCQ_CHECK(act.rank() == 2 && act.dim(1) == plan.in_features,
                  "linear input mismatch in integer engine");
        const std::size_t n = act.dim(0);
        to_codes(act, scale, codes);
        Tensor out = ws.tensor_uninit({n, plan.out_features});
        for (std::size_t img = 0; img < n; ++img) {
          const float* arow = codes.data().data() + img * plan.in_features;
          for (std::size_t oc = 0; oc < plan.out_features; ++oc) {
            const std::int32_t* wrow =
                plan.weight_codes.data() + oc * plan.in_features;
            std::int64_t acc = 0;
            for (std::size_t p = 0; p < plan.in_features; ++p) {
              acc += static_cast<std::int64_t>(wrow[p]) *
                     static_cast<std::int64_t>(std::lround(arow[p]));
            }
            out(img, oc) =
                static_cast<float>(acc) * plan.channel_scale[oc] +
                plan.bias[oc];
          }
        }
        ws.recycle(std::move(act));
        act = std::move(out);
        apply_act(act, plan);
        if (plan.has_act && plan.act_bits < 16) scale = act_scale(plan);
        break;
      }
      case IntLayerPlan::Kind::kMaxPool: {
        nn::MaxPool2d pool(plan.pool_kernel, plan.pool_stride);
        pool.set_training(false);  // inference: skip the argmax cache
        Tensor out = pool.forward(act, ws);
        ws.recycle(std::move(act));
        act = std::move(out);
        break;
      }
      case IntLayerPlan::Kind::kAvgPool: {
        nn::AvgPool2d pool(plan.pool_kernel, plan.pool_stride);
        pool.set_training(false);
        Tensor out = pool.forward(act, ws);
        ws.recycle(std::move(act));
        act = std::move(out);
        // Averaging leaves the grid; requantize onto the current scale
        // (what a fixed-point datapath does after a mean).
        auto p = act.data();
        for (auto& v : p) v = std::round(v / scale) * scale;
        break;
      }
      case IntLayerPlan::Kind::kGlobalAvgPool: {
        nn::GlobalAvgPool gap;
        gap.set_training(false);
        Tensor out = gap.forward(act, ws);
        ws.recycle(std::move(act));
        act = std::move(out);
        auto p = act.data();
        for (auto& v : p) v = std::round(v / scale) * scale;
        break;
      }
      case IntLayerPlan::Kind::kFlatten: {
        act.resize({act.dim(0), act.numel() / act.dim(0)});
        break;
      }
    }
  }
  ws.recycle(std::move(codes));
  return act;
}

std::size_t IntegerNetwork::macs_per_sample(std::size_t h,
                                            std::size_t w) const {
  std::size_t total = 0;
  std::size_t cur_h = h, cur_w = w;
  for (const auto& plan : plans_) {
    switch (plan.kind) {
      case IntLayerPlan::Kind::kConv: {
        const ConvGeometry g{.in_channels = plan.in_channels,
                             .in_h = cur_h,
                             .in_w = cur_w,
                             .kernel = plan.kernel,
                             .stride = plan.stride,
                             .pad = plan.pad};
        total += plan.out_channels * g.patch_size() * g.out_spatial();
        cur_h = g.out_h();
        cur_w = g.out_w();
        break;
      }
      case IntLayerPlan::Kind::kLinear:
        total += plan.in_features * plan.out_features;
        break;
      case IntLayerPlan::Kind::kMaxPool:
      case IntLayerPlan::Kind::kAvgPool:
        cur_h = (cur_h - plan.pool_kernel) / plan.pool_stride + 1;
        cur_w = (cur_w - plan.pool_kernel) / plan.pool_stride + 1;
        break;
      case IntLayerPlan::Kind::kGlobalAvgPool:
      case IntLayerPlan::Kind::kFlatten:
        cur_h = cur_w = 1;
        break;
    }
  }
  return total;
}

}  // namespace ccq::hw
