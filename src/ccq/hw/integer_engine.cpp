#include "ccq/hw/integer_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <set>
#include <type_traits>

#include "ccq/common/telemetry.hpp"
#include "ccq/hw/fixed_point.hpp"
#include "ccq/nn/conv.hpp"
#include "ccq/nn/linear.hpp"
#include "ccq/nn/norm.hpp"
#include "ccq/nn/pool.hpp"
#include "ccq/quant/act_quant.hpp"
#include "ccq/quant/weight_hooks.hpp"

namespace ccq::hw {

namespace {

constexpr float kInputScale = 1.0f / 255.0f;  // 8-bit input quantization

/// Infer the uniform grid spacing of a quantized tensor from its distinct
/// values (the legacy path — hooks now report their step directly via
/// QuantizerHook::grid_step).  Returns 0 when the tensor is constant
/// (degenerate layer).
float infer_step(const Tensor& q) {
  std::set<float> values(q.data().begin(), q.data().end());
  float step = 0.0f;
  float prev = 0.0f;
  bool first = true;
  for (float v : values) {
    if (!first) {
      const float gap = v - prev;
      if (gap > 1e-12f && (step == 0.0f || gap < step)) step = gap;
    }
    prev = v;
    first = false;
  }
  return step;
}

/// Checked fallback around `infer_step` for hooks that do not report
/// grid_step(): after inferring the step from the tensor's distinct
/// values, verify every value actually sits on the half-step grid.  A
/// mis-inferred step (non-uniform grids such as per-channel clips) used
/// to corrupt the compiled codes silently; now it fails loudly, naming
/// the layer and the quantization policy.
float infer_step_checked(const Tensor& q, const std::string& layer,
                         const nn::QuantizerHook* hook) {
  const float step = infer_step(q);
  if (step == 0.0f) return 0.0f;  // constant tensor, caller substitutes 1
  const float half = step / 2.0f;
  for (float v : q.data()) {
    const float c = v / half;
    if (std::fabs(c - std::round(c)) > 1e-3f) {
      const auto* wh = dynamic_cast<const quant::WeightQuantHook*>(hook);
      const std::string policy = wh != nullptr ? wh->policy_name() : "unknown";
      throw Error("integer engine: layer '" + layer + "' (policy " + policy +
                  "): grid-step inference failed — weight value " +
                  std::to_string(v) + " is not on the inferred step " +
                  std::to_string(step) +
                  "; the quantizer hook must report grid_step() for "
                  "non-uniform grids");
    }
  }
  return step;
}

struct FoldedBn {
  std::vector<float> scale;  ///< γ/σ per channel
  std::vector<float> shift;  ///< β − γμ/σ per channel
};

FoldedBn fold_bn(const nn::BatchNorm2d* bn, std::size_t channels) {
  FoldedBn folded;
  folded.scale.assign(channels, 1.0f);
  folded.shift.assign(channels, 0.0f);
  if (bn == nullptr) return folded;
  // Access running stats / affine params through the public interface.
  const Tensor& mean = bn->running_mean();
  const Tensor& var = bn->running_var();
  auto* mutable_bn = const_cast<nn::BatchNorm2d*>(bn);
  const Tensor& gamma = mutable_bn->gamma().value;
  const Tensor& beta = mutable_bn->beta().value;
  for (std::size_t c = 0; c < channels; ++c) {
    const float inv_std = 1.0f / std::sqrt(var.at(c) + 1e-5f);
    folded.scale[c] = gamma.at(c) * inv_std;
    folded.shift[c] = beta.at(c) - gamma.at(c) * mean.at(c) * inv_std;
  }
  return folded;
}

/// Activation metadata from a quantized activation module.
void read_act(nn::Module* module, IntLayerPlan& plan) {
  if (auto* pact = dynamic_cast<quant::PactActivation*>(module)) {
    plan.has_act = true;
    plan.act_bits = pact->bits();
    plan.act_clip = std::max(pact->alpha(), 1e-3f);
  } else if (auto* clip = dynamic_cast<quant::ClipActQuant*>(module)) {
    plan.has_act = true;
    plan.act_bits = clip->bits();
    plan.act_clip = clip->clip();
  } else {
    throw Error("unsupported activation module in integer engine: " +
                module->type_name());
  }
}

float act_scale(const IntLayerPlan& plan) {
  CCQ_CHECK(plan.has_act, "layer has no activation grid");
  CCQ_CHECK(plan.act_bits < 16, "activation not quantized");
  return plan.act_clip /
         static_cast<float>((1u << plan.act_bits) - 1u);
}

}  // namespace

std::vector<std::int32_t> encode_doubled(const Tensor& q, float step,
                                         int bits, const std::string& layer) {
  CCQ_CHECK(step > 0.0f, "encode_doubled needs a positive grid step");
  std::vector<std::int32_t> codes;
  codes.reserve(q.numel());
  const float half = step / 2.0f;
  // Doubled codes of any b-bit grid (zero-centred or half-offset) lie in
  // ±2^b; anything beyond means the inferred step does not describe the
  // tensor, and lround would have narrowed it silently.
  const long envelope = 1L << bits;
  for (float v : q.data()) {
    const long c = std::lround(v / half);
    if (c > envelope || c < -envelope) {
      throw Error("integer engine: layer '" + layer + "': weight value " +
                  std::to_string(v) + " encodes to doubled code " +
                  std::to_string(c) + ", outside the " +
                  std::to_string(bits) + "-bit envelope of +/-" +
                  std::to_string(envelope));
    }
    codes.push_back(static_cast<std::int32_t>(c));
  }
  return codes;
}

IntegerNetwork IntegerNetwork::compile(models::QuantModel& model) {
  IntegerNetwork net;
  std::vector<IntLayerPlan> plans;
  nn::Sequential& seq = model.net();
  float input_scale = kInputScale;  // scale of the incoming activations

  auto compile_weights = [&](nn::Parameter& weight,
                             nn::QuantizerHook* hook,
                             std::size_t out_channels,
                             const FoldedBn& bn,
                             const Tensor* conv_bias,
                             IntLayerPlan& plan) {
    CCQ_CHECK(hook != nullptr, "layer has no weight quantizer");
    CCQ_CHECK(hook->bits() < 16,
              "integer engine requires quantized weights (<16 bits)");
    const Tensor q = hook->quantize(weight.value);
    // Prefer the hook's own grid metadata — the exact float the quantizer
    // snapped to, with no O(n log n) distinct-value walk.  Hooks that
    // cannot report a step (non-uniform grids) fall through to the
    // checked inference fallback.
    float step = hook->grid_step();
    if (step <= 0.0f) step = infer_step_checked(q, plan.name, hook);
    if (step == 0.0f) step = 1.0f;  // constant (all-zero) weights
    plan.weight_codes = encode_doubled(q, step, hook->bits(), plan.name);
    plan.weight_bits = hook->bits();
    plan.channel_scale.assign(out_channels, 0.0f);
    plan.bias.assign(out_channels, 0.0f);
    for (std::size_t c = 0; c < out_channels; ++c) {
      plan.channel_scale[c] =
          (step / 2.0f) * input_scale * bn.scale[c];
      const float base_bias =
          conv_bias != nullptr ? conv_bias->at(c) : 0.0f;
      plan.bias[c] = base_bias * bn.scale[c] + bn.shift[c];
    }
  };

  // Conv/linear plans are named after their registry unit (compile walks
  // the sequence in registration order), the rest after their type.
  std::size_t unit_idx = 0;
  auto unit_name = [&](const std::string& type, std::size_t i) {
    if (unit_idx < model.registry().size()) {
      return model.registry().unit(unit_idx++).name;
    }
    return type + "@" + std::to_string(i);
  };

  for (std::size_t i = 0; i < seq.size(); ++i) {
    nn::Module& module = seq.child(i);
    const std::string type = module.type_name();
    if (type == "Conv2d") {
      auto& conv = dynamic_cast<nn::Conv2d&>(module);
      IntLayerPlan plan;
      plan.kind = IntLayerPlan::Kind::kConv;
      plan.name = unit_name(type, i);
      plan.in_channels = conv.in_channels();
      plan.out_channels = conv.out_channels();
      plan.kernel = conv.kernel();
      plan.stride = conv.stride();
      plan.pad = conv.pad();
      // Optional BN directly after.
      const nn::BatchNorm2d* bn = nullptr;
      if (i + 1 < seq.size() &&
          seq.child(i + 1).type_name() == "BatchNorm2d") {
        bn = &dynamic_cast<nn::BatchNorm2d&>(seq.child(i + 1));
        ++i;
      }
      // Optional quantized activation after that.
      if (i + 1 < seq.size() &&
          (seq.child(i + 1).type_name() == "PactActivation" ||
           seq.child(i + 1).type_name() == "ClipActQuant")) {
        read_act(&seq.child(i + 1), plan);
        ++i;
      }
      const FoldedBn folded = fold_bn(bn, plan.out_channels);
      compile_weights(conv.weight(), conv.weight_quantizer(),
                      plan.out_channels, folded,
                      conv.has_bias() ? &conv.bias().value : nullptr, plan);
      if (plan.has_act) input_scale = act_scale(plan);
      plans.push_back(std::move(plan));
    } else if (type == "Linear") {
      auto& fc = dynamic_cast<nn::Linear&>(module);
      IntLayerPlan plan;
      plan.kind = IntLayerPlan::Kind::kLinear;
      plan.name = unit_name(type, i);
      plan.in_features = fc.in_features();
      plan.out_features = fc.out_features();
      if (i + 1 < seq.size() &&
          (seq.child(i + 1).type_name() == "PactActivation" ||
           seq.child(i + 1).type_name() == "ClipActQuant")) {
        read_act(&seq.child(i + 1), plan);
        ++i;
      }
      const FoldedBn identity = fold_bn(nullptr, plan.out_features);
      compile_weights(fc.weight(), fc.weight_quantizer(), plan.out_features,
                      identity, fc.has_bias() ? &fc.bias().value : nullptr,
                      plan);
      if (plan.has_act) input_scale = act_scale(plan);
      plans.push_back(std::move(plan));
    } else if (type == "MaxPool2d") {
      auto& pool = dynamic_cast<nn::MaxPool2d&>(module);
      IntLayerPlan plan;
      plan.kind = IntLayerPlan::Kind::kMaxPool;
      plan.name = type + "@" + std::to_string(i);
      plan.pool_kernel = pool.kernel();
      plan.pool_stride = pool.stride();
      plans.push_back(plan);
    } else if (type == "AvgPool2d") {
      auto& pool = dynamic_cast<nn::AvgPool2d&>(module);
      IntLayerPlan plan;
      plan.kind = IntLayerPlan::Kind::kAvgPool;
      plan.name = type + "@" + std::to_string(i);
      plan.pool_kernel = pool.kernel();
      plan.pool_stride = pool.stride();
      plans.push_back(plan);
    } else if (type == "GlobalAvgPool") {
      IntLayerPlan plan;
      plan.kind = IntLayerPlan::Kind::kGlobalAvgPool;
      plan.name = type + "@" + std::to_string(i);
      plans.push_back(plan);
    } else if (type == "Flatten") {
      IntLayerPlan plan;
      plan.kind = IntLayerPlan::Kind::kFlatten;
      plan.name = type + "@" + std::to_string(i);
      plans.push_back(plan);
    } else if (type == "Residual") {
      throw Error(
          "integer engine supports sequential topologies only; residual "
          "graphs run through the float simulation path");
    } else {
      throw Error("integer engine: unsupported module " + type);
    }
  }
  CCQ_CHECK(!plans.empty(), "empty model");
  net.rungs_.push_back(std::move(plans));
  net.rung_info_.push_back(RungInfo{});
  net.finalize_plans();
  return net;
}

IntegerNetwork IntegerNetwork::from_plans(std::vector<IntLayerPlan> plans) {
  CCQ_CHECK(!plans.empty(), "cannot build an integer network from 0 plans");
  IntegerNetwork net;
  net.rungs_.push_back(std::move(plans));
  net.rung_info_.push_back(RungInfo{});
  net.finalize_plans();
  return net;
}

IntegerNetwork IntegerNetwork::from_rungs(
    std::vector<std::vector<IntLayerPlan>> rungs, std::vector<RungInfo> info) {
  CCQ_CHECK(!rungs.empty(), "cannot build an integer network from 0 rungs");
  CCQ_CHECK(rungs.size() == info.size(),
            "rung info covers " + std::to_string(info.size()) +
                " rungs, plan sets cover " + std::to_string(rungs.size()));
  const std::vector<IntLayerPlan>& top = rungs.front();
  CCQ_CHECK(!top.empty(), "cannot build an integer network from 0 plans");
  for (std::size_t r = 1; r < rungs.size(); ++r) {
    CCQ_CHECK(rungs[r].size() == top.size(),
              "rung " + std::to_string(r) + " holds " +
                  std::to_string(rungs[r].size()) + " layers, rung 0 holds " +
                  std::to_string(top.size()));
    for (std::size_t i = 0; i < top.size(); ++i) {
      const IntLayerPlan& a = top[i];
      const IntLayerPlan& b = rungs[r][i];
      // Rungs are precision variants of one network: the layer sequence
      // and geometry are invariant, so check_input / shape pinning done
      // against rung 0 hold for every rung.
      CCQ_CHECK(a.name == b.name && a.kind == b.kind,
                "rung " + std::to_string(r) + " layer " + std::to_string(i) +
                    " ('" + b.name + "') does not match rung 0 ('" + a.name +
                    "')");
      CCQ_CHECK(a.in_channels == b.in_channels &&
                    a.out_channels == b.out_channels && a.kernel == b.kernel &&
                    a.stride == b.stride && a.pad == b.pad &&
                    a.in_features == b.in_features &&
                    a.out_features == b.out_features &&
                    a.pool_kernel == b.pool_kernel &&
                    a.pool_stride == b.pool_stride,
                "rung " + std::to_string(r) + " layer '" + b.name +
                    "' changes geometry across rungs");
    }
  }
  IntegerNetwork net;
  net.rungs_ = std::move(rungs);
  net.rung_info_ = std::move(info);
  net.finalize_plans();
  return net;
}

namespace {

/// One rung's finalize pass.  Static bound on |incoming activation
/// codes|, threaded layer to layer: the input snap is 8-bit (codes in
/// [0, 255]); a b-bit activation grid emits codes in [0, 2^b − 1];
/// pooling and flatten keep values on (or, for averages, requantized
/// back onto) the current grid, so they preserve the bound.  0 marks an
/// unquantized producer — the consumer then accumulates in int64
/// unconditionally.
void finalize_rung(std::vector<IntLayerPlan>& plans, IgemmKernel requested) {
  std::int64_t in_bound = 255;
  for (auto& plan : plans) {
    if (plan.kind == IntLayerPlan::Kind::kConv ||
        plan.kind == IntLayerPlan::Kind::kLinear) {
      const bool conv = plan.kind == IntLayerPlan::Kind::kConv;
      const std::size_t rows =
          conv ? plan.out_channels : plan.out_features;
      const std::size_t depth =
          conv ? plan.in_channels * plan.kernel * plan.kernel
               : plan.in_features;
      plan.max_abs_code = igemm_max_abs(plan.weight_codes);
      plan.in_code_bound = in_bound;
      plan.accum =
          in_bound > 0 && igemm_fits_int32(plan.max_abs_code, in_bound, depth)
              ? IgemmAccum::kInt32
              : IgemmAccum::kInt64;
      plan.igemm_kernel = igemm_select_kernel(requested, plan.max_abs_code,
                                              plan.in_code_bound, plan.accum);
      // Conv consumes the panel on the left (kWX, per-row epilogue);
      // linear on the right (kXW), so outputs land row-major (batch×out).
      plan.panel = igemm_pack(plan.weight_codes, rows, depth,
                              conv ? IgemmForm::kWX : IgemmForm::kXW,
                              plan.igemm_kernel);
      // Fused fixed-point requantization: fold channel_scale/bias and
      // the activation grid into int32-multiplier requant parameters so
      // the igemm epilogue writes the next layer's codes directly.
      // Fusion needs integer codes arriving (in_bound > 0), a quantized
      // output grid, and a static accumulator bound inside make_requant's
      // 2^61 budget — anything else keeps the float epilogue.
      //
      // Artifact-loaded plans arrive with the per-channel `requant`
      // parameters populated and keep them verbatim (serving replays the
      // exporter's exact fixed-point path); only `out_qmax` / `acc_bound`
      // — exact integer functions of act_bits / weight codes / geometry,
      // not serialized — are rederived here.  Freshly compiled and
      // synthetic plans compute everything.
      const bool fusable =
          plan.has_act && plan.act_bits < 16 && in_bound > 0;
      std::int64_t bound = -1;  // -1 = overflows the budget, unfusable
      if (fusable) {
        constexpr std::int64_t kBudget = std::int64_t{1} << 61;
        const auto w = static_cast<std::int64_t>(plan.max_abs_code);
        if (w == 0 || depth == 0) {
          bound = 0;
        } else if (in_bound <= kBudget / w &&
                   w * in_bound <= kBudget / static_cast<std::int64_t>(depth)) {
          bound = w * in_bound * static_cast<std::int64_t>(depth);
        }
      }
      if (!plan.requant.empty()) {
        CCQ_CHECK(fusable && bound >= 0,
                  "integer engine: layer '" + plan.name +
                      "' carries requant parameters but is not fusable "
                      "(inconsistent artifact)");
        plan.requant_fused = true;
        plan.out_qmax = static_cast<std::int32_t>((1 << plan.act_bits) - 1);
        plan.acc_bound = bound;
      } else if (bound >= 0) {
        const float out_scale = act_scale(plan);
        std::vector<Requant> rq(rows);
        bool ok = true;
        for (std::size_t c = 0; c < rows && ok; ++c) {
          const double ratio =
              static_cast<double>(plan.channel_scale[c]) / out_scale;
          const double bias_ratio =
              static_cast<double>(plan.bias[c]) / out_scale;
          ok = make_requant(ratio, bias_ratio, bound, rq[c]);
        }
        if (ok) {
          plan.requant = std::move(rq);
          plan.requant_fused = true;
          plan.out_qmax =
              static_cast<std::int32_t>((1 << plan.act_bits) - 1);
          plan.acc_bound = bound;
        }
      }
      if (plan.requant.empty()) plan.requant_fused = false;
      in_bound = plan.has_act && plan.act_bits < 16
                     ? (std::int64_t{1} << plan.act_bits) - 1
                     : 0;
    }
  }
}

}  // namespace

void IntegerNetwork::finalize_plans() {
  // $CCQ_IGEMM_KERNEL is read once for the whole network (kAuto when
  // unset); each layer then resolves it against its own static bounds,
  // so a 2-bit conv can run vec-packed while the int64-accumulating
  // classifier head falls back to scalar in the same net.  Multi-point
  // networks finalize every rung independently — each serving point
  // gets its own kernel selection, accumulator proof and requant
  // rederivation against its own bit widths.
  const IgemmKernel requested = igemm_requested_kernel();
  for (auto& plans : rungs_) finalize_rung(plans, requested);
}

const IntLayerPlan& IntegerNetwork::plan(std::size_t i) const {
  return plan(0, i);
}

const IntLayerPlan& IntegerNetwork::plan(std::size_t rung,
                                         std::size_t i) const {
  CCQ_CHECK(rung < rungs_.size(), "rung index out of range");
  CCQ_CHECK(i < rungs_[rung].size(), "plan index out of range");
  return rungs_[rung][i];
}

const RungInfo& IntegerNetwork::rung_info(std::size_t rung) const {
  CCQ_CHECK(rung < rung_info_.size(), "rung index out of range");
  return rung_info_[rung];
}

namespace {

/// Grid snap of a float activation straight into an int32 code buffer
/// (the float-fallback path; the code domain never leaves integers).
void to_int_codes(const Tensor& x, float scale, std::int32_t* codes) {
  auto xp = x.data();
  for (std::size_t i = 0; i < xp.size(); ++i) {
    codes[i] = static_cast<std::int32_t>(std::lround(xp[i] / scale));
  }
}

/// Apply the layer's activation quantizer to a float tensor.
void apply_act(Tensor& x, const IntLayerPlan& plan) {
  if (!plan.has_act) return;
  auto xp = x.data();
  if (plan.act_bits >= 16) {
    for (auto& v : xp) v = std::clamp(v, 0.0f, plan.act_clip);
    return;
  }
  const float n = static_cast<float>((1u << plan.act_bits) - 1u);
  const float s = plan.act_clip / n;
  for (auto& v : xp) {
    v = std::clamp(std::round(std::clamp(v, 0.0f, plan.act_clip) / s),
                   0.0f, n) *
        s;
  }
}

// ---- code-domain helpers ---------------------------------------------------
//
// While every layer keeps a quantized activation grid, the engine carries
// the activation *codes* (u8 for grids up to 8 bits, i16 above; exact
// int32 in the reference path) instead of a float tensor.  These helpers
// are shared by forward and forward_reference so the two datapaths stay
// bit-identical by construction.

/// Valid-window pool output extent (matches nn::MaxPool2d/AvgPool2d).
inline std::size_t pool_out(std::size_t in, std::size_t k, std::size_t s) {
  return (in - k) / s + 1;
}

/// Round-half-up integer mean of non-negative codes — the code-domain
/// equivalent of float-averaging grid values and re-snapping (means of
/// non-negative values round half away from zero = half up).
inline std::int64_t mean_code(std::int64_t sum, std::int64_t cnt) {
  return (2 * sum + cnt) / (2 * cnt);
}

/// Snap a float tensor whose values lie on (or near) the grid `scale`
/// onto integer codes in [0, qmax].  Used for the 8-bit input snap and
/// for re-entering the code domain after an unfused layer's apply_act
/// (where the snap is exact: every value is already k·scale).
template <typename T>
void snap_codes(const Tensor& t, float scale, std::int64_t qmax, T* dst) {
  auto p = t.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    dst[i] = static_cast<T>(
        std::clamp<long>(std::lround(p[i] / scale), 0L,
                         static_cast<long>(qmax)));
  }
}

/// Decode codes back to a float tensor: value = code · scale.
template <typename T>
Tensor decode_codes(const T* src, const Shape& shape, float scale,
                    Workspace& ws) {
  Tensor out = ws.tensor_uninit(shape);
  auto p = out.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = static_cast<float>(src[i]) * scale;
  }
  return out;
}

/// Integer max pool over code planes (exact: max commutes with the
/// positive decode scale).
template <typename T>
void pool_max_codes(const T* src, T* dst, std::size_t n, std::size_t c,
                    std::size_t h, std::size_t w, std::size_t k,
                    std::size_t s) {
  const std::size_t oh = pool_out(h, k, s), ow = pool_out(w, k, s);
  for (std::size_t i = 0; i < n * c; ++i) {
    const T* plane = src + i * h * w;
    T* out = dst + i * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        T best = plane[oy * s * w + ox * s];
        for (std::size_t ky = 0; ky < k; ++ky) {
          for (std::size_t kx = 0; kx < k; ++kx) {
            best = std::max(best, plane[(oy * s + ky) * w + (ox * s + kx)]);
          }
        }
        out[oy * ow + ox] = best;
      }
    }
  }
}

/// Integer average pool over code planes; each window mean is
/// requantized back onto the grid with mean_code.
template <typename T>
void pool_avg_codes(const T* src, T* dst, std::size_t n, std::size_t c,
                    std::size_t h, std::size_t w, std::size_t k,
                    std::size_t s) {
  const std::size_t oh = pool_out(h, k, s), ow = pool_out(w, k, s);
  const auto cnt = static_cast<std::int64_t>(k * k);
  for (std::size_t i = 0; i < n * c; ++i) {
    const T* plane = src + i * h * w;
    T* out = dst + i * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        std::int64_t sum = 0;
        for (std::size_t ky = 0; ky < k; ++ky) {
          for (std::size_t kx = 0; kx < k; ++kx) {
            sum += plane[(oy * s + ky) * w + (ox * s + kx)];
          }
        }
        out[oy * ow + ox] = static_cast<T>(mean_code(sum, cnt));
      }
    }
  }
}

/// Integer global average pool: (n, c, h, w) codes → (n, c) codes.
template <typename T>
void gap_codes(const T* src, T* dst, std::size_t n, std::size_t c,
               std::size_t hw) {
  for (std::size_t i = 0; i < n * c; ++i) {
    std::int64_t sum = 0;
    for (std::size_t j = 0; j < hw; ++j) sum += src[i * hw + j];
    dst[i] = static_cast<T>(mean_code(sum, static_cast<std::int64_t>(hw)));
  }
}

/// Typed scratch lease for activation codes (u8 / i16 / exact i32).
template <typename T>
auto code_lease(Workspace& ws, std::size_t n) {
  if constexpr (std::is_same_v<T, std::uint8_t>) {
    return ws.bytes(n);
  } else if constexpr (std::is_same_v<T, std::int16_t>) {
    return ws.shorts(n);
  } else {
    return ws.ints(n);
  }
}

/// Point an IgemmOp at a typed activation buffer (x / x8 / x16 by type).
template <typename T>
void set_igemm_x(IgemmOp& op, const T* x) {
  if constexpr (std::is_same_v<T, std::uint8_t>) {
    op.x8 = x;
  } else if constexpr (std::is_same_v<T, std::int16_t>) {
    op.x16 = x;
  } else {
    op.x = x;
  }
}

/// Owner of the flowing activation codes in forward(): exactly one of
/// the u8 / i16 leases is engaged while the network stays in the code
/// domain (leases have deleted move-assignment, hence the optionals).
class CodeStore {
 public:
  bool engaged() const { return b8_.has_value() || i16_.has_value(); }
  bool is_u8() const { return b8_.has_value(); }
  void adopt(Workspace::ByteLease lease) {
    reset();
    b8_.emplace(std::move(lease));
  }
  void adopt(Workspace::ShortLease lease) {
    reset();
    i16_.emplace(std::move(lease));
  }
  void reset() {
    b8_.reset();
    i16_.reset();
  }
  const std::uint8_t* u8() const { return b8_->data(); }
  const std::int16_t* i16() const { return i16_->data(); }
  /// Call `f` with the engaged typed code pointer.
  template <typename F>
  void visit(F&& f) const {
    if (b8_.has_value()) {
      f(static_cast<const std::uint8_t*>(b8_->data()));
    } else {
      f(static_cast<const std::int16_t*>(i16_->data()));
    }
  }

 private:
  std::optional<Workspace::ByteLease> b8_;
  std::optional<Workspace::ShortLease> i16_;
};

/// Issue one igemm per image of a conv layer over typed activation
/// codes.  `op` arrives fully configured except the per-image x / output
/// pointers; exactly one of out8/out16/outf is non-null, matching the
/// op's epilogue configuration (requant vs float).
template <typename TIn>
void conv_images(IgemmOp op, const TIn* src, std::size_t n,
                 const ConvGeometry& g, std::uint8_t* out8,
                 std::int16_t* out16, float* outf, Workspace& ws,
                 const ExecContext& ctx) {
  const std::size_t spatial = g.out_spatial();
  const std::size_t patch = g.patch_size();
  const std::size_t in_stride = g.in_channels * g.in_h * g.in_w;
  const std::size_t out_stride = op.m * spatial;
  auto cols = code_lease<TIn>(ws, patch * spatial);
  for (std::size_t img = 0; img < n; ++img) {
    im2col(src + img * in_stride, g, cols.data(), ctx);
    set_igemm_x(op, static_cast<const TIn*>(cols.data()));
    if (out8 != nullptr) {
      op.out8 = out8 + img * out_stride;
    } else if (out16 != nullptr) {
      op.out16 = out16 + img * out_stride;
    } else {
      op.c = outf + img * out_stride;
    }
    igemm_run(op, ctx);
  }
}

}  // namespace

Tensor IntegerNetwork::forward(const Tensor& x) const {
  return forward(x, Workspace::scratch());
}

Tensor IntegerNetwork::forward(const Tensor& x, Workspace& ws) const {
  return forward(x, ws, ExecContext::global());
}

Tensor IntegerNetwork::forward(const Tensor& x, Workspace& ws,
                               const ExecContext& ctx) const {
  return forward(x, ws, ctx, 0);
}

Tensor IntegerNetwork::forward(const Tensor& x, Workspace& ws,
                               const ExecContext& ctx,
                               std::size_t rung) const {
  CCQ_CHECK(rung < rungs_.size(), "rung index out of range");
  CCQ_CHECK(x.rank() == 4, "integer engine expects NCHW input");
  // Representation state: while every layer keeps a quantized activation
  // grid the batch flows as integer codes (`codes` engaged, described by
  // `shape`/`scale`); after the first unquantized producer (e.g. the
  // classifier head) it falls back to the float tensor `act`.  The code
  // rep at a conv/linear's input coincides exactly with the plan's
  // in_code_bound > 0, which is what finalize based fusion on.
  CodeStore codes;
  Tensor act;
  Shape shape = x.shape();
  float scale = kInputScale;
  {
    // Snap the input onto its 8-bit grid (standard input quantization).
    telemetry::ScopedTimer timer(telemetry::Timer::kHwRequant);
    Workspace::ByteLease input = ws.bytes(x.numel());
    snap_codes(x, kInputScale, 255, input.data());
    codes.adopt(std::move(input));
  }

  // After an unfused conv/linear: apply the float activation, then either
  // re-enter the code domain (quantized activation — the snap is exact
  // because apply_act already placed every value on the grid, and the
  // next plan's in_code_bound was threaded assuming codes) or stay float.
  auto unfused_output = [&](Tensor out, const IntLayerPlan& plan) {
    apply_act(out, plan);
    if (plan.has_act && plan.act_bits < 16) {
      scale = act_scale(plan);
      const std::int64_t qmax = (std::int64_t{1} << plan.act_bits) - 1;
      telemetry::ScopedTimer timer(telemetry::Timer::kHwRequant);
      if (qmax <= 255) {
        Workspace::ByteLease lease = ws.bytes(out.numel());
        snap_codes(out, scale, qmax, lease.data());
        codes.adopt(std::move(lease));
      } else {
        Workspace::ShortLease lease = ws.shorts(out.numel());
        snap_codes(out, scale, qmax, lease.data());
        codes.adopt(std::move(lease));
      }
      ws.recycle(std::move(out));
    } else {
      codes.reset();
      act = std::move(out);
    }
  };

  for (const auto& plan : rungs_[rung]) {
    switch (plan.kind) {
      case IntLayerPlan::Kind::kConv: {
        const std::size_t n = shape[0], h = shape[2], w = shape[3];
        const ConvGeometry g{.in_channels = plan.in_channels,
                             .in_h = h,
                             .in_w = w,
                             .kernel = plan.kernel,
                             .stride = plan.stride,
                             .pad = plan.pad};
        const std::size_t oh = g.out_h(), ow = g.out_w();
        const std::size_t spatial = g.out_spatial();
        IgemmOp op;
        op.form = IgemmForm::kWX;
        op.m = plan.out_channels;
        op.n = spatial;
        op.k = g.patch_size();
        op.panel = &plan.panel;
        op.accum = plan.accum;
        op.x_bound = plan.in_code_bound;
        op.ws = &ws;
        const Shape out_shape = {n, plan.out_channels, oh, ow};
        if (codes.engaged() && plan.requant_fused) {
          // Fused path: the igemm epilogue writes the next layer's
          // codes; no float tensor is materialised at the boundary.
          op.requant = plan.requant.data();
          op.requant_qmax = plan.out_qmax;
          const std::size_t elems = n * plan.out_channels * spatial;
          if (plan.out_qmax <= 255) {
            Workspace::ByteLease out = ws.bytes(elems);
            codes.visit([&](const auto* src) {
              conv_images(op, src, n, g, out.data(), nullptr, nullptr, ws,
                          ctx);
            });
            codes.adopt(std::move(out));
          } else {
            Workspace::ShortLease out = ws.shorts(elems);
            codes.visit([&](const auto* src) {
              conv_images(op, src, n, g, nullptr, out.data(), nullptr, ws,
                          ctx);
            });
            codes.adopt(std::move(out));
          }
          scale = act_scale(plan);
        } else {
          op.epilogue = {plan.channel_scale.data(), plan.bias.data()};
          Tensor out = ws.tensor_uninit(out_shape);
          if (codes.engaged()) {
            codes.visit([&](const auto* src) {
              conv_images(op, src, n, g, nullptr, nullptr,
                          out.data().data(), ws, ctx);
            });
            codes.reset();
          } else {
            Workspace::IntLease xcodes = ws.ints(act.numel());
            to_int_codes(act, scale, xcodes.data());
            conv_images(op,
                        static_cast<const std::int32_t*>(xcodes.data()), n,
                        g, nullptr, nullptr, out.data().data(), ws, ctx);
            ws.recycle(std::move(act));
          }
          unfused_output(std::move(out), plan);
        }
        shape = out_shape;
        break;
      }
      case IntLayerPlan::Kind::kLinear: {
        CCQ_CHECK(shape.size() == 2 && shape[1] == plan.in_features,
                  "linear input mismatch in integer engine");
        const std::size_t n = shape[0];
        IgemmOp op;
        op.form = IgemmForm::kXW;
        op.m = n;
        op.n = plan.out_features;
        op.k = plan.in_features;
        op.panel = &plan.panel;
        op.accum = plan.accum;
        op.x_bound = plan.in_code_bound;
        op.ws = &ws;
        const Shape out_shape = {n, plan.out_features};
        if (codes.engaged() && plan.requant_fused) {
          op.requant = plan.requant.data();
          op.requant_qmax = plan.out_qmax;
          const std::size_t elems = n * plan.out_features;
          if (plan.out_qmax <= 255) {
            Workspace::ByteLease out = ws.bytes(elems);
            op.out8 = out.data();
            codes.visit([&](const auto* src) {
              set_igemm_x(op, src);
              igemm_run(op, ctx);
            });
            codes.adopt(std::move(out));
          } else {
            Workspace::ShortLease out = ws.shorts(elems);
            op.out16 = out.data();
            codes.visit([&](const auto* src) {
              set_igemm_x(op, src);
              igemm_run(op, ctx);
            });
            codes.adopt(std::move(out));
          }
          scale = act_scale(plan);
        } else {
          op.epilogue = {plan.channel_scale.data(), plan.bias.data()};
          Tensor out = ws.tensor_uninit(out_shape);
          op.c = out.data().data();
          if (codes.engaged()) {
            codes.visit([&](const auto* src) {
              set_igemm_x(op, src);
              igemm_run(op, ctx);
            });
            codes.reset();
          } else {
            Workspace::IntLease xcodes = ws.ints(act.numel());
            to_int_codes(act, scale, xcodes.data());
            op.x = xcodes.data();
            igemm_run(op, ctx);
            ws.recycle(std::move(act));
          }
          unfused_output(std::move(out), plan);
        }
        shape = out_shape;
        break;
      }
      case IntLayerPlan::Kind::kMaxPool:
      case IntLayerPlan::Kind::kAvgPool: {
        const bool avg = plan.kind == IntLayerPlan::Kind::kAvgPool;
        if (codes.engaged()) {
          const std::size_t n = shape[0], c = shape[1], h = shape[2],
                            w = shape[3];
          const std::size_t oh =
              pool_out(h, plan.pool_kernel, plan.pool_stride);
          const std::size_t ow =
              pool_out(w, plan.pool_kernel, plan.pool_stride);
          const std::size_t elems = n * c * oh * ow;
          if (codes.is_u8()) {
            Workspace::ByteLease out = ws.bytes(elems);
            if (avg) {
              telemetry::ScopedTimer timer(telemetry::Timer::kHwRequant);
              pool_avg_codes(codes.u8(), out.data(), n, c, h, w,
                             plan.pool_kernel, plan.pool_stride);
            } else {
              pool_max_codes(codes.u8(), out.data(), n, c, h, w,
                             plan.pool_kernel, plan.pool_stride);
            }
            codes.adopt(std::move(out));
          } else {
            Workspace::ShortLease out = ws.shorts(elems);
            if (avg) {
              telemetry::ScopedTimer timer(telemetry::Timer::kHwRequant);
              pool_avg_codes(codes.i16(), out.data(), n, c, h, w,
                             plan.pool_kernel, plan.pool_stride);
            } else {
              pool_max_codes(codes.i16(), out.data(), n, c, h, w,
                             plan.pool_kernel, plan.pool_stride);
            }
            codes.adopt(std::move(out));
          }
          shape = {n, c, oh, ow};
        } else if (avg) {
          nn::AvgPool2d pool(plan.pool_kernel, plan.pool_stride);
          pool.set_training(false);
          Tensor out = pool.forward(act, ws);
          ws.recycle(std::move(act));
          act = std::move(out);
          // Averaging leaves the grid; requantize onto the current scale
          // (what a fixed-point datapath does after a mean).
          auto p = act.data();
          for (auto& v : p) v = std::round(v / scale) * scale;
          shape = act.shape();
        } else {
          nn::MaxPool2d pool(plan.pool_kernel, plan.pool_stride);
          pool.set_training(false);  // inference: skip the argmax cache
          Tensor out = pool.forward(act, ws);
          ws.recycle(std::move(act));
          act = std::move(out);
          shape = act.shape();
        }
        break;
      }
      case IntLayerPlan::Kind::kGlobalAvgPool: {
        if (codes.engaged()) {
          const std::size_t n = shape[0], c = shape[1];
          const std::size_t hw = shape[2] * shape[3];
          telemetry::ScopedTimer timer(telemetry::Timer::kHwRequant);
          if (codes.is_u8()) {
            Workspace::ByteLease out = ws.bytes(n * c);
            gap_codes(codes.u8(), out.data(), n, c, hw);
            codes.adopt(std::move(out));
          } else {
            Workspace::ShortLease out = ws.shorts(n * c);
            gap_codes(codes.i16(), out.data(), n, c, hw);
            codes.adopt(std::move(out));
          }
          shape = {n, c};
        } else {
          nn::GlobalAvgPool gap;
          gap.set_training(false);
          Tensor out = gap.forward(act, ws);
          ws.recycle(std::move(act));
          act = std::move(out);
          auto p = act.data();
          for (auto& v : p) v = std::round(v / scale) * scale;
          shape = act.shape();
        }
        break;
      }
      case IntLayerPlan::Kind::kFlatten: {
        // Shape-only: codes/float storage is untouched.
        shape = {shape[0], shape_numel(shape) / shape[0]};
        if (!codes.engaged()) act.resize(shape);
        break;
      }
    }
  }
  if (codes.engaged()) {
    // Fully quantized network: decode the final codes once at the edge.
    codes.visit(
        [&](const auto* src) { act = decode_codes(src, shape, scale, ws); });
    codes.reset();
  }
  return act;
}

Tensor IntegerNetwork::forward_reference(const Tensor& x) const {
  return forward_reference(x, Workspace::scratch(), ExecContext::global());
}

Tensor IntegerNetwork::forward_reference(const Tensor& x, Workspace& ws,
                                         const ExecContext& ctx) const {
  return forward_reference(x, ws, ctx, 0);
}

Tensor IntegerNetwork::forward_reference(const Tensor& x, Workspace& ws,
                                         const ExecContext& ctx,
                                         std::size_t rung) const {
  CCQ_CHECK(rung < rungs_.size(), "rung index out of range");
  CCQ_CHECK(x.rank() == 4, "integer engine expects NCHW input");
  // Mirror of forward()'s representation state with exact int32 codes:
  // identical branching and identical requant_apply / pool helpers, but
  // naive int64 triple loops instead of the packed kernels — integer
  // arithmetic is associative, so the two are bit-identical.
  std::optional<Workspace::IntLease> codes;
  Tensor act;
  Shape shape = x.shape();
  float scale = kInputScale;
  {
    telemetry::ScopedTimer timer(telemetry::Timer::kHwRequant);
    codes.emplace(ws.ints(x.numel()));
    snap_codes(x, kInputScale, 255, codes->data());
  }

  auto adopt = [&](Workspace::IntLease lease) {
    codes.reset();
    codes.emplace(std::move(lease));
  };

  auto unfused_output = [&](Tensor out, const IntLayerPlan& plan) {
    apply_act(out, plan);
    if (plan.has_act && plan.act_bits < 16) {
      scale = act_scale(plan);
      const std::int64_t qmax = (std::int64_t{1} << plan.act_bits) - 1;
      telemetry::ScopedTimer timer(telemetry::Timer::kHwRequant);
      Workspace::IntLease lease = ws.ints(out.numel());
      snap_codes(out, scale, qmax, lease.data());
      adopt(std::move(lease));
      ws.recycle(std::move(out));
    } else {
      codes.reset();
      act = std::move(out);
    }
  };

  for (const auto& plan : rungs_[rung]) {
    switch (plan.kind) {
      case IntLayerPlan::Kind::kConv: {
        const std::size_t n = shape[0], h = shape[2], w = shape[3];
        const ConvGeometry g{.in_channels = plan.in_channels,
                             .in_h = h,
                             .in_w = w,
                             .kernel = plan.kernel,
                             .stride = plan.stride,
                             .pad = plan.pad};
        const std::size_t oh = g.out_h(), ow = g.out_w();
        const std::size_t patch = g.patch_size(), spatial = g.out_spatial();
        const Shape out_shape = {n, plan.out_channels, oh, ow};
        const bool fused = codes.has_value() && plan.requant_fused;
        // Source codes: the flowing int32 codes, or a fresh snap of the
        // float activation on the fallback path.
        std::optional<Workspace::IntLease> snap;
        const std::int32_t* src = nullptr;
        if (codes.has_value()) {
          src = codes->data();
        } else {
          snap.emplace(ws.ints(act.numel()));
          to_int_codes(act, scale, snap->data());
          src = snap->data();
        }
        Workspace::IntLease cols = ws.ints(patch * spatial);
        std::optional<Workspace::IntLease> out_codes;
        Tensor out;
        if (fused) {
          out_codes.emplace(ws.ints(n * plan.out_channels * spatial));
        } else {
          out = ws.tensor_uninit(out_shape);
        }
        for (std::size_t img = 0; img < n; ++img) {
          im2col(src + img * plan.in_channels * h * w, g, cols.data(), ctx);
          float* dstf = fused ? nullptr
                              : out.data().data() +
                                    img * plan.out_channels * spatial;
          std::int32_t* dstc =
              fused ? out_codes->data() + img * plan.out_channels * spatial
                    : nullptr;
          // Integer MACs are exact, so any partition over the disjoint
          // output-channel rows is trivially deterministic.
          parallel_for(ctx, plan.out_channels, 4,
                       [&](std::size_t oc0, std::size_t oc1) {
            for (std::size_t oc = oc0; oc < oc1; ++oc) {
              const std::int32_t* wrow = plan.weight_codes.data() + oc * patch;
              for (std::size_t s = 0; s < spatial; ++s) {
                std::int64_t acc = 0;  // the integer MAC datapath
                for (std::size_t p = 0; p < patch; ++p) {
                  acc += static_cast<std::int64_t>(wrow[p]) *
                         static_cast<std::int64_t>(
                             cols.data()[p * spatial + s]);
                }
                if (fused) {
                  dstc[oc * spatial + s] =
                      requant_apply(acc, plan.requant[oc], plan.out_qmax);
                } else {
                  dstf[oc * spatial + s] =
                      static_cast<float>(acc) * plan.channel_scale[oc] +
                      plan.bias[oc];
                }
              }
            }
          });
        }
        if (!codes.has_value()) ws.recycle(std::move(act));
        if (fused) {
          adopt(std::move(*out_codes));
          scale = act_scale(plan);
        } else {
          unfused_output(std::move(out), plan);
        }
        shape = out_shape;
        break;
      }
      case IntLayerPlan::Kind::kLinear: {
        CCQ_CHECK(shape.size() == 2 && shape[1] == plan.in_features,
                  "linear input mismatch in integer engine");
        const std::size_t n = shape[0];
        const Shape out_shape = {n, plan.out_features};
        const bool fused = codes.has_value() && plan.requant_fused;
        std::optional<Workspace::IntLease> snap;
        const std::int32_t* src = nullptr;
        if (codes.has_value()) {
          src = codes->data();
        } else {
          snap.emplace(ws.ints(act.numel()));
          to_int_codes(act, scale, snap->data());
          src = snap->data();
        }
        std::optional<Workspace::IntLease> out_codes;
        Tensor out;
        if (fused) {
          out_codes.emplace(ws.ints(n * plan.out_features));
        } else {
          out = ws.tensor_uninit(out_shape);
        }
        for (std::size_t img = 0; img < n; ++img) {
          const std::int32_t* arow = src + img * plan.in_features;
          for (std::size_t oc = 0; oc < plan.out_features; ++oc) {
            const std::int32_t* wrow =
                plan.weight_codes.data() + oc * plan.in_features;
            std::int64_t acc = 0;
            for (std::size_t p = 0; p < plan.in_features; ++p) {
              acc += static_cast<std::int64_t>(wrow[p]) *
                     static_cast<std::int64_t>(arow[p]);
            }
            if (fused) {
              out_codes->data()[img * plan.out_features + oc] =
                  requant_apply(acc, plan.requant[oc], plan.out_qmax);
            } else {
              out(img, oc) =
                  static_cast<float>(acc) * plan.channel_scale[oc] +
                  plan.bias[oc];
            }
          }
        }
        if (!codes.has_value()) ws.recycle(std::move(act));
        if (fused) {
          adopt(std::move(*out_codes));
          scale = act_scale(plan);
        } else {
          unfused_output(std::move(out), plan);
        }
        shape = out_shape;
        break;
      }
      case IntLayerPlan::Kind::kMaxPool:
      case IntLayerPlan::Kind::kAvgPool: {
        const bool avg = plan.kind == IntLayerPlan::Kind::kAvgPool;
        if (codes.has_value()) {
          const std::size_t n = shape[0], c = shape[1], h = shape[2],
                            w = shape[3];
          const std::size_t oh =
              pool_out(h, plan.pool_kernel, plan.pool_stride);
          const std::size_t ow =
              pool_out(w, plan.pool_kernel, plan.pool_stride);
          Workspace::IntLease out = ws.ints(n * c * oh * ow);
          if (avg) {
            telemetry::ScopedTimer timer(telemetry::Timer::kHwRequant);
            pool_avg_codes(codes->data(), out.data(), n, c, h, w,
                           plan.pool_kernel, plan.pool_stride);
          } else {
            pool_max_codes(codes->data(), out.data(), n, c, h, w,
                           plan.pool_kernel, plan.pool_stride);
          }
          adopt(std::move(out));
          shape = {n, c, oh, ow};
        } else if (avg) {
          nn::AvgPool2d pool(plan.pool_kernel, plan.pool_stride);
          pool.set_training(false);
          Tensor out = pool.forward(act, ws);
          ws.recycle(std::move(act));
          act = std::move(out);
          // Averaging leaves the grid; requantize onto the current scale
          // (what a fixed-point datapath does after a mean).
          auto p = act.data();
          for (auto& v : p) v = std::round(v / scale) * scale;
          shape = act.shape();
        } else {
          nn::MaxPool2d pool(plan.pool_kernel, plan.pool_stride);
          pool.set_training(false);  // inference: skip the argmax cache
          Tensor out = pool.forward(act, ws);
          ws.recycle(std::move(act));
          act = std::move(out);
          shape = act.shape();
        }
        break;
      }
      case IntLayerPlan::Kind::kGlobalAvgPool: {
        if (codes.has_value()) {
          const std::size_t n = shape[0], c = shape[1];
          const std::size_t hw = shape[2] * shape[3];
          telemetry::ScopedTimer timer(telemetry::Timer::kHwRequant);
          Workspace::IntLease out = ws.ints(n * c);
          gap_codes(codes->data(), out.data(), n, c, hw);
          adopt(std::move(out));
          shape = {n, c};
        } else {
          nn::GlobalAvgPool gap;
          gap.set_training(false);
          Tensor out = gap.forward(act, ws);
          ws.recycle(std::move(act));
          act = std::move(out);
          auto p = act.data();
          for (auto& v : p) v = std::round(v / scale) * scale;
          shape = act.shape();
        }
        break;
      }
      case IntLayerPlan::Kind::kFlatten: {
        shape = {shape[0], shape_numel(shape) / shape[0]};
        if (!codes.has_value()) act.resize(shape);
        break;
      }
    }
  }
  if (codes.has_value()) {
    act = decode_codes(codes->data(), shape, scale, ws);
    codes.reset();
  }
  return act;
}

std::size_t IntegerNetwork::macs_per_sample(std::size_t h,
                                            std::size_t w) const {
  // Geometry is invariant across rungs (from_rungs checks it), so the
  // MAC count and input validation below read rung 0.
  std::size_t total = 0;
  std::size_t cur_h = h, cur_w = w;
  for (const auto& plan : rungs_.front()) {
    switch (plan.kind) {
      case IntLayerPlan::Kind::kConv: {
        const ConvGeometry g{.in_channels = plan.in_channels,
                             .in_h = cur_h,
                             .in_w = cur_w,
                             .kernel = plan.kernel,
                             .stride = plan.stride,
                             .pad = plan.pad};
        total += plan.out_channels * g.patch_size() * g.out_spatial();
        cur_h = g.out_h();
        cur_w = g.out_w();
        break;
      }
      case IntLayerPlan::Kind::kLinear:
        total += plan.in_features * plan.out_features;
        break;
      case IntLayerPlan::Kind::kMaxPool:
      case IntLayerPlan::Kind::kAvgPool:
        cur_h = (cur_h - plan.pool_kernel) / plan.pool_stride + 1;
        cur_w = (cur_w - plan.pool_kernel) / plan.pool_stride + 1;
        break;
      case IntLayerPlan::Kind::kGlobalAvgPool:
      case IntLayerPlan::Kind::kFlatten:
        cur_h = cur_w = 1;
        break;
    }
  }
  return total;
}

void IntegerNetwork::check_input(std::size_t channels, std::size_t height,
                                 std::size_t width) const {
  const std::string geometry = std::to_string(channels) + "x" +
                               std::to_string(height) + "x" +
                               std::to_string(width);
  CCQ_CHECK(channels != 0 && height != 0 && width != 0,
            "input sample " + geometry + " has a zero dimension");
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  CCQ_CHECK(height <= kMax / channels && width <= kMax / (channels * height),
            "input sample " + geometry + " overflows size_t");
  bool spatial = true;  // CHW code/activation map vs flattened features
  std::size_t c = channels, h = height, w = width;
  std::size_t features = 0;
  for (const auto& plan : rungs_.front()) {
    switch (plan.kind) {
      case IntLayerPlan::Kind::kConv: {
        CCQ_CHECK(spatial, "conv layer " + plan.name +
                               " reached after the activation map was "
                               "flattened (input sample " +
                               geometry + ")");
        CCQ_CHECK(c == plan.in_channels,
                  "conv layer " + plan.name + " expects " +
                      std::to_string(plan.in_channels) +
                      " input channels but input sample " + geometry +
                      " reaches it with " + std::to_string(c));
        CCQ_CHECK(h + 2 * plan.pad >= plan.kernel &&
                      w + 2 * plan.pad >= plan.kernel,
                  "conv layer " + plan.name + " kernel " +
                      std::to_string(plan.kernel) +
                      " exceeds its padded input for input sample " +
                      geometry);
        c = plan.out_channels;
        h = (h + 2 * plan.pad - plan.kernel) / plan.stride + 1;
        w = (w + 2 * plan.pad - plan.kernel) / plan.stride + 1;
        break;
      }
      case IntLayerPlan::Kind::kLinear:
        CCQ_CHECK(!spatial, "linear layer " + plan.name +
                                " reached with an unflattened activation "
                                "map (input sample " +
                                geometry + ")");
        CCQ_CHECK(features == plan.in_features,
                  "linear layer " + plan.name + " expects " +
                      std::to_string(plan.in_features) +
                      " features but input sample " + geometry +
                      " reaches it with " + std::to_string(features));
        features = plan.out_features;
        break;
      case IntLayerPlan::Kind::kMaxPool:
      case IntLayerPlan::Kind::kAvgPool:
        CCQ_CHECK(spatial, "pool layer " + plan.name +
                               " reached after the activation map was "
                               "flattened (input sample " +
                               geometry + ")");
        CCQ_CHECK(h >= plan.pool_kernel && w >= plan.pool_kernel,
                  "pool layer " + plan.name + " window " +
                      std::to_string(plan.pool_kernel) +
                      " exceeds its input for input sample " + geometry);
        h = (h - plan.pool_kernel) / plan.pool_stride + 1;
        w = (w - plan.pool_kernel) / plan.pool_stride + 1;
        break;
      case IntLayerPlan::Kind::kGlobalAvgPool:
        CCQ_CHECK(spatial, "global-avg-pool layer " + plan.name +
                               " reached after the activation map was "
                               "flattened (input sample " +
                               geometry + ")");
        spatial = false;
        features = c;
        break;
      case IntLayerPlan::Kind::kFlatten:
        if (spatial) {
          // Checked product: conv layers can grow the channel count, so
          // the entry overflow guard does not bound c·h·w here.
          CCQ_CHECK(h <= kMax / c && w <= kMax / (c * h),
                    "flatten layer " + plan.name +
                        " feature count overflows size_t for input sample " +
                        geometry);
          spatial = false;
          features = c * h * w;
        }
        break;
    }
  }
}

}  // namespace ccq::hw
