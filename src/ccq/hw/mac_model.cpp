#include "ccq/hw/mac_model.hpp"

#include <algorithm>

namespace ccq::hw {

namespace {

constexpr double kGatesPerFullAdder = 9.0;   // NAND2-equivalents
constexpr double kFp32MantissaBits = 24.0;   // implicit-1 + 23 fraction
constexpr double kAccumGuardBits = 8.0;      // accumulator headroom

/// Gate count of an integer (bw × ba) MAC.
double int_mac_gates(int weight_bits, int act_bits) {
  const double bw = weight_bits, ba = act_bits;
  const double multiplier = bw * ba * kGatesPerFullAdder;
  const double accumulator = (bw + ba + kAccumGuardBits) * kGatesPerFullAdder;
  return multiplier + accumulator;
}

/// Gate count of an fp32 fused MAC.
double fp32_mac_gates() {
  const double mantissa =
      kFp32MantissaBits * kFp32MantissaBits * kGatesPerFullAdder;
  const double exponent = 2.0 * 8.0 * kGatesPerFullAdder;  // add + compare
  const double normalise = 350.0;  // barrel shifter + LZC + rounding
  return mantissa + exponent + normalise;
}

}  // namespace

MacCost mac_cost(int weight_bits, int act_bits, const TechConfig& tech) {
  CCQ_CHECK(weight_bits >= 1 && act_bits >= 1, "invalid MAC precision");
  const bool fp = weight_bits >= 32 || act_bits >= 32;
  MacCost cost;
  cost.gates = fp ? fp32_mac_gates()
                  : int_mac_gates(weight_bits, act_bits);
  cost.energy_j =
      cost.gates * tech.switching_activity * tech.energy_per_gate_toggle_j;
  cost.area_um2 = cost.gates * tech.area_per_gate_um2;
  cost.leakage_w = cost.gates * tech.leakage_per_gate_w;
  return cost;
}

PowerReport network_power(const std::vector<LayerMacs>& layers,
                          double inferences_per_second,
                          const TechConfig& tech) {
  CCQ_CHECK(!layers.empty(), "empty layer profile");
  CCQ_CHECK(inferences_per_second > 0.0, "rate must be positive");
  PowerReport report;
  report.per_layer_w.reserve(layers.size());
  for (const auto& layer : layers) {
    const MacCost cost = mac_cost(layer.weight_bits, layer.act_bits, tech);
    // Dynamic power at the requested inference rate plus the leakage of
    // one MAC unit per layer (the minimal iso-throughput datapath).
    const double watts =
        static_cast<double>(layer.macs) * cost.energy_j *
            inferences_per_second +
        cost.leakage_w;
    report.per_layer_w.push_back(watts);
    report.total_w += watts;
  }
  report.first_layer_w = report.per_layer_w.front();
  report.last_layer_w = report.per_layer_w.back();
  for (std::size_t i = 1; i + 1 < report.per_layer_w.size(); ++i) {
    report.middle_w += report.per_layer_w[i];
  }
  if (report.per_layer_w.size() == 1) {
    report.last_layer_w = 0.0;  // avoid double counting a 1-layer net
  }
  return report;
}

std::vector<LayerMacs> profile_registry(const quant::LayerRegistry& registry) {
  std::vector<LayerMacs> layers;
  layers.reserve(registry.size());
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const auto& unit = registry.unit(i);
    LayerMacs lm;
    lm.name = unit.name;
    lm.macs = unit.macs;
    lm.weight_bits = unit.weight_hook->bits();
    lm.act_bits = unit.act != nullptr ? unit.act->bits() : lm.weight_bits;
    layers.push_back(lm);
  }
  return layers;
}

std::vector<LayerMacs> uniform_profile(const quant::LayerRegistry& registry,
                                       int weight_bits, int act_bits,
                                       bool fp_first_last) {
  auto layers = profile_registry(registry);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const bool edge = i == 0 || i + 1 == layers.size();
    if (fp_first_last && edge) {
      layers[i].weight_bits = 32;
      layers[i].act_bits = 32;
    } else {
      layers[i].weight_bits = weight_bits;
      layers[i].act_bits = act_bits;
    }
  }
  return layers;
}

}  // namespace ccq::hw
