// First-order gate-level MAC cost model (DESIGN.md §2 substitution for
// the paper's DesignWare 32 nm synthesis).
//
// The paper's Fig 5 compares iso-throughput power of networks whose first
// and last layers stay at fp32 against fully-quantized mixed-precision
// ones.  We reproduce the *relative* numbers from structural gate counts:
//   * integer MAC: a (bw × ba) array multiplier (one full-adder cell per
//     partial-product bit, Baugh-Wooley signed) plus an accumulator adder
//     sized for the product plus guard bits;
//   * fp32 MAC: 24×24 mantissa multiplier, exponent add, normalisation
//     shifter and rounding — the usual ~20 % overhead on top of the
//     mantissa array.
// Energy = gates × switching activity × per-gate toggle energy (32 nm
// class constants).  Iso-throughput power multiplies per-inference energy
// by a fixed inference rate, exactly the paper's reporting condition.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ccq/quant/registry.hpp"

namespace ccq::hw {

/// Technology constants (32 nm class; absolute values are first-order,
/// ratios are what Fig 5 relies on).
struct TechConfig {
  double energy_per_gate_toggle_j = 1.2e-15;  ///< CV²/2-ish per gate
  double switching_activity = 0.15;           ///< average toggle rate
  double area_per_gate_um2 = 0.6;             ///< NAND2-equivalent area
  double leakage_per_gate_w = 2.0e-9;         ///< static power per gate
};

/// Structural cost of one multiply-accumulate unit.
struct MacCost {
  double gates = 0.0;
  double energy_j = 0.0;   ///< dynamic energy per MAC operation
  double area_um2 = 0.0;
  double leakage_w = 0.0;
};

/// Cost of a MAC with the given weight/activation precisions.  Bits ≥ 32
/// selects the fp32 unit.
MacCost mac_cost(int weight_bits, int act_bits,
                 const TechConfig& tech = TechConfig{});

/// Per-layer workload description for the power estimator.
struct LayerMacs {
  std::string name;
  std::size_t macs = 0;  ///< MACs per inference
  int weight_bits = 32;
  int act_bits = 32;
};

/// Power of a network at a fixed inference rate.
struct PowerReport {
  double total_w = 0.0;
  double first_layer_w = 0.0;
  double last_layer_w = 0.0;
  double middle_w = 0.0;  ///< everything between first and last
  std::vector<double> per_layer_w;
};

/// Iso-throughput power: Σ_l macs_l · E(bits_l) · rate (+ leakage of the
/// widest unit the layer needs, amortised).
PowerReport network_power(const std::vector<LayerMacs>& layers,
                          double inferences_per_second,
                          const TechConfig& tech = TechConfig{});

/// Extract the per-layer workload from a quantized model registry.
/// Activation bits come from the paired activation quantizer (the input
/// activations of layer l are produced by layer l−1's quantizer; as in
/// the paper we report the layer's own W/A pair).
std::vector<LayerMacs> profile_registry(const quant::LayerRegistry& registry);

/// Convenience: same profile but with every layer forced to `w`/`a` bits,
/// optionally keeping first and last at fp32 (the paper's fp-Nb-fp
/// configurations).
std::vector<LayerMacs> uniform_profile(const quant::LayerRegistry& registry,
                                       int weight_bits, int act_bits,
                                       bool fp_first_last);

}  // namespace ccq::hw
