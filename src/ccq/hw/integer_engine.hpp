// Integer inference engine: the deployment view of a quantized model.
//
// During training this library *simulates* quantization in float.  A
// real accelerator (the one the Fig 5 power model prices) instead runs
// integer MACs over weight/activation codes and rescales per output
// channel.  This engine builds that datapath from a trained QuantModel:
//
//   * BatchNorm is folded into the preceding conv/linear (per-channel
//     scale γ/σ and bias β − γμ/σ, using the running statistics);
//   * quantized weights are stored as k-bit integer codes plus a
//     per-layer scale (per-channel after folding);
//   * every convolution / fully-connected inner product runs through the
//     igemm kernel-dispatch API (`ccq::IgemmOp` + `igemm_run`): at
//     plan-finalize time each layer picks a named kernel variant from
//     the registry (scalar / vec16 / vec-packed, overridable via
//     `$CCQ_IGEMM_KERNEL`) based on its bit width and static code
//     bounds, packs its weight codes into that kernel's panel layout,
//     and accumulates in int32 with a statically bounded int64 fallback;
//     the naive int64 triple loop is kept as `forward_reference`, the
//     golden datapath every kernel is differentially tested against;
//   * activations flow layer-to-layer as integer *codes* (u8 for grids
//     up to 8 bits, i16 above) with no intermediate float tensor: each
//     layer's BN fold and the next grid's quantization are folded into
//     per-channel fixed-point requant parameters (hw::make_requant) and
//     fused into the igemm epilogue, which writes requantized codes
//     directly.  Layers whose output is not on a quantized grid (e.g. a
//     classifier head) keep the float epilogue, and the engine falls
//     back to the float-boundary datapath from there on.
//
// Tests assert parity with the float-simulated forward pass — the
// property that makes training-time accuracy numbers meaningful for the
// deployed network.
//
// Scope: sequential topologies (conv/linear + BN + quantized activation,
// pooling, flatten, global-average-pool).  Residual graphs still run
// through the float simulation path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ccq/models/model.hpp"
#include "ccq/tensor/igemm.hpp"
#include "ccq/tensor/im2col.hpp"

namespace ccq::hw {

/// One compiled layer of the integer network.
struct IntLayerPlan {
  enum class Kind { kConv, kLinear, kMaxPool, kAvgPool, kGlobalAvgPool,
                    kFlatten };
  Kind kind = Kind::kConv;

  /// Registry name for conv/linear layers, "<type>@<seq-index>" for the
  /// rest — artifact layer tables and load errors refer to layers by it.
  std::string name;

  // Conv/linear payload -------------------------------------------------
  std::vector<std::int32_t> weight_codes;  ///< k-bit signed codes
  int weight_bits = 32;
  /// Per-output-channel effective scale: weight_scale · (γ/σ) folded.
  std::vector<float> channel_scale;
  /// Folded bias per output channel (β − γμ/σ plus original bias).
  std::vector<float> bias;
  std::size_t in_channels = 0, out_channels = 0;
  std::size_t kernel = 1, stride = 1, pad = 0;
  std::size_t in_features = 0, out_features = 0;

  // igemm payload (derived — built by finalize, never serialized) --------
  /// Kernel variant selected for this layer (igemm_select_kernel over
  /// the layer's static bounds, seeded by `$CCQ_IGEMM_KERNEL`).
  IgemmKernel igemm_kernel = IgemmKernel::kScalar;
  /// `weight_codes` packed in `igemm_kernel`'s panel layout (kWX for
  /// conv, kXW for linear — see igemm_pack).
  IgemmPanel panel;
  std::int32_t max_abs_code = 0;   ///< max |weight code|
  /// Static bound on |incoming activation codes| (255 for the 8-bit
  /// input, (2^b − 1) after a b-bit activation grid); 0 = unknown.
  std::int64_t in_code_bound = 0;
  /// Accumulator picked from max_abs_code · in_code_bound · patch_size
  /// (igemm_fits_int32); int64 whenever the bound is unknown.
  IgemmAccum accum = IgemmAccum::kInt64;

  // Activation re-quantization ------------------------------------------
  bool has_act = false;
  int act_bits = 32;
  float act_clip = 0.0f;  ///< PACT α or fixed clip

  // Fused fixed-point requantization ------------------------------------
  /// Per-output-channel requant parameters folding this layer's
  /// channel_scale/bias *and* its activation quantization into the igemm
  /// epilogue, so the kernel writes the next layer's codes directly.
  /// Built by finalize (hw::make_requant against the layer's static
  /// accumulator bound) when the layer has a quantized activation and
  /// integer codes arriving; serialized in CCQA v2 artifacts so serving
  /// replays the exporter's exact parameters.  Empty ⇒ unfused: the
  /// layer keeps the float epilogue (+ apply_act) instead.
  std::vector<Requant> requant;
  /// True when `requant` is populated and the layer's output flows as
  /// codes (u8 when out_qmax <= 255, i16 otherwise).
  bool requant_fused = false;
  /// Output code ceiling for the fused path: 2^act_bits − 1.
  std::int32_t out_qmax = 0;
  /// Static bound on |accumulator| the requant parameters were built
  /// for: max_abs_code · in_code_bound · depth.
  std::int64_t acc_bound = 0;

  // Pool payload ---------------------------------------------------------
  std::size_t pool_kernel = 2, pool_stride = 2;
};

/// Provenance of one serving rung (operating point) of a multi-point
/// network: which controller trail step produced its configuration and
/// the validation accuracy the controller recorded there.  Rung 0 is the
/// highest-precision (most accurate) point; the last rung is the final,
/// lowest-precision configuration of the descent.
struct RungInfo {
  std::int32_t trail_step = -1;  ///< −1 = the final configuration
  float val_acc = 0.0f;          ///< 0 when unknown
};

/// Encode a grid-valued tensor as doubled integer codes: q = (step/2)·c.
/// Doubling covers both zero-centred grids (codes even) and half-offset
/// grids like DoReFa's (codes odd).  Throws ccq::Error naming `layer`
/// when any code falls outside the ±2^bits envelope a `bits`-bit grid
/// can produce — a silent std::lround narrowing here used to let a
/// mis-inferred step corrupt the whole compiled layer.
std::vector<std::int32_t> encode_doubled(const Tensor& q, float step,
                                         int bits, const std::string& layer);

/// Compiled integer network.
class IntegerNetwork {
 public:
  /// Compile a *sequential* quantized model (throws ccq::Error when the
  /// topology contains residual blocks or unsupported modules).  The
  /// model must be in eval state conceptually: BN running statistics are
  /// baked in.
  static IntegerNetwork compile(models::QuantModel& model);

  /// Rebuild a network from deserialised layer plans (ccq::serve packed
  /// artifacts).  Plans are taken as-is; shape consistency is the
  /// loader's responsibility.  Throws on an empty plan list.
  static IntegerNetwork from_plans(std::vector<IntLayerPlan> plans);

  /// Build a multi-point network: one plan set per serving rung, all
  /// over the same layer sequence (same names, kinds and geometry —
  /// only precision-dependent fields may differ).  Each rung re-runs
  /// kernel selection, the accumulator proof and requant rederivation
  /// through `finalize_plans`, so every operating point serves through
  /// the kernels a fresh compile would pick.  `info` records each rung's
  /// provenance and must match `rungs` in length.  Throws on zero rungs,
  /// inconsistent layer sequences, or a length mismatch.
  static IntegerNetwork from_rungs(std::vector<std::vector<IntLayerPlan>> rungs,
                                   std::vector<RungInfo> info);

  /// Run inference over an (N, C, H, W) batch; returns (N, classes)
  /// logits.  All conv/linear arithmetic is integer, executed by
  /// `igemm_run` with each layer's selected kernel over its packed
  /// weight panel (bit-identical to `forward_reference` for every
  /// shape, bit width, kernel, blocking and thread count — the
  /// differential property the igemm test harness enforces).  The workspace overload recycles every
  /// intermediate activation through the pool; recycle the returned
  /// logits too and warm repeated inference performs no float- or
  /// int-storage allocations.  The context overload names the thread
  /// budget for the igemm kernels — serve workers pass their own context
  /// because the process-global pool does not support concurrent drivers.
  Tensor forward(const Tensor& x) const;
  Tensor forward(const Tensor& x, Workspace& ws) const;
  Tensor forward(const Tensor& x, Workspace& ws, const ExecContext& ctx) const;
  /// Run inference at serving rung `rung` (multi-point networks; the
  /// rung-less overloads serve rung 0, the highest-precision point).
  /// Every rung is bit-identical to `forward_reference` at the same
  /// rung.  Throws on an out-of-range rung.
  Tensor forward(const Tensor& x, Workspace& ws, const ExecContext& ctx,
                 std::size_t rung) const;

  /// Specification datapath: the naive triple loop over int codes with
  /// unconditional int64 accumulation, applying the *same*
  /// `requant_apply` to its exact accumulators on fused layers (and the
  /// same float epilogue on unfused ones).  Integer arithmetic is
  /// associative, so the fused/blocked path is bit-identical to this
  /// oracle for every kernel, blocking and thread count; not a serving
  /// path.
  Tensor forward_reference(const Tensor& x) const;
  Tensor forward_reference(const Tensor& x, Workspace& ws,
                           const ExecContext& ctx) const;
  Tensor forward_reference(const Tensor& x, Workspace& ws,
                           const ExecContext& ctx, std::size_t rung) const;

  std::size_t layer_count() const { return rungs_.front().size(); }
  const IntLayerPlan& plan(std::size_t i) const;

  /// Number of serving rungs (≥ 1; single-point networks have exactly 1).
  std::size_t rung_count() const { return rungs_.size(); }
  /// Layer plan `i` at serving rung `rung`.
  const IntLayerPlan& plan(std::size_t rung, std::size_t i) const;
  /// Provenance of rung `rung` (all-default for single-point networks).
  const RungInfo& rung_info(std::size_t rung) const;

  /// Total integer MAC operations for one sample at the compiled input
  /// geometry (populated during the first forward).
  std::size_t macs_per_sample(std::size_t h, std::size_t w) const;

  /// Validate one C×H×W sample geometry against the compiled plans
  /// without running inference: zero/overflowing dims, per-layer channel
  /// counts, conv/pool kernel bounds, and the flatten→linear feature
  /// contract.  Throws ccq::Error naming the first inconsistent layer.
  /// Serving admission calls this so an untrusted request is rejected
  /// before its dimensions can size any engine loop (or pin a model's
  /// batch shape).
  void check_input(std::size_t channels, std::size_t height,
                   std::size_t width) const;

 private:
  /// Build each plan's derived igemm payload (kernel selection, packed
  /// panel, max |code|, static accumulator choice) — runs once in
  /// compile()/from_plans()/from_rungs(), per rung, so artifact loads
  /// ship ready-packed panels in the layout of the kernel that will
  /// execute them.  Reads `$CCQ_IGEMM_KERNEL` once for the whole
  /// network; throws its unknown-name error (listing available kernels)
  /// before any layer is packed.
  void finalize_plans();

  /// Plan sets, one per serving rung; invariant: non-empty, all rungs
  /// hold the same layer sequence (count / name / kind / geometry).
  /// Rung 0 is the highest-precision point.  Plans are immutable after
  /// finalize, so switching the served rung between batches is just an
  /// index change — nothing to synchronize.
  std::vector<std::vector<IntLayerPlan>> rungs_;
  std::vector<RungInfo> rung_info_;  ///< parallel to rungs_
};

}  // namespace ccq::hw
