// Integer inference engine: the deployment view of a quantized model.
//
// During training this library *simulates* quantization in float.  A
// real accelerator (the one the Fig 5 power model prices) instead runs
// integer MACs over weight/activation codes and rescales per output
// channel.  This engine builds that datapath from a trained QuantModel:
//
//   * BatchNorm is folded into the preceding conv/linear (per-channel
//     scale γ/σ and bias β − γμ/σ, using the running statistics);
//   * quantized weights are stored as k-bit integer codes plus a
//     per-layer scale (per-channel after folding);
//   * every convolution / fully-connected inner product is computed with
//     64-bit integer accumulation over the codes (`hw::integer_dot`
//     semantics), then rescaled;
//   * activations are re-quantized onto the next layer's input grid.
//
// Tests assert parity with the float-simulated forward pass — the
// property that makes training-time accuracy numbers meaningful for the
// deployed network.
//
// Scope: sequential topologies (conv/linear + BN + quantized activation,
// pooling, flatten, global-average-pool).  Residual graphs still run
// through the float simulation path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ccq/models/model.hpp"
#include "ccq/tensor/im2col.hpp"

namespace ccq::hw {

/// One compiled layer of the integer network.
struct IntLayerPlan {
  enum class Kind { kConv, kLinear, kMaxPool, kAvgPool, kGlobalAvgPool,
                    kFlatten };
  Kind kind = Kind::kConv;

  /// Registry name for conv/linear layers, "<type>@<seq-index>" for the
  /// rest — artifact layer tables and load errors refer to layers by it.
  std::string name;

  // Conv/linear payload -------------------------------------------------
  std::vector<std::int32_t> weight_codes;  ///< k-bit signed codes
  int weight_bits = 32;
  /// Per-output-channel effective scale: weight_scale · (γ/σ) folded.
  std::vector<float> channel_scale;
  /// Folded bias per output channel (β − γμ/σ plus original bias).
  std::vector<float> bias;
  std::size_t in_channels = 0, out_channels = 0;
  std::size_t kernel = 1, stride = 1, pad = 0;
  std::size_t in_features = 0, out_features = 0;

  // Activation re-quantization ------------------------------------------
  bool has_act = false;
  int act_bits = 32;
  float act_clip = 0.0f;  ///< PACT α or fixed clip

  // Pool payload ---------------------------------------------------------
  std::size_t pool_kernel = 2, pool_stride = 2;
};

/// Compiled integer network.
class IntegerNetwork {
 public:
  /// Compile a *sequential* quantized model (throws ccq::Error when the
  /// topology contains residual blocks or unsupported modules).  The
  /// model must be in eval state conceptually: BN running statistics are
  /// baked in.
  static IntegerNetwork compile(models::QuantModel& model);

  /// Rebuild a network from deserialised layer plans (ccq::serve packed
  /// artifacts).  Plans are taken as-is; shape consistency is the
  /// loader's responsibility.  Throws on an empty plan list.
  static IntegerNetwork from_plans(std::vector<IntLayerPlan> plans);

  /// Run inference over an (N, C, H, W) batch; returns (N, classes)
  /// logits.  All conv/linear arithmetic is integer.  The workspace
  /// overload recycles every intermediate activation through the pool;
  /// recycle the returned logits too and warm repeated inference performs
  /// no float-storage allocations.  The context overload names the thread
  /// budget for the conv kernels — serve workers pass their own context
  /// because the process-global pool does not support concurrent drivers.
  Tensor forward(const Tensor& x) const;
  Tensor forward(const Tensor& x, Workspace& ws) const;
  Tensor forward(const Tensor& x, Workspace& ws, const ExecContext& ctx) const;

  std::size_t layer_count() const { return plans_.size(); }
  const IntLayerPlan& plan(std::size_t i) const;

  /// Total integer MAC operations for one sample at the compiled input
  /// geometry (populated during the first forward).
  std::size_t macs_per_sample(std::size_t h, std::size_t w) const;

 private:
  std::vector<IntLayerPlan> plans_;
};

}  // namespace ccq::hw
