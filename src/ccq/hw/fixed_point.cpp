#include "ccq/hw/fixed_point.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ccq::hw {

std::vector<std::int32_t> encode(const Tensor& values,
                                 const FixedPointFormat& format) {
  CCQ_CHECK(format.bits >= 2 && format.bits <= 31, "bits out of range");
  CCQ_CHECK(format.scale > 0.0f, "scale must be positive");
  std::vector<std::int32_t> codes;
  codes.reserve(values.numel());
  const auto lo = static_cast<float>(format.min_code());
  const auto hi = static_cast<float>(format.max_code());
  for (float v : values.data()) {
    const float code = std::clamp(std::round(v / format.scale), lo, hi);
    codes.push_back(static_cast<std::int32_t>(code));
  }
  return codes;
}

Tensor decode(const std::vector<std::int32_t>& codes, const Shape& shape,
              const FixedPointFormat& format) {
  CCQ_CHECK(codes.size() == shape_numel(shape), "code count mismatch");
  Tensor out(shape);
  auto data = out.data();
  for (std::size_t i = 0; i < codes.size(); ++i) {
    data[i] = static_cast<float>(codes[i]) * format.scale;
  }
  return out;
}

float integer_dot(const std::vector<std::int32_t>& a,
                  const FixedPointFormat& fa,
                  const std::vector<std::int32_t>& b,
                  const FixedPointFormat& fb) {
  CCQ_CHECK(a.size() == b.size(), "integer_dot length mismatch");
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(b[i]);
  }
  return static_cast<float>(static_cast<double>(acc) *
                            static_cast<double>(fa.scale) *
                            static_cast<double>(fb.scale));
}

bool make_requant(double ratio, double bias_ratio, std::int64_t acc_bound,
                  Requant& out) {
  if (!std::isfinite(ratio) || !std::isfinite(bias_ratio) || acc_bound < 0) {
    return false;
  }
  // Budget: |acc·M| <= 2^61 and |B| <= 2^61 keep acc·M + B inside int64
  // with a sign bit to spare.  The multiplier cap follows from the
  // accumulator bound; it also never exceeds what int32 holds.
  constexpr std::int64_t kBudget = std::int64_t{1} << 61;
  constexpr std::int32_t kMaxShift = 55;  // tiny ratios saturate here
  const std::int64_t m_cap =
      std::min<std::int64_t>(std::numeric_limits<std::int32_t>::max(),
                             kBudget / std::max<std::int64_t>(acc_bound, 1));
  if (m_cap < 1) return false;

  std::int32_t shift = 1;
  std::int64_t m = 0;
  if (ratio != 0.0) {
    int exp = 0;
    std::frexp(std::fabs(ratio), &exp);  // |ratio| = f·2^exp, f ∈ [0.5, 1)
    shift = 31 - exp;  // normalises |M| = |ratio|·2^shift into [2^30, 2^31)
    if (shift > kMaxShift) shift = kMaxShift;
    if (shift < 1) return false;  // ratio too large for a 31-bit multiplier
    m = std::llround(ratio * std::ldexp(1.0, shift));
    // Walk the shift down until the multiplier fits the overflow budget
    // (each step halves it); normalisation usually fits immediately.
    while (shift > 1 && (m > m_cap || m < -m_cap)) {
      --shift;
      m = std::llround(ratio * std::ldexp(1.0, shift));
    }
    if (m > m_cap || m < -m_cap) return false;
  }
  const double scaled_bias = bias_ratio * std::ldexp(1.0, shift);
  if (std::fabs(scaled_bias) > static_cast<double>(kBudget)) return false;
  out.multiplier = static_cast<std::int32_t>(m);
  out.shift = shift;
  out.bias = std::llround(scaled_bias);
  return true;
}

bool representable(const Tensor& values, const FixedPointFormat& format,
                   float tol) {
  for (float v : values.data()) {
    const float code = std::round(v / format.scale);
    if (code > static_cast<float>(format.max_code()) ||
        code < static_cast<float>(format.min_code())) {
      return false;
    }
    if (std::fabs(code * format.scale - v) > tol) return false;
  }
  return true;
}

}  // namespace ccq::hw
