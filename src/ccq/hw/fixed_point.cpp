#include "ccq/hw/fixed_point.hpp"

#include <algorithm>
#include <cmath>

namespace ccq::hw {

std::vector<std::int32_t> encode(const Tensor& values,
                                 const FixedPointFormat& format) {
  CCQ_CHECK(format.bits >= 2 && format.bits <= 31, "bits out of range");
  CCQ_CHECK(format.scale > 0.0f, "scale must be positive");
  std::vector<std::int32_t> codes;
  codes.reserve(values.numel());
  const auto lo = static_cast<float>(format.min_code());
  const auto hi = static_cast<float>(format.max_code());
  for (float v : values.data()) {
    const float code = std::clamp(std::round(v / format.scale), lo, hi);
    codes.push_back(static_cast<std::int32_t>(code));
  }
  return codes;
}

Tensor decode(const std::vector<std::int32_t>& codes, const Shape& shape,
              const FixedPointFormat& format) {
  CCQ_CHECK(codes.size() == shape_numel(shape), "code count mismatch");
  Tensor out(shape);
  auto data = out.data();
  for (std::size_t i = 0; i < codes.size(); ++i) {
    data[i] = static_cast<float>(codes[i]) * format.scale;
  }
  return out;
}

float integer_dot(const std::vector<std::int32_t>& a,
                  const FixedPointFormat& fa,
                  const std::vector<std::int32_t>& b,
                  const FixedPointFormat& fb) {
  CCQ_CHECK(a.size() == b.size(), "integer_dot length mismatch");
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(b[i]);
  }
  return static_cast<float>(static_cast<double>(acc) *
                            static_cast<double>(fa.scale) *
                            static_cast<double>(fb.scale));
}

bool representable(const Tensor& values, const FixedPointFormat& format,
                   float tol) {
  for (float v : values.data()) {
    const float code = std::round(v / format.scale);
    if (code > static_cast<float>(format.max_code()) ||
        code < static_cast<float>(format.min_code())) {
      return false;
    }
    if (std::fabs(code * format.scale - v) > tol) return false;
  }
  return true;
}

}  // namespace ccq::hw
