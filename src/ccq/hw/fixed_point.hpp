// Bit-true fixed-point arithmetic.
//
// The float "simulated quantization" used during training must agree with
// what an integer datapath would compute.  This module provides the
// integer view: encode a quantized float tensor into k-bit codes, run an
// integer MAC (the hardware the Fig 5 power model prices), and decode —
// tests assert the result matches the float path bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "ccq/tensor/requant.hpp"
#include "ccq/tensor/tensor.hpp"

namespace ccq::hw {

/// Symmetric fixed-point format: value = code · scale, code ∈
/// [−(2^(bits−1)−1), +(2^(bits−1)−1)].
struct FixedPointFormat {
  int bits = 8;
  float scale = 1.0f;

  std::int32_t max_code() const { return (1 << (bits - 1)) - 1; }
  std::int32_t min_code() const { return -max_code(); }
};

/// Encode floats to integer codes (round-to-nearest, saturating).
std::vector<std::int32_t> encode(const Tensor& values,
                                 const FixedPointFormat& format);

/// Decode integer codes back to floats.
Tensor decode(const std::vector<std::int32_t>& codes, const Shape& shape,
              const FixedPointFormat& format);

/// Bit-true dot product: Σ a_i·b_i in 64-bit integer accumulation, then
/// rescaled by both scales.  This is what one output element of a conv /
/// linear layer computes on an integer MAC array.
float integer_dot(const std::vector<std::int32_t>& a,
                  const FixedPointFormat& fa,
                  const std::vector<std::int32_t>& b,
                  const FixedPointFormat& fb);

/// Check that every element of `values` is representable in `format`
/// (i.e. encode→decode is the identity) within `tol`.
bool representable(const Tensor& values, const FixedPointFormat& format,
                   float tol = 1e-6f);

/// Pick fixed-point requantization parameters (see tensor/requant.hpp)
/// approximating
///   code ≈ round(acc·ratio + bias_ratio)
/// for every accumulator with |acc| <= acc_bound.  `ratio` is the
/// channel's scale divided by the output activation scale; `bias_ratio`
/// the folded bias over the same scale.  The shift is chosen to
/// normalise |multiplier| into [2^30, 2^31) when the overflow budget
/// allows (|acc·M| <= 2^61 and |B| <= 2^61 must both hold, keeping
/// acc·M + B inside int64), so the approximation error of M·2^-shift vs
/// `ratio` is at most 2^-31 relative.  Degenerate channels (ratio == 0,
/// e.g. a folded BN gamma of zero) get multiplier 0 — the channel
/// collapses to its bias, exactly as the float epilogue would.
///
/// Returns false when no in-budget parameters exist (non-finite inputs,
/// an unknown/overflowing accumulator bound, or magnitudes outside what
/// 31 multiplier bits can express) — the caller then keeps the float
/// epilogue for that layer instead of fusing.
bool make_requant(double ratio, double bias_ratio, std::int64_t acc_bound,
                  Requant& out);

}  // namespace ccq::hw
