// Dataset and batching abstractions.
//
// The paper evaluates on CIFAR10 and ImageNet, neither of which ships
// with this repo; DESIGN.md §2 documents the synthetic substitutes.  The
// abstractions here are dataset-agnostic: an in-memory labelled image
// store plus a shuffling mini-batch loader with optional train-time
// augmentation (pad-crop and horizontal flip, the paper's §IV.a setup).
#pragma once

#include <cstddef>
#include <vector>

#include "ccq/common/rng.hpp"
#include "ccq/tensor/tensor.hpp"

namespace ccq::data {

/// One mini-batch: NCHW images plus integer labels.
struct Batch {
  Tensor images;
  std::vector<int> labels;
  std::size_t size() const { return labels.size(); }
};

/// In-memory labelled image dataset (CHW float images in [0, 1]).
class Dataset {
 public:
  Dataset(std::size_t channels, std::size_t height, std::size_t width,
          std::size_t num_classes);

  void add(Tensor image, int label);
  std::size_t size() const { return labels_.size(); }
  std::size_t channels() const { return channels_; }
  std::size_t height() const { return height_; }
  std::size_t width() const { return width_; }
  std::size_t num_classes() const { return num_classes_; }

  const Tensor& image(std::size_t i) const;
  int label(std::size_t i) const;

  /// Assemble a batch from explicit indices (no augmentation).
  Batch gather(const std::vector<std::size_t>& indices) const;

  /// Capacity-reusing variant: `batch` is resized and overwritten, so a
  /// caller looping over index sets performs no steady-state allocations.
  void gather_into(const std::vector<std::size_t>& indices,
                   Batch& batch) const;

  /// The whole dataset as one batch (for small validation sets).
  Batch all() const;

  /// Split off the last `count` samples into a new dataset (train/val).
  Dataset take_tail(std::size_t count);

 private:
  std::size_t channels_, height_, width_, num_classes_;
  std::vector<Tensor> images_;
  std::vector<int> labels_;
};

/// Train-time augmentation configuration (paper §IV.a).
struct Augment {
  bool horizontal_flip = true;
  std::size_t pad_crop = 2;  ///< zero-pad margin before random crop; 0 = off
};

/// Shuffling mini-batch iterator with augmentation.
class DataLoader {
 public:
  DataLoader(const Dataset& dataset, std::size_t batch_size, Augment augment,
             Rng rng);

  /// Reshuffle and restart an epoch.
  void start_epoch();

  /// Fetch the next batch; returns false at epoch end.
  bool next(Batch& out);

  std::size_t batches_per_epoch() const;

  /// Shuffle-stream state (the order/cursor are rebuilt by
  /// `start_epoch`, so between epochs the RNG is the whole state).
  /// Exposed for controller save/restore.
  Rng::State rng_state() const { return rng_.state(); }
  void set_rng_state(const Rng::State& state) { rng_.set_state(state); }

 private:
  /// Augmentation decisions for one sample, drawn from the loader RNG in
  /// sample order *before* the (possibly parallel) batch assembly, so
  /// the RNG stream and the resulting batches are independent of the
  /// thread count.
  struct AugmentDraw {
    long dy = 0;
    long dx = 0;
    bool flip = false;
  };

  AugmentDraw draw_augment();
  Tensor augment_image(const Tensor& image, const AugmentDraw& draw) const;

  const Dataset& dataset_;
  std::size_t batch_size_;
  Augment augment_;
  Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace ccq::data
