// Tiny non-vision datasets for MLP tests and examples.
//
// Rendered into the common Dataset format as 1×1×D "images" so every
// loader/trainer works unchanged.
#pragma once

#include "ccq/data/dataset.hpp"

namespace ccq::data {

/// Two interleaved spirals in 2-D (binary classification); a classic
/// nonlinear benchmark an MLP needs hidden units for.
Dataset make_two_spirals(std::size_t samples_per_class, float noise = 0.05f,
                         std::uint64_t seed = 99);

/// k isotropic Gaussian blobs in `dims` dimensions.
Dataset make_gaussian_blobs(std::size_t num_classes,
                            std::size_t samples_per_class, std::size_t dims,
                            float spread = 0.15f, std::uint64_t seed = 100);

}  // namespace ccq::data
