#include "ccq/data/toy.hpp"

#include <algorithm>
#include <cmath>

namespace ccq::data {

Dataset make_two_spirals(std::size_t samples_per_class, float noise,
                         std::uint64_t seed) {
  CCQ_CHECK(samples_per_class > 0, "empty spiral dataset");
  Rng rng(seed);
  Dataset ds(1, 1, 2, 2);  // 2 features as a 1×1×2 image
  for (std::size_t i = 0; i < samples_per_class; ++i) {
    const float t = 0.5f + 3.0f * static_cast<float>(i) /
                               static_cast<float>(samples_per_class);
    for (int cls = 0; cls < 2; ++cls) {
      const float phase = cls == 0 ? 0.0f : static_cast<float>(M_PI);
      const float angle = t * 2.5f + phase;
      Tensor point({1, 1, 2});
      // Scale into roughly [0, 1] so quantized activations behave.
      point(0, 0, 0) = 0.5f + 0.12f * t * std::cos(angle) +
                       static_cast<float>(rng.normal(0.0, noise));
      point(0, 0, 1) = 0.5f + 0.12f * t * std::sin(angle) +
                       static_cast<float>(rng.normal(0.0, noise));
      ds.add(std::move(point), cls);
    }
  }
  return ds;
}

Dataset make_gaussian_blobs(std::size_t num_classes,
                            std::size_t samples_per_class, std::size_t dims,
                            float spread, std::uint64_t seed) {
  CCQ_CHECK(num_classes > 0 && samples_per_class > 0 && dims > 0,
            "empty blob dataset");
  Rng rng(seed);
  // Class centres drawn once, kept inside [0.2, 0.8]^d.
  std::vector<std::vector<float>> centres(num_classes,
                                          std::vector<float>(dims));
  for (auto& centre : centres) {
    for (auto& x : centre) x = static_cast<float>(rng.uniform(0.2, 0.8));
  }
  Dataset ds(1, 1, dims, num_classes);
  for (std::size_t i = 0; i < samples_per_class; ++i) {
    for (std::size_t cls = 0; cls < num_classes; ++cls) {
      Tensor point({1, 1, dims});
      for (std::size_t d = 0; d < dims; ++d) {
        point(0, 0, d) = std::clamp(
            centres[cls][d] + static_cast<float>(rng.normal(0.0, spread)),
            0.0f, 1.0f);
      }
      ds.add(std::move(point), static_cast<int>(cls));
    }
  }
  return ds;
}

}  // namespace ccq::data
