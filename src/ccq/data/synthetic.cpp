#include "ccq/data/synthetic.hpp"

#include <algorithm>
#include <cmath>

namespace ccq::data {

namespace {

/// Per-class texture program parameters, drawn once per class.
struct ClassStyle {
  int family = 0;            ///< texture family index
  float theta = 0.0f;        ///< stripe / spiral orientation
  float freq = 3.0f;         ///< spatial frequency
  float cx = 0.5f, cy = 0.5f;  ///< feature centre (relative)
  float color[3] = {0.5f, 0.5f, 0.5f};
  float color2[3] = {0.5f, 0.5f, 0.5f};
  float blob[4][2] = {};     ///< blob centres (relative)
};

/// Distinct hues around the colour wheel, converted to RGB.
void hue_to_rgb(float hue, float out[3]) {
  const float h = hue * 6.0f;
  const int sector = static_cast<int>(h) % 6;
  const float f = h - std::floor(h);
  const float q = 1.0f - f;
  switch (sector) {
    case 0: out[0] = 1; out[1] = f; out[2] = 0; break;
    case 1: out[0] = q; out[1] = 1; out[2] = 0; break;
    case 2: out[0] = 0; out[1] = 1; out[2] = f; break;
    case 3: out[0] = 0; out[1] = q; out[2] = 1; break;
    case 4: out[0] = f; out[1] = 0; out[2] = 1; break;
    default: out[0] = 1; out[1] = 0; out[2] = q; break;
  }
}

ClassStyle make_style(std::size_t cls, std::size_t num_classes, Rng& rng) {
  ClassStyle s;
  s.family = static_cast<int>(cls % 6);
  s.theta = static_cast<float>(rng.uniform(0.0, M_PI));
  s.freq = static_cast<float>(rng.uniform(2.0, 5.5));
  s.cx = static_cast<float>(rng.uniform(0.3, 0.7));
  s.cy = static_cast<float>(rng.uniform(0.3, 0.7));
  hue_to_rgb(static_cast<float>(cls) / static_cast<float>(num_classes),
             s.color);
  hue_to_rgb(std::fmod(static_cast<float>(cls) /
                               static_cast<float>(num_classes) +
                           0.37f,
                       1.0f),
             s.color2);
  for (auto& b : s.blob) {
    b[0] = static_cast<float>(rng.uniform(0.15, 0.85));
    b[1] = static_cast<float>(rng.uniform(0.15, 0.85));
  }
  return s;
}

/// Texture intensity in [0,1] at relative coordinates (u, v).
float texture_value(const ClassStyle& s, float u, float v, float phase,
                    float jx, float jy) {
  const float x = u - s.cx - jx;
  const float y = v - s.cy - jy;
  switch (s.family) {
    case 0: {  // oriented stripes
      const float t = x * std::cos(s.theta) + y * std::sin(s.theta);
      return 0.5f + 0.5f * std::sin(2.0f * static_cast<float>(M_PI) *
                                        s.freq * t +
                                    phase);
    }
    case 1: {  // checkerboard
      const int ix = static_cast<int>(std::floor((u - jx) * s.freq * 2.0f));
      const int iy = static_cast<int>(std::floor((v - jy) * s.freq * 2.0f));
      return ((ix + iy) & 1) != 0 ? 1.0f : 0.0f;
    }
    case 2: {  // radial rings
      const float r = std::sqrt(x * x + y * y);
      return 0.5f + 0.5f * std::sin(2.0f * static_cast<float>(M_PI) *
                                        s.freq * 2.0f * r +
                                    phase);
    }
    case 3: {  // Gaussian blobs
      float acc = 0.0f;
      for (const auto& b : s.blob) {
        const float dx = u - b[0] - jx;
        const float dy = v - b[1] - jy;
        acc += std::exp(-(dx * dx + dy * dy) * 60.0f);
      }
      return std::min(1.0f, acc);
    }
    case 4: {  // gradient × sinusoid
      const float g = 0.5f * (u + v);
      return g * (0.5f + 0.5f * std::sin(2.0f * static_cast<float>(M_PI) *
                                             s.freq * (u - v) +
                                         phase));
    }
    default: {  // spiral
      const float r = std::sqrt(x * x + y * y) + 1e-6f;
      const float ang = std::atan2(y, x);
      return 0.5f + 0.5f * std::sin(s.freq * ang +
                                    10.0f * r + phase);
    }
  }
}

}  // namespace

Dataset make_synthetic_vision(const SyntheticConfig& config) {
  CCQ_CHECK(config.num_classes > 0 && config.samples_per_class > 0,
            "empty synthetic dataset requested");
  Rng master(config.seed);
  std::vector<ClassStyle> styles;
  styles.reserve(config.num_classes);
  for (std::size_t c = 0; c < config.num_classes; ++c) {
    styles.push_back(make_style(c, config.num_classes, master));
  }

  Dataset ds(3, config.height, config.width, config.num_classes);
  const float inv_h = 1.0f / static_cast<float>(config.height);
  const float inv_w = 1.0f / static_cast<float>(config.width);
  // Interleave classes so a train/val tail split stays class-balanced.
  for (std::size_t i = 0; i < config.samples_per_class; ++i) {
    for (std::size_t c = 0; c < config.num_classes; ++c) {
      const ClassStyle& s = styles[c];
      const float phase = static_cast<float>(
          master.uniform(0.0, 2.0 * M_PI) * config.jitter);
      const float jx =
          static_cast<float>(master.normal(0.0, 0.08 * config.jitter));
      const float jy =
          static_cast<float>(master.normal(0.0, 0.08 * config.jitter));
      const float cshift =
          static_cast<float>(master.normal(0.0, 0.1 * config.jitter));
      Tensor img({3, config.height, config.width});
      for (std::size_t y = 0; y < config.height; ++y) {
        for (std::size_t x = 0; x < config.width; ++x) {
          const float u = (static_cast<float>(x) + 0.5f) * inv_w;
          const float v = (static_cast<float>(y) + 0.5f) * inv_h;
          const float t = texture_value(s, u, v, phase, jx, jy);
          for (std::size_t ch = 0; ch < 3; ++ch) {
            float value = t * s.color[ch] + (1.0f - t) * s.color2[ch] + cshift;
            value += static_cast<float>(
                master.normal(0.0, config.pixel_noise));
            img(ch, y, x) = std::clamp(value, 0.0f, 1.0f);
          }
        }
      }
      ds.add(std::move(img), static_cast<int>(c));
    }
  }
  return ds;
}

Dataset make_synthetic_cifar(std::size_t samples_per_class, std::uint64_t seed,
                             std::size_t image_size) {
  SyntheticConfig config;
  config.num_classes = 10;
  config.samples_per_class = samples_per_class;
  config.height = config.width = image_size;
  config.seed = seed;
  return make_synthetic_vision(config);
}

Dataset make_synthetic_imagenet(std::size_t samples_per_class,
                                std::uint64_t seed, std::size_t num_classes,
                                std::size_t image_size) {
  SyntheticConfig config;
  config.num_classes = num_classes;
  config.samples_per_class = samples_per_class;
  config.height = config.width = image_size;
  config.pixel_noise = 0.1f;
  config.jitter = 0.6f;  // harder task: more intra-class variance
  config.seed = seed;
  return make_synthetic_vision(config);
}

}  // namespace ccq::data
