// Procedural stand-ins for CIFAR10 / ImageNet (see DESIGN.md §2).
//
// Each class is a parametric texture program (oriented stripes, checker,
// rings, blobs, gradients, spirals) with a class-specific colour and
// geometry; every sample jitters phase/position/colour and adds pixel
// noise, so the task is learnable but not trivial, and — the property the
// reproduction actually needs — validation accuracy degrades smoothly as
// layer precision drops, exactly like a natural-image task.
#pragma once

#include "ccq/data/dataset.hpp"

namespace ccq::data {

/// Knobs for the procedural generator.
struct SyntheticConfig {
  std::size_t num_classes = 10;
  std::size_t samples_per_class = 100;
  std::size_t height = 32;
  std::size_t width = 32;
  float pixel_noise = 0.08f;   ///< stddev of additive Gaussian pixel noise
  float jitter = 0.35f;        ///< relative per-sample parameter jitter
  std::uint64_t seed = 1234;
};

/// Build a dataset of `num_classes * samples_per_class` RGB images.
Dataset make_synthetic_vision(const SyntheticConfig& config);

/// CIFAR10 stand-in: 10 classes, 32×32×3 by default (size overridable).
Dataset make_synthetic_cifar(std::size_t samples_per_class,
                             std::uint64_t seed = 1234,
                             std::size_t image_size = 32);

/// ImageNet stand-in: more classes and higher intra-class variance, same
/// spatial budget (DESIGN.md explains the downscaling substitution).
Dataset make_synthetic_imagenet(std::size_t samples_per_class,
                                std::uint64_t seed = 4321,
                                std::size_t num_classes = 40,
                                std::size_t image_size = 32);

}  // namespace ccq::data
