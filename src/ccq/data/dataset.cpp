#include "ccq/data/dataset.hpp"

#include <numeric>

#include "ccq/common/exec.hpp"

namespace ccq::data {

Dataset::Dataset(std::size_t channels, std::size_t height, std::size_t width,
                 std::size_t num_classes)
    : channels_(channels),
      height_(height),
      width_(width),
      num_classes_(num_classes) {
  CCQ_CHECK(channels > 0 && height > 0 && width > 0 && num_classes > 0,
            "invalid dataset geometry");
}

void Dataset::add(Tensor image, int label) {
  CCQ_CHECK(image.rank() == 3 && image.dim(0) == channels_ &&
                image.dim(1) == height_ && image.dim(2) == width_,
            "image shape mismatch");
  CCQ_CHECK(label >= 0 && static_cast<std::size_t>(label) < num_classes_,
            "label out of range");
  images_.push_back(std::move(image));
  labels_.push_back(label);
}

const Tensor& Dataset::image(std::size_t i) const {
  CCQ_CHECK(i < images_.size(), "image index out of range");
  return images_[i];
}

int Dataset::label(std::size_t i) const {
  CCQ_CHECK(i < labels_.size(), "label index out of range");
  return labels_[i];
}

void Dataset::gather_into(const std::vector<std::size_t>& indices,
                          Batch& batch) const {
  batch.images.resize({indices.size(), channels_, height_, width_});
  batch.labels.clear();
  batch.labels.reserve(indices.size());
  const std::size_t sample = channels_ * height_ * width_;
  float* dst = batch.images.data().data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    batch.labels.push_back(labels_[indices[i]]);
  }
  parallel_for(ExecContext::global(), indices.size(), 8,
               [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* src = image(indices[i]).data().data();
      std::copy(src, src + sample, dst + i * sample);
    }
  });
}

Batch Dataset::gather(const std::vector<std::size_t>& indices) const {
  Batch batch;
  gather_into(indices, batch);
  return batch;
}

Batch Dataset::all() const {
  std::vector<std::size_t> indices(size());
  std::iota(indices.begin(), indices.end(), 0);
  return gather(indices);
}

Dataset Dataset::take_tail(std::size_t count) {
  CCQ_CHECK(count <= size(), "tail larger than dataset");
  Dataset tail(channels_, height_, width_, num_classes_);
  const std::size_t start = size() - count;
  for (std::size_t i = start; i < size(); ++i) {
    tail.add(std::move(images_[i]), labels_[i]);
  }
  images_.resize(start);
  labels_.resize(start);
  return tail;
}

DataLoader::DataLoader(const Dataset& dataset, std::size_t batch_size,
                       Augment augment, Rng rng)
    : dataset_(dataset),
      batch_size_(batch_size),
      augment_(augment),
      rng_(rng),
      order_(dataset.size()) {
  CCQ_CHECK(batch_size > 0, "batch size must be positive");
  start_epoch();
}

void DataLoader::start_epoch() {
  // Rebuild from the identity before shuffling so the epoch order is a
  // pure function of the RNG state — not of how many epochs this loader
  // has already served.  Resume (set_rng_state) depends on this: a fresh
  // loader with a restored RNG must reproduce the same epoch sequence.
  std::iota(order_.begin(), order_.end(), 0);
  rng_.shuffle(order_);
  cursor_ = 0;
}

std::size_t DataLoader::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

DataLoader::AugmentDraw DataLoader::draw_augment() {
  // Draw order (dy, dx, flip) matches the historical per-sample order so
  // seeded runs reproduce the exact pre-parallelism batches.
  AugmentDraw draw;
  if (augment_.pad_crop > 0) {
    const long pad = static_cast<long>(augment_.pad_crop);
    draw.dy = static_cast<long>(rng_.uniform_int(2 * pad + 1)) - pad;
    draw.dx = static_cast<long>(rng_.uniform_int(2 * pad + 1)) - pad;
  }
  if (augment_.horizontal_flip) draw.flip = rng_.uniform() < 0.5;
  return draw;
}

Tensor DataLoader::augment_image(const Tensor& image,
                                 const AugmentDraw& draw) const {
  const std::size_t c = dataset_.channels(), h = dataset_.height(),
                    w = dataset_.width();
  Tensor out = image;
  if (augment_.pad_crop > 0) {
    // Shift by an offset in [-pad, pad] in each axis, zero-filling.
    const long dy = draw.dy;
    const long dx = draw.dx;
    if (dy != 0 || dx != 0) {
      Tensor shifted({c, h, w});
      for (std::size_t ch = 0; ch < c; ++ch) {
        for (std::size_t y = 0; y < h; ++y) {
          const long sy = static_cast<long>(y) + dy;
          if (sy < 0 || sy >= static_cast<long>(h)) continue;
          for (std::size_t x = 0; x < w; ++x) {
            const long sx = static_cast<long>(x) + dx;
            if (sx < 0 || sx >= static_cast<long>(w)) continue;
            shifted(ch, y, x) = out(ch, static_cast<std::size_t>(sy),
                                    static_cast<std::size_t>(sx));
          }
        }
      }
      out = std::move(shifted);
    }
  }
  if (draw.flip) {
    Tensor flipped({c, h, w});
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          flipped(ch, y, x) = out(ch, y, w - 1 - x);
        }
      }
    }
    out = std::move(flipped);
  }
  return out;
}

bool DataLoader::next(Batch& out) {
  if (cursor_ >= order_.size()) return false;
  const std::size_t take =
      std::min(batch_size_, order_.size() - cursor_);
  const std::size_t c = dataset_.channels(), h = dataset_.height(),
                    w = dataset_.width();
  const std::size_t sample = c * h * w;
  out.images.resize({take, c, h, w});
  out.labels.clear();
  out.labels.reserve(take);
  float* dst = out.images.data().data();
  // RNG consumption happens serially in sample order; the augmented
  // copies (disjoint batch rows) are then assembled in parallel.
  std::vector<AugmentDraw> draws(take);
  for (std::size_t i = 0; i < take; ++i) {
    draws[i] = draw_augment();
    out.labels.push_back(dataset_.label(order_[cursor_ + i]));
  }
  parallel_for(ExecContext::global(), take, 4,
               [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const std::size_t idx = order_[cursor_ + i];
      const Tensor aug = augment_image(dataset_.image(idx), draws[i]);
      const float* src = aug.data().data();
      std::copy(src, src + sample, dst + i * sample);
    }
  });
  cursor_ += take;
  return true;
}

}  // namespace ccq::data
