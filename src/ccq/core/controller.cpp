#include "ccq/core/controller.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "ccq/common/fileio.hpp"
#include "ccq/common/logging.hpp"
#include "ccq/common/telemetry.hpp"
#include "ccq/core/observers.hpp"

namespace ccq::core {

namespace {

/// Gather a fixed probe subset (first `count` validation samples —
/// deterministic, and the validation set is already shuffled at
/// generation time).
data::Batch make_probe_batch(const data::Dataset& val_set,
                             std::size_t count) {
  std::vector<std::size_t> indices;
  const std::size_t take = std::min(count, val_set.size());
  indices.reserve(take);
  for (std::size_t i = 0; i < take; ++i) indices.push_back(i);
  return val_set.gather(indices);
}

std::vector<bool> awake_mask(const quant::LayerRegistry& registry) {
  std::vector<bool> awake(registry.size());
  for (std::size_t i = 0; i < registry.size(); ++i) {
    awake[i] = !registry.sleeping(i);
  }
  return awake;
}

/// Number of down-steps remaining over all layers = natural value of T.
int total_steps_remaining(const quant::LayerRegistry& registry) {
  int steps = 0;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    if (registry.unit(i).frozen) continue;
    steps += static_cast<int>(registry.ladder().size() - 1 -
                              registry.unit(i).ladder_pos);
  }
  return steps;
}

// ---- binary state (de)serialization ---------------------------------------
// Raw little-endian-as-stored writes: the state must round-trip RNG
// words and float momentum bit-exactly, which text formats cannot
// guarantee.  Same-machine resume is the contract (see OBSERVABILITY.md).

constexpr std::uint64_t kStateMagic = 0x3143515443435131ULL;  // "1QCTQC1"
/// v2 appends the rung trail (the ladder pick history) after the
/// recovery target; v1 states load with an empty trail.
constexpr std::uint32_t kStateVersion = 2;
constexpr std::uint32_t kStateVersionNoTrail = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  CCQ_CHECK(static_cast<bool>(is), "truncated controller state");
  return v;
}

void write_rng_state(std::ostream& os, const Rng::State& state) {
  for (std::uint64_t word : state.s) write_pod(os, word);
  write_pod(os, state.spare_normal);
  write_pod(os, static_cast<std::uint8_t>(state.has_spare ? 1 : 0));
}

Rng::State read_rng_state(std::ifstream& is) {
  Rng::State state;
  for (auto& word : state.s) word = read_pod<std::uint64_t>(is);
  state.spare_normal = read_pod<double>(is);
  state.has_spare = read_pod<std::uint8_t>(is) != 0;
  return state;
}

}  // namespace

CcqController::CcqController(models::QuantModel& model,
                             const data::Dataset& train_set,
                             const data::Dataset& val_set, CcqConfig config)
    : model_(model),
      train_set_(train_set),
      val_set_(val_set),
      config_(config),
      rng_(config.seed),
      probe_batch_(make_probe_batch(val_set, config.probe_samples)),
      loader_(train_set, config.finetune.batch_size, config.finetune.augment,
              Rng(config.seed ^ 0x5eedULL)),
      optimizer_(model.parameters(), config.finetune.sgd),
      schedule_(config.hybrid_lr),
      hedge_(model.registry().size(), config.gamma) {
  CCQ_CHECK(config_.probes_per_step > 0, "need at least one probe per step");
  CCQ_CHECK(model_.registry().size() > 0, "model has no quantizable layers");
  if (telemetry::trace_enabled()) {
    trace_observer_ = std::make_unique<CcqTraceObserver>();
    observers_.push_back(trace_observer_.get());
  }
}

CcqController::~CcqController() = default;

void CcqController::add_observer(CcqObserver* observer) {
  CCQ_CHECK(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

void CcqController::record_epoch(float train_loss, const EvalResult& val,
                                 const std::string& event) {
  EpochStat stat;
  stat.epoch = epoch_counter_++;
  stat.train_loss = train_loss;
  stat.val_loss = val.loss;
  stat.val_accuracy = val.accuracy;
  stat.lr = optimizer_.lr();
  stat.event = event;
  result_.curve.push_back(stat);
}

void CcqController::run_recovery_epoch(int step_index, int epoch_in_step,
                                       const std::string& event_label,
                                       float* accuracy) {
  telemetry::ScopedTimer timer(telemetry::Timer::kRecoveryEpoch);
  const double lr = optimizer_.lr();
  const float train_loss = train_epoch(model_, optimizer_, loader_, ws_);
  const EvalResult val = evaluate(model_, val_set_, 128, ws_);
  record_epoch(train_loss, val, event_label);
  optimizer_.set_lr(schedule_.next(val.accuracy));
  if (accuracy != nullptr) *accuracy = val.accuracy;
  telemetry::add(telemetry::Counter::kRecoveryEpochs);
  telemetry::set_gauge(telemetry::Gauge::kValAccuracy, val.accuracy);
  telemetry::set_gauge(telemetry::Gauge::kLr, lr);
  const RecoveryEpochEvent event{step_index,
                                 epoch_in_step,
                                 epoch_counter_ - 1,
                                 train_loss,
                                 val.loss,
                                 val.accuracy,
                                 lr};
  for (auto* obs : observers_) obs->on_recovery_epoch(event);
}

void CcqController::init() {
  CCQ_CHECK(!initialized_, "controller already initialized");
  quant::LayerRegistry& registry = model_.registry();

  // ---- initial quantization: every layer to N(0) (Algorithm 1 line 3).
  registry.set_all(0);
  for (int e = 0; e < config_.initial_recovery_epochs; ++e) {
    const std::string label =
        e == 0 ? "initial quantization to " +
                     std::to_string(registry.ladder().initial_bits()) + "b"
               : "";
    run_recovery_epoch(/*step_index=*/-1, e, label, nullptr);
  }
  result_.baseline_accuracy = evaluate(model_, val_set_, 128, ws_).accuracy;
  recovery_target_ =
      result_.baseline_accuracy - config_.recovery_drop_threshold;
  planned_steps_ = total_steps_remaining(registry);
  CCQ_LOG_INFO << "CCQ " << model_.name() << ": baseline@"
               << registry.ladder().initial_bits()
               << "b acc=" << result_.baseline_accuracy << " ladder "
               << registry.ladder().str();
  initialized_ = true;
}

bool CcqController::done() const {
  if (!initialized_) return false;
  if (model_.registry().all_sleeping()) return true;
  return config_.max_steps >= 0 && step_ >= config_.max_steps;
}

std::vector<double> CcqController::final_probabilities(
    const std::vector<bool>& awake, const std::vector<double>& shares,
    double lambda) const {
  switch (config_.selection) {
    case SelectionRule::kHedgeMemory:
    case SelectionRule::kExp3Memory:
      return hedge_.memory_mixed_probabilities(awake, shares, lambda);
    case SelectionRule::kRandom: {
      std::vector<double> probs(awake.size(), 0.0);
      std::size_t awake_count = 0;
      for (bool a : awake) awake_count += a ? 1 : 0;
      for (std::size_t m = 0; m < awake.size(); ++m) {
        if (awake[m]) probs[m] = 1.0 / static_cast<double>(awake_count);
      }
      return probs;
    }
    case SelectionRule::kMemoryOnly:
      return hedge_.memory_mixed_probabilities(awake, shares, 1.0);
  }
  return {};
}

const StepRecord& CcqController::step() {
  CCQ_CHECK(initialized_, "init() or load_state() must run before step()");
  CCQ_CHECK(!done(), "stepping a finished controller");
  quant::LayerRegistry& registry = model_.registry();

  const double lambda =
      config_.memory_aware
          ? lambda_at_step(config_.lambda_start, config_.lambda_end, step_,
                           std::max(planned_steps_ - 1, 1))
          : 0.0;
  telemetry::set_gauge(telemetry::Gauge::kLambda, lambda);
  const auto awake = awake_mask(registry);
  const auto shares = registry.memory_shares();

  // Competition: U probes with exponential-weight updates on the
  // sampled layer (lines 6–10).  The ablation rules skip the probes.
  const bool probing = config_.selection == SelectionRule::kHedgeMemory ||
                       config_.selection == SelectionRule::kExp3Memory;
  if (probing) {
    for (int u = 0; u < config_.probes_per_step; ++u) {
      const auto probs =
          hedge_.memory_mixed_probabilities(awake, shares, lambda);
      const std::size_t m = HedgeCompetition::sample(probs, rng_);
      float probe_loss = 0.0f;
      {
        quant::LayerRegistry::ProbeGuard guard(registry, m);
        probe_loss = evaluate_batch(model_, probe_batch_, 128, ws_).loss;
      }
      if (config_.selection == SelectionRule::kExp3Memory) {
        // EXP3: importance-weight the observed loss so rarely-probed
        // layers are not starved of feedback.
        hedge_.update(m, probe_loss / std::max(probs[m], 1e-6));
      } else {
        hedge_.update(m, probe_loss);
      }
      telemetry::add(telemetry::Counter::kProbes);
      const ProbeEvent event{step_,      u,      m,
                             registry.unit(m).name, probe_loss, lambda,
                             probs,      hedge_.weights()};
      for (auto* obs : observers_) obs->on_probe(event);
    }
  }

  // Draw the winner m_t from the final distribution (line 11).
  const std::vector<double> final_probs =
      final_probabilities(awake, shares, lambda);
  const std::size_t winner = HedgeCompetition::sample(final_probs, rng_);
  registry.step_down(winner);

  StepRecord record;
  record.step = step_;
  record.layer = winner;
  record.layer_name = registry.unit(winner).name;
  record.new_bits = registry.bits_of(winner);
  record.lambda = lambda;
  record.pick_probabilities = final_probs;
  record.val_acc_before_recovery =
      evaluate(model_, val_set_, 128, ws_).accuracy;

  telemetry::add(telemetry::Counter::kPicks);
  telemetry::set_gauge(telemetry::Gauge::kCompression,
                       registry.compression_ratio());
  const PickEvent pick_event{step_,          winner,
                             record.layer_name, record.new_bits,
                             lambda,         final_probs,
                             registry.compression_ratio()};
  for (auto* obs : observers_) obs->on_pick(pick_event);

  // Collaboration: fine-tune all layers (lines 14–18).
  int recovery_epochs = 0;
  float acc = record.val_acc_before_recovery;
  const int budget = config_.recovery == RecoveryMode::kManual
                         ? config_.manual_recovery_epochs
                         : config_.max_recovery_epochs;
  while (recovery_epochs < budget) {
    const std::string label =
        recovery_epochs == 0 ? "quantize " + record.layer_name + " -> " +
                                   std::to_string(record.new_bits) + "b"
                             : "";
    run_recovery_epoch(step_, recovery_epochs, label, &acc);
    ++recovery_epochs;
    if (config_.recovery == RecoveryMode::kAdaptive &&
        acc >= recovery_target_) {
      break;  // recovered — stop early (paper: some steps need 1 epoch)
    }
  }
  record.recovery_epochs = recovery_epochs;
  record.val_acc_after_recovery = acc;
  record.compression = registry.compression_ratio();
  trail_.push_back(
      TrailStep{winner, registry.unit(winner).ladder_pos, acc});
  CCQ_LOG_INFO << "CCQ step " << step_ << ": " << record.layer_name << " -> "
               << record.new_bits << "b, acc " << std::to_string(acc)
               << " (valley " << record.val_acc_before_recovery
               << "), compression " << record.compression << "x";
  result_.steps.push_back(std::move(record));
  ++step_;
  telemetry::flush_trace();
  return result_.steps.back();
}

CcqResult CcqController::result() {
  CCQ_CHECK(initialized_, "controller never initialized");
  quant::LayerRegistry& registry = model_.registry();
  CcqResult out = result_;
  out.final_accuracy = evaluate(model_, val_set_, 128, ws_).accuracy;
  out.final_compression = registry.compression_ratio();
  out.final_bits.clear();
  out.final_bits.reserve(registry.size());
  for (std::size_t i = 0; i < registry.size(); ++i) {
    out.final_bits.push_back(registry.bits_of(i));
  }
  telemetry::flush_trace();
  return out;
}

void CcqController::save_state(const std::string& path) const {
  CCQ_CHECK(initialized_, "cannot save an uninitialized controller");
  // Atomic replace: a crash mid-save must not destroy the previous
  // resume point — that is the whole value of step-wise resume.
  atomic_write_file(path, [&](std::ostream& os) { save_state_stream(os); });
}

void CcqController::save_state_stream(std::ostream& os) const {
  write_pod(os, kStateMagic);
  write_pod(os, kStateVersion);
  write_pod(os, static_cast<std::uint64_t>(model_.registry().size()));
  write_pod(os, static_cast<std::int32_t>(step_));
  write_pod(os, static_cast<std::int32_t>(epoch_counter_));
  write_pod(os, static_cast<std::int32_t>(planned_steps_));
  write_pod(os, result_.baseline_accuracy);
  write_pod(os, recovery_target_);
  write_pod(os, static_cast<std::uint64_t>(trail_.size()));
  for (const TrailStep& t : trail_) {
    write_pod(os, static_cast<std::uint32_t>(t.layer));
    write_pod(os, static_cast<std::uint32_t>(t.ladder_pos));
    write_pod(os, t.val_acc);
  }
  write_rng_state(os, rng_.state());
  write_rng_state(os, loader_.rng_state());

  const auto& pi = hedge_.weights();
  write_pod(os, static_cast<std::uint64_t>(pi.size()));
  for (double w : pi) write_pod(os, w);

  const auto sched = schedule_.state();
  write_pod(os, sched.best_metric);
  write_pod(os, static_cast<std::int32_t>(sched.stall_epochs));
  write_pod(os, static_cast<std::int32_t>(sched.cosine_left));

  write_pod(os, optimizer_.lr());
  const auto& velocity = optimizer_.velocity();
  write_pod(os, static_cast<std::uint64_t>(velocity.size()));
  for (const Tensor& v : velocity) {
    write_pod(os, static_cast<std::uint64_t>(v.numel()));
    os.write(reinterpret_cast<const char*>(v.data().data()),
             static_cast<std::streamsize>(v.numel() * sizeof(float)));
  }
  CCQ_CHECK(static_cast<bool>(os), "short write of controller state");
}

bool CcqController::load_state(const std::string& path) {
  CCQ_CHECK(!initialized_,
            "load_state must run on a freshly constructed controller");
  if (!std::filesystem::exists(path)) return false;
  std::ifstream is(path, std::ios::binary);
  CCQ_CHECK(static_cast<bool>(is), "cannot open " + path);

  CCQ_CHECK(read_pod<std::uint64_t>(is) == kStateMagic,
            path + " is not a CCQ controller state file");
  const auto state_version = read_pod<std::uint32_t>(is);
  CCQ_CHECK(state_version == kStateVersion ||
                state_version == kStateVersionNoTrail,
            "unsupported controller state version " +
                std::to_string(state_version) + " (this build reads " +
                std::to_string(kStateVersionNoTrail) + " and " +
                std::to_string(kStateVersion) + ")");
  CCQ_CHECK(read_pod<std::uint64_t>(is) == model_.registry().size(),
            "controller state layer count mismatch");
  step_ = read_pod<std::int32_t>(is);
  epoch_counter_ = read_pod<std::int32_t>(is);
  planned_steps_ = read_pod<std::int32_t>(is);
  result_.baseline_accuracy = read_pod<float>(is);
  recovery_target_ = read_pod<float>(is);
  trail_.clear();
  if (state_version >= 2) {
    const auto trail_count = read_pod<std::uint64_t>(is);
    CCQ_CHECK(trail_count <= static_cast<std::uint64_t>(step_),
              "controller state trail longer than its step count");
    trail_.reserve(static_cast<std::size_t>(trail_count));
    for (std::uint64_t i = 0; i < trail_count; ++i) {
      TrailStep t;
      t.layer = read_pod<std::uint32_t>(is);
      t.ladder_pos = read_pod<std::uint32_t>(is);
      t.val_acc = read_pod<float>(is);
      CCQ_CHECK(t.layer < model_.registry().size(),
                "controller state trail names layer " +
                    std::to_string(t.layer) + " outside the registry");
      trail_.push_back(t);
    }
  }
  rng_.set_state(read_rng_state(is));
  loader_.set_rng_state(read_rng_state(is));

  const auto pi_count = read_pod<std::uint64_t>(is);
  CCQ_CHECK(pi_count == hedge_.size(), "hedge weight count mismatch");
  std::vector<double> pi(pi_count);
  for (auto& w : pi) w = read_pod<double>(is);
  hedge_.set_weights(pi);

  nn::HybridPlateauCosineLr::State sched;
  sched.best_metric = read_pod<double>(is);
  sched.stall_epochs = read_pod<std::int32_t>(is);
  sched.cosine_left = read_pod<std::int32_t>(is);
  schedule_.set_state(sched);

  optimizer_.set_lr(read_pod<double>(is));
  const auto velocity_count = read_pod<std::uint64_t>(is);
  const auto params = model_.parameters();
  CCQ_CHECK(velocity_count == params.size(),
            "controller state velocity count mismatch");
  std::vector<Tensor> velocity;
  velocity.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto numel = read_pod<std::uint64_t>(is);
    CCQ_CHECK(numel == params[i]->value.numel(),
              "velocity size mismatch for " + params[i]->name);
    Tensor v(params[i]->value.shape());
    is.read(reinterpret_cast<char*>(v.data().data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    CCQ_CHECK(static_cast<bool>(is), "truncated controller state");
    velocity.push_back(std::move(v));
  }
  optimizer_.set_velocity(std::move(velocity));

  initialized_ = true;
  CCQ_LOG_INFO << "CCQ " << model_.name() << ": resumed at step " << step_
               << " (epoch " << epoch_counter_ << ", baseline "
               << result_.baseline_accuracy << ")";
  return true;
}

}  // namespace ccq::core
