// The rung trail: the ladder pick history of one CCQ descent.
//
// Every competitive step the controller commits moves exactly one layer
// one rung down its bit ladder.  Replaying that history against the
// *final* trained weights yields a family of mixed-precision
// configurations — the operating points the adaptive serving stack
// (serve/artifact `build_multipoint`, CCQA v3) ships as one multi-point
// artifact.  The trail is the minimal record that makes the replay
// possible: which layer moved, where it landed, and the validation
// accuracy the controller measured after recovering from the step.
//
// The trail is persisted in two places: inside the controller state
// checkpoint (core/controller, state v2) so a resumed run keeps
// appending to it, and inside the float snapshot (core/snapshot) as a
// reserved tensor so `ccq export` can rebuild the configurations without
// reconstructing a controller.
#pragma once

#include <cstddef>
#include <vector>

namespace ccq::core {

/// One committed quantization step: registry layer `layer` moved to
/// ladder position `ladder_pos` (the position *after* the step), and the
/// run validated at `val_acc` once recovery fine-tuning finished.
struct TrailStep {
  std::size_t layer = 0;
  std::size_t ladder_pos = 0;
  float val_acc = 0.0f;
};

inline bool operator==(const TrailStep& a, const TrailStep& b) {
  return a.layer == b.layer && a.ladder_pos == b.ladder_pos &&
         a.val_acc == b.val_acc;
}

using RungTrail = std::vector<TrailStep>;

}  // namespace ccq::core
