#include "ccq/core/hedge.hpp"

#include <algorithm>
#include <cmath>

#include "ccq/common/error.hpp"

namespace ccq::core {

HedgeCompetition::HedgeCompetition(std::size_t num_layers, double gamma)
    : pi_(num_layers, 1.0), gamma_(gamma) {
  CCQ_CHECK(num_layers > 0, "competition needs at least one layer");
  CCQ_CHECK(gamma > 0.0, "gamma must be positive");
}

void HedgeCompetition::update(std::size_t m, double xi) {
  CCQ_CHECK(m < pi_.size(), "layer index out of range");
  CCQ_CHECK(std::isfinite(xi), "non-finite validation loss");
  pi_[m] *= std::exp(-gamma_ * xi);
  // Keep the weight vector away from total underflow: if everything has
  // decayed below a threshold, rescale (the distribution is invariant).
  const double max_pi = *std::max_element(pi_.begin(), pi_.end());
  if (max_pi < 1e-100 && max_pi > 0.0) {
    for (auto& w : pi_) w /= max_pi;
  }
}

void HedgeCompetition::set_weights(const std::vector<double>& pi) {
  CCQ_CHECK(pi.size() == pi_.size(), "weight vector size mismatch");
  for (double w : pi) {
    CCQ_CHECK(std::isfinite(w) && w >= 0.0, "invalid expert weight");
  }
  pi_ = pi;
}

std::vector<double> HedgeCompetition::probabilities(
    const std::vector<bool>& awake) const {
  CCQ_CHECK(awake.size() == pi_.size(), "awake mask size mismatch");
  std::vector<double> p(pi_.size(), 0.0);
  double total = 0.0;
  for (std::size_t m = 0; m < pi_.size(); ++m) {
    if (awake[m]) total += pi_[m];
  }
  CCQ_CHECK(total > 0.0, "all experts are sleeping");
  for (std::size_t m = 0; m < pi_.size(); ++m) {
    if (awake[m]) p[m] = pi_[m] / total;
  }
  return p;
}

std::vector<double> HedgeCompetition::memory_mixed_probabilities(
    const std::vector<bool>& awake, const std::vector<double>& memory_share,
    double lambda) const {
  CCQ_CHECK(memory_share.size() == pi_.size(), "memory share size mismatch");
  CCQ_CHECK(lambda >= 0.0 && lambda <= 1.0, "lambda must be in [0, 1]");
  std::vector<double> p = probabilities(awake);
  // Renormalise the memory shares over awake layers so the mixture stays
  // a distribution even when big layers are already asleep.
  double mem_total = 0.0;
  for (std::size_t m = 0; m < p.size(); ++m) {
    if (awake[m]) mem_total += memory_share[m];
  }
  std::vector<double> mixed(p.size(), 0.0);
  double total = 0.0;
  for (std::size_t m = 0; m < p.size(); ++m) {
    if (!awake[m]) continue;
    const double mem =
        mem_total > 0.0 ? memory_share[m] / mem_total : 0.0;
    mixed[m] = (1.0 - lambda) * p[m] + lambda * mem;
    total += mixed[m];
  }
  CCQ_CHECK(total > 0.0, "degenerate mixed distribution");
  for (auto& v : mixed) v /= total;
  return mixed;
}

std::size_t HedgeCompetition::sample(const std::vector<double>& probs,
                                     Rng& rng) {
  return rng.categorical(probs);
}

double lambda_at_step(double start, double end, int step, int total_steps) {
  CCQ_CHECK(total_steps > 0, "total_steps must be positive");
  const double t = std::clamp(
      static_cast<double>(step) / static_cast<double>(total_steps), 0.0, 1.0);
  return start + (end - start) * t;
}

}  // namespace ccq::core
