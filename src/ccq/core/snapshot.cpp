#include "ccq/core/snapshot.hpp"

#include <filesystem>

#include "ccq/tensor/serialize.hpp"

namespace ccq::core {

namespace {

// Reserved name for the precision-state record inside the tensor map.
// Two entries per layer: [bits, frozen].
constexpr const char* kStateKey = "__ccq_precision_state__";
// Reserved name for the rung trail (the ladder pick history).  Three
// entries per committed step: [layer, ladder_pos, val_acc].  Loaders
// look tensors up by name, so snapshots without it (and readers without
// this constant) interoperate freely.
constexpr const char* kTrailKey = "__ccq_rung_trail__";

void save_snapshot_impl(models::QuantModel& model, const std::string& path,
                        const RungTrail* trail) {
  TensorMap tensors;
  for (const auto* p : model.parameters()) {
    CCQ_CHECK(!tensors.count(p->name), "duplicate parameter " + p->name);
    tensors.emplace(p->name, p->value);
  }
  for (const auto& [name, tensor] : model.net().buffers()) {
    CCQ_CHECK(!tensors.count(name), "duplicate buffer " + name);
    tensors.emplace(name, *tensor);
  }
  const quant::LayerRegistry& registry = model.registry();
  Tensor state({registry.size(), 2});
  for (std::size_t i = 0; i < registry.size(); ++i) {
    state(i, 0) = static_cast<float>(registry.bits_of(i));
    state(i, 1) = registry.unit(i).frozen ? 1.0f : 0.0f;
  }
  tensors.emplace(kStateKey, std::move(state));
  if (trail != nullptr && !trail->empty()) {
    Tensor record({trail->size(), 3});
    for (std::size_t i = 0; i < trail->size(); ++i) {
      record(i, 0) = static_cast<float>((*trail)[i].layer);
      record(i, 1) = static_cast<float>((*trail)[i].ladder_pos);
      record(i, 2) = (*trail)[i].val_acc;
    }
    tensors.emplace(kTrailKey, std::move(record));
  }
  save_tensors(path, tensors);
}

}  // namespace

void save_snapshot(models::QuantModel& model, const std::string& path) {
  save_snapshot_impl(model, path, nullptr);
}

void save_snapshot(models::QuantModel& model, const std::string& path,
                   const RungTrail& trail) {
  save_snapshot_impl(model, path, &trail);
}

RungTrail load_trail(const std::string& path) {
  const TensorMap tensors = load_tensors(path);
  const auto it = tensors.find(kTrailKey);
  RungTrail trail;
  if (it == tensors.end()) return trail;
  const Tensor& record = it->second;
  CCQ_CHECK(record.rank() == 2 && record.dim(1) == 3,
            "snapshot " + path + ": malformed rung trail record " +
                shape_str(record.shape()));
  trail.reserve(record.dim(0));
  for (std::size_t i = 0; i < record.dim(0); ++i) {
    TrailStep step;
    step.layer = static_cast<std::size_t>(record(i, 0));
    step.ladder_pos = static_cast<std::size_t>(record(i, 1));
    step.val_acc = record(i, 2);
    trail.push_back(step);
  }
  return trail;
}

bool load_snapshot(models::QuantModel& model, const std::string& path) {
  if (!std::filesystem::exists(path)) return false;
  const TensorMap tensors = load_tensors(path);
  for (auto* p : model.parameters()) {
    const auto it = tensors.find(p->name);
    CCQ_CHECK(it != tensors.end(),
              "snapshot " + path + ": missing parameter '" + p->name + "'");
    CCQ_CHECK(it->second.shape() == p->value.shape(),
              "snapshot " + path + ": parameter '" + p->name + "' expects " +
                  shape_str(p->value.shape()) + ", found " +
                  shape_str(it->second.shape()));
    p->value = it->second;
  }
  for (auto& [name, tensor] : model.net().buffers()) {
    const auto it = tensors.find(name);
    CCQ_CHECK(it != tensors.end(),
              "snapshot " + path + ": missing buffer '" + name + "'");
    CCQ_CHECK(it->second.shape() == tensor->shape(),
              "snapshot " + path + ": buffer '" + name + "' expects " +
                  shape_str(tensor->shape()) + ", found " +
                  shape_str(it->second.shape()));
    *tensor = it->second;
  }
  const auto state_it = tensors.find(kStateKey);
  CCQ_CHECK(state_it != tensors.end(),
            "snapshot " + path + ": missing precision state record");
  const Tensor& state = state_it->second;
  quant::LayerRegistry& registry = model.registry();
  CCQ_CHECK(state.rank() == 2 && state.dim(0) == registry.size(),
            "snapshot " + path + ": precision state covers " +
                std::to_string(state.rank() == 2 ? state.dim(0) : 0) +
                " layers, this model has " + std::to_string(registry.size()));

  const auto& ladder = registry.ladder();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const int bits = static_cast<int>(state(i, 0));
    const bool frozen = state(i, 1) != 0.0f;
    if (frozen) {
      registry.force_bits(i, bits);
      continue;
    }
    CCQ_CHECK(!registry.unit(i).frozen,
              "snapshot un-freezes a frozen layer: " + registry.unit(i).name);
    if (bits >= 32) {
      // Full precision: reset hooks directly without a ladder position.
      registry.unit(i).weight_hook->set_bits(32);
      if (registry.unit(i).act != nullptr) {
        registry.unit(i).act->set_bits(32);
      }
      registry.unit(i).ladder_pos = 0;
      continue;
    }
    bool placed = false;
    for (std::size_t pos = 0; pos < ladder.size(); ++pos) {
      if (ladder.bits_at(pos) == bits) {
        registry.set_ladder_pos(i, pos);
        placed = true;
        break;
      }
    }
    CCQ_CHECK(placed, "snapshot " + path + ": layer '" +
                          registry.unit(i).name + "' stores " +
                          std::to_string(bits) +
                          " bits, not on this model's ladder (" +
                          ladder.str() + ")");
  }
  return true;
}

}  // namespace ccq::core
