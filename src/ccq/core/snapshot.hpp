// Quantized-model snapshots: parameters plus the per-layer precision
// state, so a CCQ run (or its result) can be persisted and resumed.
#pragma once

#include <string>

#include "ccq/core/trail.hpp"
#include "ccq/models/model.hpp"

namespace ccq::core {

/// Save every parameter and each registered layer's precision (ladder
/// position / frozen bits) to `path`.
void save_snapshot(models::QuantModel& model, const std::string& path);

/// Same, plus the controller's rung trail (the ladder pick history) as a
/// reserved tensor.  Loaders that predate the trail ignore the extra key
/// — the snapshot stays loadable either way; `load_trail` reads it back
/// for multi-point export.
void save_snapshot(models::QuantModel& model, const std::string& path,
                   const RungTrail& trail);

/// Read the rung trail stored by the trail-carrying `save_snapshot`
/// overload.  Returns an empty trail when the snapshot predates the
/// record; throws when the file itself is missing or unreadable.
RungTrail load_trail(const std::string& path);

/// Restore a snapshot into a structurally identical model (same builder,
/// same ladder).  Returns false when the file does not exist; throws on
/// shape/layer-count mismatches.
bool load_snapshot(models::QuantModel& model, const std::string& path);

}  // namespace ccq::core
