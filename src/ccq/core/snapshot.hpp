// Quantized-model snapshots: parameters plus the per-layer precision
// state, so a CCQ run (or its result) can be persisted and resumed.
#pragma once

#include <string>

#include "ccq/models/model.hpp"

namespace ccq::core {

/// Save every parameter and each registered layer's precision (ladder
/// position / frozen bits) to `path`.
void save_snapshot(models::QuantModel& model, const std::string& path);

/// Restore a snapshot into a structurally identical model (same builder,
/// same ladder).  Returns false when the file does not exist; throws on
/// shape/layer-count mismatches.
bool load_snapshot(models::QuantModel& model, const std::string& path);

}  // namespace ccq::core
