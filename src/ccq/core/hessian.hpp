// Per-layer Hessian analysis for the HAWQ baseline.
//
// HAWQ (Dong et al. 2019) ranks layers by the top eigenvalue of the
// layer's Hessian block and gives sensitive layers more bits.  The paper
// positions CCQ against it ("we do not need any second-order
// information").  To compare fairly we implement the second-order side
// too: a matrix-free power iteration where each Hessian-vector product
// is a central finite difference of gradients,
//     H_m v ≈ (g_m(w + εv) − g_m(w − εv)) / 2ε,
// which needs only the forward/backward machinery the library already
// has (no autograd-of-autograd).
#pragma once

#include "ccq/core/trainer.hpp"

namespace ccq::core {

struct HessianConfig {
  int power_iterations = 8;
  double fd_eps = 1e-3;          ///< finite-difference step (scaled by ‖v‖=1)
  std::size_t sample_count = 128;  ///< training samples for the loss
  std::uint64_t seed = 33;
};

/// Estimate the top Hessian eigenvalue of one registered layer's weight
/// block at the current parameters.
double hessian_top_eigenvalue(models::QuantModel& model,
                              const data::Dataset& train_set,
                              std::size_t layer,
                              const HessianConfig& config = {});

/// Top eigenvalue for every registered layer.
std::vector<double> hessian_spectrum(models::QuantModel& model,
                                     const data::Dataset& train_set,
                                     const HessianConfig& config = {});

/// HAWQ-style mixed-precision baseline using the true power-iteration
/// eigenvalues (cf. `hawq_proxy_quantize`, which uses the cheap Fisher
/// proxy): sensitivity_m = λ_max(H_m) · ‖w_m − Q(w_m)‖², layers ranked
/// and assigned ladder levels, then fine-tuned.
struct HawqResult {
  float accuracy = 0.0f;
  double compression = 1.0;
  std::vector<double> eigenvalues;
};

HawqResult hawq_hessian_quantize(models::QuantModel& model,
                                 const data::Dataset& train_set,
                                 const data::Dataset& val_set,
                                 const TrainConfig& finetune,
                                 const HessianConfig& config = {});

}  // namespace ccq::core
