#include "ccq/core/observers.hpp"

#include <ostream>

#include "ccq/common/telemetry.hpp"

namespace ccq::core {

namespace {

Json probs_array(const std::vector<double>& probs) {
  Json arr = Json::array();
  for (double p : probs) arr.push_back(p);
  return arr;
}

}  // namespace

void CcqTraceObserver::on_probe(const ProbeEvent& event) {
  Json record = Json::object();
  record.set("event", "probe");
  record.set("step", event.step);
  record.set("probe", event.probe_index);
  record.set("layer", event.layer);
  record.set("layer_name", event.layer_name);
  record.set("loss", static_cast<double>(event.loss));
  record.set("lambda", event.lambda);
  record.set("probs", probs_array(event.probabilities));
  record.set("pi", probs_array(event.pi));
  telemetry::trace_event(record);
}

void CcqTraceObserver::on_pick(const PickEvent& event) {
  Json record = Json::object();
  record.set("event", "pick");
  record.set("step", event.step);
  record.set("layer", event.layer);
  record.set("layer_name", event.layer_name);
  record.set("new_bits", event.new_bits);
  record.set("lambda", event.lambda);
  record.set("probs", probs_array(event.probabilities));
  record.set("compression", event.compression);
  telemetry::trace_event(record);
}

void CcqTraceObserver::on_recovery_epoch(const RecoveryEpochEvent& event) {
  Json record = Json::object();
  record.set("event", "recovery_epoch");
  record.set("step", event.step);
  record.set("epoch", event.epoch_in_step);
  record.set("global_epoch", event.global_epoch);
  record.set("train_loss", static_cast<double>(event.train_loss));
  record.set("val_loss", static_cast<double>(event.val_loss));
  record.set("val_acc", static_cast<double>(event.val_accuracy));
  record.set("lr", event.lr);
  telemetry::trace_event(record);
}

void CliProgressObserver::on_probe(const ProbeEvent& event) {
  if (!verbose_) return;
  os_ << "    probe " << event.probe_index << ": " << event.layer_name
      << " xi=" << event.loss << "\n";
}

void CliProgressObserver::on_pick(const PickEvent& event) {
  os_ << "step " << event.step << ": quantize " << event.layer_name << " -> "
      << event.new_bits << "b (p=" << event.probabilities[event.layer]
      << ", lambda=" << event.lambda << ", compression=" << event.compression
      << "x)\n";
}

void CliProgressObserver::on_recovery_epoch(const RecoveryEpochEvent& event) {
  os_ << (event.step < 0 ? "  initial epoch " : "  recovery epoch ")
      << event.epoch_in_step << ": val_acc=" << event.val_accuracy
      << " lr=" << event.lr << "\n";
}

}  // namespace ccq::core
