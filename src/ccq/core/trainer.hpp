// Training / evaluation loops shared by pretraining, the CCQ
// collaboration stage and every baseline.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ccq/common/workspace.hpp"
#include "ccq/data/dataset.hpp"
#include "ccq/models/model.hpp"
#include "ccq/nn/optim.hpp"
#include "ccq/nn/schedule.hpp"

namespace ccq::core {

struct EvalResult {
  float loss = 0.0f;
  float accuracy = 0.0f;
};

// The trainer entry points follow the Module convention: the primary
// overload takes a trailing `Workspace&` (like `forward(x, ws)`), and a
// workspace-less shim routes through the process-global scratch pool.

/// Forward-only evaluation over a dataset in eval mode (chunked so memory
/// stays bounded).  This is also the competition's probe primitive.  The
/// Workspace reuses buffers across chunks and calls.
EvalResult evaluate(models::QuantModel& model, const data::Dataset& dataset,
                    std::size_t chunk, Workspace& ws);
inline EvalResult evaluate(models::QuantModel& model,
                           const data::Dataset& dataset,
                           std::size_t chunk = 128) {
  return evaluate(model, dataset, chunk, Workspace::scratch());
}

/// Evaluate on a fixed pre-gathered batch (used for fast probes on a
/// validation subset — paper §III.B calls this "a simple feed-forward on
/// a small validation set").  Warm calls perform zero float-storage heap
/// allocations (regression-tested in workspace_test).
EvalResult evaluate_batch(models::QuantModel& model, const data::Batch& batch,
                          std::size_t chunk, Workspace& ws);
inline EvalResult evaluate_batch(models::QuantModel& model,
                                 const data::Batch& batch,
                                 std::size_t chunk = 128) {
  return evaluate_batch(model, batch, chunk, Workspace::scratch());
}

/// One epoch of SGD over the loader; returns mean training loss.
float train_epoch(models::QuantModel& model, nn::Sgd& optimizer,
                  data::DataLoader& loader, Workspace& ws);
inline float train_epoch(models::QuantModel& model, nn::Sgd& optimizer,
                         data::DataLoader& loader) {
  return train_epoch(model, optimizer, loader, Workspace::scratch());
}

/// Per-epoch statistics recorded during any training run.
struct EpochStat {
  int epoch = 0;
  float train_loss = 0.0f;
  float val_loss = 0.0f;
  float val_accuracy = 0.0f;
  double lr = 0.0;
  std::string event;  ///< e.g. "quantize conv3 -> 4b" markers for Fig 2
};

struct TrainConfig {
  int epochs = 10;
  std::size_t batch_size = 32;
  nn::SgdConfig sgd;
  data::Augment augment;
  std::uint64_t seed = 99;
  /// When > 0 (and no explicit schedule is passed to train()), the
  /// learning rate is multiplied by `lr_decay` every `lr_decay_every`
  /// epochs — the standard step schedule used for baseline pretraining.
  int lr_decay_every = 0;
  double lr_decay = 0.1;
};

/// Train from the current parameters; returns the per-epoch curve.
std::vector<EpochStat> train(models::QuantModel& model,
                             const data::Dataset& train_set,
                             const data::Dataset& val_set,
                             const TrainConfig& config,
                             nn::LrSchedule* schedule = nullptr);

/// Pretrain-with-cache: if `cache_path` exists, load parameters instead
/// of training; otherwise train and save.  Returns the fp32 baseline
/// validation result either way.
EvalResult pretrain_cached(models::QuantModel& model,
                           const data::Dataset& train_set,
                           const data::Dataset& val_set,
                           const TrainConfig& config,
                           const std::string& cache_path);

/// Save / load all model parameters by name.
void save_parameters(models::QuantModel& model, const std::string& path);
bool load_parameters(models::QuantModel& model, const std::string& path);

}  // namespace ccq::core
