// Exponential-weights competition learner (paper §III.B, Algorithm 1
// lines 6–11).
//
// Each layer is an expert; its weight π_m decays exponentially in the
// validation loss observed when that layer is probed one ladder level
// down: π_m ← π_m · exp(−γ ξ_m).  Layers already at the ladder floor are
// *sleeping experts*: they keep their weight but are excluded from the
// distribution until (never, in CCQ's monotone setting) they wake.
// Eq. (7)'s memory-aware mixing and the λ schedule also live here.
#pragma once

#include <cstddef>
#include <vector>

#include "ccq/common/rng.hpp"

namespace ccq::core {

/// Hedge / exponentially-weighted-average forecaster over layers with
/// sleeping experts.
class HedgeCompetition {
 public:
  /// `gamma` is the learning rate of the exponential update.
  HedgeCompetition(std::size_t num_layers, double gamma);

  std::size_t size() const { return pi_.size(); }
  double gamma() const { return gamma_; }

  /// Record a probe result: layer `m` incurred validation loss `xi`.
  void update(std::size_t m, double xi);

  /// Current distribution over awake layers (Eq. 6).  `awake[m]` must be
  /// false for sleeping experts; their probability is 0.  Throws if every
  /// layer sleeps.
  std::vector<double> probabilities(const std::vector<bool>& awake) const;

  /// Eq. (7): p_new = (1−λ)·p + λ·memory_share, restricted to awake
  /// layers and renormalised (sleeping layers keep probability 0).
  std::vector<double> memory_mixed_probabilities(
      const std::vector<bool>& awake, const std::vector<double>& memory_share,
      double lambda) const;

  /// Sample an index from a probability vector.
  static std::size_t sample(const std::vector<double>& probs, Rng& rng);

  /// Raw expert weights (for inspection/tests).
  const std::vector<double>& weights() const { return pi_; }

  /// Overwrite the expert weights (controller state restore).
  void set_weights(const std::vector<double>& pi);

 private:
  std::vector<double> pi_;
  double gamma_;
};

/// Linear λ decay (paper §IV.c): λ(t) goes from `start` to `end` over
/// `total_steps` quantization steps.
double lambda_at_step(double start, double end, int step, int total_steps);

}  // namespace ccq::core
