// Baselines CCQ is compared against in Tables I and II.
//
//   * One-shot: snap every layer straight to the target precision and
//     fine-tune (how DoReFa/WRPN/PACT/… are normally trained).
//   * HAWQ-proxy: mixed-precision assignment ordered by a second-order
//     sensitivity *proxy* (per-layer Fisher information — mean squared
//     gradient — times the layer's quantization perturbation), standing
//     in for HAWQ's Hessian eigenvalue analysis; bits are assigned by
//     sensitivity rank under a model-size budget, then fine-tuned.
#pragma once

#include "ccq/core/trainer.hpp"

namespace ccq::core {

struct OneShotResult {
  float accuracy = 0.0f;
  double compression = 1.0;
};

/// Set every non-frozen layer to ladder position `pos` (default: the
/// floor) and fine-tune for `epochs`.
OneShotResult one_shot_quantize(models::QuantModel& model,
                                const data::Dataset& train_set,
                                const data::Dataset& val_set,
                                const TrainConfig& finetune,
                                std::size_t ladder_pos);

/// Per-layer sensitivity: mean over a batch of ‖∂L/∂W_m‖² (Fisher proxy)
/// scaled by the layer's quantization error at the ladder floor — cheap
/// stand-in for HAWQ's Hessian trace.
std::vector<double> fisher_sensitivity(models::QuantModel& model,
                                       const data::Dataset& train_set,
                                       std::size_t sample_count = 256);

/// HAWQ-style mixed-precision assignment: most sensitive layers get the
/// ladder's highest precision, least sensitive the lowest, splitting the
/// ranked list evenly across ladder levels.  Fine-tunes afterwards.
OneShotResult hawq_proxy_quantize(models::QuantModel& model,
                                  const data::Dataset& train_set,
                                  const data::Dataset& val_set,
                                  const TrainConfig& finetune);

}  // namespace ccq::core
