// Stock CcqObserver implementations.
//
//   * CcqTraceObserver — bridges controller events into the telemetry
//     JSONL trace sink (one compact object per line; schema below and in
//     docs/OBSERVABILITY.md).  The controller attaches one automatically
//     whenever a trace sink is configured (`CCQ_TRACE=<path>` or
//     `telemetry::set_trace_path`).
//   * CliProgressObserver — human-readable per-step progress for the
//     `ccq` CLI, printed to an arbitrary stream.
//
// Event schema (every line has an "event" discriminator):
//   {"event":"probe","step":N,"probe":u,"layer":m,"layer_name":s,
//    "loss":ξ,"lambda":λ,"probs":[...],"pi":[...]}
//   {"event":"pick","step":N,"layer":m,"layer_name":s,"new_bits":b,
//    "lambda":λ,"probs":[...],"compression":c}
//   {"event":"recovery_epoch","step":N,"epoch":k,"global_epoch":e,
//    "train_loss":x,"val_loss":y,"val_acc":a,"lr":l}
#pragma once

#include <iosfwd>

#include "ccq/core/controller.hpp"

namespace ccq::core {

/// Writes every controller event to the telemetry trace sink.
class CcqTraceObserver : public CcqObserver {
 public:
  void on_probe(const ProbeEvent& event) override;
  void on_pick(const PickEvent& event) override;
  void on_recovery_epoch(const RecoveryEpochEvent& event) override;
};

/// Prints compact per-step progress lines (picks and recovery epochs;
/// probes only when `verbose`).
class CliProgressObserver : public CcqObserver {
 public:
  explicit CliProgressObserver(std::ostream& os, bool verbose = false)
      : os_(os), verbose_(verbose) {}

  void on_probe(const ProbeEvent& event) override;
  void on_pick(const PickEvent& event) override;
  void on_recovery_epoch(const RecoveryEpochEvent& event) override;

 private:
  std::ostream& os_;
  bool verbose_;
};

}  // namespace ccq::core
