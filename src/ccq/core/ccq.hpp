// The Competitive-Collaborative Quantization controller — Algorithm 1 of
// the paper, with Eq. (7) memory-aware selection and the adaptive
// recovery scheme of §IV.f.
#pragma once

#include <string>
#include <vector>

#include "ccq/core/hedge.hpp"
#include "ccq/core/trainer.hpp"

namespace ccq::core {

enum class RecoveryMode {
  kManual,    ///< fixed fine-tuning epoch count per quantization step
  kAdaptive,  ///< fine-tune until validation accuracy recovers a threshold
};

/// How the competition picks the layer to quantize (ablations of the
/// paper's design; DESIGN.md §6).
enum class SelectionRule {
  kHedgeMemory,  ///< the paper: Hedge probes + Eq. 7 memory mixing
  kExp3Memory,   ///< bandit variant: importance-weighted (ξ/p) updates
  kRandom,       ///< uniform over awake layers, no probes (ablation)
  kMemoryOnly,   ///< proportional to memory share, no probes (ablation)
};

std::string selection_rule_str(SelectionRule rule);

struct CcqConfig {
  // ---- competition (Algorithm 1 lines 6–11) ----
  SelectionRule selection = SelectionRule::kHedgeMemory;
  int probes_per_step = 8;   ///< U: probe evaluations per quantization step
  double gamma = 4.0;        ///< Hedge learning rate γ
  std::size_t probe_samples = 256;  ///< validation subset size for probes

  // ---- memory-aware mixing (Eq. 7) ----
  bool memory_aware = true;
  double lambda_start = 0.7;  ///< λ at the first quantization step
  double lambda_end = 0.1;    ///< λ at the last step (linear decay)

  // ---- collaboration (lines 14–18) ----
  RecoveryMode recovery = RecoveryMode::kAdaptive;
  int manual_recovery_epochs = 1;     ///< S_t when recovery == kManual
  float recovery_drop_threshold = 0.01f;  ///< recover to baseline − this
  int max_recovery_epochs = 4;        ///< budget cap per step (adaptive)
  TrainConfig finetune;               ///< optimizer/loader settings
  nn::HybridPlateauCosineLr::Config hybrid_lr;  ///< §IV.g schedule

  // ---- initial quantization ----
  int initial_recovery_epochs = 1;  ///< fine-tune after the N(0) snap

  // ---- loop control ----
  int max_steps = -1;  ///< −1: run until every layer sleeps
  std::uint64_t seed = 2020;
};

/// One quantization step's record (drives Table I/II and Fig 1–3).
struct StepRecord {
  int step = 0;
  std::size_t layer = 0;
  std::string layer_name;
  int new_bits = 0;
  double lambda = 0.0;
  float val_acc_before_recovery = 0.0f;  ///< the Fig 2 "valley"
  float val_acc_after_recovery = 0.0f;   ///< the Fig 2 "peak"
  int recovery_epochs = 0;
  double compression = 1.0;
  std::vector<double> pick_probabilities;  ///< distribution at pick time
};

struct CcqResult {
  float baseline_accuracy = 0.0f;  ///< after initial N(0) quantization
  float final_accuracy = 0.0f;
  double final_compression = 1.0;
  std::vector<StepRecord> steps;
  std::vector<EpochStat> curve;  ///< full per-epoch trace (Fig 2)
  std::vector<int> final_bits;   ///< per registered layer
};

/// Run Algorithm 1 on a (typically pretrained) model.  The model's
/// registry defines the layer set and the bit ladder; frozen layers are
/// never touched (they compete as permanently sleeping experts).
///
/// This is a convenience shim over `CcqController` (controller.hpp):
/// construct, `init()`, loop `step()` until `done()`, `result()`.  Use
/// the controller directly for step-granular control, observer hooks
/// (`CcqObserver`), or save/resume (`save_state`/`load_state`).
CcqResult run_ccq(models::QuantModel& model, const data::Dataset& train_set,
                  const data::Dataset& val_set, const CcqConfig& config);

}  // namespace ccq::core
