#include "ccq/core/ccq.hpp"

#include <algorithm>

#include "ccq/common/logging.hpp"

namespace ccq::core {

namespace {

/// Gather a fixed probe subset (first `count` validation samples —
/// deterministic, and the validation set is already shuffled at
/// generation time).
data::Batch make_probe_batch(const data::Dataset& val_set,
                             std::size_t count) {
  std::vector<std::size_t> indices;
  const std::size_t take = std::min(count, val_set.size());
  indices.reserve(take);
  for (std::size_t i = 0; i < take; ++i) indices.push_back(i);
  return val_set.gather(indices);
}

std::vector<bool> awake_mask(const quant::LayerRegistry& registry) {
  std::vector<bool> awake(registry.size());
  for (std::size_t i = 0; i < registry.size(); ++i) {
    awake[i] = !registry.sleeping(i);
  }
  return awake;
}

/// Number of down-steps remaining over all layers = natural value of T.
int total_steps_remaining(const quant::LayerRegistry& registry) {
  int steps = 0;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    if (registry.unit(i).frozen) continue;
    steps += static_cast<int>(registry.ladder().size() - 1 -
                              registry.unit(i).ladder_pos);
  }
  return steps;
}

}  // namespace

std::string selection_rule_str(SelectionRule rule) {
  switch (rule) {
    case SelectionRule::kHedgeMemory: return "hedge+memory";
    case SelectionRule::kExp3Memory: return "exp3+memory";
    case SelectionRule::kRandom: return "random";
    case SelectionRule::kMemoryOnly: return "memory-only";
  }
  return "?";
}

CcqResult run_ccq(models::QuantModel& model, const data::Dataset& train_set,
                  const data::Dataset& val_set, const CcqConfig& config) {
  CCQ_CHECK(config.probes_per_step > 0, "need at least one probe per step");
  quant::LayerRegistry& registry = model.registry();
  CCQ_CHECK(registry.size() > 0, "model has no quantizable layers");

  CcqResult result;
  Rng rng(config.seed);
  const data::Batch probe_batch =
      make_probe_batch(val_set, config.probe_samples);
  // One workspace for the whole controller run: the probe loop, the
  // recovery epochs and every validation pass recycle the same buffers,
  // so steady-state steps perform no float-storage allocations.
  Workspace ws;

  // ---- initial quantization: every layer to N(0) (Algorithm 1 line 3).
  registry.set_all(0);
  data::DataLoader loader(train_set, config.finetune.batch_size,
                          config.finetune.augment, Rng(config.seed ^ 0x5eedULL));
  nn::Sgd optimizer(model.parameters(), config.finetune.sgd);
  nn::HybridPlateauCosineLr schedule(config.hybrid_lr);
  int epoch_counter = 0;

  auto record_epoch = [&](float train_loss, const EvalResult& val,
                          const std::string& event) {
    EpochStat stat;
    stat.epoch = epoch_counter++;
    stat.train_loss = train_loss;
    stat.val_loss = val.loss;
    stat.val_accuracy = val.accuracy;
    stat.lr = optimizer.lr();
    stat.event = event;
    result.curve.push_back(stat);
  };

  for (int e = 0; e < config.initial_recovery_epochs; ++e) {
    const float train_loss = train_epoch(model, optimizer, loader, &ws);
    const EvalResult val = evaluate(model, val_set, 128, &ws);
    record_epoch(train_loss, val,
                 e == 0 ? "initial quantization to " +
                              std::to_string(registry.ladder().initial_bits()) +
                              "b"
                        : "");
    optimizer.set_lr(schedule.next(val.accuracy));
  }
  result.baseline_accuracy = evaluate(model, val_set, 128, &ws).accuracy;
  const float recovery_target =
      result.baseline_accuracy - config.recovery_drop_threshold;
  CCQ_LOG_INFO << "CCQ " << model.name() << ": baseline@"
               << registry.ladder().initial_bits()
               << "b acc=" << result.baseline_accuracy << " ladder "
               << registry.ladder().str();

  // ---- competition / collaboration loop (Algorithm 1 lines 4–19).
  HedgeCompetition hedge(registry.size(), config.gamma);
  const int planned_steps = total_steps_remaining(registry);
  int step = 0;
  while (!registry.all_sleeping() &&
         (config.max_steps < 0 || step < config.max_steps)) {
    const double lambda =
        config.memory_aware
            ? lambda_at_step(config.lambda_start, config.lambda_end, step,
                             std::max(planned_steps - 1, 1))
            : 0.0;
    const auto awake = awake_mask(registry);
    const auto shares = registry.memory_shares();

    // Competition: U probes with exponential-weight updates on the
    // sampled layer (lines 6–10).  The ablation rules skip the probes.
    const bool probing = config.selection == SelectionRule::kHedgeMemory ||
                         config.selection == SelectionRule::kExp3Memory;
    if (probing) {
      for (int u = 0; u < config.probes_per_step; ++u) {
        const auto probs =
            hedge.memory_mixed_probabilities(awake, shares, lambda);
        const std::size_t m = HedgeCompetition::sample(probs, rng);
        float probe_loss = 0.0f;
        {
          quant::LayerRegistry::ProbeGuard guard(registry, m);
          probe_loss = evaluate_batch(model, probe_batch, 128, &ws).loss;
        }
        if (config.selection == SelectionRule::kExp3Memory) {
          // EXP3: importance-weight the observed loss so rarely-probed
          // layers are not starved of feedback.
          hedge.update(m, probe_loss / std::max(probs[m], 1e-6));
        } else {
          hedge.update(m, probe_loss);
        }
      }
    }

    // Draw the winner m_t from the final distribution (line 11).
    std::vector<double> final_probs;
    switch (config.selection) {
      case SelectionRule::kHedgeMemory:
      case SelectionRule::kExp3Memory:
        final_probs = hedge.memory_mixed_probabilities(awake, shares, lambda);
        break;
      case SelectionRule::kRandom: {
        final_probs.assign(registry.size(), 0.0);
        std::size_t awake_count = 0;
        for (bool a : awake) awake_count += a ? 1 : 0;
        for (std::size_t m = 0; m < awake.size(); ++m) {
          if (awake[m]) {
            final_probs[m] = 1.0 / static_cast<double>(awake_count);
          }
        }
        break;
      }
      case SelectionRule::kMemoryOnly:
        final_probs = hedge.memory_mixed_probabilities(awake, shares, 1.0);
        break;
    }
    const std::size_t winner = HedgeCompetition::sample(final_probs, rng);
    registry.step_down(winner);

    StepRecord record;
    record.step = step;
    record.layer = winner;
    record.layer_name = registry.unit(winner).name;
    record.new_bits = registry.bits_of(winner);
    record.lambda = lambda;
    record.pick_probabilities = final_probs;
    record.val_acc_before_recovery = evaluate(model, val_set, 128, &ws).accuracy;

    // Collaboration: fine-tune all layers (lines 14–18).
    int recovery_epochs = 0;
    float acc = record.val_acc_before_recovery;
    const int budget = config.recovery == RecoveryMode::kManual
                           ? config.manual_recovery_epochs
                           : config.max_recovery_epochs;
    while (recovery_epochs < budget) {
      const float train_loss = train_epoch(model, optimizer, loader, &ws);
      const EvalResult val = evaluate(model, val_set, 128, &ws);
      acc = val.accuracy;
      record_epoch(train_loss, val,
                   recovery_epochs == 0
                       ? "quantize " + record.layer_name + " -> " +
                             std::to_string(record.new_bits) + "b"
                       : "");
      optimizer.set_lr(schedule.next(val.accuracy));
      ++recovery_epochs;
      if (config.recovery == RecoveryMode::kAdaptive &&
          acc >= recovery_target) {
        break;  // recovered — stop early (paper: some steps need 1 epoch)
      }
    }
    record.recovery_epochs = recovery_epochs;
    record.val_acc_after_recovery = acc;
    record.compression = registry.compression_ratio();
    CCQ_LOG_INFO << "CCQ step " << step << ": " << record.layer_name << " -> "
                 << record.new_bits << "b, acc " << std::to_string(acc)
                 << " (valley " << record.val_acc_before_recovery
                 << "), compression " << record.compression << "x";
    result.steps.push_back(std::move(record));
    ++step;
  }

  result.final_accuracy = evaluate(model, val_set, 128, &ws).accuracy;
  result.final_compression = registry.compression_ratio();
  result.final_bits.reserve(registry.size());
  for (std::size_t i = 0; i < registry.size(); ++i) {
    result.final_bits.push_back(registry.bits_of(i));
  }
  return result;
}

}  // namespace ccq::core
