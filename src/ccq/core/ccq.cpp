#include "ccq/core/ccq.hpp"

#include "ccq/core/controller.hpp"

namespace ccq::core {

std::string selection_rule_str(SelectionRule rule) {
  switch (rule) {
    case SelectionRule::kHedgeMemory: return "hedge+memory";
    case SelectionRule::kExp3Memory: return "exp3+memory";
    case SelectionRule::kRandom: return "random";
    case SelectionRule::kMemoryOnly: return "memory-only";
  }
  return "?";
}

CcqResult run_ccq(models::QuantModel& model, const data::Dataset& train_set,
                  const data::Dataset& val_set, const CcqConfig& config) {
  // Thin shim over the step-wise controller (controller.hpp): identical
  // seeds produce identical StepRecord sequences, bit allocations and
  // accuracies, and the telemetry trace/metrics hooks come for free.
  CcqController controller(model, train_set, val_set, config);
  controller.init();
  while (!controller.done()) controller.step();
  return controller.result();
}

}  // namespace ccq::core
