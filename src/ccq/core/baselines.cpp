#include "ccq/core/baselines.hpp"

#include <algorithm>
#include <numeric>

#include "ccq/common/logging.hpp"
#include "ccq/nn/loss.hpp"
#include "ccq/quant/uniform.hpp"

namespace ccq::core {

OneShotResult one_shot_quantize(models::QuantModel& model,
                                const data::Dataset& train_set,
                                const data::Dataset& val_set,
                                const TrainConfig& finetune,
                                std::size_t ladder_pos) {
  model.registry().set_all(ladder_pos);
  train(model, train_set, val_set, finetune);
  OneShotResult result;
  result.accuracy = evaluate(model, val_set).accuracy;
  result.compression = model.registry().compression_ratio();
  return result;
}

std::vector<double> fisher_sensitivity(models::QuantModel& model,
                                       const data::Dataset& train_set,
                                       std::size_t sample_count) {
  quant::LayerRegistry& registry = model.registry();
  // One forward/backward over a sample batch accumulates gradients.
  std::vector<std::size_t> indices;
  const std::size_t take = std::min(sample_count, train_set.size());
  for (std::size_t i = 0; i < take; ++i) indices.push_back(i);
  const data::Batch batch = train_set.gather(indices);

  for (auto* p : model.parameters()) p->zero_grad();
  model.set_training(true);
  nn::SoftmaxCrossEntropy loss;
  Workspace& ws = Workspace::scratch();
  const Tensor logits = model.forward(batch.images, ws);
  loss.forward(logits, batch.labels);
  model.backward(loss.backward(), ws);

  // Map parameter gradients back to registry units by name.
  std::vector<double> sensitivity(registry.size(), 0.0);
  auto params = model.parameters();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const auto& unit = registry.unit(i);
    const nn::Parameter* weight = nullptr;
    for (const auto* p : params) {
      if (p->name == unit.name + ".weight") {
        weight = p;
        break;
      }
    }
    CCQ_CHECK(weight != nullptr, "no weight parameter for " + unit.name);
    const double fisher = static_cast<double>(weight->grad.sqnorm()) /
                          static_cast<double>(weight->numel());
    // Quantization perturbation at the ladder floor: ‖w − Q(w)‖²/n with a
    // max-|w| clip (policy-independent estimate).
    const float clip = std::max(
        {std::abs(weight->value.max()), std::abs(weight->value.min()), 1e-8f});
    const double perturb = static_cast<double>(quant::quantization_mse(
        weight->value, registry.ladder().final_bits(), clip));
    sensitivity[i] = fisher * perturb;
  }
  for (auto* p : model.parameters()) p->zero_grad();
  return sensitivity;
}

OneShotResult hawq_proxy_quantize(models::QuantModel& model,
                                  const data::Dataset& train_set,
                                  const data::Dataset& val_set,
                                  const TrainConfig& finetune) {
  quant::LayerRegistry& registry = model.registry();
  const auto sensitivity = fisher_sensitivity(model, train_set);

  // Rank layers by sensitivity (descending) and split the ranking evenly
  // across ladder levels: most sensitive at N(0), least at N(K−1).
  std::vector<std::size_t> order(registry.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sensitivity[a] > sensitivity[b];
  });
  const std::size_t levels = registry.ladder().size();
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t pos =
        std::min(levels - 1, rank * levels / order.size());
    if (!registry.unit(order[rank]).frozen) {
      registry.set_ladder_pos(order[rank], pos);
    }
  }
  CCQ_LOG_INFO << "HAWQ-proxy bits: " << registry.bits_str();

  train(model, train_set, val_set, finetune);
  OneShotResult result;
  result.accuracy = evaluate(model, val_set).accuracy;
  result.compression = registry.compression_ratio();
  return result;
}

}  // namespace ccq::core
