#include "ccq/core/trainer.hpp"

#include <filesystem>

#include "ccq/common/logging.hpp"
#include "ccq/common/telemetry.hpp"
#include "ccq/nn/loss.hpp"
#include "ccq/tensor/serialize.hpp"

namespace ccq::core {

namespace {

/// Slice `batch` rows [lo, hi) into `out`, reusing its capacity.  Steady
/// state (fixed chunk width) performs no allocations.
void slice_batch_into(const data::Batch& batch, std::size_t lo,
                      std::size_t hi, data::Batch& out) {
  const std::size_t n = hi - lo;
  const std::size_t sample = batch.images.numel() / batch.size();
  Shape shape = batch.images.shape();
  shape[0] = n;
  out.images.resize(shape);
  const float* src = batch.images.data().data() + lo * sample;
  std::copy(src, src + n * sample, out.images.data().data());
  out.labels.assign(batch.labels.begin() + static_cast<long>(lo),
                    batch.labels.begin() + static_cast<long>(hi));
}

}  // namespace

EvalResult evaluate_batch(models::QuantModel& model, const data::Batch& batch,
                          std::size_t chunk, Workspace& ws) {
  CCQ_CHECK(batch.size() > 0, "empty evaluation batch");
  telemetry::ScopedTimer timer(telemetry::Timer::kProbeEval);
  model.set_training(false);
  nn::SoftmaxCrossEntropy loss(ws);
  double total_loss = 0.0, total_correct = 0.0;
  // The chunk staging batch is pool-backed and reused across chunks (the
  // first chunk is the widest, so later resizes stay within capacity).
  data::Batch part;
  {
    Shape shape = batch.images.shape();
    shape[0] = std::min(batch.size(), chunk);
    part.images = ws.tensor_uninit(std::move(shape));
  }
  for (std::size_t lo = 0; lo < batch.size(); lo += chunk) {
    const std::size_t hi = std::min(batch.size(), lo + chunk);
    slice_batch_into(batch, lo, hi, part);
    Tensor logits = model.forward(part.images, ws);
    total_loss += static_cast<double>(loss.forward(logits, part.labels)) *
                  static_cast<double>(part.size());
    total_correct +=
        static_cast<double>(
            nn::SoftmaxCrossEntropy::accuracy(logits, part.labels)) *
        static_cast<double>(part.size());
    ws.recycle(std::move(logits));
  }
  ws.recycle(std::move(part.images));
  model.set_training(true);
  EvalResult result;
  result.loss =
      static_cast<float>(total_loss / static_cast<double>(batch.size()));
  result.accuracy =
      static_cast<float>(total_correct / static_cast<double>(batch.size()));
  return result;
}

EvalResult evaluate(models::QuantModel& model, const data::Dataset& dataset,
                    std::size_t chunk, Workspace& ws) {
  return evaluate_batch(model, dataset.all(), chunk, ws);
}

float train_epoch(models::QuantModel& model, nn::Sgd& optimizer,
                  data::DataLoader& loader, Workspace& ws) {
  model.set_training(true);
  nn::SoftmaxCrossEntropy loss(ws);
  loader.start_epoch();
  data::Batch batch;
  Tensor grad_logits;  // pool-backed below; backward_into reuses capacity
  double total = 0.0;
  std::size_t samples = 0;
  while (loader.next(batch)) {
    optimizer.zero_grad();
    Tensor logits = model.forward(batch.images, ws);
    const float batch_loss = loss.forward(logits, batch.labels);
    if (grad_logits.empty()) {
      // First batch is the widest, so this capacity covers the epoch.
      grad_logits = ws.tensor_uninit(logits.shape());
    }
    ws.recycle(std::move(logits));
    loss.backward_into(grad_logits);
    Tensor grad_in = model.backward(grad_logits, ws);
    ws.recycle(std::move(grad_in));
    optimizer.step();
    total += static_cast<double>(batch_loss) *
             static_cast<double>(batch.size());
    samples += batch.size();
  }
  if (!grad_logits.empty()) ws.recycle(std::move(grad_logits));
  CCQ_CHECK(samples > 0, "empty training epoch");
  return static_cast<float>(total / static_cast<double>(samples));
}

std::vector<EpochStat> train(models::QuantModel& model,
                             const data::Dataset& train_set,
                             const data::Dataset& val_set,
                             const TrainConfig& config,
                             nn::LrSchedule* schedule) {
  data::DataLoader loader(train_set, config.batch_size, config.augment,
                          Rng(config.seed));
  nn::Sgd optimizer(model.parameters(), config.sgd);
  std::optional<nn::StepDecayLr> step_decay;
  if (schedule == nullptr && config.lr_decay_every > 0) {
    step_decay.emplace(config.sgd.lr, config.lr_decay_every, config.lr_decay);
    schedule = &*step_decay;
  }
  std::vector<EpochStat> stats;
  stats.reserve(static_cast<std::size_t>(config.epochs));
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const float train_loss = train_epoch(model, optimizer, loader);
    const EvalResult val = evaluate(model, val_set);
    EpochStat stat;
    stat.epoch = epoch;
    stat.train_loss = train_loss;
    stat.val_loss = val.loss;
    stat.val_accuracy = val.accuracy;
    stat.lr = optimizer.lr();
    stats.push_back(stat);
    CCQ_LOG_DEBUG << model.name() << " epoch " << epoch << " train_loss "
                  << train_loss << " val_acc " << val.accuracy;
    if (schedule != nullptr) {
      optimizer.set_lr(schedule->next(val.accuracy));
    }
  }
  return stats;
}

void save_parameters(models::QuantModel& model, const std::string& path) {
  TensorMap tensors;
  for (const auto* p : model.parameters()) {
    CCQ_CHECK(!tensors.count(p->name), "duplicate parameter name " + p->name);
    tensors.emplace(p->name, p->value);
  }
  // Persist non-learnable state too (BN running statistics) — without it
  // a reloaded model evaluates with uncalibrated normalisation.
  for (const auto& [name, tensor] : model.net().buffers()) {
    CCQ_CHECK(!tensors.count(name), "duplicate buffer name " + name);
    tensors.emplace(name, *tensor);
  }
  save_tensors(path, tensors);
}

bool load_parameters(models::QuantModel& model, const std::string& path) {
  if (!std::filesystem::exists(path)) return false;
  const TensorMap tensors = load_tensors(path);
  for (auto* p : model.parameters()) {
    const auto it = tensors.find(p->name);
    CCQ_CHECK(it != tensors.end(), "checkpoint missing " + p->name);
    CCQ_CHECK(it->second.shape() == p->value.shape(),
              "checkpoint shape mismatch for " + p->name);
    p->value = it->second;
  }
  for (auto& [name, tensor] : model.net().buffers()) {
    const auto it = tensors.find(name);
    CCQ_CHECK(it != tensors.end(), "checkpoint missing buffer " + name);
    CCQ_CHECK(it->second.shape() == tensor->shape(),
              "checkpoint shape mismatch for buffer " + name);
    *tensor = it->second;
  }
  return true;
}

EvalResult pretrain_cached(models::QuantModel& model,
                           const data::Dataset& train_set,
                           const data::Dataset& val_set,
                           const TrainConfig& config,
                           const std::string& cache_path) {
  if (!cache_path.empty() && load_parameters(model, cache_path)) {
    CCQ_LOG_INFO << model.name() << ": loaded pretrained parameters from "
                 << cache_path;
    return evaluate(model, val_set);
  }
  CCQ_LOG_INFO << model.name() << ": pretraining for " << config.epochs
               << " epochs";
  const auto stats = train(model, train_set, val_set, config);
  if (!cache_path.empty()) {
    const auto parent = std::filesystem::path(cache_path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    save_parameters(model, cache_path);
  }
  return evaluate(model, val_set);
}

}  // namespace ccq::core
