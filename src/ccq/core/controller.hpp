// Step-wise CCQ controller: Algorithm 1 exposed at `step()` granularity.
//
// `run_ccq` (ccq.hpp) remains the one-call entry point, but it is now a
// thin shim over this class.  The controller makes the loop observable
// (a `CcqObserver` hook fires on every probe, pick and recovery epoch —
// the telemetry trace sink and the CLI progress printer both implement
// it) and resumable (`save_state`/`load_state` persist the loop state —
// RNG streams, Hedge weights, optimizer momentum, LR-schedule state —
// and compose with core/snapshot for the model parameters + precision,
// so an interrupted run continues bit-identically).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ccq/core/ccq.hpp"
#include "ccq/core/trail.hpp"

namespace ccq::core {

/// One competition probe (Algorithm 1 lines 6–10).  `probabilities` is
/// the distribution the layer was sampled from; `pi` is the Hedge weight
/// vector *after* the exponential update for this probe.
struct ProbeEvent {
  int step = 0;
  int probe_index = 0;
  std::size_t layer = 0;
  const std::string& layer_name;
  float loss = 0.0f;  ///< probe validation loss ξ
  double lambda = 0.0;
  const std::vector<double>& probabilities;
  const std::vector<double>& pi;
};

/// The committed quantization decision (line 11): winner drawn from the
/// Eq. 7 λ-mixed distribution and stepped one ladder level down.
struct PickEvent {
  int step = 0;
  std::size_t layer = 0;
  const std::string& layer_name;
  int new_bits = 0;
  double lambda = 0.0;
  const std::vector<double>& probabilities;
  double compression = 1.0;  ///< ratio after the step-down
};

/// One collaboration fine-tuning epoch (lines 14–18).  `step` is −1 for
/// the initial-quantization recovery epochs that precede step 0.
struct RecoveryEpochEvent {
  int step = 0;
  int epoch_in_step = 0;  ///< 0-based within this quantization step
  int global_epoch = 0;   ///< index into the run-wide epoch curve
  float train_loss = 0.0f;
  float val_loss = 0.0f;
  float val_accuracy = 0.0f;
  double lr = 0.0;  ///< rate the epoch was trained with
};

/// Observer hooks fired synchronously from the controller loop.  All
/// default to no-ops; implementations must not mutate the model.
class CcqObserver {
 public:
  virtual ~CcqObserver() = default;
  virtual void on_probe(const ProbeEvent& event) { (void)event; }
  virtual void on_pick(const PickEvent& event) { (void)event; }
  virtual void on_recovery_epoch(const RecoveryEpochEvent& event) {
    (void)event;
  }
};

/// Algorithm 1 as an explicit state machine:
///
///   CcqController controller(model, train, val, config);
///   controller.init();                  // or load_state(path) to resume
///   while (!controller.done()) controller.step();
///   CcqResult result = controller.result();
///
/// When a telemetry trace sink is configured (`CCQ_TRACE` /
/// `telemetry::set_trace_path`), the controller attaches its own trace
/// observer; additional observers attach via `add_observer`.
class CcqController {
 public:
  /// Binds the run inputs; mutates nothing until `init`/`load_state`.
  /// `model`, `train_set` and `val_set` must outlive the controller.
  CcqController(models::QuantModel& model, const data::Dataset& train_set,
                const data::Dataset& val_set, CcqConfig config);
  ~CcqController();
  CcqController(const CcqController&) = delete;
  CcqController& operator=(const CcqController&) = delete;

  /// Register an observer (non-owning; must outlive the controller).
  void add_observer(CcqObserver* observer);

  /// Algorithm 1 lines 1–3: snap every layer to N(0), run the initial
  /// recovery epochs, measure the quantized baseline.
  void init();

  /// True once `init` or `load_state` has run.
  bool initialized() const { return initialized_; }

  /// True when every layer sleeps or `config.max_steps` is exhausted.
  bool done() const;

  /// One quantization step (lines 5–19): U probes, pick, recovery.
  /// Requires `initialized() && !done()`.  The returned record is owned
  /// by the controller (valid until the next `step`).
  const StepRecord& step();

  int steps_completed() const { return step_; }
  float baseline_accuracy() const { return result_.baseline_accuracy; }

  /// The ladder pick history so far: one entry per committed step, in
  /// commit order.  Replayed against the final weights it reconstructs
  /// every intermediate mixed-precision configuration — the operating
  /// points a CCQA v3 multi-point artifact ships (serve/artifact).
  /// Persisted in the controller state (v2) so a resumed run keeps
  /// appending, and in the snapshot via `save_snapshot`'s trail overload.
  const RungTrail& trail() const { return trail_; }

  /// Final evaluation + accumulated records.  A resumed controller's
  /// result covers only the steps/epochs executed since `load_state`.
  CcqResult result();

  /// Persist the loop state (step/epoch counters, RNG streams, Hedge
  /// weights, optimizer lr + momentum, LR-schedule state) at a step
  /// boundary.  Pair with `save_snapshot` for the model side.
  void save_state(const std::string& path) const;

  /// Resume a run persisted with `save_state`: restores the loop state
  /// and marks the controller initialized.  The model must already hold
  /// the paired snapshot (`load_snapshot`).  Returns false when `path`
  /// does not exist; throws on malformed/mismatched state.
  bool load_state(const std::string& path);

 private:
  void save_state_stream(std::ostream& os) const;
  void record_epoch(float train_loss, const EvalResult& val,
                    const std::string& event);
  void run_recovery_epoch(int step_index, int epoch_in_step,
                          const std::string& event_label, float* accuracy);
  std::vector<double> final_probabilities(const std::vector<bool>& awake,
                                          const std::vector<double>& shares,
                                          double lambda) const;

  models::QuantModel& model_;
  const data::Dataset& train_set_;
  const data::Dataset& val_set_;
  CcqConfig config_;

  Rng rng_;
  data::Batch probe_batch_;
  // One workspace for the whole run: probes, recovery epochs and every
  // validation pass recycle the same buffers, so steady-state steps
  // perform no float-storage allocations.
  Workspace ws_;
  data::DataLoader loader_;
  nn::Sgd optimizer_;
  nn::HybridPlateauCosineLr schedule_;
  HedgeCompetition hedge_;

  CcqResult result_;
  RungTrail trail_;
  float recovery_target_ = 0.0f;
  int planned_steps_ = 0;
  int step_ = 0;
  int epoch_counter_ = 0;
  bool initialized_ = false;

  std::vector<CcqObserver*> observers_;
  std::unique_ptr<CcqObserver> trace_observer_;  ///< auto-attached sink
};

}  // namespace ccq::core
