#include "ccq/core/hessian.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ccq/common/logging.hpp"
#include "ccq/nn/loss.hpp"
#include "ccq/quant/uniform.hpp"

namespace ccq::core {

namespace {

/// Find the weight parameter backing a registry unit.
nn::Parameter* find_weight(models::QuantModel& model, std::size_t layer) {
  const std::string want = model.registry().unit(layer).name + ".weight";
  for (auto* p : model.parameters()) {
    if (p->name == want) return p;
  }
  throw Error("no weight parameter for layer " + want);
}

/// Gradient of the mean loss over `batch` w.r.t. one layer's weights at
/// the current parameters.
Tensor layer_gradient(models::QuantModel& model, const data::Batch& batch,
                      nn::Parameter& weight) {
  for (auto* p : model.parameters()) p->zero_grad();
  model.set_training(true);
  nn::SoftmaxCrossEntropy loss;
  Workspace& ws = Workspace::scratch();
  const Tensor logits = model.forward(batch.images, ws);
  loss.forward(logits, batch.labels);
  model.backward(loss.backward(), ws);
  return weight.grad;
}

}  // namespace

double hessian_top_eigenvalue(models::QuantModel& model,
                              const data::Dataset& train_set,
                              std::size_t layer,
                              const HessianConfig& config) {
  CCQ_CHECK(config.power_iterations > 0, "need at least one iteration");
  CCQ_CHECK(config.fd_eps > 0.0, "fd_eps must be positive");
  nn::Parameter& weight = *find_weight(model, layer);
  const std::size_t n = weight.numel();

  std::vector<std::size_t> indices;
  const std::size_t take = std::min(config.sample_count, train_set.size());
  for (std::size_t i = 0; i < take; ++i) indices.push_back(i);
  const data::Batch batch = train_set.gather(indices);

  Rng rng(config.seed + layer * 7919);
  Tensor v = Tensor::randn({n}, rng);
  v *= 1.0f / std::sqrt(std::max(v.sqnorm(), 1e-20f));

  const Tensor original = weight.value;
  double eigenvalue = 0.0;
  for (int it = 0; it < config.power_iterations; ++it) {
    // Central-difference Hessian-vector product.
    const float eps = static_cast<float>(config.fd_eps);
    Tensor perturbed = original;
    {
      auto wp = perturbed.data();
      auto vp = v.data();
      for (std::size_t i = 0; i < n; ++i) wp[i] += eps * vp[i];
    }
    weight.value = perturbed;
    const Tensor g_plus =
        layer_gradient(model, batch, weight).reshaped({n});
    {
      auto wp = perturbed.data();
      auto vp = v.data();
      for (std::size_t i = 0; i < n; ++i) wp[i] -= 2.0f * eps * vp[i];
    }
    weight.value = perturbed;
    const Tensor g_minus =
        layer_gradient(model, batch, weight).reshaped({n});
    weight.value = original;

    Tensor hv = g_plus;
    hv -= g_minus;
    hv *= 1.0f / (2.0f * eps);

    // Rayleigh quotient (v is unit-norm).
    double quotient = 0.0;
    {
      auto hp = hv.data();
      auto vp = v.data();
      for (std::size_t i = 0; i < n; ++i) {
        quotient += static_cast<double>(hp[i]) * vp[i];
      }
    }
    eigenvalue = quotient;

    const float norm = std::sqrt(hv.sqnorm());
    if (norm < 1e-12f) break;  // zero curvature block
    hv *= 1.0f / norm;
    v = std::move(hv);
  }
  // Clear the gradients the probes accumulated.
  for (auto* p : model.parameters()) p->zero_grad();
  return eigenvalue;
}

std::vector<double> hessian_spectrum(models::QuantModel& model,
                                     const data::Dataset& train_set,
                                     const HessianConfig& config) {
  std::vector<double> spectrum(model.registry().size(), 0.0);
  for (std::size_t m = 0; m < spectrum.size(); ++m) {
    spectrum[m] = hessian_top_eigenvalue(model, train_set, m, config);
    CCQ_LOG_DEBUG << "layer " << model.registry().unit(m).name
                  << " lambda_max ~= " << spectrum[m];
  }
  return spectrum;
}

HawqResult hawq_hessian_quantize(models::QuantModel& model,
                                 const data::Dataset& train_set,
                                 const data::Dataset& val_set,
                                 const TrainConfig& finetune,
                                 const HessianConfig& config) {
  quant::LayerRegistry& registry = model.registry();
  HawqResult result;
  result.eigenvalues = hessian_spectrum(model, train_set, config);

  // HAWQ sensitivity: curvature × quantization perturbation at the floor.
  std::vector<double> sensitivity(registry.size(), 0.0);
  for (std::size_t m = 0; m < registry.size(); ++m) {
    nn::Parameter& weight = *find_weight(model, m);
    const float clip = std::max({std::fabs(weight.value.max()),
                                 std::fabs(weight.value.min()), 1e-8f});
    const double perturb =
        static_cast<double>(quant::quantization_mse(
            weight.value, registry.ladder().final_bits(), clip)) *
        static_cast<double>(weight.numel());
    sensitivity[m] = std::max(result.eigenvalues[m], 0.0) * perturb;
  }

  std::vector<std::size_t> order(registry.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sensitivity[a] > sensitivity[b];
  });
  const std::size_t levels = registry.ladder().size();
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t pos = std::min(levels - 1, rank * levels / order.size());
    if (!registry.unit(order[rank]).frozen) {
      registry.set_ladder_pos(order[rank], pos);
    }
  }
  CCQ_LOG_INFO << "HAWQ (power-iteration) bits: " << registry.bits_str();

  train(model, train_set, val_set, finetune);
  result.accuracy = evaluate(model, val_set).accuracy;
  result.compression = registry.compression_ratio();
  return result;
}

}  // namespace ccq::core
