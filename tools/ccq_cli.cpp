// ccq — command-line front end for the library.
//
//   ccq run    --arch resnet20 --policy pact --ladder 8,4,2 …
//       Pretrain (or load) a baseline, run the CCQ controller, print the
//       per-layer allocation; optionally save a snapshot / JSON record,
//       a JSONL event trace (--trace) and a metrics report
//       (--metrics-out); --state persists the controller loop state so
//       the run can be continued with `resume`.
//   ccq resume --snapshot s.bin --state st.bin …
//       Continue an interrupted run bit-identically from a
//       snapshot+state pair saved by `run` (same model/data flags).
//   ccq oneshot --arch … --policy … --bits-pos N
//       One-shot quantize + fine-tune (the baseline scheme).
//   ccq power  --arch resnet20
//       Iso-throughput power of fp32 / partial / fully-quantized configs.
//   ccq export --snapshot s.bin --out model.ccqa …
//       Pack a quantized snapshot into the bit-packed serving artifact
//       (weights stored at their final ladder precision; same model/data
//       flags as the run that produced the snapshot).  --rungs K builds
//       a multi-point (CCQA v3) artifact instead, replaying the rung
//       trail the snapshot recorded.
//   ccq inspect --artifact model.ccqa
//       Describe a packed artifact without serving it: format version,
//       per-layer bits at every rung, requant coverage, and the packed
//       size against the fp32 equivalent of the same tensors.
//   ccq serve --listen 7070 [--artifact model.ccqa] [--name m] …
//       Host a model behind the TCP front end (serve/net.hpp) until
//       stdin closes; clients speak the length-prefixed wire protocol
//       of serve/protocol.hpp (documented in docs/SERVING.md).
//   ccq serve-bench [--artifact model.ccqa] [--tcp] [--rate R] …
//       Drive the registry-routed inference server with concurrent
//       producers — closed loop by default, open loop at a fixed
//       offered rate with --rate, over a socket with --tcp — and
//       report throughput / p50/p99 latency / rejections.
//   ccq policies
//       List the available quantization policies.
//
// All experiments run on the procedural synthetic datasets (see
// DESIGN.md §2); sizes are flags.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <limits>
#include <memory>

#include "ccq/common/args.hpp"
#include "ccq/common/env.hpp"
#include "ccq/common/exec.hpp"
#include "ccq/common/json.hpp"
#include "ccq/common/table.hpp"
#include "ccq/common/telemetry.hpp"
#include "ccq/core/baselines.hpp"
#include "ccq/core/ccq.hpp"
#include "ccq/core/controller.hpp"
#include "ccq/core/observers.hpp"
#include "ccq/core/snapshot.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/hw/mac_model.hpp"
#include "ccq/models/resnet.hpp"
#include "ccq/models/simple.hpp"
#include "ccq/serve/artifact.hpp"
#include "ccq/serve/harness.hpp"
#include "ccq/serve/net.hpp"

namespace {

using namespace ccq;

struct Experiment {
  data::Dataset train;
  data::Dataset val;
  models::QuantModel model;
};

models::QuantModel build_model(const Args& args, std::size_t classes,
                               const quant::BitLadder& ladder) {
  const std::string arch = args.get("arch", "resnet20");
  quant::QuantFactory factory{
      .policy = quant::policy_from_str(args.get("policy", "pact"))};
  models::ModelConfig config;
  config.num_classes = classes;
  config.image_size = static_cast<std::size_t>(args.get_int("image", 16));
  config.width_multiplier =
      static_cast<float>(args.get_double("width", 0.25));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  if (arch == "resnet20") return models::make_resnet20(config, factory, ladder);
  if (arch == "resnet18") return models::make_resnet18(config, factory, ladder);
  if (arch == "resnet50") return models::make_resnet50(config, factory, ladder);
  if (arch == "simplecnn") {
    return models::make_simple_cnn(config, factory, ladder);
  }
  if (arch == "mlp") {
    return models::make_mlp(config, factory, ladder,
                            static_cast<std::size_t>(args.get_int("hidden", 64)));
  }
  throw Error("unknown --arch " + arch +
              " (resnet20|resnet18|resnet50|simplecnn|mlp)");
}

Experiment prepare(const Args& args, bool pretrain = true) {
  data::SyntheticConfig dc;
  dc.num_classes = static_cast<std::size_t>(args.get_int("classes", 10));
  dc.samples_per_class =
      static_cast<std::size_t>(args.get_int("samples", 55));
  dc.height = dc.width = static_cast<std::size_t>(args.get_int("image", 16));
  dc.pixel_noise = static_cast<float>(args.get_double("noise", 0.38));
  dc.jitter = static_cast<float>(args.get_double("jitter", 2.6));
  dc.seed = static_cast<std::uint64_t>(args.get_int("data-seed", 1234));
  data::Dataset train = data::make_synthetic_vision(dc);
  data::Dataset val = train.take_tail(train.size() / 5);

  const quant::BitLadder ladder(args.get_int_list("ladder", {8, 4, 2}));
  auto model = build_model(args, dc.num_classes, ladder);
  if (!pretrain) {
    // `resume` restores parameters + precision from the snapshot, so the
    // freshly built model only provides the structure.
    return Experiment{std::move(train), std::move(val), std::move(model)};
  }

  core::TrainConfig pre;
  pre.epochs = args.get_int("pretrain-epochs", 12);
  pre.batch_size = static_cast<std::size_t>(args.get_int("batch", 32));
  pre.sgd = {.lr = args.get_double("pretrain-lr", 0.03),
             .momentum = 0.9,
             .weight_decay = 5e-4};
  pre.lr_decay_every = std::max(2, 2 * pre.epochs / 3);
  const auto baseline = core::pretrain_cached(
      model, train, val, pre, args.get("cache", ""));
  std::cout << "fp32 baseline top-1: " << 100.0f * baseline.accuracy << "\n";
  return Experiment{std::move(train), std::move(val), std::move(model)};
}

core::CcqConfig ccq_config_from(const Args& args) {
  core::CcqConfig config;
  config.probes_per_step = args.get_int("probes", 4);
  config.probe_samples = static_cast<std::size_t>(args.get_int("probe-samples", 96));
  config.gamma = args.get_double("gamma", 4.0);
  config.lambda_start = args.get_double("lambda-start", 0.7);
  config.lambda_end = args.get_double("lambda-end", 0.1);
  config.memory_aware = !args.get_flag("no-memory");
  config.max_recovery_epochs = args.get_int("max-recovery", 2);
  config.recovery = args.get_flag("manual-recovery")
                        ? core::RecoveryMode::kManual
                        : core::RecoveryMode::kAdaptive;
  config.manual_recovery_epochs = args.get_int("manual-epochs", 1);
  config.max_steps = args.get_int("max-steps", -1);
  config.finetune.batch_size =
      static_cast<std::size_t>(args.get_int("batch", 32));
  config.finetune.sgd = {.lr = args.get_double("finetune-lr", 0.01),
                         .momentum = 0.9,
                         .weight_decay = 5e-4};
  config.hybrid_lr.base_lr = args.get_double("finetune-lr", 0.01);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2020));
  return config;
}

// Telemetry flags shared by `run` and `resume`: --trace enables the
// JSONL event sink, --metrics-out enables the counters/timers registry
// (written as JSON when the run finishes).
void configure_telemetry(const Args& args) {
  const std::string trace = args.get("trace", "");
  if (!trace.empty()) telemetry::set_trace_path(trace);
  if (!args.get("metrics-out", "").empty()) {
    telemetry::set_metrics_enabled(true);
  }
}

void finish_telemetry(const Args& args) {
  telemetry::flush_trace();
  const std::string metrics = args.get("metrics-out", "");
  if (!metrics.empty()) {
    CCQ_CHECK(telemetry::save_metrics(metrics), "cannot write " + metrics);
    std::cout << "metrics -> " << metrics << "\n";
  }
}

// Drive the controller to completion, print the allocation table and
// persist whatever --snapshot/--state/--out ask for.
int finish_run(const Args& args, Experiment& exp,
               core::CcqController& controller) {
  while (!controller.done()) controller.step();
  const auto result = controller.result();

  Table table({"layer", "bits", "weights"});
  for (std::size_t i = 0; i < exp.model.registry().size(); ++i) {
    const auto& unit = exp.model.registry().unit(i);
    table.add_row({unit.name, std::to_string(result.final_bits[i]),
                   std::to_string(unit.weight_count)});
  }
  table.print(std::cout);
  std::cout << "baseline@" << exp.model.registry().ladder().initial_bits()
            << "b " << 100.0f * result.baseline_accuracy << " -> final "
            << 100.0f * result.final_accuracy << " top-1 at "
            << result.final_compression << "x compression ("
            << result.steps.size() << " steps)\n";

  const std::string snapshot = args.get("snapshot", "");
  if (!snapshot.empty()) {
    // The trail rides along so `export --rungs K` can replay the
    // descent's intermediate configurations as serving rungs.
    core::save_snapshot(exp.model, snapshot, controller.trail());
    std::cout << "snapshot -> " << snapshot << "\n";
  }
  const std::string state = args.get("state", "");
  if (!state.empty()) {
    CCQ_CHECK(!snapshot.empty(),
              "--state needs --snapshot (resume requires both)");
    controller.save_state(state);
    std::cout << "state -> " << state << "\n";
  }
  const std::string out = args.get("out", "");
  if (!out.empty()) {
    Json record = Json::object();
    record.set("final_top1", 100.0 * result.final_accuracy);
    record.set("compression", result.final_compression);
    Json bits = Json::array();
    for (int b : result.final_bits) bits.push_back(b);
    record.set("bits", std::move(bits));
    CCQ_CHECK(record.save(out), "cannot write " + out);
    std::cout << "json -> " << out << "\n";
  }
  finish_telemetry(args);
  return 0;
}

int cmd_run(const Args& args) {
  configure_telemetry(args);
  Experiment exp = prepare(args);
  const auto config = ccq_config_from(args);
  core::CcqController controller(exp.model, exp.train, exp.val, config);
  core::CliProgressObserver progress(std::cout, args.get_flag("verbose"));
  if (args.get_flag("progress")) controller.add_observer(&progress);
  controller.init();
  return finish_run(args, exp, controller);
}

int cmd_resume(const Args& args) {
  configure_telemetry(args);
  const std::string snapshot = args.get("snapshot", "");
  const std::string state = args.get("state", "");
  CCQ_CHECK(!snapshot.empty() && !state.empty(),
            "resume needs --snapshot and --state from a previous run");
  // Rebuild the model structure and datasets from the same flags as the
  // original run; parameters + precision come from the snapshot, the
  // loop state (RNG, Hedge weights, optimizer momentum, …) from --state.
  Experiment exp = prepare(args, /*pretrain=*/false);
  CCQ_CHECK(core::load_snapshot(exp.model, snapshot),
            "snapshot not found: " + snapshot);
  const auto config = ccq_config_from(args);
  core::CcqController controller(exp.model, exp.train, exp.val, config);
  core::CliProgressObserver progress(std::cout, args.get_flag("verbose"));
  if (args.get_flag("progress")) controller.add_observer(&progress);
  CCQ_CHECK(controller.load_state(state), "state not found: " + state);
  std::cout << "resumed at step " << controller.steps_completed() << " ("
            << (controller.done() ? "already done" : "continuing") << ")\n";
  return finish_run(args, exp, controller);
}

int cmd_oneshot(const Args& args) {
  Experiment exp = prepare(args);
  core::TrainConfig ft;
  ft.epochs = args.get_int("finetune-epochs", 6);
  ft.batch_size = static_cast<std::size_t>(args.get_int("batch", 32));
  ft.sgd = {.lr = args.get_double("finetune-lr", 0.01),
            .momentum = 0.9,
            .weight_decay = 5e-4};
  const auto pos = static_cast<std::size_t>(args.get_int(
      "bits-pos",
      static_cast<int>(exp.model.registry().ladder().size()) - 1));
  const auto r =
      core::one_shot_quantize(exp.model, exp.train, exp.val, ft, pos);
  std::cout << "one-shot @"
            << exp.model.registry().ladder().bits_at(pos) << "b: top-1 "
            << 100.0f * r.accuracy << ", compression " << r.compression
            << "x\n";
  return 0;
}

int cmd_power(const Args& args) {
  const quant::BitLadder ladder(args.get_int_list("ladder", {8, 4, 2}));
  auto model = build_model(args, 10, ladder);
  const double rate = args.get_double("rate", 1000.0);
  Table table({"configuration", "total mW", "first+last mW"});
  auto report = [&](const std::string& name,
                    const std::vector<hw::LayerMacs>& layers) {
    const auto r = hw::network_power(layers, rate);
    table.add_row({name, Table::fmt(1e3 * r.total_w, 3),
                   Table::fmt(1e3 * (r.first_layer_w + r.last_layer_w), 3)});
  };
  report("fp32", hw::uniform_profile(model.registry(), 32, 32, false));
  for (int bits : {8, 4, 2}) {
    report("fp-" + std::to_string(bits) + "b-fp",
           hw::uniform_profile(model.registry(), bits, bits, true));
    report("uniform " + std::to_string(bits) + "b",
           hw::uniform_profile(model.registry(), bits, bits, false));
  }
  table.print(std::cout);
  return 0;
}

int cmd_export(const Args& args) {
  const std::string snapshot = args.get("snapshot", "");
  CCQ_CHECK(!snapshot.empty(),
            "export needs --snapshot from a previous run (plus the same "
            "model/data flags)");
  const std::string out = args.get("out", "model.ccqa");
  Experiment exp = prepare(args, /*pretrain=*/false);
  CCQ_CHECK(core::load_snapshot(exp.model, snapshot),
            "snapshot not found: " + snapshot);
  const auto rungs = static_cast<std::size_t>(args.get_int("rungs", 1));
  if (rungs >= 2) {
    const core::RungTrail trail = core::load_trail(snapshot);
    CCQ_CHECK(!trail.empty(),
              "snapshot " + snapshot +
                  " records no rung trail — re-run `ccq run --snapshot ...` "
                  "with this build so multi-point export can replay the "
                  "ladder pick history");
    serve::MultiPointOptions mp;
    mp.rungs = rungs;
    mp.size_budget = args.get_double("rung-budget", 1.5);
    const hw::IntegerNetwork net =
        serve::build_multipoint(exp.model, trail, mp);
    serve::export_artifact(net, out);
    std::cout << "multi-point artifact: " << net.rung_count()
              << " serving rungs\n";
  } else {
    serve::export_artifact(exp.model, out);
  }
  const auto artifact_bytes = std::filesystem::file_size(out);
  const auto snapshot_bytes = std::filesystem::file_size(snapshot);
  std::cout << "artifact -> " << out << " (" << artifact_bytes << " bytes, "
            << Table::fmt(static_cast<double>(snapshot_bytes) /
                              static_cast<double>(artifact_bytes),
                          2)
            << "x smaller than the " << snapshot_bytes
            << "-byte float snapshot)\n";
  return 0;
}

int cmd_inspect(const Args& args) {
  const std::string path = args.get("artifact", "");
  CCQ_CHECK(!path.empty(), "inspect needs --artifact <model.ccqa>");
  const serve::ArtifactInfo info = serve::inspect_artifact(path);
  std::cout << path << ": CCQA v" << info.version << ", " << info.layer_count
            << " layers, " << info.rung_count
            << (info.rung_count == 1 ? " rung, " : " rungs, ")
            << info.file_bytes << " bytes (" << info.payload_bytes
            << " payload)\n";
  if (info.rung_count > 1) {
    Table rungs({"rung", "trail step", "val top-1"});
    for (std::size_t r = 0; r < info.rungs.size(); ++r) {
      rungs.add_row({std::to_string(r),
                     info.rungs[r].trail_step < 0
                         ? "final"
                         : std::to_string(info.rungs[r].trail_step),
                     info.rungs[r].val_acc > 0.0f
                         ? Table::fmt(100.0 * info.rungs[r].val_acc, 1)
                         : "-"});
    }
    rungs.print(std::cout);
  }
  // Per-rung values joined r0/r1/…: one row per layer stays readable at
  // any rung count.
  const auto joined = [](const std::vector<int>& v) {
    std::string s;
    for (int x : v) {
      s += (s.empty() ? "" : "/") + (x == 0 ? std::string("-")
                                            : std::to_string(x));
    }
    return s;
  };
  Table layers({"layer", "kind", "w bits", "act bits", "requant"});
  for (const serve::ArtifactLayerInfo& layer : info.layers) {
    std::string requant;
    for (const bool fused : layer.requant_fused) {
      requant += (requant.empty() ? "" : "/") + std::string(fused ? "y" : "n");
    }
    layers.add_row({layer.name, layer.kind, joined(layer.weight_bits),
                    joined(layer.act_bits), requant});
  }
  layers.print(std::cout);
  std::cout << "packed "
            << Table::fmt(static_cast<double>(info.float_bytes) /
                              static_cast<double>(info.file_bytes),
                          2)
            << "x smaller than the " << info.float_bytes
            << "-byte fp32 equivalent of the same tensors\n";
  return 0;
}

// Adaptive serving knobs shared by `serve` and `serve-bench` — inert
// unless the loaded artifact carries more than one rung.
serve::OperatingPointPolicy adaptive_policy_from(const Args& args) {
  serve::OperatingPointPolicy policy;
  policy.degrade_depth =
      static_cast<std::size_t>(args.get_int("degrade-depth", 16));
  policy.restore_depth =
      static_cast<std::size_t>(args.get_int("restore-depth", 2));
  policy.degrade_p99_us =
      static_cast<std::uint64_t>(args.get_int("degrade-p99-us", 0));
  policy.min_dwell_us = static_cast<std::uint64_t>(args.get_int("dwell-us", 0));
  policy.fixed_rung = args.get_int("rung", -1);
  policy.degrade_miss_rate = args.get_double("degrade-miss-rate", 0.0);
  return policy;
}

// SLA knobs shared by `serve` and `serve-bench`.
void apply_sla_flags(const Args& args, serve::ModelConfig& mc) {
  mc.weight = args.get_double("weight", 1.0);
  mc.slo_us = static_cast<std::uint64_t>(args.get_int("slo-us", 0));
}

// Shared by `serve` and `serve-bench`: the network to host — a packed
// artifact when --artifact is given, else a random-weight model
// quantized to the ladder floor (serving cost does not depend on what
// the weights are).
hw::IntegerNetwork serve_network(const Args& args) {
  const std::string artifact = args.get("artifact", "");
  if (!artifact.empty()) return serve::load_artifact(artifact);
  const quant::BitLadder ladder(args.get_int_list("ladder", {8, 4, 2}));
  auto model = build_model(args, 10, ladder);
  quant::LayerRegistry& registry = model.registry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    registry.set_ladder_pos(i, registry.ladder().size() - 1);
  }
  return hw::IntegerNetwork::compile(model);
}

std::string serve_model_name(const Args& args) {
  const std::string name = args.get("name", "");
  if (!name.empty()) return name;
  const std::string artifact = args.get("artifact", "");
  if (!artifact.empty()) {
    return std::filesystem::path(artifact).stem().string();
  }
  return "model";
}

int cmd_serve(const Args& args) {
  configure_telemetry(args);
  const auto port = args.get_int("listen", -1);
  CCQ_CHECK(port >= 0 && port <= 65535,
            "serve needs --listen <port> (0 picks an ephemeral port)");

  serve::ServeConfig sc;
  sc.workers = static_cast<std::size_t>(args.get_int("workers", 2));
  sc.intra_op_threads =
      static_cast<std::size_t>(args.get_int("intra-op", 1));
  serve::InferenceServer server(sc);
  serve::ModelConfig mc;
  mc.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 8));
  mc.max_delay_us =
      static_cast<std::uint64_t>(args.get_int("max-delay-us", 1000));
  mc.queue_capacity = static_cast<std::size_t>(args.get_int("queue-cap", 64));
  mc.adaptive = adaptive_policy_from(args);
  apply_sla_flags(args, mc);
  const std::string name = serve_model_name(args);
  const serve::ModelHandle handle = server.load(name, serve_network(args), mc);

  serve::TcpServer front(server, static_cast<std::uint16_t>(port));
  std::cout << "serving model \"" << name << "\" v" << handle.version()
            << " on 127.0.0.1:" << front.port() << " (" << sc.workers
            << " workers, max_batch " << mc.max_batch
            << ")\nclose stdin (Ctrl-D) to stop\n";
  // Serve until stdin closes: connection threads do all the work.
  std::cin.ignore(std::numeric_limits<std::streamsize>::max());
  front.stop();
  server.shutdown();
  finish_telemetry(args);
  return 0;
}

int cmd_serve_bench(const Args& args) {
  configure_telemetry(args);
  telemetry::set_metrics_enabled(true);  // latency percentiles need timers
  hw::IntegerNetwork net = serve_network(args);
  CCQ_CHECK(net.plan(0).kind == hw::IntLayerPlan::Kind::kConv,
            "serve-bench drives image models (first layer must be a conv)");

  serve::ServeConfig sc;
  sc.workers = static_cast<std::size_t>(args.get_int("workers", 2));
  sc.intra_op_threads =
      static_cast<std::size_t>(args.get_int("intra-op", 1));
  serve::ModelConfig mc;
  mc.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 8));
  mc.max_delay_us =
      static_cast<std::uint64_t>(args.get_int("max-delay-us", 200));
  mc.queue_capacity = static_cast<std::size_t>(args.get_int("queue-cap", 64));
  mc.adaptive = adaptive_policy_from(args);
  apply_sla_flags(args, mc);
  const auto requests = static_cast<std::size_t>(args.get_int("requests", 512));
  const auto image = static_cast<std::size_t>(args.get_int("image", 16));
  const double rate = args.get_double("rate", 0.0);  // 0 = closed loop
  const bool tcp = args.get_flag("tcp");
  CCQ_CHECK(!(tcp && rate > 0.0),
            "--tcp is closed-loop only (drop --rate for the socket path)");

  serve::HarnessOptions options;
  options.producers = static_cast<std::size_t>(args.get_int("producers", 4));
  options.offered_rps = rate;
  options.priority = serve::priority_from_string(args.get("priority", "normal"));
  options.deadline_us =
      static_cast<std::uint64_t>(args.get_int("deadline-us", 0));

  Tensor samples({requests, net.plan(0).in_channels, image, image});
  auto data = samples.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>((i * 2654435761u >> 8) & 255u) / 255.0f;
  }

  const std::string name = serve_model_name(args);
  serve::InferenceServer server(sc);
  server.load(name, std::move(net), mc);
  std::unique_ptr<serve::TcpServer> front;
  std::unique_ptr<serve::ServeHarness> harness;
  if (tcp) {
    front = std::make_unique<serve::TcpServer>(server, 0);
    harness = std::make_unique<serve::ServeHarness>(
        "127.0.0.1", front->port(), name);
  } else {
    harness = std::make_unique<serve::ServeHarness>(server, name);
  }
  const auto report = harness->run(samples, options);
  if (front) front->stop();
  server.shutdown();

  // Exact quantiles in closed-loop/TCP mode; the model's telemetry
  // histogram (factor-of-two buckets) in the open loop, where the
  // harness sheds instead of waiting.
  const char* approx = report.latency_ns.empty() ? "< " : "";
  std::uint64_t p50 = report.latency_quantile_ns(0.5);
  std::uint64_t p99 = report.latency_quantile_ns(0.99);
  if (report.latency_ns.empty()) {
    const int timer = telemetry::find_named_metric(
        telemetry::NamedKind::kTimer, "serve." + name + ".latency");
    const auto latency = telemetry::named_timer_stats(timer);
    p50 = telemetry::approx_quantile(latency, 0.5);
    p99 = telemetry::approx_quantile(latency, 0.99);
  }
  const auto batches = telemetry::timer_stats(telemetry::Timer::kServeBatchSize);
  std::cout << report.requests << " served"
            << (rate > 0.0 ? " (offered " + Table::fmt(rate, 0) + " rps)" : "")
            << ", " << options.producers << " producers, " << sc.workers
            << " workers, max_batch " << mc.max_batch << (tcp ? ", tcp" : "")
            << ":\n  "
            << Table::fmt(static_cast<double>(report.requests) /
                              report.wall_seconds,
                          1)
            << " inf/s, mean batch "
            << Table::fmt(batches.count == 0
                              ? 0.0
                              : static_cast<double>(batches.total_ns) /
                                    static_cast<double>(batches.count),
                          2)
            << "\n  offered " << report.offered << ", admitted "
            << report.admitted << ", rejected " << report.rejected << ", shed "
            << report.shed << ", deadline missed " << report.deadline_missed
            << "\n  latency p50 " << approx << p50 / 1000 << "us, p99 "
            << approx << p99 / 1000 << "us\n";
  finish_telemetry(args);
  return 0;
}

int cmd_policies() {
  for (quant::Policy p :
       {quant::Policy::kDoReFa, quant::Policy::kWrpn, quant::Policy::kPact,
        quant::Policy::kPactSawb, quant::Policy::kLqNets, quant::Policy::kLsq,
        quant::Policy::kMinMax, quant::Policy::kPerChannel}) {
    std::cout << quant::policy_str(p) << "\n";
  }
  return 0;
}

void usage() {
  std::cout <<
      "usage: ccq <command> [--flags]\n"
      "  run       full CCQ pipeline (pretrain + competition/collaboration)\n"
      "  resume    continue a run from --snapshot + --state (bit-identical)\n"
      "  oneshot   one-shot quantize + fine-tune baseline\n"
      "  power     iso-throughput power of precision configurations\n"
      "  export    pack a snapshot into the bit-packed serving artifact\n"
      "  inspect   describe a packed artifact (--artifact model.ccqa)\n"
      "  serve     host a model behind the TCP front end (--listen <port>)\n"
      "  serve-bench  drive the registry-routed inference server\n"
      "  policies  list quantization policies\n"
      "common flags: --arch resnet20|resnet18|resnet50|simplecnn|mlp\n"
      "  --policy pact|dorefa|wrpn|sawb|lqnets|lsq|minmax|perchannel\n"
      "  --ladder 8,4,2  --classes 10  --samples 55  --image 16\n"
      "  --width 0.25  --pretrain-epochs 12  --cache file.bin\n"
      "  --threads N   kernel thread budget (default $CCQ_THREADS or 1;\n"
      "                results are bit-identical for any N)\n"
      "run/resume flags: --gamma 4 --probes 4 --lambda-start 0.7\n"
      "  --lambda-end 0.1 --no-memory --manual-recovery --max-steps N\n"
      "  --snapshot out.bin --state out.state --out record.json\n"
      "  --trace events.jsonl   JSONL event trace (also $CCQ_TRACE)\n"
      "  --metrics-out m.json   counters/timers report (also $CCQ_METRICS)\n"
      "  --progress [--verbose] per-step progress lines\n"
      "export flags: --snapshot s.bin --out model.ccqa\n"
      "  --rungs K --rung-budget 1.5   multi-point (CCQA v3) artifact\n"
      "serve flags: --listen 7070 --artifact model.ccqa --name m\n"
      "  --workers 2 --max-batch 8 --max-delay-us 1000 --queue-cap 64\n"
      "  --weight 1.0 (fair-share weight) --slo-us 0 (p99 target gauge)\n"
      "serve-bench flags: --artifact model.ccqa (else random weights)\n"
      "  --workers 2 --max-batch 8 --max-delay-us 200 --queue-cap 64\n"
      "  --intra-op 1 --requests 512 --producers 4\n"
      "  --rate R   open loop at R offered req/s (default: closed loop)\n"
      "  --tcp      drive through a loopback TCP front end\n"
      "  --weight 1.0 --slo-us 0   model SLA knobs (as for serve)\n"
      "  --priority low|normal|high   service class on every request\n"
      "  --deadline-us 0   queueing budget per request (0 = none)\n"
      "adaptive flags (serve / serve-bench, multi-rung artifacts):\n"
      "  --degrade-depth 16 --restore-depth 2   queue-depth hysteresis\n"
      "  --degrade-p99-us 0 --dwell-us 0 --rung -1 (pin one rung)\n"
      "  --degrade-miss-rate 0.0   deadline-miss fraction that degrades\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv);
    // Thread budget for all kernels: --threads beats $CCQ_THREADS beats 1.
    ExecContext::set_global_threads(static_cast<std::size_t>(
        std::max(1, args.get_int("threads", env_int("CCQ_THREADS", 1)))));
    if (args.command() == "run") return cmd_run(args);
    if (args.command() == "resume") return cmd_resume(args);
    if (args.command() == "oneshot") return cmd_oneshot(args);
    if (args.command() == "power") return cmd_power(args);
    if (args.command() == "export") return cmd_export(args);
    if (args.command() == "inspect") return cmd_inspect(args);
    if (args.command() == "serve") return cmd_serve(args);
    if (args.command() == "serve-bench") return cmd_serve_bench(args);
    if (args.command() == "policies") return cmd_policies();
    usage();
    return args.command().empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
