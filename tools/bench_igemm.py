#!/usr/bin/env python3
"""Run the BM_IgemmForward grid and snapshot it to BENCH_igemm.json.

The snapshot is the committed baseline for the integer-inference kernel
registry (scalar / vec16 / vec-packed vs the naive int64 reference).
Typical use:

    tools/bench_igemm.py --build build                 # run + compare + update
    tools/bench_igemm.py --build build --check         # run + compare, no write
    tools/bench_igemm.py --json out.json --check       # compare a saved run

Comparison is per {bits, mode} row against the committed snapshot; a row
regressing by more than --tolerance (default 25%, benchmarks on shared
runners are noisy) fails the check.  Speedup columns are derived from the
mode-0 reference row at the same bit width.
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SNAPSHOT = REPO / "BENCH_igemm.json"
FILTER = "BM_IgemmForward"
MODES = {0: "reference", 1: "scalar", 2: "vec16", 3: "vec-packed"}


def run_bench(build_dir: pathlib.Path) -> dict:
    exe = build_dir / "bench" / "bench_kernels"
    if not exe.exists():
        sys.exit(f"bench binary not found: {exe} (build the 'bench_kernels' target)")
    cmd = [
        str(exe),
        f"--benchmark_filter={FILTER}",
        "--benchmark_format=json",
        "--benchmark_min_warmup_time=0.2",
    ]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    return json.loads(out.stdout)


def parse_rows(raw: dict) -> dict:
    """google-benchmark JSON -> {"<bits>/<mode-name>": row} with speedups."""
    rows = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate" or FILTER not in b["name"]:
            continue
        # Name is BM_IgemmForward/<bits>/<mode>.
        parts = b["name"].split("/")
        bits, mode = int(parts[1]), int(parts[2])
        rows[f"{bits}/{MODES[mode]}"] = {
            "bits": bits,
            "mode": MODES[mode],
            "real_time_ns": b["real_time"],
            "items_per_second": b.get("items_per_second"),
            "allocs_per_iter": b.get("allocs_per_iter"),
        }
    for key, row in rows.items():
        ref = rows.get(f"{row['bits']}/reference")
        if ref and row["mode"] != "reference":
            row["speedup_vs_reference"] = ref["real_time_ns"] / row["real_time_ns"]
    if not rows:
        sys.exit("no BM_IgemmForward rows in benchmark output")
    return rows


def compare(rows: dict, snapshot: dict, tolerance: float) -> bool:
    ok = True
    for key, base in snapshot.get("rows", {}).items():
        cur = rows.get(key)
        if cur is None:
            print(f"MISSING  {key}: present in snapshot, absent from this run")
            ok = False
            continue
        ratio = cur["real_time_ns"] / base["real_time_ns"]
        verdict = "OK" if ratio <= 1.0 + tolerance else "REGRESSED"
        if verdict != "OK":
            ok = False
        speed = cur.get("speedup_vs_reference")
        speed_col = f"  {speed:6.2f}x vs ref" if speed else ""
        print(
            f"{verdict:9} {key:14} {cur['real_time_ns'] / 1e6:9.3f} ms "
            f"(baseline {base['real_time_ns'] / 1e6:9.3f} ms, "
            f"ratio {ratio:5.2f}){speed_col}"
        )
    for key in rows:
        if key not in snapshot.get("rows", {}):
            print(f"NEW      {key}: no baseline yet")
    return ok


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", type=pathlib.Path, help="CMake build dir to run from")
    ap.add_argument("--json", type=pathlib.Path, help="pre-recorded benchmark JSON")
    ap.add_argument("--check", action="store_true", help="compare only, never write")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed slowdown vs snapshot before failing (fraction)")
    args = ap.parse_args()

    if args.json:
        raw = json.loads(args.json.read_text())
    elif args.build:
        raw = run_bench(args.build)
    else:
        ap.error("one of --build or --json is required")
    rows = parse_rows(raw)

    ok = True
    if SNAPSHOT.exists():
        ok = compare(rows, json.loads(SNAPSHOT.read_text()), args.tolerance)
    else:
        print(f"no snapshot at {SNAPSHOT}; this run becomes the baseline")

    if not args.check:
        context = raw.get("context", {})
        SNAPSHOT.write_text(json.dumps({
            "benchmark": FILTER,
            "context": {
                "num_cpus": context.get("num_cpus"),
                "mhz_per_cpu": context.get("mhz_per_cpu"),
                "library_build_type": context.get("library_build_type"),
            },
            "rows": rows,
        }, indent=2) + "\n")
        print(f"wrote {SNAPSHOT}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
