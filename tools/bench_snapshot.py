#!/usr/bin/env python3
"""Run a benchmark grid and snapshot it to a committed BENCH_*.json.

Four suites cover the integer-inference datapath and the serving stack:

  igemm     BM_IgemmForward -> BENCH_igemm.json
            the kernel registry (scalar / vec16 / vec-packed) vs the naive
            int64 reference, on a two-conv net whose quantized activations
            make every layer fuse its requantization into the epilogue
  engine    BM_EngineForward -> BENCH_engine.json
            the end-to-end fused engine forward (u8 codes through igemm
            epilogues, integer pooling, final decode) vs forward_reference
  serve     BM_Serve* (bench_serve binary) -> BENCH_serve.json
            the registry-routed inference server: closed-loop capacity
            (producers x workers), an open-loop offered-load sweep with
            p50/p99 latency and shed rate, idle round-trip latency, and
            a two-model weighted mixed-priority sweep with per-class
            p50/p99 and the shed split (shed rates are fractions of
            offered submission attempts, not the sample count)
  adaptive  BM_Adaptive* (bench_serve binary) -> BENCH_adaptive.json
            adaptive-precision serving: the per-rung price list (closed
            loop, 3-rung artifact pinned at each rung) and a scripted
            up-then-down load ramp through the saturation knee.  The ramp
            row is wall-clock-paced by construction; its regression
            signal is the rung_switches / deepest_rung / final_rung /
            shed_rate counters, not real time

Typical use:

    tools/bench_snapshot.py --build build                 # all suites: run + compare + update
    tools/bench_snapshot.py --build build --suite engine  # one suite
    tools/bench_snapshot.py --build build --check         # run + compare, no write
    tools/bench_snapshot.py --json out.json --suite igemm --check

Comparison is per row against the committed snapshot; a row regressing
by more than --tolerance (default 25%, benchmarks on shared runners are
noisy) fails the check.  igemm/engine speedup columns are derived from
the mode-0 reference row at the same bit width.  Open-loop serve rows
are wall-clock-paced by construction, so their regression signal is the
p99_us column, reported alongside.
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SUITES = {
    "igemm": {
        "filter": "BM_IgemmForward",
        "binary": "bench_kernels",
        "snapshot": REPO / "BENCH_igemm.json",
        "modes": {0: "reference", 1: "scalar", 2: "vec16", 3: "vec-packed"},
    },
    "engine": {
        "filter": "BM_EngineForward",
        "binary": "bench_kernels",
        "snapshot": REPO / "BENCH_engine.json",
        "modes": {0: "reference", 1: "fused"},
    },
    "serve": {
        "filter": "BM_Serve",
        "binary": "bench_serve",
        "snapshot": REPO / "BENCH_serve.json",
    },
    "adaptive": {
        "filter": "BM_Adaptive",
        "binary": "bench_serve",
        "snapshot": REPO / "BENCH_adaptive.json",
    },
}

# google-benchmark reports real_time in the benchmark's chosen unit.
UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def real_time_ns(b: dict) -> float:
    return b["real_time"] * UNIT_TO_NS.get(b.get("time_unit", "ns"), 1.0)


def run_bench(build_dir: pathlib.Path, suite: dict) -> dict:
    exe = build_dir / "bench" / suite["binary"]
    if not exe.exists():
        sys.exit(f"bench binary not found: {exe} (build the '{suite['binary']}' target)")
    cmd = [
        str(exe),
        f"--benchmark_filter={suite['filter']}",
        "--benchmark_format=json",
        "--benchmark_min_warmup_time=0.2",
    ]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    return json.loads(out.stdout)


def parse_mode_rows(raw: dict, suite: dict) -> dict:
    """google-benchmark JSON -> {"<bits>/<mode-name>": row} with speedups."""
    bench_filter, modes = suite["filter"], suite["modes"]
    rows = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate" or bench_filter not in b["name"]:
            continue
        # Name is <filter>/<bits>/<mode>.
        parts = b["name"].split("/")
        bits, mode = int(parts[1]), int(parts[2])
        rows[f"{bits}/{modes[mode]}"] = {
            "bits": bits,
            "mode": modes[mode],
            "real_time_ns": real_time_ns(b),
            "items_per_second": b.get("items_per_second"),
            "allocs_per_iter": b.get("allocs_per_iter"),
        }
    for key, row in rows.items():
        ref = rows.get(f"{row['bits']}/reference")
        if ref and row["mode"] != "reference":
            row["speedup_vs_reference"] = ref["real_time_ns"] / row["real_time_ns"]
    return rows


def parse_serve_rows(raw: dict) -> dict:
    """bench_serve JSON -> rows keyed closed/pPwW, open/Rrps, latency/wW."""
    rows = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        parts = b["name"].split("/")
        args = {}
        for p in parts[1:]:
            if ":" in p:
                k, v = p.split(":", 1)
                args[k] = int(v)
        if parts[0] == "BM_ServeClosedLoop":
            key = f"closed/p{args['producers']}w{args['workers']}"
        elif parts[0] == "BM_ServeOpenLoop":
            key = f"open/{args['offered_rps']}rps"
        elif parts[0] == "BM_ServeMixedPriority":
            key = f"mixed/{args['offered_rps']}rps"
        elif parts[0] == "BM_ServeLatency":
            key = f"latency/w{args['workers']}"
        elif parts[0] == "BM_AdaptiveRung":
            key = f"rung/{args['rung']}"
        elif parts[0] == "BM_AdaptiveLoadRamp":
            key = "ramp"
        else:
            continue
        rows[key] = {
            "real_time_ns": real_time_ns(b),
            "items_per_second": b.get("items_per_second"),
            "p50_us": b.get("p50_us"),
            "p99_us": b.get("p99_us"),
            "shed_rate": b.get("shed_rate"),
            "allocs_per_iter": b.get("allocs_per_iter"),
        }
        for counter in ("rung_switches", "deepest_rung", "final_rung"):
            if counter in b:
                rows[key][counter] = b[counter]
        # Mixed-priority rows: per-class latency quantiles + shed split.
        for cls in ("low", "normal", "high"):
            for counter in (f"p50_{cls}_us", f"p99_{cls}_us", f"shed_{cls}"):
                if counter in b:
                    rows[key][counter] = b[counter]
    return rows


def parse_rows(raw: dict, suite: dict) -> dict:
    rows = (parse_mode_rows(raw, suite) if "modes" in suite
            else parse_serve_rows(raw))
    if not rows:
        sys.exit(f"no {suite['filter']} rows in benchmark output")
    return rows


def compare(rows: dict, snapshot: dict, tolerance: float) -> bool:
    ok = True
    for key, base in snapshot.get("rows", {}).items():
        cur = rows.get(key)
        if cur is None:
            print(f"MISSING  {key}: present in snapshot, absent from this run")
            ok = False
            continue
        ratio = cur["real_time_ns"] / base["real_time_ns"]
        verdict = "OK" if ratio <= 1.0 + tolerance else "REGRESSED"
        if verdict != "OK":
            ok = False
        speed = cur.get("speedup_vs_reference")
        extra = f"  {speed:6.2f}x vs ref" if speed else ""
        p99 = cur.get("p99_us")
        if p99:
            extra += f"  p99 {p99:8.0f} us"
        print(
            f"{verdict:9} {key:14} {cur['real_time_ns'] / 1e6:9.3f} ms "
            f"(baseline {base['real_time_ns'] / 1e6:9.3f} ms, "
            f"ratio {ratio:5.2f}){extra}"
        )
    for key in rows:
        if key not in snapshot.get("rows", {}):
            print(f"NEW      {key}: no baseline yet")
    return ok


def run_suite(name: str, args: argparse.Namespace, raw: dict | None) -> bool:
    suite = SUITES[name]
    snapshot_path = suite["snapshot"]
    if raw is None:
        raw = run_bench(args.build, suite)
    rows = parse_rows(raw, suite)

    print(f"== suite {name} ({suite['filter']}) ==")
    ok = True
    if snapshot_path.exists():
        ok = compare(rows, json.loads(snapshot_path.read_text()), args.tolerance)
    else:
        print(f"no snapshot at {snapshot_path}; this run becomes the baseline")

    if not args.check:
        context = raw.get("context", {})
        snapshot_path.write_text(json.dumps({
            "benchmark": suite["filter"],
            "context": {
                "num_cpus": context.get("num_cpus"),
                "mhz_per_cpu": context.get("mhz_per_cpu"),
                "library_build_type": context.get("library_build_type"),
            },
            "rows": rows,
        }, indent=2) + "\n")
        print(f"wrote {snapshot_path}")
    return ok


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--build", type=pathlib.Path, help="CMake build dir to run from")
    ap.add_argument("--json", type=pathlib.Path, help="pre-recorded benchmark JSON")
    ap.add_argument("--suite", choices=[*SUITES, "all"], default="all",
                    help="which benchmark grid to run (default: all)")
    ap.add_argument("--check", action="store_true", help="compare only, never write")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed slowdown vs snapshot before failing (fraction)")
    args = ap.parse_args()

    names = list(SUITES) if args.suite == "all" else [args.suite]
    raw = None
    if args.json:
        if args.suite == "all":
            ap.error("--json holds one recorded grid; name it with --suite")
        raw = json.loads(args.json.read_text())
    elif not args.build:
        ap.error("one of --build or --json is required")

    ok = True
    for name in names:
        ok = run_suite(name, args, raw) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
