// Hardware design-space exploration with the gate-level MAC model:
// sweep uniform precisions and first/last-layer configurations for the
// three ResNets and print power/area/energy, Fig-5 style.  Pure
// analytical model — runs instantly.
#include <iostream>

#include "ccq/common/table.hpp"
#include "ccq/hw/mac_model.hpp"
#include "ccq/models/resnet.hpp"

namespace {

using namespace ccq;

models::QuantModel build(const std::string& which) {
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  quant::BitLadder ladder({8, 4, 2});
  models::ModelConfig config;
  config.num_classes = 10;
  config.image_size = 16;
  if (which == "ResNet20") {
    config.width_multiplier = 0.25f;
    return models::make_resnet20(config, factory, ladder);
  }
  if (which == "ResNet18") {
    config.width_multiplier = 0.125f;
    return models::make_resnet18(config, factory, ladder);
  }
  config.width_multiplier = 0.0625f;
  return models::make_resnet50(config, factory, ladder);
}

}  // namespace

int main() {
  using namespace ccq;
  const double rate = 1000.0;  // inferences per second

  std::cout << "MAC unit design points (32nm-class structural model):\n";
  Table macs({"precision", "gates", "area (um^2)", "energy/op (fJ)",
              "leakage (nW)"});
  for (int bits : {32, 16, 8, 6, 4, 3, 2}) {
    const auto c = hw::mac_cost(bits, bits);
    macs.add_row({bits == 32 ? "fp32" : std::to_string(bits) + "b",
                  Table::fmt(c.gates, 0), Table::fmt(c.area_um2, 0),
                  Table::fmt(1e15 * c.energy_j, 1),
                  Table::fmt(1e9 * c.leakage_w, 1)});
  }
  macs.print(std::cout);

  for (const std::string arch : {"ResNet20", "ResNet18", "ResNet50"}) {
    auto model = build(arch);
    const auto& reg = model.registry();
    std::size_t total_macs = 0;
    for (std::size_t i = 0; i < reg.size(); ++i) total_macs += reg.unit(i).macs;
    std::cout << "\n" << arch << " (" << reg.size() << " layers, "
              << total_macs << " MACs/inference) @ " << rate
              << " inf/s:\n";
    Table table({"configuration", "total (mW)", "first+last (mW)",
                 "middle (mW)"});
    auto report = [&](const std::string& name,
                      const std::vector<hw::LayerMacs>& layers) {
      const auto r = hw::network_power(layers, rate);
      table.add_row({name, Table::fmt(1e3 * r.total_w, 3),
                     Table::fmt(1e3 * (r.first_layer_w + r.last_layer_w), 3),
                     Table::fmt(1e3 * r.middle_w, 3)});
    };
    report("fp32", hw::uniform_profile(reg, 32, 32, false));
    for (int bits : {8, 4, 2}) {
      report("fp-" + std::to_string(bits) + "b-fp (partial)",
             hw::uniform_profile(reg, bits, bits, true));
      report("uniform " + std::to_string(bits) + "b (full)",
             hw::uniform_profile(reg, bits, bits, false));
    }
    table.print(std::cout);
  }
  std::cout << "\nTakeaway: once the middle layers are quantized, the fp32 "
               "first/last layers dominate the budget — quantizing them "
               "(CCQ's contribution) removes that floor.\n";
  return 0;
}
