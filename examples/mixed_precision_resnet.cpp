// Full CCQ pipeline on ResNet20: watch the competition pick layers, the
// collaboration recover accuracy, and the final mixed-precision
// allocation emerge.  Mirrors the paper's main experiment at reduced
// scale (~2 minutes on one core).
#include <iostream>

#include "ccq/common/table.hpp"
#include "ccq/core/ccq.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/models/resnet.hpp"

int main() {
  using namespace ccq;

  data::SyntheticConfig dc;
  dc.num_classes = 10;
  dc.samples_per_class = 40;
  dc.height = dc.width = 16;
  dc.pixel_noise = 0.3f;
  dc.jitter = 2.0f;
  data::Dataset train = data::make_synthetic_vision(dc);
  data::Dataset val = train.take_tail(train.size() / 5);

  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  quant::BitLadder ladder({8, 4, 2});
  models::ModelConfig mc;
  mc.num_classes = 10;
  mc.image_size = 16;
  mc.width_multiplier = 0.25f;
  models::QuantModel model = models::make_resnet20(mc, factory, ladder);
  std::cout << model.name() << ": " << model.registry().size()
            << " quantizable layers, " << model.registry().total_weights()
            << " weights, ladder " << ladder.str() << "\n";

  core::TrainConfig pretrain;
  pretrain.epochs = 10;
  pretrain.batch_size = 32;
  pretrain.sgd = {.lr = 0.03, .momentum = 0.9, .weight_decay = 5e-4};
  pretrain.lr_decay_every = 7;
  const auto fp32 = core::pretrain_cached(model, train, val, pretrain, "");
  std::cout << "fp32 baseline: acc=" << fp32.accuracy << "\n\n";

  core::CcqConfig config;
  config.probes_per_step = 4;
  config.probe_samples = 80;
  config.max_recovery_epochs = 2;
  config.finetune.batch_size = 32;
  config.finetune.sgd = {.lr = 0.01, .momentum = 0.9, .weight_decay = 5e-4};
  config.hybrid_lr.base_lr = 0.01;
  const core::CcqResult result = core::run_ccq(model, train, val, config);

  std::cout << "\nStep log (competition winner -> new bits, valley/peak):\n";
  Table steps({"step", "layer", "bits", "lambda", "valley top-1",
               "peak top-1", "recovery epochs", "compression"});
  for (const auto& s : result.steps) {
    steps.add_row({std::to_string(s.step), s.layer_name,
                   std::to_string(s.new_bits), Table::fmt(s.lambda),
                   Table::fmt(100.0 * s.val_acc_before_recovery, 1),
                   Table::fmt(100.0 * s.val_acc_after_recovery, 1),
                   std::to_string(s.recovery_epochs),
                   Table::fmt(s.compression, 1) + "x"});
  }
  steps.print(std::cout);

  std::cout << "\nFinal per-layer precision:\n";
  Table alloc({"layer", "bits", "weights", "MACs/sample"});
  for (std::size_t i = 0; i < model.registry().size(); ++i) {
    const auto& unit = model.registry().unit(i);
    alloc.add_row({unit.name, std::to_string(result.final_bits[i]),
                   std::to_string(unit.weight_count),
                   std::to_string(unit.macs)});
  }
  alloc.print(std::cout);

  std::cout << "\nfp32 " << Table::fmt(100.0 * fp32.accuracy, 1) << " -> @"
            << ladder.initial_bits() << "b "
            << Table::fmt(100.0 * result.baseline_accuracy, 1) << " -> final "
            << Table::fmt(100.0 * result.final_accuracy, 1) << " top-1 at "
            << Table::fmt(result.final_compression, 1) << "x compression\n";
  return 0;
}
