// Deployment walkthrough: train → CCQ-quantize → compile to the integer
// engine → pack it into the serving artifact → round-trip through the
// inference server, verifying every hop matches the float simulation —
// then price it with the hardware model.
//
// This is the end-to-end story the paper's Fig 5 implies: the
// mixed-precision network CCQ finds is what an accelerator would actually
// run, at the power the MAC model predicts — and what `ccq serve-bench`
// actually serves, at the artifact size the bit packing predicts.
#include <cmath>
#include <filesystem>
#include <iostream>

#include "ccq/common/table.hpp"
#include "ccq/core/ccq.hpp"
#include "ccq/core/snapshot.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/hw/integer_engine.hpp"
#include "ccq/hw/mac_model.hpp"
#include "ccq/models/simple.hpp"
#include "ccq/nn/loss.hpp"
#include "ccq/serve/artifact.hpp"
#include "ccq/serve/harness.hpp"

int main() {
  using namespace ccq;

  // ---- task + model ----
  data::SyntheticConfig dc;
  dc.num_classes = 10;
  dc.samples_per_class = 60;
  dc.height = dc.width = 16;
  dc.pixel_noise = 0.25f;
  dc.jitter = 1.6f;
  data::Dataset train = data::make_synthetic_vision(dc);
  data::Dataset val = train.take_tail(train.size() / 5);

  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  quant::BitLadder ladder({8, 4, 2});
  models::ModelConfig mc;
  mc.num_classes = 10;
  mc.image_size = 16;
  mc.width_multiplier = 0.5f;
  auto model = models::make_simple_cnn(mc, factory, ladder);

  core::TrainConfig pre;
  pre.epochs = 10;
  pre.batch_size = 32;
  pre.sgd = {.lr = 0.03, .momentum = 0.9, .weight_decay = 5e-4};
  pre.lr_decay_every = 7;
  core::pretrain_cached(model, train, val, pre, "");
  std::cout << "fp32 baseline: "
            << core::evaluate(model, val).accuracy << "\n";

  // ---- CCQ down the ladder ----
  core::CcqConfig config;
  config.probes_per_step = 4;
  config.probe_samples = 96;
  config.max_recovery_epochs = 2;
  config.finetune.batch_size = 32;
  config.finetune.sgd = {.lr = 0.01, .momentum = 0.9, .weight_decay = 5e-4};
  config.hybrid_lr.base_lr = 0.01;
  const auto r = core::run_ccq(model, train, val, config);
  std::cout << "quantized (float sim): " << r.final_accuracy << " top-1 at "
            << r.final_compression << "x compression\n";

  // ---- compile to the integer datapath ----
  hw::IntegerNetwork engine = hw::IntegerNetwork::compile(model);
  const data::Batch batch = val.all();
  Tensor x = batch.images;
  x.apply([](float v) {  // 8-bit input quantization, same as the engine
    return std::clamp(std::round(v * 255.0f), 0.0f, 255.0f) / 255.0f;
  });
  model.set_training(false);
  Workspace ws;
  const Tensor float_logits = model.forward(x, ws);
  const Tensor int_logits = engine.forward(x);
  const float float_acc =
      nn::SoftmaxCrossEntropy::accuracy(float_logits, batch.labels);
  const float int_acc =
      nn::SoftmaxCrossEntropy::accuracy(int_logits, batch.labels);
  std::cout << "float-sim top-1 " << float_acc << " vs integer datapath "
            << int_acc << " (max logit diff "
            << max_abs_diff(float_logits, int_logits) << ")\n";

  // ---- pack the artifact and serve it ----
  // The float snapshot stores every weight as fp32; the artifact stores
  // the compiled network's k-bit codes bit-packed at each layer's final
  // ladder precision.  Loading it back and serving through the
  // dynamic-batching server must reproduce the integer datapath exactly.
  const std::string snapshot_path = "deploy_snapshot.bin";
  const std::string artifact_path = "deploy_model.ccqa";
  core::save_snapshot(model, snapshot_path);
  serve::export_artifact(engine, artifact_path);
  const auto snapshot_bytes = std::filesystem::file_size(snapshot_path);
  const auto artifact_bytes = std::filesystem::file_size(artifact_path);
  std::cout << "float snapshot " << snapshot_bytes << " B -> packed artifact "
            << artifact_bytes << " B ("
            << static_cast<double>(snapshot_bytes) /
                   static_cast<double>(artifact_bytes)
            << "x smaller)\n";

  serve::ServeConfig sc;
  sc.workers = 2;
  serve::InferenceServer server(sc);
  serve::ModelConfig smc;
  smc.max_batch = 8;
  server.load("deploy", artifact_path, smc);
  serve::ServeHarness harness(server, "deploy");
  const auto served = harness.run(x, {.producers = 2});
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < served.outputs.size(); ++i) {
    for (std::size_t c = 0; c < served.outputs[i].dim(0); ++c) {
      max_diff = std::max(
          max_diff, std::abs(served.outputs[i](c) - int_logits(i, c)));
    }
  }
  std::cout << "served " << served.outputs.size()
            << " requests through the batching server (max diff vs direct "
               "integer forward: "
            << max_diff << ")\n";

  // ---- price it ----
  const auto profile = hw::profile_registry(model.registry());
  const auto fp_profile =
      hw::uniform_profile(model.registry(), 32, 32, false);
  const double rate = 1000.0;
  const auto quant_power = hw::network_power(profile, rate);
  const auto fp_power = hw::network_power(fp_profile, rate);
  std::cout << "iso-throughput power @" << rate << " inf/s: fp32 "
            << 1e3 * fp_power.total_w << " mW -> quantized "
            << 1e3 * quant_power.total_w << " mW ("
            << fp_power.total_w / quant_power.total_w << "x less)\n";
  std::cout << "integer MACs per inference: "
            << engine.macs_per_sample(16, 16) << "\n";
  return 0;
}
