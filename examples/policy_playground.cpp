// Compare every quantization policy one-shot at several bit widths on a
// small CNN — a quick map of the policy landscape the CCQ framework is
// agnostic over, plus the static calibrators (ACIQ / KL) on real weight
// tensors.
#include <iostream>

#include "ccq/common/table.hpp"
#include "ccq/core/baselines.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/models/simple.hpp"
#include "ccq/quant/calibrate.hpp"

int main() {
  using namespace ccq;

  data::SyntheticConfig dc;
  dc.num_classes = 10;
  dc.samples_per_class = 50;
  dc.height = dc.width = 16;
  dc.pixel_noise = 0.3f;
  dc.jitter = 2.0f;
  data::Dataset train = data::make_synthetic_vision(dc);
  data::Dataset val = train.take_tail(train.size() / 5);

  Table table({"policy", "fp32 top-1", "8b top-1", "4b top-1", "2b top-1"});
  for (quant::Policy policy :
       {quant::Policy::kDoReFa, quant::Policy::kWrpn, quant::Policy::kPact,
        quant::Policy::kPactSawb, quant::Policy::kLqNets, quant::Policy::kLsq,
        quant::Policy::kMinMax}) {
    quant::QuantFactory factory{.policy = policy};
    quant::BitLadder ladder({8, 4, 2});
    models::ModelConfig mc;
    mc.num_classes = 10;
    mc.image_size = 16;
    mc.width_multiplier = 0.5f;
    auto model = models::make_simple_cnn(mc, factory, ladder);

    core::TrainConfig pre;
    pre.epochs = 10;
    pre.batch_size = 32;
    pre.sgd = {.lr = 0.03, .momentum = 0.9, .weight_decay = 5e-4};
    pre.lr_decay_every = 7;
    core::train(model, train, val, pre);
    const float fp32 = core::evaluate(model, val).accuracy;

    core::TrainConfig ft;
    ft.epochs = 3;
    ft.batch_size = 32;
    ft.sgd = {.lr = 0.01, .momentum = 0.9, .weight_decay = 5e-4};
    std::vector<std::string> row{quant::policy_str(policy),
                                 Table::fmt(100.0 * fp32, 1)};
    for (std::size_t pos = 0; pos < ladder.size(); ++pos) {
      const auto r = core::one_shot_quantize(model, train, val, ft, pos);
      row.push_back(Table::fmt(100.0 * r.accuracy, 1));
    }
    table.add_row(row);
    std::cout << "." << std::flush;
  }
  std::cout << "\n\nOne-shot accuracy by policy and precision (SimpleCNN / "
               "synthetic CIFAR):\n";
  table.print(std::cout);

  // Static calibrators on a real trained weight tensor.
  std::cout << "\nStatic clip calibration on the first conv of a trained "
               "net (lower quantization MSE is better):\n";
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  models::ModelConfig mc;
  mc.num_classes = 10;
  mc.image_size = 16;
  auto model = models::make_simple_cnn(mc, factory, quant::BitLadder({8, 4, 2}));
  core::TrainConfig pre;
  pre.epochs = 5;
  pre.batch_size = 32;
  core::train(model, train, val, pre);
  const Tensor& w = model.parameters().front()->value;

  Table calib({"bits", "minmax clip (mse)", "ACIQ-gauss (mse)",
               "ACIQ-laplace (mse)", "KL (mse)"});
  for (int bits : {2, 3, 4}) {
    const float minmax = std::max(w.max(), -w.min());
    const float ag = quant::aciq_clip(w, bits, quant::WeightDist::kGaussian);
    const float al = quant::aciq_clip(w, bits, quant::WeightDist::kLaplace);
    const float kl = quant::kl_calibrate_clip(w, bits);
    auto cell = [&](float clip) {
      return Table::fmt(clip, 3) + " (" +
             Table::fmt(1e4f * quant::quantization_mse(w, bits, clip), 2) +
             "e-4)";
    };
    calib.add_row({std::to_string(bits), cell(minmax), cell(ag), cell(al),
                   cell(kl)});
  }
  calib.print(std::cout);
  return 0;
}
