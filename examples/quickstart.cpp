// Quickstart: quantize a small CNN with PACT+CCQ on the synthetic CIFAR
// stand-in, end to end, in under a minute.
//
//   1. build a quantizable model (every conv/linear gets a weight hook,
//      every activation is a PACT quantizer);
//   2. pretrain it at full precision;
//   3. run the competitive-collaborative controller down the bit ladder;
//   4. print the learned per-layer bit allocation and compression.
#include <iostream>

#include "ccq/common/table.hpp"
#include "ccq/core/ccq.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/models/simple.hpp"

int main() {
  using namespace ccq;

  // ---- data: 10-class procedural texture task (CIFAR10 stand-in).
  data::Dataset train = data::make_synthetic_cifar(/*samples_per_class=*/80,
                                                   /*seed=*/1234,
                                                   /*image_size=*/16);
  data::Dataset val = train.take_tail(200);
  std::cout << "train=" << train.size() << " val=" << val.size() << "\n";

  // ---- model: SimpleCNN with the PACT policy and an 8→4→2 ladder.
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  quant::BitLadder ladder({8, 4, 2});
  models::ModelConfig config;
  config.image_size = 16;
  config.width_multiplier = 0.5f;
  models::QuantModel model = models::make_simple_cnn(config, factory, ladder);
  std::cout << model.name() << ": " << model.registry().size()
            << " quantizable layers, "
            << model.registry().total_weights() << " weights\n";

  // ---- fp32 pretraining.
  core::TrainConfig pretrain;
  pretrain.epochs = 8;
  pretrain.batch_size = 32;
  pretrain.sgd = {.lr = 0.05, .momentum = 0.9, .weight_decay = 5e-4};
  const core::EvalResult fp32 =
      core::pretrain_cached(model, train, val, pretrain, "");
  std::cout << "fp32 baseline: acc=" << fp32.accuracy << "\n";

  // ---- CCQ.
  core::CcqConfig ccq;
  ccq.probes_per_step = 6;
  ccq.probe_samples = 128;
  ccq.max_recovery_epochs = 2;
  ccq.finetune.batch_size = 32;
  ccq.finetune.sgd = {.lr = 0.01, .momentum = 0.9, .weight_decay = 5e-4};
  ccq.hybrid_lr.base_lr = 0.01;
  const core::CcqResult result = core::run_ccq(model, train, val, ccq);

  // ---- report.
  Table table({"layer", "bits", "weights"});
  for (std::size_t i = 0; i < model.registry().size(); ++i) {
    const auto& unit = model.registry().unit(i);
    table.add_row({unit.name, std::to_string(result.final_bits[i]),
                   std::to_string(unit.weight_count)});
  }
  table.print(std::cout);
  std::cout << "\nbaseline@8b acc = " << result.baseline_accuracy
            << "\nfinal acc      = " << result.final_accuracy
            << "\ndegradation    = "
            << result.baseline_accuracy - result.final_accuracy
            << "\ncompression    = " << result.final_compression << "x\n"
            << "quantization steps: " << result.steps.size() << "\n";
  return 0;
}
