// Table II reproduction: framework comparison on three dataset/arch rows.
//
// For each scenario we report, exactly like the paper's columns: the fp32
// baseline top-1, the bit configuration, first/last-layer precision, the
// quantized top-1, the model compression ratio and the degradation from
// baseline.  Rows:
//   * uniform one-shot baselines (DoReFa, PACT, PACT-SAWB, LQ-Nets) with
//     fp32 first/last layers — how these policies are normally run;
//   * HAWQ-proxy mixed precision (Fisher-ranked bit assignment);
//   * PACT+CCQ (ours) mixed precision with *every* layer quantized.
//
// The paper's shape to reproduce: CCQ attains the smallest degradation at
// a comparable (high) compression ratio, while quantizing first/last.
#include "bench_common.hpp"

#include "ccq/core/hessian.hpp"

namespace {

using namespace ccq;
using namespace ccq::bench;

struct Scenario {
  std::string name;
  Arch arch;
  const Split& split;
};

void add_row(Table& table, const std::string& scenario,
             const std::string& framework, float baseline, float quantized,
             const std::string& bits, const std::string& first_last,
             double compression) {
  table.add_row({scenario, framework, Table::fmt(100.0 * baseline), bits,
                 first_last, Table::fmt(100.0 * quantized),
                 Table::fmt(compression) + "x",
                 Table::fmt(100.0 * (baseline - quantized))});
}

void run_scenario(Table& table, const Scenario& s) {
  std::cout << "--- " << s.name << " ---\n";
  const std::size_t classes = s.split.train.num_classes();

  // Uniform one-shot baselines at 2/2 with fp32 first/last (the
  // configurations the paper's comparison rows use).
  const struct {
    quant::Policy policy;
    int bits;
  } baselines[] = {
      {quant::Policy::kDoReFa, 2},
      {quant::Policy::kPact, 2},
      {quant::Policy::kPactSawb, 2},
      {quant::Policy::kLqNets, 2},
  };
  for (const auto& b : baselines) {
    quant::BitLadder ladder({8, 4, b.bits});
    auto model = make_model(s.arch, classes, b.policy, ladder);
    const float baseline =
        pretrain_baseline(model, s.split, s.arch, s.name, b.policy, 12);
    model.registry().force_bits(0, 32);
    model.registry().force_bits(model.registry().size() - 1, 32);
    // One-shot baselines get a generous fine-tune budget (they stand in
    // for fully-converged published numbers).
    const auto r =
        core::one_shot_quantize(model, s.split.train, s.split.val,
                                finetune_config(scaled(8)), ladder.size() - 1);
    add_row(table, s.name, quant::policy_str(b.policy) + " (one-shot)",
            baseline, r.accuracy,
            std::to_string(b.bits) + "/" + std::to_string(b.bits), "32/32",
            r.compression);
  }

  // HAWQ mixed precision (quantizes first/last too).  The CIFAR row uses
  // the faithful power-iteration Hessian analysis; the deeper rows use
  // the cheap Fisher proxy to stay inside the CPU budget.
  {
    quant::BitLadder ladder({8, 4, 2});
    auto model = make_model(s.arch, classes, quant::Policy::kPact, ladder);
    const float baseline = pretrain_baseline(model, s.split, s.arch, s.name,
                                             quant::Policy::kPact, 12);
    if (s.arch == Arch::kResNet20) {
      core::HessianConfig hc;
      hc.power_iterations = 4;
      hc.sample_count = 96;
      const auto r = core::hawq_hessian_quantize(
          model, s.split.train, s.split.val, finetune_config(scaled(8)), hc);
      add_row(table, s.name, "HAWQ (power-iter)", baseline, r.accuracy, "MP",
              "MP", r.compression);
    } else {
      const auto r = core::hawq_proxy_quantize(
          model, s.split.train, s.split.val, finetune_config(scaled(8)));
      add_row(table, s.name, "HAWQ-proxy", baseline, r.accuracy, "MP", "MP",
              r.compression);
    }
  }

  // PACT+CCQ (ours): full gradual mixed precision, everything quantized.
  {
    quant::BitLadder ladder({8, 4, 2});
    auto model = make_model(s.arch, classes, quant::Policy::kPact, ladder);
    const float baseline = pretrain_baseline(model, s.split, s.arch, s.name,
                                             quant::Policy::kPact, 12);
    auto config = ccq_config();
    const auto r = core::run_ccq(model, s.split.train, s.split.val, config);
    const auto& reg = model.registry();
    const std::string first_last = std::to_string(reg.bits_of(0)) + "/" +
                                   std::to_string(reg.bits_of(reg.size() - 1));
    add_row(table, s.name, "PACT+CCQ (ours)", baseline, r.final_accuracy, "MP",
            first_last, r.final_compression);
  }
}

}  // namespace

int main() {
  std::cout << "=== Table II: comparison with related frameworks ===\n\n";
  const Split cifar = cifar_split();
  const Split imagenet = imagenet_split();

  Table table({"Dataset & Arch", "Framework", "Baseline Top-1", "Bits (W/A)",
               "first/last", "Quantized Top-1", "Compression",
               "Degradation"});
  run_scenario(table, {"ResNet20-synCIFAR", Arch::kResNet20, cifar});
  run_scenario(table, {"ResNet18-synImageNet", Arch::kResNet18, imagenet});
  run_scenario(table, {"ResNet50-synImageNet", Arch::kResNet50, imagenet});
  std::cout << "\n";
  emit(table, "table2");
  return 0;
}
