// Fig 3 reproduction: manual vs adaptive recovery.
//
// Manual recovery fixes the fine-tuning epochs per quantization step; the
// paper shows a predefined count does not guarantee recovery, while the
// adaptive scheme (train until a validation threshold) controls the
// fine-tuning length per step — short where one epoch suffices, longer
// where the valley is deep.  The paper runs this on ResNet50/ImageNet; we
// use the ResNet20 scenario for single-core budget (DESIGN.md §8) plus a
// threshold-margin ablation (DESIGN.md §6).
#include "bench_common.hpp"

namespace {

using namespace ccq;
using namespace ccq::bench;

struct Outcome {
  float final_acc;
  float worst_after_recovery;
  int total_epochs;
  int min_epochs;
  int max_epochs;
};

Outcome run_mode(const Split& split, core::RecoveryMode mode, int manual_epochs,
                 float threshold_drop, int max_epochs) {
  const quant::BitLadder ladder({8, 4, 2});
  auto model =
      make_model(Arch::kResNet20, 10, quant::Policy::kPact, ladder);
  pretrain_baseline(model, split, Arch::kResNet20, "cifar",
                    quant::Policy::kPact, 12);
  auto config = ccq_config();
  config.recovery = mode;
  config.manual_recovery_epochs = manual_epochs;
  config.recovery_drop_threshold = threshold_drop;
  config.max_recovery_epochs = max_epochs;
  const auto r = core::run_ccq(model, split.train, split.val, config);

  Outcome out{r.final_accuracy, 1.0f, 0, 1 << 30, 0};
  for (const auto& step : r.steps) {
    out.total_epochs += step.recovery_epochs;
    out.min_epochs = std::min(out.min_epochs, step.recovery_epochs);
    out.max_epochs = std::max(out.max_epochs, step.recovery_epochs);
    out.worst_after_recovery =
        std::min(out.worst_after_recovery, step.val_acc_after_recovery);
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Fig 3: manual vs adaptive recovery (ResNet20 / synthetic "
               "CIFAR) ===\n\n";
  const Split split = cifar_split();

  Table table({"recovery scheme", "final top-1", "worst post-step top-1",
               "total ft epochs", "epochs/step (min..max)"});
  const Outcome manual =
      run_mode(split, core::RecoveryMode::kManual, 1, 0.01f, 1);
  table.add_row({"manual (1 epoch/step)", Table::fmt(100.0 * manual.final_acc),
                 Table::fmt(100.0 * manual.worst_after_recovery),
                 std::to_string(manual.total_epochs),
                 std::to_string(manual.min_epochs) + ".." +
                     std::to_string(manual.max_epochs)});
  const Outcome adaptive = run_mode(split, core::RecoveryMode::kAdaptive, 0,
                                    0.01f, bench::scaled(3));
  table.add_row({"adaptive (threshold 1%)",
                 Table::fmt(100.0 * adaptive.final_acc),
                 Table::fmt(100.0 * adaptive.worst_after_recovery),
                 std::to_string(adaptive.total_epochs),
                 std::to_string(adaptive.min_epochs) + ".." +
                     std::to_string(adaptive.max_epochs)});
  const Outcome loose = run_mode(split, core::RecoveryMode::kAdaptive, 0,
                                 0.05f, bench::scaled(3));
  table.add_row({"adaptive (threshold 5%, ablation)",
                 Table::fmt(100.0 * loose.final_acc),
                 Table::fmt(100.0 * loose.worst_after_recovery),
                 std::to_string(loose.total_epochs),
                 std::to_string(loose.min_epochs) + ".." +
                     std::to_string(loose.max_epochs)});
  emit(table, "fig3_recovery");

  std::cout << "\nadaptive varies fine-tuning per step (min!=max expected); "
               "manual spends a fixed budget regardless of valley depth\n";
  return 0;
}
