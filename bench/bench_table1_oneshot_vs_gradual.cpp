// Table I reproduction: one-shot vs gradual (CCQ) quantization under
// three policies — DoReFa, WRPN, PACT — at the fp-3b-fp configuration
// (first and last layers full precision, every other layer 3 bits).
//
// Paper's claim: reaching the *same* bit configuration gradually, with
// the accuracy-driven competition choosing the order and collaboration
// recovering after each step, beats snapping all layers at once.
#include "bench_common.hpp"

namespace {

using namespace ccq;
using namespace ccq::bench;

struct Row {
  std::string policy;
  float baseline;
  float one_shot;
  float gradual;
};

Row run_policy(quant::Policy policy, const Split& split) {
  const quant::BitLadder ladder({8, 4, 3});  // gradual path down to 3b

  // ---- gradual: frozen fp edges, CCQ walks everything else to 3 bits.
  auto cc_model = make_model(Arch::kResNet20, 10, policy, ladder);
  const float baseline = pretrain_baseline(cc_model, split, Arch::kResNet20,
                                           "cifar", policy, 12);
  cc_model.registry().force_bits(0, 32);
  cc_model.registry().force_bits(cc_model.registry().size() - 1, 32);
  auto config = ccq_config();
  const auto cc = core::run_ccq(cc_model, split.train, split.val, config);
  int ccq_epochs = config.initial_recovery_epochs;
  for (const auto& step : cc.steps) ccq_epochs += step.recovery_epochs;

  // ---- one-shot: all middle layers straight to 3 bits, then fine-tune
  // with the SAME total epoch budget the gradual run consumed — the
  // comparison isolates *gradualness*, not training time.
  auto os_model = make_model(Arch::kResNet20, 10, policy, ladder);
  pretrain_baseline(os_model, split, Arch::kResNet20, "cifar", policy, 12);
  os_model.registry().force_bits(0, 32);
  os_model.registry().force_bits(os_model.registry().size() - 1, 32);
  const auto os = core::one_shot_quantize(os_model, split.train, split.val,
                                          finetune_config(ccq_epochs),
                                          ladder.size() - 1);

  return Row{quant::policy_str(policy), baseline, os.accuracy,
             cc.final_accuracy};
}

}  // namespace

int main() {
  std::cout << "=== Table I: one-shot vs gradual quantization "
               "(ResNet20 / synthetic CIFAR, fp-3b-fp) ===\n\n";
  const Split split = cifar_split();

  Table table({"Quantization Scheme", "Baseline Top-1", "One-shot Top-1",
               "Ours (Gradual) Top-1", "Gradual - OneShot"});
  int wins = 0, rows = 0;
  for (quant::Policy policy : {quant::Policy::kDoReFa, quant::Policy::kWrpn,
                               quant::Policy::kPact}) {
    const Row row = run_policy(policy, split);
    table.add_row({row.policy + " fp-3b-fp",
                   Table::fmt(100.0 * row.baseline),
                   Table::fmt(100.0 * row.one_shot),
                   Table::fmt(100.0 * row.gradual),
                   Table::fmt(100.0 * (row.gradual - row.one_shot))});
    ++rows;
    if (row.gradual >= row.one_shot) ++wins;
  }
  emit(table, "table1");
  std::cout << "\ngradual >= one-shot in " << wins << "/" << rows
            << " policies (paper: 3/3)\n";
  return 0;
}
