// Fig 2 reproduction: the competitive-collaborative learning curve.
//
// The figure's signature shape: a *valley* right after each competition
// step quantizes a layer (accuracy drops), then a *peak* as collaboration
// (fine-tuning all layers) recovers it.  We emit the full per-epoch
// series with event markers and verify the valley/peak structure.
#include "bench_common.hpp"

#include "ccq/common/json.hpp"

int main() {
  using namespace ccq;
  using namespace ccq::bench;
  std::cout << "=== Fig 2: learning curve (valleys = quantization, peaks = "
               "recovery; ResNet20 / synthetic CIFAR) ===\n\n";
  const Split split = cifar_split();
  const quant::BitLadder ladder({8, 4, 2});
  auto model =
      make_model(Arch::kResNet20, 10, quant::Policy::kPact, ladder);
  pretrain_baseline(model, split, Arch::kResNet20, "cifar",
                    quant::Policy::kPact, 12);
  auto config = ccq_config();
  const auto r = core::run_ccq(model, split.train, split.val, config);

  Table curve({"epoch", "val_top1", "train_loss", "lr", "event"});
  for (const auto& stat : r.curve) {
    curve.add_row({std::to_string(stat.epoch),
                   Table::fmt(100.0 * stat.val_accuracy),
                   Table::fmt(stat.train_loss, 4), Table::fmt(stat.lr, 5),
                   stat.event});
  }
  emit(curve, "fig2_learning_curve");

  // Machine-readable run record (per-step trace) for plotting tools.
  Json record = Json::object();
  record.set("baseline_top1", 100.0 * r.baseline_accuracy);
  record.set("final_top1", 100.0 * r.final_accuracy);
  record.set("compression", r.final_compression);
  Json steps_json = Json::array();
  for (const auto& s : r.steps) {
    Json step = Json::object();
    step.set("step", s.step);
    step.set("layer", s.layer_name);
    step.set("bits", s.new_bits);
    step.set("valley_top1", 100.0 * s.val_acc_before_recovery);
    step.set("peak_top1", 100.0 * s.val_acc_after_recovery);
    step.set("recovery_epochs", s.recovery_epochs);
    step.set("compression", s.compression);
    steps_json.push_back(std::move(step));
  }
  record.set("steps", std::move(steps_json));
  const std::string json_path =
      env_str("CCQ_BENCH_OUT", "bench_out") + "/fig2_run.json";
  if (record.save(json_path)) std::cout << "[json] " << json_path << "\n";

  // Quantify the valley→peak recovery the figure illustrates.
  int recovered = 0;
  double total_valley_depth = 0.0;
  for (const auto& step : r.steps) {
    total_valley_depth +=
        std::max(0.0f, r.baseline_accuracy - step.val_acc_before_recovery);
    if (step.val_acc_after_recovery >= step.val_acc_before_recovery) {
      ++recovered;
    }
  }
  std::cout << "\nsteps: " << r.steps.size() << ", recovery-helped in "
            << recovered << " steps, mean valley depth "
            << Table::fmt(100.0 * total_valley_depth /
                          std::max<std::size_t>(1, r.steps.size()))
            << " top-1 points\n";
  std::cout << "final: acc " << Table::fmt(100.0 * r.final_accuracy)
            << " vs baseline " << Table::fmt(100.0 * r.baseline_accuracy)
            << ", compression " << Table::fmt(r.final_compression) << "x\n";
  return 0;
}
