// Serving benchmarks: throughput and latency of the dynamic-batching
// inference server across the batch-size × worker-count grid, plus the
// zero-allocation claim — steady-state serving performs no float-storage
// allocations (workspace-pooled staging/logits, capacity-reusing reply
// tensors).  Build with -DCCQ_COUNT_ALLOCS=ON to see the alloc columns:
//
//   cmake -B build -DCMAKE_BUILD_TYPE=Release -DCCQ_COUNT_ALLOCS=ON
//   ./build/bench/bench_serve
#include <benchmark/benchmark.h>

#include <vector>

#include "ccq/common/alloc.hpp"
#include "ccq/models/simple.hpp"
#include "ccq/serve/harness.hpp"

namespace {

using namespace ccq;

struct AllocSnapshot {
  std::size_t count = alloc_stats::count();
  std::size_t bytes = alloc_stats::bytes();
};

void report_allocs(benchmark::State& state, const AllocSnapshot& before) {
  if (!alloc_stats::enabled()) return;
  const auto iters = static_cast<double>(state.iterations());
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(alloc_stats::count() - before.count) / iters);
  state.counters["alloc_kb_per_iter"] = benchmark::Counter(
      static_cast<double>(alloc_stats::bytes() - before.bytes) / 1024.0 /
      iters);
}

/// The served network: an untrained simplecnn quantized to a mixed
/// 8/4/2 allocation — serving cost does not depend on the weight values.
hw::IntegerNetwork bench_network() {
  models::ModelConfig mc;
  mc.num_classes = 10;
  mc.image_size = 16;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto model =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 4, 2}));
  quant::LayerRegistry& registry = model.registry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    registry.set_ladder_pos(i, i % 3);
  }
  model.set_training(true);
  Tensor calib({8, 3, 16, 16});
  auto cd = calib.data();
  for (std::size_t i = 0; i < cd.size(); ++i) {
    cd[i] = static_cast<float>((i * 2654435761u >> 8) & 255u) / 255.0f;
  }
  model.forward(calib);
  model.set_training(false);
  return hw::IntegerNetwork::compile(model);
}

Tensor bench_samples(std::size_t n) {
  Tensor x({n, 3, 16, 16});
  auto data = x.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>((i * 2654435761u >> 8) & 255u) / 255.0f;
  }
  return x;
}

/// End-to-end throughput of the batching server: one iteration pushes a
/// wave of requests and waits for every reply.  Inputs and reply tensors
/// are reused across waves, so warm iterations perform zero
/// float-storage allocations end to end.  Axes: max_batch × workers.
void BM_ServeThroughput(benchmark::State& state) {
  serve::ServeConfig config;
  config.max_batch = static_cast<std::size_t>(state.range(0));
  config.workers = static_cast<std::size_t>(state.range(1));
  config.max_delay_us = 200;
  config.queue_capacity = 256;
  serve::InferenceServer server(bench_network(), config);

  const std::size_t wave = 64;
  const Tensor samples = bench_samples(wave);
  const Shape chw{3, 16, 16};
  const std::size_t sample_floats = shape_numel(chw);
  std::vector<Tensor> inputs(wave), outputs(wave);
  for (std::size_t i = 0; i < wave; ++i) {
    inputs[i] = Tensor(chw);
    const auto src = samples.data().subspan(i * sample_floats, sample_floats);
    std::copy(src.begin(), src.end(), inputs[i].data().begin());
  }
  std::vector<std::future<void>> replies;
  replies.reserve(wave);

  auto push_wave = [&] {
    replies.clear();
    for (std::size_t i = 0; i < wave; ++i) {
      replies.push_back(server.submit(inputs[i], outputs[i]));
    }
    for (auto& reply : replies) reply.get();
  };

  push_wave();  // warm every worker's workspace and the reply tensors
  const AllocSnapshot before;
  for (auto _ : state) {
    push_wave();
    benchmark::DoNotOptimize(outputs.data());
  }
  report_allocs(state, before);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wave));
}
BENCHMARK(BM_ServeThroughput)
    ->ArgNames({"max_batch", "workers"})
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({16, 2})
    ->Args({16, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Single-request round-trip latency (enqueue → reply) on an otherwise
/// idle server: the floor the dynamic-batching delay adds to.
void BM_ServeLatency(benchmark::State& state) {
  serve::ServeConfig config;
  config.max_batch = 1;  // flush immediately: pure per-request latency
  config.workers = static_cast<std::size_t>(state.range(0));
  serve::InferenceServer server(bench_network(), config);

  Tensor sample = bench_samples(1).reshaped({3, 16, 16});
  Tensor out;
  {
    // Warm every worker's workspace: with max_batch = 1 a backlog of
    // concurrent requests spreads across all workers.
    std::vector<Tensor> warm_outs(32);
    std::vector<std::future<void>> warm;
    warm.reserve(warm_outs.size());
    for (Tensor& warm_out : warm_outs) {
      warm.push_back(server.submit(sample, warm_out));
    }
    for (auto& reply : warm) reply.get();
  }
  server.submit(sample, out).get();  // …and the reply tensor
  const AllocSnapshot before;
  for (auto _ : state) {
    server.submit(sample, out).get();
    benchmark::DoNotOptimize(out.data().data());
  }
  report_allocs(state, before);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeLatency)
    ->ArgNames({"workers"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
