// Serving benchmarks: closed- and open-loop traffic against the
// registry-routed server, plus the zero-allocation claim — steady-state
// serving performs no float-storage allocations (workspace-pooled
// staging/logits, capacity-reusing reply tensors).
//
//   * BM_ServeClosedLoop — P producers submit-wait-submit as fast as
//     replies return: measures capacity; p50/p99 are exact per-request
//     round trips from the harness.
//   * BM_ServeOpenLoop — submissions paced at a fixed offered rate,
//     rejections shed: measures latency under a load you chose; p50/p99
//     come from the server's `serve.<model>.latency` histogram and the
//     shed rate is reported alongside (a saturated row is meaningless
//     without it).
//   * BM_ServeLatency — single request on an idle server: the floor the
//     batching delay adds to.
//   * BM_ServeMixedPriority — two models at a 4:1 fair-share weight
//     ratio under a mixed-priority (low/normal/high) open-loop sweep:
//     per-class p50/p99 from the `serve.<model>.latency.<class>`
//     histograms and the shed split per class.  Shed rates here (and in
//     the open-loop rows) are computed against `HarnessReport::offered`
//     — true submission attempts — not the sample count.
//   * BM_AdaptiveRung — the per-rung price list: closed-loop capacity of
//     a 3-rung multi-point artifact pinned at each serving rung.
//   * BM_AdaptiveLoadRamp — a scripted up-then-down offered-load ramp
//     through the saturation knee: the operating-point controller
//     degrades under pressure and restores when load drops, reported as
//     switch count / deepest rung / final rung / shed rate.
//
// The first three are snapshotted into BENCH_serve.json by
// `tools/bench_snapshot.py --suite serve`, the adaptive pair into
// BENCH_adaptive.json by `--suite adaptive`.  Build with
// -DCCQ_COUNT_ALLOCS=ON to see the alloc columns:
//
//   cmake -B build -DCMAKE_BUILD_TYPE=Release -DCCQ_COUNT_ALLOCS=ON
//   ./build/bench/bench_serve
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "ccq/common/alloc.hpp"
#include "ccq/common/telemetry.hpp"
#include "ccq/core/trail.hpp"
#include "ccq/models/simple.hpp"
#include "ccq/serve/artifact.hpp"
#include "ccq/serve/harness.hpp"

namespace {

using namespace ccq;

struct AllocSnapshot {
  std::size_t count = alloc_stats::count();
  std::size_t bytes = alloc_stats::bytes();
};

void report_allocs(benchmark::State& state, const AllocSnapshot& before) {
  if (!alloc_stats::enabled()) return;
  const auto iters = static_cast<double>(state.iterations());
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(alloc_stats::count() - before.count) / iters);
  state.counters["alloc_kb_per_iter"] = benchmark::Counter(
      static_cast<double>(alloc_stats::bytes() - before.bytes) / 1024.0 /
      iters);
}

/// The served model: an untrained simplecnn quantized to a mixed
/// 8/4/2 allocation — serving cost does not depend on the weight values.
models::QuantModel bench_model() {
  models::ModelConfig mc;
  mc.num_classes = 10;
  mc.image_size = 16;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto model =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 4, 2}));
  quant::LayerRegistry& registry = model.registry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    registry.set_ladder_pos(i, i % 3);
  }
  Workspace ws;
  model.set_training(true);
  Tensor calib({8, 3, 16, 16});
  auto cd = calib.data();
  for (std::size_t i = 0; i < cd.size(); ++i) {
    cd[i] = static_cast<float>((i * 2654435761u >> 8) & 255u) / 255.0f;
  }
  model.forward(calib, ws);
  model.set_training(false);
  return model;
}

hw::IntegerNetwork bench_network() {
  auto model = bench_model();
  return hw::IntegerNetwork::compile(model);
}

/// The 3-rung multi-point variant of the same model: the trail a CCQ run
/// would have recorded for this allocation, replayed by
/// `build_multipoint` (loose budget — the adaptive benchmarks want the
/// full rung span, not a size-fitting exercise).
hw::IntegerNetwork adaptive_network() {
  auto model = bench_model();
  const quant::LayerRegistry& registry = model.registry();
  core::RungTrail trail;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    if (registry.unit(i).ladder_pos == 0) continue;
    core::TrailStep step;
    step.layer = i;
    step.ladder_pos = registry.unit(i).ladder_pos;
    step.val_acc = 0.9f;
    trail.push_back(step);
  }
  serve::MultiPointOptions options;
  options.size_budget = 4.0;
  return serve::build_multipoint(model, trail, options);
}

Tensor bench_samples(std::size_t n) {
  Tensor x({n, 3, 16, 16});
  auto data = x.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>((i * 2654435761u >> 8) & 255u) / 255.0f;
  }
  return x;
}

void report_quantiles(benchmark::State& state,
                      std::vector<std::uint64_t>& latencies) {
  if (latencies.empty()) return;
  std::sort(latencies.begin(), latencies.end());
  auto nearest = [&](double q) {
    std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size()) + 0.5);
    rank = std::min(std::max<std::size_t>(rank, 1), latencies.size());
    return static_cast<double>(latencies[rank - 1]) / 1e3;
  };
  state.counters["p50_us"] = benchmark::Counter(nearest(0.50));
  state.counters["p99_us"] = benchmark::Counter(nearest(0.99));
}

/// Closed loop: P producers in lock-step with the server (submit → wait
/// → next).  Measures capacity; retries queue-full rejections, so every
/// sample is eventually served.  Axes: producers × workers.
void BM_ServeClosedLoop(benchmark::State& state) {
  serve::ServeConfig config;
  config.workers = static_cast<std::size_t>(state.range(1));
  serve::InferenceServer server(config);
  serve::ModelConfig mc;
  mc.max_batch = 8;
  mc.max_delay_us = 200;
  mc.queue_capacity = 256;
  server.load("bench", bench_network(), mc);
  serve::ServeHarness harness(server, "bench");

  const std::size_t wave = 64;
  const Tensor samples = bench_samples(wave);
  serve::HarnessOptions options;
  options.producers = static_cast<std::size_t>(state.range(0));

  harness.run(samples, options);  // warm workspaces and reply tensors
  const AllocSnapshot before;
  std::vector<std::uint64_t> latencies;
  for (auto _ : state) {
    const serve::HarnessReport report = harness.run(samples, options);
    latencies.insert(latencies.end(), report.latency_ns.begin(),
                     report.latency_ns.end());
    benchmark::DoNotOptimize(report.outputs.data());
  }
  report_allocs(state, before);
  report_quantiles(state, latencies);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wave));
}
BENCHMARK(BM_ServeClosedLoop)
    ->ArgNames({"producers", "workers"})
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({8, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Open loop: submissions paced at a fixed aggregate offered rate,
/// rejections shed.  The latency distribution comes from the server's
/// own `serve.bench.latency` histogram (log₂ buckets — factor-of-two
/// resolution, which is what the offered-load sweep needs), the shed
/// rate from the report.  Axis: offered requests/second, swept across
/// the saturation knee.
void BM_ServeOpenLoop(benchmark::State& state) {
  serve::ServeConfig config;
  config.workers = 2;
  serve::InferenceServer server(config);
  serve::ModelConfig mc;
  mc.max_batch = 8;
  mc.max_delay_us = 1000;
  mc.queue_capacity = 64;
  server.load("bench", bench_network(), mc);
  serve::ServeHarness harness(server, "bench");

  const Tensor samples = bench_samples(256);
  serve::HarnessOptions options;
  options.producers = 4;
  options.offered_rps = static_cast<double>(state.range(0));

  harness.run(samples, {.producers = 4});  // warm (closed loop, no pacing)
  const bool metrics_were_on = telemetry::metrics_enabled();
  telemetry::set_metrics_enabled(true);
  telemetry::reset_metrics();
  std::size_t offered = 0, served = 0, shed = 0;
  for (auto _ : state) {
    const serve::HarnessReport report = harness.run(samples, options);
    offered += report.offered;
    served += report.requests;
    shed += report.rejected + report.shed;
    benchmark::DoNotOptimize(report.outputs.data());
  }
  const int timer = telemetry::find_named_metric(telemetry::NamedKind::kTimer,
                                                 "serve.bench.latency");
  if (timer >= 0) {
    const telemetry::TimerStats stats = telemetry::named_timer_stats(timer);
    state.counters["p50_us"] = benchmark::Counter(
        static_cast<double>(telemetry::approx_quantile(stats, 0.50)) / 1e3);
    state.counters["p99_us"] = benchmark::Counter(
        static_cast<double>(telemetry::approx_quantile(stats, 0.99)) / 1e3);
  }
  state.counters["shed_rate"] = benchmark::Counter(
      offered == 0 ? 0.0
                   : static_cast<double>(shed) / static_cast<double>(offered));
  telemetry::set_metrics_enabled(metrics_were_on);
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
}
BENCHMARK(BM_ServeOpenLoop)
    ->ArgNames({"offered_rps"})
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(64000)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Single-request round-trip latency (enqueue → reply) on an otherwise
/// idle server: the floor the dynamic-batching delay adds to.
void BM_ServeLatency(benchmark::State& state) {
  serve::ServeConfig config;
  config.workers = static_cast<std::size_t>(state.range(0));
  serve::InferenceServer server(config);
  serve::ModelConfig mc;
  mc.max_batch = 1;  // flush immediately: pure per-request latency
  const serve::ModelHandle handle =
      server.load("bench", bench_network(), mc);

  Tensor sample = bench_samples(1).reshaped({3, 16, 16});
  Tensor out;
  {
    // Warm every worker's workspace: with max_batch = 1 a backlog of
    // concurrent requests spreads across all workers.
    std::vector<Tensor> warm_outs(32);
    std::vector<std::future<void>> warm;
    warm.reserve(warm_outs.size());
    for (Tensor& warm_out : warm_outs) {
      warm.push_back(server.submit(handle, sample, warm_out));
    }
    for (auto& reply : warm) reply.get();
  }
  server.submit(handle, sample, out).get();  // …and the reply tensor
  const AllocSnapshot before;
  for (auto _ : state) {
    server.submit(handle, sample, out).get();
    benchmark::DoNotOptimize(out.data().data());
  }
  report_allocs(state, before);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeLatency)
    ->ArgNames({"workers"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Two models sharing one pool at a 4:1 fair-share weight ratio, each
/// under an open-loop mixed-priority load (samples cycle through
/// low/normal/high).  Per-class p50/p99 come from the per-model
/// `serve.<model>.latency.<class>` histograms merged across the two
/// models; the shed split per class from `serve.<model>.shed.<class>`.
/// Axis: total offered requests/second across both models.
void BM_ServeMixedPriority(benchmark::State& state) {
  serve::ServeConfig config;
  config.workers = 2;
  serve::InferenceServer server(config);
  serve::ModelConfig heavy;
  heavy.max_batch = 8;
  heavy.max_delay_us = 1000;
  heavy.queue_capacity = 64;
  heavy.weight = 4.0;
  serve::ModelConfig light = heavy;
  light.weight = 1.0;
  server.load("bench-heavy", bench_network(), heavy);
  server.load("bench-light", bench_network(), light);
  serve::ServeHarness drive_heavy(server, "bench-heavy");
  serve::ServeHarness drive_light(server, "bench-light");

  const Tensor samples = bench_samples(128);
  serve::HarnessOptions options;
  options.producers = 2;
  options.offered_rps = static_cast<double>(state.range(0)) / 2.0;  // per model
  options.priorities.resize(samples.dim(0));
  for (std::size_t i = 0; i < options.priorities.size(); ++i) {
    options.priorities[i] = static_cast<serve::Priority>(i % 3);
  }

  drive_heavy.run(samples, {.producers = 2});  // warm (closed loop)
  drive_light.run(samples, {.producers = 2});
  const bool metrics_were_on = telemetry::metrics_enabled();
  telemetry::set_metrics_enabled(true);
  telemetry::reset_metrics();
  std::size_t offered = 0, served = 0, shed = 0;
  for (auto _ : state) {
    serve::HarnessReport heavy_report;
    std::thread heavy_thread(
        [&] { heavy_report = drive_heavy.run(samples, options); });
    const serve::HarnessReport light_report =
        drive_light.run(samples, options);
    heavy_thread.join();
    offered += heavy_report.offered + light_report.offered;
    served += heavy_report.requests + light_report.requests;
    shed += heavy_report.rejected + heavy_report.shed + light_report.rejected +
            light_report.shed;
    benchmark::DoNotOptimize(heavy_report.outputs.data());
    benchmark::DoNotOptimize(light_report.outputs.data());
  }
  const char* const models[] = {"bench-heavy", "bench-light"};
  for (int p = 0; p < static_cast<int>(serve::kPriorityCount); ++p) {
    const std::string cls = serve::priority_name(static_cast<serve::Priority>(p));
    telemetry::TimerStats merged;
    std::uint64_t class_shed = 0;
    for (const char* model : models) {
      const std::string prefix = std::string("serve.") + model + ".";
      const int timer = telemetry::find_named_metric(
          telemetry::NamedKind::kTimer, prefix + "latency." + cls);
      if (timer >= 0) {
        const telemetry::TimerStats stats = telemetry::named_timer_stats(timer);
        merged.count += stats.count;
        for (int b = 0; b < telemetry::kHistogramBuckets; ++b) {
          merged.buckets[static_cast<std::size_t>(b)] +=
              stats.buckets[static_cast<std::size_t>(b)];
        }
      }
      const int shed_counter = telemetry::find_named_metric(
          telemetry::NamedKind::kCounter, prefix + "shed." + cls);
      if (shed_counter >= 0) {
        class_shed += telemetry::named_counter_value(shed_counter);
      }
    }
    state.counters["p50_" + cls + "_us"] = benchmark::Counter(
        static_cast<double>(telemetry::approx_quantile(merged, 0.50)) / 1e3);
    state.counters["p99_" + cls + "_us"] = benchmark::Counter(
        static_cast<double>(telemetry::approx_quantile(merged, 0.99)) / 1e3);
    state.counters["shed_" + cls] = benchmark::Counter(
        static_cast<double>(class_shed) /
        static_cast<double>(state.iterations()));
  }
  state.counters["shed_rate"] = benchmark::Counter(
      offered == 0 ? 0.0
                   : static_cast<double>(shed) / static_cast<double>(offered));
  telemetry::set_metrics_enabled(metrics_were_on);
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
}
BENCHMARK(BM_ServeMixedPriority)
    ->ArgNames({"offered_rps"})
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(64000)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The per-rung price list: closed-loop capacity of the 3-rung artifact
/// pinned at each serving rung (`adaptive.fixed_rung`).  Rung 0 is the
/// highest-precision configuration; the gap between rows is the
/// throughput the operating-point controller buys per degrade step.
void BM_AdaptiveRung(benchmark::State& state) {
  serve::ServeConfig config;
  config.workers = 2;
  serve::InferenceServer server(config);
  serve::ModelConfig mc;
  mc.max_batch = 8;
  mc.max_delay_us = 200;
  mc.queue_capacity = 256;
  mc.adaptive.fixed_rung = static_cast<std::int32_t>(state.range(0));
  server.load("bench-rung", adaptive_network(), mc);
  serve::ServeHarness harness(server, "bench-rung");

  const std::size_t wave = 64;
  const Tensor samples = bench_samples(wave);
  serve::HarnessOptions options;
  options.producers = 4;

  harness.run(samples, options);  // warm workspaces and reply tensors
  const AllocSnapshot before;
  std::vector<std::uint64_t> latencies;
  for (auto _ : state) {
    const serve::HarnessReport report = harness.run(samples, options);
    latencies.insert(latencies.end(), report.latency_ns.begin(),
                     report.latency_ns.end());
    benchmark::DoNotOptimize(report.outputs.data());
  }
  report_allocs(state, before);
  report_quantiles(state, latencies);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wave));
}
BENCHMARK(BM_AdaptiveRung)
    ->ArgNames({"rung"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// A scripted up-then-down offered-load ramp through the saturation
/// knee: quiet → burst → quiet.  The controller degrades under the
/// burst's queue pressure and restores as it drains; the counters report
/// what it did — rung switches, the deepest rung any request was served
/// at, the rung it settled on after the cooldown, and the shed rate.
void BM_AdaptiveLoadRamp(benchmark::State& state) {
  serve::ServeConfig config;
  config.workers = 2;
  serve::InferenceServer server(config);
  serve::ModelConfig mc;
  mc.max_batch = 8;
  mc.max_delay_us = 1000;
  mc.queue_capacity = 64;
  mc.adaptive.degrade_depth = 16;
  mc.adaptive.restore_depth = 2;
  server.load("bench-ramp", adaptive_network(), mc);
  serve::ServeHarness harness(server, "bench-ramp");

  const Tensor samples = bench_samples(256);
  serve::HarnessOptions options;
  options.producers = 4;
  options.ramp = {{2000.0, 64}, {64000.0, 128}, {2000.0, 64}};

  harness.run(samples, {.producers = 4});  // warm (closed loop, no pacing)
  const bool metrics_were_on = telemetry::metrics_enabled();
  telemetry::set_metrics_enabled(true);
  const int switch_counter = telemetry::find_named_metric(
      telemetry::NamedKind::kCounter, "serve.bench-ramp.rung_switches");
  const int rung_gauge = telemetry::find_named_metric(
      telemetry::NamedKind::kGauge, "serve.bench-ramp.rung");
  const std::uint64_t switches_before =
      switch_counter >= 0 ? telemetry::named_counter_value(switch_counter) : 0;
  std::size_t offered = 0, shed = 0;
  std::int32_t deepest = 0;
  for (auto _ : state) {
    const serve::HarnessReport report = harness.run(samples, options);
    offered += report.offered;
    shed += report.rejected + report.shed;
    for (const std::int32_t rung : report.rungs) {
      deepest = std::max(deepest, rung);
    }
    benchmark::DoNotOptimize(report.outputs.data());
  }
  if (switch_counter >= 0) {
    state.counters["rung_switches"] = benchmark::Counter(
        static_cast<double>(telemetry::named_counter_value(switch_counter) -
                            switches_before) /
        static_cast<double>(state.iterations()));
  }
  state.counters["deepest_rung"] =
      benchmark::Counter(static_cast<double>(deepest));
  if (rung_gauge >= 0) {
    state.counters["final_rung"] =
        benchmark::Counter(telemetry::named_gauge_value(rung_gauge));
  }
  state.counters["shed_rate"] = benchmark::Counter(
      offered == 0 ? 0.0
                   : static_cast<double>(shed) / static_cast<double>(offered));
  telemetry::set_metrics_enabled(metrics_were_on);
  state.SetItemsProcessed(static_cast<std::int64_t>(
      offered - std::min<std::size_t>(shed, offered)));
}
BENCHMARK(BM_AdaptiveLoadRamp)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
