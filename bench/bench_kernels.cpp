// Kernel microbenchmarks (google-benchmark): regression guards for the
// numerical primitives every experiment runs on — GEMM, im2col-lowered
// convolution, the quantizers, and the competition probe path.
#include <benchmark/benchmark.h>

#include "ccq/nn/conv.hpp"
#include "ccq/quant/calibrate.hpp"
#include "ccq/quant/weight_hooks.hpp"
#include "ccq/tensor/gemm.hpp"

namespace {

using namespace ccq;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Thread-scaling variants: same kernels through an explicit ExecContext.
// Outputs are bit-identical across thread counts (see parallel_test);
// these guard the scaling itself.  Args are {size, threads}.
void BM_GemmThreads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  ExecContext ctx(threads);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b, ctx);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->UseRealTime();

void BM_ConvForwardThreads(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  ExecContext ctx(threads);
  Rng rng(2);
  nn::Conv2d conv(channels, channels, 3, 1, 1, false, rng);
  conv.set_exec_context(&ctx);
  Tensor x = Tensor::randn({8, channels, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 8 *
      static_cast<std::int64_t>(conv.macs_per_sample(16, 16)));
}
BENCHMARK(BM_ConvForwardThreads)
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 4})
    ->UseRealTime();

void BM_ConvBackwardThreads(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  ExecContext ctx(threads);
  Rng rng(3);
  nn::Conv2d conv(channels, channels, 3, 1, 1, false, rng);
  conv.set_exec_context(&ctx);
  Tensor x = Tensor::randn({8, channels, 16, 16}, rng);
  Tensor y = conv.forward(x);
  Tensor gy = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    conv.weight().zero_grad();
    Tensor gx = conv.backward(gy);
    benchmark::DoNotOptimize(gx.data().data());
  }
}
BENCHMARK(BM_ConvBackwardThreads)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->UseRealTime();

void BM_ConvForward(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  nn::Conv2d conv(channels, channels, 3, 1, 1, false, rng);
  Tensor x = Tensor::randn({8, channels, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 8 *
      static_cast<std::int64_t>(conv.macs_per_sample(16, 16)));
}
BENCHMARK(BM_ConvForward)->Arg(8)->Arg(16)->Arg(32);

void BM_ConvBackward(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  nn::Conv2d conv(channels, channels, 3, 1, 1, false, rng);
  Tensor x = Tensor::randn({8, channels, 16, 16}, rng);
  Tensor y = conv.forward(x);
  Tensor gy = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    conv.weight().zero_grad();
    Tensor gx = conv.backward(gy);
    benchmark::DoNotOptimize(gx.data().data());
  }
}
BENCHMARK(BM_ConvBackward)->Arg(8)->Arg(16);

template <typename Hook>
void BM_WeightQuantizer(benchmark::State& state) {
  Hook hook;
  hook.set_bits(static_cast<int>(state.range(0)));
  Rng rng(4);
  Tensor w = Tensor::randn({64 * 64 * 9}, rng, 0.2f);
  for (auto _ : state) {
    Tensor q = hook.quantize(w);
    benchmark::DoNotOptimize(q.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.numel()));
}
BENCHMARK_TEMPLATE(BM_WeightQuantizer, quant::DoReFaWeightHook)->Arg(2)->Arg(8);
BENCHMARK_TEMPLATE(BM_WeightQuantizer, quant::SawbWeightHook)->Arg(2)->Arg(8);
BENCHMARK_TEMPLATE(BM_WeightQuantizer, quant::LqNetsWeightHook)->Arg(2)->Arg(8);
BENCHMARK_TEMPLATE(BM_WeightQuantizer, quant::MinMaxWeightHook)->Arg(2)->Arg(8);

void BM_KlCalibration(benchmark::State& state) {
  Rng rng(5);
  Tensor w = Tensor::randn({20000}, rng, 0.1f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quant::kl_calibrate_clip(w, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_KlCalibration)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
