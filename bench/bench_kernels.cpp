// Kernel microbenchmarks (google-benchmark): regression guards for the
// numerical primitives every experiment runs on — GEMM, im2col-lowered
// convolution, the quantizers, and the competition probe path.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "ccq/common/telemetry.hpp"
#include "ccq/core/trainer.hpp"
#include "ccq/hw/integer_engine.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/models/resnet.hpp"
#include "ccq/nn/conv.hpp"
#include "ccq/nn/loss.hpp"
#include "ccq/nn/optim.hpp"
#include "ccq/quant/calibrate.hpp"
#include "ccq/quant/weight_hooks.hpp"
#include "ccq/tensor/gemm.hpp"

namespace {

using namespace ccq;

/// Snapshot of the float-storage allocation counter (alloc.hpp), taken
/// before the timing loop so per-iteration columns can be reported.
struct AllocSnapshot {
  std::size_t count = alloc_stats::count();
  std::size_t bytes = alloc_stats::bytes();
};

/// Report allocations per iteration as counter columns.  No-ops (columns
/// stay absent) when CCQ_COUNT_ALLOCS is off.
void report_allocs(benchmark::State& state, const AllocSnapshot& before) {
  if (!alloc_stats::enabled()) return;
  const auto iters = static_cast<double>(state.iterations());
  state.counters["allocs_per_iter"] = benchmark::Counter(
      static_cast<double>(alloc_stats::count() - before.count) / iters);
  state.counters["alloc_kb_per_iter"] = benchmark::Counter(
      static_cast<double>(alloc_stats::bytes() - before.bytes) / 1024.0 /
      iters);
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Thread-scaling variants: same kernels through an explicit ExecContext.
// Outputs are bit-identical across thread counts (see parallel_test);
// these guard the scaling itself.  Args are {size, threads}.
void BM_GemmThreads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  ExecContext ctx(threads);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b, ctx);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->UseRealTime();

void BM_ConvForwardThreads(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  ExecContext ctx(threads);
  Rng rng(2);
  nn::Conv2d conv(channels, channels, 3, 1, 1, false, rng);
  conv.set_exec_context(&ctx);
  Tensor x = Tensor::randn({8, channels, 16, 16}, rng);
  Workspace ws;
  for (auto _ : state) {
    Tensor y = conv.forward(x, ws);
    benchmark::DoNotOptimize(y.data().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 8 *
      static_cast<std::int64_t>(conv.macs_per_sample(16, 16)));
}
BENCHMARK(BM_ConvForwardThreads)
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 4})
    ->UseRealTime();

void BM_ConvBackwardThreads(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  ExecContext ctx(threads);
  Rng rng(3);
  nn::Conv2d conv(channels, channels, 3, 1, 1, false, rng);
  conv.set_exec_context(&ctx);
  Tensor x = Tensor::randn({8, channels, 16, 16}, rng);
  Workspace ws;
  Tensor y = conv.forward(x, ws);
  Tensor gy = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    conv.weight().zero_grad();
    Tensor gx = conv.backward(gy, ws);
    benchmark::DoNotOptimize(gx.data().data());
  }
}
BENCHMARK(BM_ConvBackwardThreads)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->UseRealTime();

void BM_ConvForward(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  nn::Conv2d conv(channels, channels, 3, 1, 1, false, rng);
  Tensor x = Tensor::randn({8, channels, 16, 16}, rng);
  Workspace ws;
  ws.recycle(conv.forward(x, ws));  // warm the pool
  const AllocSnapshot before;
  for (auto _ : state) {
    Tensor y = conv.forward(x, ws);
    benchmark::DoNotOptimize(y.data().data());
    ws.recycle(std::move(y));
  }
  report_allocs(state, before);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 8 *
      static_cast<std::int64_t>(conv.macs_per_sample(16, 16)));
}
BENCHMARK(BM_ConvForward)->Arg(8)->Arg(16)->Arg(32);

void BM_ConvBackward(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  nn::Conv2d conv(channels, channels, 3, 1, 1, false, rng);
  Tensor x = Tensor::randn({8, channels, 16, 16}, rng);
  Workspace ws;
  Tensor y = conv.forward(x, ws);
  Tensor gy = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    conv.weight().zero_grad();
    Tensor gx = conv.backward(gy, ws);
    benchmark::DoNotOptimize(gx.data().data());
  }
}
BENCHMARK(BM_ConvBackward)->Arg(8)->Arg(16);

template <typename Hook>
void BM_WeightQuantizer(benchmark::State& state) {
  Hook hook;
  hook.set_bits(static_cast<int>(state.range(0)));
  Rng rng(4);
  Tensor w = Tensor::randn({64 * 64 * 9}, rng, 0.2f);
  for (auto _ : state) {
    Tensor q = hook.quantize(w);
    benchmark::DoNotOptimize(q.data().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.numel()));
}
BENCHMARK_TEMPLATE(BM_WeightQuantizer, quant::DoReFaWeightHook)->Arg(2)->Arg(8);
BENCHMARK_TEMPLATE(BM_WeightQuantizer, quant::SawbWeightHook)->Arg(2)->Arg(8);
BENCHMARK_TEMPLATE(BM_WeightQuantizer, quant::LqNetsWeightHook)->Arg(2)->Arg(8);
BENCHMARK_TEMPLATE(BM_WeightQuantizer, quant::MinMaxWeightHook)->Arg(2)->Arg(8);

/// Shared fixture for the end-to-end benches: a thin ResNet20 plus a
/// small synthetic probe/train batch (the paper's probe geometry).
models::QuantModel bench_model() {
  models::ModelConfig config;
  config.num_classes = 10;
  config.image_size = 16;
  config.width_multiplier = 0.25f;
  config.seed = 7;
  quant::QuantFactory factory{.policy = quant::Policy::kPact};
  return models::make_resnet20(config, factory, quant::BitLadder({8, 4, 2}));
}

data::Batch bench_batch(std::size_t samples_per_class) {
  data::SyntheticConfig dc;
  dc.num_classes = 10;
  dc.samples_per_class = samples_per_class;
  dc.height = dc.width = 16;
  dc.seed = 9;
  return data::make_synthetic_vision(dc).all();
}

/// RAII toggle for the telemetry metrics registry: Arg(0) benches the
/// disabled (gated no-op) path, Arg(1) the full recording path — the two
/// rows quantify the ≤2% overhead budget (docs/OBSERVABILITY.md).
struct MetricsToggle {
  explicit MetricsToggle(bool on) { telemetry::set_metrics_enabled(on); }
  ~MetricsToggle() {
    telemetry::set_metrics_enabled(false);
    telemetry::reset_metrics();
  }
};

/// One competition probe (Algorithm 1 lines 6–10): temp-quantize a layer
/// one ladder rung down, evaluate the probe batch, restore.  This is the
/// CCQ controller's hot loop — U probes per quantization step.  Arg is
/// telemetry off/on.
void BM_ProbeStep(benchmark::State& state) {
  const MetricsToggle metrics(state.range(0) != 0);
  auto model = bench_model();
  const data::Batch probe = bench_batch(2);
  Workspace ws;
  core::evaluate_batch(model, probe, 128, ws);  // warm the pool
  const std::size_t layers = model.registry().size();
  const AllocSnapshot before;
  std::size_t m = 0;
  for (auto _ : state) {
    quant::LayerRegistry::ProbeGuard guard(model.registry(), m % layers);
    const core::EvalResult r = core::evaluate_batch(model, probe, 128, ws);
    benchmark::DoNotOptimize(r.loss);
    ++m;
  }
  report_allocs(state, before);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(probe.size()));
}
BENCHMARK(BM_ProbeStep)->Arg(0)->Arg(1);

/// One SGD step (forward + loss + backward + update) on a fixed batch —
/// the recovery-epoch inner loop.  Arg is telemetry off/on.
void BM_TrainStep(benchmark::State& state) {
  const MetricsToggle metrics(state.range(0) != 0);
  auto model = bench_model();
  const data::Batch batch = bench_batch(2);
  nn::Sgd optimizer(model.parameters(), nn::SgdConfig{});
  Workspace ws;
  nn::SoftmaxCrossEntropy loss(ws);
  model.set_training(true);
  Tensor grad = ws.tensor_uninit({batch.size(), 10});
  // Warm-up step populates the pool and every layer cache.
  auto step = [&] {
    optimizer.zero_grad();
    Tensor logits = model.forward(batch.images, ws);
    const float l = loss.forward(logits, batch.labels);
    ws.recycle(std::move(logits));
    loss.backward_into(grad);
    ws.recycle(model.backward(grad, ws));
    optimizer.step();
    return l;
  };
  step();
  const AllocSnapshot before;
  for (auto _ : state) {
    benchmark::DoNotOptimize(step());
  }
  report_allocs(state, before);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_TrainStep)->Arg(0)->Arg(1);

/// Synthetic two-conv integer network at a given weight/activation bit
/// width — codes drawn once with a fixed seed and realistic low-bit
/// sparsity (~40% zeros), packed through the normal from_plans path.
hw::IntegerNetwork igemm_net(int bits) {
  Rng rng(11 + static_cast<std::uint64_t>(bits));
  const std::int32_t top = 1 << bits;
  auto conv_plan = [&](std::size_t in_c, std::size_t out_c, std::string name) {
    hw::IntLayerPlan p;
    p.kind = hw::IntLayerPlan::Kind::kConv;
    p.name = std::move(name);
    p.in_channels = in_c;
    p.out_channels = out_c;
    p.kernel = 3;
    p.stride = 1;
    p.pad = 1;
    p.weight_bits = bits;
    p.weight_codes.resize(out_c * in_c * 9);
    for (auto& c : p.weight_codes) {
      c = rng.uniform() < 0.4
              ? 0
              : static_cast<std::int32_t>(rng.uniform_int(2 * top + 1)) - top;
    }
    p.channel_scale.assign(out_c, 0.001f);
    p.bias.assign(out_c, 0.01f);
    p.has_act = true;
    p.act_bits = bits;
    p.act_clip = 1.0f;
    return p;
  };
  return hw::IntegerNetwork::from_plans(
      {conv_plan(16, 32, "conv1"), conv_plan(32, 32, "conv2")});
}

/// Pins $CCQ_IGEMM_KERNEL for the duration of a bench so `from_plans`
/// compiles every eligible layer with one named kernel, then restores
/// whatever the user had exported.
struct KernelEnvPin {
  explicit KernelEnvPin(const char* kernel) {
    const char* prev = std::getenv("CCQ_IGEMM_KERNEL");
    if (prev != nullptr) saved_ = prev;
    had_ = prev != nullptr;
    if (kernel != nullptr) {
      setenv("CCQ_IGEMM_KERNEL", kernel, 1);
    } else {
      unsetenv("CCQ_IGEMM_KERNEL");
    }
  }
  ~KernelEnvPin() {
    if (had_) {
      setenv("CCQ_IGEMM_KERNEL", saved_.c_str(), 1);
    } else {
      unsetenv("CCQ_IGEMM_KERNEL");
    }
  }
  std::string saved_;
  bool had_ = false;
};

/// The igemm kernel grid: each registry variant against the naive int64
/// triple loop (`forward_reference`) on the same compiled net.  Args are
/// {bits, mode} with mode 0=reference, 1=scalar, 2=vec16, 3=vec-packed
/// (the mode names index igemm_kernel_names()).  All modes run the
/// identical workspace-leased datapath, so the time ratios isolate the
/// microkernels.  Outputs are bit-identical by construction
/// (igemm_property_test), so only speed and the allocs_per_iter=0 warm
/// contract are at stake here.  8-bit skips vec-packed: its ±256 weight
/// codes overflow the signed-8 lane format, so selection would silently
/// fall back and mislabel the row.
void BM_IgemmForward(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const auto mode = static_cast<std::size_t>(state.range(1));
  static const char* const kModes[] = {nullptr, "scalar", "vec16",
                                       "vec-packed"};
  const bool reference = mode == 0;
  const KernelEnvPin pin(kModes[mode]);
  hw::IntegerNetwork net = igemm_net(bits);  // reads the pinned override
  state.SetLabel(reference ? "reference" : kModes[mode]);
  Rng rng(3);
  Tensor x({4, 16, 16, 16});
  for (auto& v : x.data()) v = static_cast<float>(rng.uniform());
  Workspace ws;
  ExecContext ctx;  // serial: thread scaling is covered by *Threads benches
  ws.recycle(reference ? net.forward_reference(x, ws, ctx)
                       : net.forward(x, ws, ctx));  // warm the pool
  const AllocSnapshot before;
  for (auto _ : state) {
    Tensor y = reference ? net.forward_reference(x, ws, ctx)
                         : net.forward(x, ws, ctx);
    benchmark::DoNotOptimize(y.data().data());
    ws.recycle(std::move(y));
  }
  report_allocs(state, before);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          static_cast<std::int64_t>(net.macs_per_sample(16, 16)));
}
BENCHMARK(BM_IgemmForward)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 3})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 3})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({8, 2});

/// Deeper end-to-end net for the engine-forward snapshot: two conv
/// blocks with max/avg pooling, a global-average head and an unfused
/// float classifier.  Unlike `igemm_net` this exercises the whole fused
/// datapath — u8 activation codes flowing through requantizing igemm
/// epilogues, integer pooling on codes, and the final decode — not just
/// the igemm core.
hw::IntegerNetwork engine_net(int bits) {
  Rng rng(23 + static_cast<std::uint64_t>(bits));
  const std::int32_t top = 1 << bits;
  auto conv_plan = [&](std::size_t in_c, std::size_t out_c, std::string name) {
    hw::IntLayerPlan p;
    p.kind = hw::IntLayerPlan::Kind::kConv;
    p.name = std::move(name);
    p.in_channels = in_c;
    p.out_channels = out_c;
    p.kernel = 3;
    p.stride = 1;
    p.pad = 1;
    p.weight_bits = bits;
    p.weight_codes.resize(out_c * in_c * 9);
    for (auto& c : p.weight_codes) {
      c = rng.uniform() < 0.4
              ? 0
              : static_cast<std::int32_t>(rng.uniform_int(2 * top + 1)) - top;
    }
    p.channel_scale.assign(out_c, 0.001f);
    p.bias.assign(out_c, 0.01f);
    p.has_act = true;
    p.act_bits = bits;
    p.act_clip = 1.0f;
    return p;
  };
  auto pool_plan = [](hw::IntLayerPlan::Kind kind, std::string name) {
    hw::IntLayerPlan p;
    p.kind = kind;
    p.name = std::move(name);
    p.pool_kernel = 2;
    p.pool_stride = 2;
    return p;
  };
  hw::IntLayerPlan fc;
  fc.kind = hw::IntLayerPlan::Kind::kLinear;
  fc.name = "fc";
  fc.in_features = 32;
  fc.out_features = 10;
  fc.weight_bits = bits;
  fc.weight_codes.resize(fc.in_features * fc.out_features);
  for (auto& c : fc.weight_codes) {
    c = static_cast<std::int32_t>(rng.uniform_int(2 * top + 1)) - top;
  }
  fc.channel_scale.assign(fc.out_features, 0.001f);
  fc.bias.assign(fc.out_features, 0.01f);
  return hw::IntegerNetwork::from_plans(
      {conv_plan(16, 32, "conv1"),
       pool_plan(hw::IntLayerPlan::Kind::kMaxPool, "maxpool@1"),
       conv_plan(32, 32, "conv2"),
       pool_plan(hw::IntLayerPlan::Kind::kAvgPool, "avgpool@3"),
       pool_plan(hw::IntLayerPlan::Kind::kGlobalAvgPool, "gap@4"),
       std::move(fc)});
}

/// End-to-end engine forward, fused datapath vs the naive int64
/// `forward_reference` oracle.  Args are {bits, mode} with mode
/// 0=reference, 1=fused (auto kernel selection).  Outputs are
/// bit-identical by construction (engine_datapath_test), so the rows
/// track the fused datapath's speed and the allocs_per_iter=0 warm
/// contract; BENCH_engine.json snapshots them.
void BM_EngineForward(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const bool reference = state.range(1) == 0;
  const KernelEnvPin pin(nullptr);  // auto selection
  hw::IntegerNetwork net = engine_net(bits);
  state.SetLabel(reference ? "reference" : "fused");
  Rng rng(3);
  Tensor x({4, 16, 16, 16});
  for (auto& v : x.data()) v = static_cast<float>(rng.uniform());
  Workspace ws;
  ExecContext ctx;  // serial: thread scaling is covered by *Threads benches
  ws.recycle(reference ? net.forward_reference(x, ws, ctx)
                       : net.forward(x, ws, ctx));  // warm the pool
  const AllocSnapshot before;
  for (auto _ : state) {
    Tensor y = reference ? net.forward_reference(x, ws, ctx)
                         : net.forward(x, ws, ctx);
    benchmark::DoNotOptimize(y.data().data());
    ws.recycle(std::move(y));
  }
  report_allocs(state, before);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          static_cast<std::int64_t>(net.macs_per_sample(16, 16)));
}
BENCHMARK(BM_EngineForward)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1});

void BM_KlCalibration(benchmark::State& state) {
  Rng rng(5);
  Tensor w = Tensor::randn({20000}, rng, 0.1f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quant::kl_calibrate_clip(w, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_KlCalibration)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
