// Ablation bench (DESIGN.md §6): what does the competition actually buy?
//
// Compares the paper's Hedge+memory selection against an EXP3 bandit
// variant, uniformly random gradual quantization, and memory-share-only
// selection — all walking the same ladder with identical recovery
// budgets.  Also sweeps the Hedge learning rate γ.  The paper's implicit
// claim: the accuracy-driven competition beats blind orderings at equal
// compression.
#include "bench_common.hpp"

namespace {

using namespace ccq;
using namespace ccq::bench;

struct Outcome {
  float final_acc;
  float worst_valley;
  double compression;
};

Outcome run_rule(const Split& split, core::SelectionRule rule, double gamma) {
  const quant::BitLadder ladder({8, 2});
  auto model =
      make_model(Arch::kResNet20, 10, quant::Policy::kPact, ladder);
  pretrain_baseline(model, split, Arch::kResNet20, "cifar",
                    quant::Policy::kPact, 12);
  auto config = ccq_config();
  config.selection = rule;
  config.gamma = gamma;
  const auto r = core::run_ccq(model, split.train, split.val, config);
  Outcome out{r.final_accuracy, 1.0f, r.final_compression};
  for (const auto& step : r.steps) {
    out.worst_valley =
        std::min(out.worst_valley, step.val_acc_before_recovery);
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: competition selection rules and γ "
               "(ResNet20 / synthetic CIFAR, ladder 8→2) ===\n\n";
  const Split split = cifar_split();

  Table table({"selection rule", "gamma", "final top-1", "worst valley top-1",
               "compression"});
  const struct {
    core::SelectionRule rule;
    double gamma;
  } runs[] = {
      {core::SelectionRule::kHedgeMemory, 1.0},
      {core::SelectionRule::kHedgeMemory, 4.0},
      {core::SelectionRule::kHedgeMemory, 16.0},
      {core::SelectionRule::kExp3Memory, 4.0},
      {core::SelectionRule::kRandom, 4.0},
      {core::SelectionRule::kMemoryOnly, 4.0},
  };
  float hedge_acc = 0.0f, random_acc = 0.0f;
  for (const auto& run : runs) {
    const Outcome o = run_rule(split, run.rule, run.gamma);
    table.add_row({core::selection_rule_str(run.rule),
                   Table::fmt(run.gamma, 1), Table::fmt(100.0 * o.final_acc),
                   Table::fmt(100.0 * o.worst_valley),
                   Table::fmt(o.compression, 1) + "x"});
    if (run.rule == core::SelectionRule::kHedgeMemory && run.gamma == 4.0) {
      hedge_acc = o.final_acc;
    }
    if (run.rule == core::SelectionRule::kRandom) random_acc = o.final_acc;
  }
  emit(table, "ablation_selection");
  std::cout << "\nhedge(γ=4) − random = "
            << Table::fmt(100.0 * (hedge_acc - random_acc))
            << " top-1 points (accuracy-driven competition should be ≥ "
               "blind ordering)\n";
  return 0;
}
