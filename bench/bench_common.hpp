// Shared scenario builders for the paper-reproduction benches.
//
// Every bench binary reproduces one table or figure (see DESIGN.md §4).
// The scenarios here pin down the datasets, architectures and pretrained
// checkpoints so that all benches run against the same substrate.  The
// CCQ_BENCH_SCALE env var (0 = smoke, 1 = default, 2 = long) scales
// sample counts and epochs; shapes of the results are stable across
// scales, absolute numbers sharpen with more budget.  CCQ_THREADS sets
// the kernel thread budget (results are bit-identical for any value —
// see common/exec.hpp — so it only changes wall clock).
#pragma once

#include <filesystem>
#include <iostream>
#include <string>

#include "ccq/common/env.hpp"
#include "ccq/common/table.hpp"
#include "ccq/core/baselines.hpp"
#include "ccq/core/ccq.hpp"
#include "ccq/data/synthetic.hpp"
#include "ccq/models/resnet.hpp"
#include "ccq/models/simple.hpp"

namespace ccq::bench {

/// Multiplier applied to sample counts / epochs by the scale knob.
inline double scale_factor() {
  switch (ccq::bench_scale()) {
    case 0: return 0.3;
    case 2: return 3.0;
    default: return 1.0;
  }
}

inline int scaled(int base) {
  const int v = static_cast<int>(base * scale_factor());
  return std::max(1, v);
}

/// Labelled dataset pair.
struct Split {
  data::Dataset train;
  data::Dataset val;
};

/// CIFAR10 stand-in sized for ResNet20-class runs (DESIGN.md §2).
inline Split cifar_split() {
  data::SyntheticConfig config;
  config.num_classes = 10;
  config.samples_per_class = static_cast<std::size_t>(scaled(55));
  config.height = config.width = 16;
  config.pixel_noise = 0.38f;
  config.jitter = 2.6f;  // hard enough that precision matters
  config.seed = 1234;
  data::Dataset train = data::make_synthetic_vision(config);
  data::Dataset val = train.take_tail(train.size() / 5);
  return {std::move(train), std::move(val)};
}

/// ImageNet stand-in: more classes, higher variance (DESIGN.md §2).
inline Split imagenet_split() {
  data::SyntheticConfig config;
  config.num_classes = 20;
  config.samples_per_class = static_cast<std::size_t>(scaled(40));
  config.height = config.width = 16;
  config.pixel_noise = 0.40f;
  config.jitter = 2.8f;
  config.seed = 4321;
  data::Dataset train = data::make_synthetic_vision(config);
  data::Dataset val = train.take_tail(train.size() / 5);
  return {std::move(train), std::move(val)};
}

enum class Arch { kResNet20, kResNet18, kResNet50, kSimpleCnn };

inline std::string arch_str(Arch arch) {
  switch (arch) {
    case Arch::kResNet20: return "ResNet20";
    case Arch::kResNet18: return "ResNet18";
    case Arch::kResNet50: return "ResNet50";
    case Arch::kSimpleCnn: return "SimpleCNN";
  }
  return "?";
}

/// Build a quantizable model for a scenario.
inline models::QuantModel make_model(Arch arch, std::size_t num_classes,
                                     quant::Policy policy,
                                     const quant::BitLadder& ladder,
                                     std::uint64_t seed = 7) {
  models::ModelConfig config;
  config.num_classes = num_classes;
  config.image_size = 16;
  config.seed = seed;
  quant::QuantFactory factory{.policy = policy};
  switch (arch) {
    case Arch::kResNet20:
      config.width_multiplier = 0.25f;
      return models::make_resnet20(config, factory, ladder);
    case Arch::kResNet18:
      config.width_multiplier = 0.125f;
      return models::make_resnet18(config, factory, ladder);
    case Arch::kResNet50:
      config.width_multiplier = 0.0625f;
      return models::make_resnet50(config, factory, ladder);
    case Arch::kSimpleCnn:
      config.width_multiplier = 0.5f;
      return models::make_simple_cnn(config, factory, ladder);
  }
  throw Error("unreachable arch");
}

/// Pretraining configuration for fp32 baselines.
inline core::TrainConfig pretrain_config(int epochs) {
  core::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 32;
  config.sgd = {.lr = 0.03, .momentum = 0.9, .weight_decay = 5e-4};
  // Step-decay at 2/3 of the budget so the baseline settles instead of
  // bouncing at a high rate.
  config.lr_decay_every = std::max(2, 2 * epochs / 3);
  return config;
}

/// Fine-tuning configuration used by one-shot baselines and CCQ recovery.
inline core::TrainConfig finetune_config(int epochs) {
  core::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 32;
  config.sgd = {.lr = 0.01, .momentum = 0.9, .weight_decay = 5e-4};
  return config;
}

/// Checkpoint path for a pretrained (arch, dataset, policy) combination.
inline std::string cache_path(Arch arch, const std::string& dataset,
                              quant::Policy policy) {
  const std::string dir = env_str("CCQ_CACHE_DIR", "ccq_cache");
  return dir + "/" + arch_str(arch) + "_" + dataset + "_" +
         quant::policy_str(policy) + "_s" + std::to_string(bench_scale()) +
         ".bin";
}

/// Pretrain (or load) the fp32 baseline for a scenario; returns baseline
/// validation accuracy.
inline float pretrain_baseline(models::QuantModel& model, const Split& split,
                               Arch arch, const std::string& dataset,
                               quant::Policy policy, int epochs) {
  const auto result = core::pretrain_cached(
      model, split.train, split.val, pretrain_config(scaled(epochs)),
      cache_path(arch, dataset, policy));
  return result.accuracy;
}

/// Default CCQ configuration for bench runs.
inline core::CcqConfig ccq_config() {
  core::CcqConfig config;
  config.probes_per_step = 4;
  config.probe_samples = 96;
  config.gamma = 4.0;
  config.max_recovery_epochs = scaled(2);
  config.initial_recovery_epochs = 1;
  config.recovery_drop_threshold = 0.01f;
  config.finetune = finetune_config(1);
  config.hybrid_lr.base_lr = 0.01;
  config.hybrid_lr.bump_factor = 5.0;
  config.hybrid_lr.patience = 3;
  config.seed = 2020;
  return config;
}

/// Emit a table to stdout and to bench_out/<name>.csv.
inline void emit(const Table& table, const std::string& name) {
  table.print(std::cout);
  const std::string dir = env_str("CCQ_BENCH_OUT", "bench_out");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + name + ".csv";
  if (table.save_csv(path)) {
    std::cout << "[csv] " << path << "\n";
  }
}

}  // namespace ccq::bench
