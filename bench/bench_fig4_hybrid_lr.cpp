// Fig 4 reproduction: the hybrid learning-rate schedule.
//
// §IV.g: fine-tuning starts at a constant learning rate; when the
// validation metric plateaus, the rate is *raised* and cosine-decayed
// back — a perturbation that kicks the quantized network out of its local
// optimum.  We fine-tune a fully-quantized ResNet20 and emit the (epoch,
// lr, val-acc) series, comparing against a constant-lr control.
#include "bench_common.hpp"

namespace {

using namespace ccq;
using namespace ccq::bench;

std::vector<core::EpochStat> finetune_with(models::QuantModel& model,
                                           const Split& split,
                                           nn::LrSchedule* schedule,
                                           int epochs) {
  auto config = finetune_config(epochs);
  return core::train(model, split.train, split.val, config, schedule);
}

}  // namespace

int main() {
  std::cout << "=== Fig 4: hybrid learning-rate schedule on a quantized "
               "network (ResNet20 / synthetic CIFAR) ===\n\n";
  const Split split = cifar_split();
  const quant::BitLadder ladder({8, 4, 2});
  const int epochs = scaled(18);

  // Quantize everything to 2 bits one-shot so fine-tuning has a real
  // plateau to escape.
  auto hybrid_model =
      make_model(Arch::kResNet20, 10, quant::Policy::kPact, ladder);
  pretrain_baseline(hybrid_model, split, Arch::kResNet20, "cifar",
                    quant::Policy::kPact, 12);
  hybrid_model.registry().set_all(ladder.size() - 1);

  auto const_model =
      make_model(Arch::kResNet20, 10, quant::Policy::kPact, ladder);
  pretrain_baseline(const_model, split, Arch::kResNet20, "cifar",
                    quant::Policy::kPact, 12);
  const_model.registry().set_all(ladder.size() - 1);

  nn::HybridPlateauCosineLr hybrid({.base_lr = 0.01,
                                    .bump_factor = 8.0,
                                    .patience = 2,
                                    .min_delta = 1e-3,
                                    .cosine_period = 4});
  const auto hybrid_stats =
      finetune_with(hybrid_model, split, &hybrid, epochs);
  const auto const_stats = finetune_with(const_model, split, nullptr, epochs);

  Table table({"epoch", "hybrid lr", "hybrid val top-1", "constant lr",
               "constant val top-1"});
  int bumps = 0;
  for (int e = 0; e < epochs; ++e) {
    const auto& h = hybrid_stats[static_cast<std::size_t>(e)];
    const auto& c = const_stats[static_cast<std::size_t>(e)];
    if (e > 0 &&
        h.lr > hybrid_stats[static_cast<std::size_t>(e - 1)].lr * 1.5) {
      ++bumps;
    }
    table.add_row({std::to_string(e), Table::fmt(h.lr, 5),
                   Table::fmt(100.0 * h.val_accuracy), Table::fmt(c.lr, 5),
                   Table::fmt(100.0 * c.val_accuracy)});
  }
  emit(table, "fig4_hybrid_lr");

  float best_hybrid = 0.0f, best_const = 0.0f;
  for (const auto& s : hybrid_stats) {
    best_hybrid = std::max(best_hybrid, s.val_accuracy);
  }
  for (const auto& s : const_stats) {
    best_const = std::max(best_const, s.val_accuracy);
  }
  std::cout << "\nlr bumps observed: " << bumps
            << " (the Fig 4 saw-tooth); best top-1 hybrid "
            << Table::fmt(100.0 * best_hybrid) << " vs constant "
            << Table::fmt(100.0 * best_const) << "\n";
  return 0;
}
