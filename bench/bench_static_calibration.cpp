// Static (post-training) quantization bench — the related-work family of
// §II.a (ACIQ, TensorRT/KL) that CCQ's quantization-aware approach is
// positioned against.
//
// A pretrained SimpleCNN is quantized *without any retraining* by
// installing calibrated clips into MinMax hooks, at several bit widths.
// The expected shape: at 8 bits everything is fine; at low bits the
// smarter clips (ACIQ/KL) beat naive max-|w|, but *all* static schemes
// fall far behind quantization-aware fine-tuning — the gap that
// motivates the paper.
#include "bench_common.hpp"

#include <functional>

#include "ccq/quant/calibrate.hpp"

namespace {

using namespace ccq;
using namespace ccq::bench;

/// Install a calibrated clip into every MinMax weight hook.
void calibrate(models::QuantModel& model,
               const std::function<float(const Tensor&, int)>& clip_fn) {
  auto& registry = model.registry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    auto* hook =
        dynamic_cast<quant::MinMaxWeightHook*>(registry.unit(i).weight_hook.get());
    CCQ_CHECK(hook != nullptr, "static calibration needs MinMax hooks");
    // Find the latent weights through the parameter list.
    for (auto* p : model.parameters()) {
      if (p->name == registry.unit(i).name + ".weight") {
        hook->set_clip(clip_fn(p->value, hook->bits()));
        break;
      }
    }
  }
}

}  // namespace

int main() {
  std::cout << "=== Static post-training quantization: clip calibrators "
               "without retraining (SimpleCNN / synthetic CIFAR) ===\n\n";
  const Split split = cifar_split();
  const quant::BitLadder ladder({8, 4, 3, 2});

  Table table({"calibrator", "fp32", "8b", "4b", "3b", "2b"});
  struct Scheme {
    std::string name;
    std::function<float(const Tensor&, int)> clip;
  };
  const Scheme schemes[] = {
      {"max|w| (naive)",
       [](const Tensor& w, int) {
         return std::max({std::abs(w.max()), std::abs(w.min()), 1e-8f});
       }},
      {"ACIQ (Gaussian)",
       [](const Tensor& w, int bits) {
         return quant::aciq_clip(w, std::min(bits, 8),
                                 quant::WeightDist::kGaussian);
       }},
      {"ACIQ (Laplace)",
       [](const Tensor& w, int bits) {
         return quant::aciq_clip(w, std::min(bits, 8),
                                 quant::WeightDist::kLaplace);
       }},
      {"KL (TensorRT-style)",
       [](const Tensor& w, int bits) {
         return quant::kl_calibrate_clip(w, std::min(bits, 8));
       }},
  };

  for (const auto& scheme : schemes) {
    auto model = make_model(Arch::kSimpleCnn, 10, quant::Policy::kMinMax,
                            ladder);
    const float fp32 = pretrain_baseline(model, split, Arch::kSimpleCnn,
                                         "cifar", quant::Policy::kMinMax, 12);
    std::vector<std::string> row{scheme.name, Table::fmt(100.0 * fp32)};
    for (std::size_t pos = 0; pos < ladder.size(); ++pos) {
      model.registry().set_all(pos);
      calibrate(model, scheme.clip);
      const float acc = core::evaluate(model, split.val).accuracy;
      row.push_back(Table::fmt(100.0 * acc));
    }
    table.add_row(row);
  }

  // Reference: quantization-aware fine-tuning at the lowest precision.
  {
    auto model = make_model(Arch::kSimpleCnn, 10, quant::Policy::kMinMax,
                            ladder);
    const float fp32 = pretrain_baseline(model, split, Arch::kSimpleCnn,
                                         "cifar", quant::Policy::kMinMax, 12);
    std::vector<std::string> row{"QAT fine-tune (reference)",
                                 Table::fmt(100.0 * fp32)};
    for (std::size_t pos = 0; pos < ladder.size(); ++pos) {
      const auto r = core::one_shot_quantize(model, split.train, split.val,
                                             finetune_config(scaled(3)), pos);
      row.push_back(Table::fmt(100.0 * r.accuracy));
    }
    table.add_row(row);
  }
  emit(table, "static_calibration");
  std::cout << "\nshape to check: at 2–3 bits, calibrated clips > naive "
               "max|w|, and every static scheme << QAT fine-tuning\n";
  return 0;
}
