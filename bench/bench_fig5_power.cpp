// Fig 5 reproduction: iso-throughput power of unquantized, partially
// quantized (fp first/last) and fully quantized mixed-precision networks.
//
// The paper synthesised a DesignWare MAC at 32 nm; we use the structural
// gate-level model in ccq::hw (DESIGN.md §2).  Configurations mirror the
// figure: fp32, fp-4b-fp, fp-2b-fp, and the fully-quantized mixed-
// precision networks CCQ found — first/last at 6/2 (ResNet20), 6/6
// (ResNet18), 8/3 (ResNet50) with 2–4 bit middles.
#include "ccq/hw/mac_model.hpp"

#include "bench_common.hpp"

namespace {

using namespace ccq;
using namespace ccq::bench;

/// Apply the paper's fully-quantized MP pattern: given first/last bits,
/// middle layers alternate 4b and 2b (a representative CCQ outcome).
std::vector<hw::LayerMacs> mp_profile(const quant::LayerRegistry& registry,
                                      int first_bits, int last_bits) {
  auto layers = hw::profile_registry(registry);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    int bits;
    if (i == 0) {
      bits = first_bits;
    } else if (i + 1 == layers.size()) {
      bits = last_bits;
    } else {
      bits = (i % 2 == 0) ? 2 : 4;
    }
    layers[i].weight_bits = bits;
    layers[i].act_bits = bits;
  }
  return layers;
}

void run_arch(Table& table, Arch arch, int first_bits, int last_bits) {
  const quant::BitLadder ladder({8, 4, 2});
  auto model = make_model(arch, 10, quant::Policy::kPact, ladder);
  const auto& reg = model.registry();
  const double rate = 1000.0;  // inferences/s (iso-throughput condition)

  const auto report = [&](const std::string& config,
                          const std::vector<hw::LayerMacs>& layers) {
    const hw::PowerReport r = hw::network_power(layers, rate);
    const double edges_mw = 1e3 * (r.first_layer_w + r.last_layer_w);
    const double mid_mw = 1e3 * r.middle_w;
    table.add_row({arch_str(arch), config, Table::fmt(1e3 * r.total_w, 3),
                   Table::fmt(edges_mw, 3), Table::fmt(mid_mw, 3),
                   mid_mw > 0 ? Table::fmt(edges_mw / mid_mw, 1) + "x" : "-"});
  };

  report("fp32 (unquantized)", hw::uniform_profile(reg, 32, 32, false));
  report("fp-4b-fp (partial)", hw::uniform_profile(reg, 4, 4, true));
  report("fp-2b-fp (partial)", hw::uniform_profile(reg, 2, 2, true));
  report("fully-quantized MP (" + std::to_string(first_bits) + "/" +
             std::to_string(last_bits) + " first/last)",
         mp_profile(reg, first_bits, last_bits));
}

}  // namespace

int main() {
  std::cout << "=== Fig 5: iso-throughput power, partial vs fully quantized "
               "(gate-level 32nm-class MAC model) ===\n\n";
  Table table({"network", "configuration", "total power (mW)",
               "first+last (mW)", "middle layers (mW)",
               "edge/middle ratio"});
  // First/last precisions of the paper's fully-quantized networks.
  run_arch(table, Arch::kResNet20, 6, 2);
  run_arch(table, Arch::kResNet18, 6, 6);
  run_arch(table, Arch::kResNet50, 8, 3);
  emit(table, "fig5_power");

  // MAC-level cost card (the substrate the figure rests on).
  std::cout << "\nPer-MAC energy (structural model):\n";
  Table macs({"precision (WxA)", "gates", "energy/MAC (fJ)",
              "fp32/this ratio"});
  const double fp_energy = hw::mac_cost(32, 32).energy_j;
  for (int bits : {32, 8, 6, 4, 3, 2}) {
    const auto c = hw::mac_cost(bits, bits);
    macs.add_row({bits == 32 ? "fp32" : std::to_string(bits) + "x" +
                                            std::to_string(bits),
                  Table::fmt(c.gates, 0), Table::fmt(1e15 * c.energy_j, 1),
                  Table::fmt(fp_energy / c.energy_j, 1) + "x"});
  }
  macs.print(std::cout);
  std::cout << "\npaper's claim: fp first+last cost 4~56x the quantized "
               "middle; see edge/middle column\n";
  return 0;
}
