// Fig 1 reproduction: final accuracy as a function of the memory-mixing
// weight λ (Eq. 7), plus the λ-decay ablation called out in DESIGN.md §6.
//
// The paper sweeps the *average* λ and finds a sweet spot around 0.6–0.7:
// too low ignores model size (slow compression, but accuracy-greedy);
// too high quantizes big layers blindly and loses accuracy.
#include "bench_common.hpp"

namespace {

using namespace ccq;
using namespace ccq::bench;

struct Point {
  double lambda_avg;
  float accuracy;
  double compression;
  std::string mode;
};

Point run_lambda(const Split& split, double lambda_start, double lambda_end,
                 const std::string& mode) {
  const quant::BitLadder ladder({8, 2});
  auto model =
      make_model(Arch::kResNet20, 10, quant::Policy::kPact, ladder);
  pretrain_baseline(model, split, Arch::kResNet20, "cifar",
                    quant::Policy::kPact, 12);
  auto config = ccq_config();
  config.memory_aware = true;
  config.lambda_start = lambda_start;
  config.lambda_end = lambda_end;
  const auto r = core::run_ccq(model, split.train, split.val, config);
  double lambda_sum = 0.0;
  for (const auto& step : r.steps) lambda_sum += step.lambda;
  const double avg =
      r.steps.empty() ? 0.0 : lambda_sum / static_cast<double>(r.steps.size());
  return Point{avg, r.final_accuracy, r.final_compression, mode};
}

}  // namespace

int main() {
  std::cout << "=== Fig 1: accuracy vs average λ (memory-aware mixing, "
               "ResNet20 / synthetic CIFAR) ===\n\n";
  const Split split = cifar_split();

  Table table({"mode", "avg lambda", "final top-1", "compression"});
  float best_acc = 0.0f;
  double best_lambda = 0.0;
  // Linear decay around different averages (paper's operating mode): a
  // decay from (avg+0.3) to (avg−0.3), clamped to [0,1].
  for (double avg : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double start = std::min(1.0, avg + 0.3);
    const double end = std::max(0.0, avg - 0.3);
    const Point p = run_lambda(split, start, end, "linear-decay");
    table.add_row({p.mode, Table::fmt(p.lambda_avg),
                   Table::fmt(100.0 * p.accuracy), Table::fmt(p.compression)});
    if (p.accuracy > best_acc) {
      best_acc = p.accuracy;
      best_lambda = p.lambda_avg;
    }
  }
  // Ablation: constant λ (no decay) at the mid-range operating point.
  const Point constant = run_lambda(split, 0.6, 0.6, "constant");
  table.add_row({constant.mode, Table::fmt(constant.lambda_avg),
                 Table::fmt(100.0 * constant.accuracy),
                 Table::fmt(constant.compression)});
  emit(table, "fig1_lambda_sweep");
  std::cout << "\nbest average lambda ≈ " << Table::fmt(best_lambda)
            << " (paper: ~0.6–0.7)\n";
  return 0;
}
