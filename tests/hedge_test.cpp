// Tests for the exponential-weights competition (paper Eq. 6/7).
#include <gtest/gtest.h>

#include <cmath>

#include "ccq/core/hedge.hpp"
#include "ccq/common/error.hpp"

namespace ccq::core {
namespace {

std::vector<bool> all_awake(std::size_t n) { return std::vector<bool>(n, true); }

TEST(HedgeTest, StartsUniform) {
  HedgeCompetition h(4, 1.0);
  const auto p = h.probabilities(all_awake(4));
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.25);
}

TEST(HedgeTest, ProbabilitiesFormSimplex) {
  HedgeCompetition h(5, 2.0);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    h.update(rng.uniform_int(5), rng.uniform(0.0, 3.0));
  }
  const auto p = h.probabilities(all_awake(5));
  double total = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HedgeTest, HigherLossLowersProbability) {
  HedgeCompetition h(2, 1.0);
  h.update(0, 2.0);  // layer 0 hurts accuracy more
  h.update(1, 0.5);
  const auto p = h.probabilities(all_awake(2));
  EXPECT_LT(p[0], p[1]);
  // Exact Hedge ratio: exp(−2)/exp(−0.5).
  EXPECT_NEAR(p[0] / p[1], std::exp(-2.0) / std::exp(-0.5), 1e-9);
}

TEST(HedgeTest, GammaSharpensTheDistribution) {
  HedgeCompetition soft(2, 0.5);
  HedgeCompetition sharp(2, 5.0);
  for (auto* h : {&soft, &sharp}) {
    h->update(0, 1.0);
    h->update(1, 0.2);
  }
  const auto ps = soft.probabilities(all_awake(2));
  const auto ph = sharp.probabilities(all_awake(2));
  EXPECT_GT(ph[1], ps[1]);  // sharper → more mass on the better layer
}

TEST(HedgeTest, SleepingExpertsGetZeroProbability) {
  HedgeCompetition h(3, 1.0);
  std::vector<bool> awake{true, false, true};
  const auto p = h.probabilities(awake);
  EXPECT_EQ(p[1], 0.0);
  EXPECT_NEAR(p[0] + p[2], 1.0, 1e-12);
}

TEST(HedgeTest, AllSleepingThrows) {
  HedgeCompetition h(2, 1.0);
  EXPECT_THROW(h.probabilities({false, false}), Error);
}

TEST(HedgeTest, SleepingWeightIsPreserved) {
  // A layer that sleeps keeps its weight; when the mask changes it
  // re-enters with its historical record intact.
  HedgeCompetition h(2, 1.0);
  h.update(0, 3.0);
  const auto p_masked = h.probabilities({false, true});
  EXPECT_EQ(p_masked[0], 0.0);
  const auto p_full = h.probabilities(all_awake(2));
  EXPECT_LT(p_full[0], p_full[1]);
}

TEST(HedgeTest, UnderflowGuardKeepsDistributionValid) {
  HedgeCompetition h(2, 50.0);
  for (int i = 0; i < 200; ++i) {
    h.update(0, 10.0);
    h.update(1, 9.0);
  }
  const auto p = h.probabilities(all_awake(2));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  EXPECT_GT(p[1], p[0]);
}

TEST(HedgeTest, RejectsInvalidInput) {
  EXPECT_THROW(HedgeCompetition(0, 1.0), Error);
  EXPECT_THROW(HedgeCompetition(2, 0.0), Error);
  HedgeCompetition h(2, 1.0);
  EXPECT_THROW(h.update(5, 1.0), Error);
  EXPECT_THROW(h.update(0, std::nan("")), Error);
}

TEST(MemoryMixTest, LambdaZeroIsPureHedge) {
  HedgeCompetition h(3, 1.0);
  h.update(0, 1.0);
  const auto base = h.probabilities(all_awake(3));
  const auto mixed =
      h.memory_mixed_probabilities(all_awake(3), {0.5, 0.3, 0.2}, 0.0);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(mixed[i], base[i], 1e-12);
}

TEST(MemoryMixTest, LambdaOneIsPureMemory) {
  HedgeCompetition h(3, 1.0);
  h.update(0, 5.0);  // hedge says avoid layer 0…
  const auto mixed =
      h.memory_mixed_probabilities(all_awake(3), {0.6, 0.3, 0.1}, 1.0);
  // …but λ=1 ignores the hedge entirely (Eq. 7 with λ=1).
  EXPECT_NEAR(mixed[0], 0.6, 1e-12);
  EXPECT_NEAR(mixed[1], 0.3, 1e-12);
  EXPECT_NEAR(mixed[2], 0.1, 1e-12);
}

TEST(MemoryMixTest, BigLayersFavouredAtHighLambda) {
  HedgeCompetition h(2, 1.0);
  const auto low = h.memory_mixed_probabilities(all_awake(2), {0.9, 0.1}, 0.1);
  const auto high = h.memory_mixed_probabilities(all_awake(2), {0.9, 0.1}, 0.9);
  EXPECT_GT(high[0], low[0]);
}

TEST(MemoryMixTest, RenormalisesOverAwakeLayers) {
  HedgeCompetition h(3, 1.0);
  const auto mixed = h.memory_mixed_probabilities(
      {true, false, true}, {0.5, 0.4, 0.1}, 1.0);
  EXPECT_EQ(mixed[1], 0.0);
  // Awake shares 0.5 and 0.1 renormalise to 5/6 and 1/6.
  EXPECT_NEAR(mixed[0], 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(mixed[2], 1.0 / 6.0, 1e-12);
}

TEST(MemoryMixTest, ValidatesLambda) {
  HedgeCompetition h(2, 1.0);
  EXPECT_THROW(
      h.memory_mixed_probabilities(all_awake(2), {0.5, 0.5}, -0.1), Error);
  EXPECT_THROW(
      h.memory_mixed_probabilities(all_awake(2), {0.5, 0.5}, 1.1), Error);
}

TEST(SampleTest, FollowsDistribution) {
  Rng rng(2);
  std::vector<double> p{0.7, 0.0, 0.3};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[HedgeCompetition::sample(p, rng)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.7, 0.02);
}

TEST(LambdaScheduleTest, LinearDecayEndpointsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(lambda_at_step(0.7, 0.1, 0, 10), 0.7);
  EXPECT_DOUBLE_EQ(lambda_at_step(0.7, 0.1, 10, 10), 0.1);
  double prev = 1.0;
  for (int t = 0; t <= 10; ++t) {
    const double l = lambda_at_step(0.7, 0.1, t, 10);
    EXPECT_LE(l, prev);
    prev = l;
  }
  // Clamps beyond the end.
  EXPECT_DOUBLE_EQ(lambda_at_step(0.7, 0.1, 99, 10), 0.1);
  EXPECT_THROW(lambda_at_step(0.7, 0.1, 0, 0), Error);
}

}  // namespace
}  // namespace ccq::core
