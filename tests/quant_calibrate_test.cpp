// Tests for the static calibrators (ACIQ analytic clip, KL histogram).
#include <gtest/gtest.h>

#include <cmath>

#include "ccq/quant/calibrate.hpp"
#include "ccq/quant/uniform.hpp"

namespace ccq::quant {
namespace {

Tensor laplace_samples(std::size_t n, float b, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t({n});
  for (auto& v : t.data()) {
    const double u = rng.uniform(1e-9, 1.0);
    v = static_cast<float>((rng.uniform() < 0.5 ? -1.0 : 1.0) *
                           -std::log(u) * b);
  }
  return t;
}

TEST(AciqTest, KappaGrowsWithBits) {
  for (auto dist : {WeightDist::kGaussian, WeightDist::kLaplace}) {
    float prev = 0.0f;
    for (int bits = 2; bits <= 8; ++bits) {
      const float k = aciq_kappa(bits, dist);
      EXPECT_GT(k, prev);
      prev = k;
    }
  }
}

TEST(AciqTest, LaplaceKappaExceedsGaussian) {
  // Heavier tails need wider clips at every precision.
  for (int bits = 2; bits <= 8; ++bits) {
    EXPECT_GT(aciq_kappa(bits, WeightDist::kLaplace),
              aciq_kappa(bits, WeightDist::kGaussian));
  }
}

TEST(AciqTest, BitsOutOfTableThrow) {
  EXPECT_THROW(aciq_kappa(1, WeightDist::kGaussian), Error);
  EXPECT_THROW(aciq_kappa(9, WeightDist::kGaussian), Error);
}

TEST(AciqTest, GaussianClipScalesWithSigma) {
  Rng rng(1);
  Tensor w1 = Tensor::randn({20000}, rng, 1.0f);
  Tensor w2 = Tensor::randn({20000}, rng, 2.0f);
  const float c1 = aciq_clip(w1, 4, WeightDist::kGaussian);
  const float c2 = aciq_clip(w2, 4, WeightDist::kGaussian);
  EXPECT_NEAR(c2 / c1, 2.0f, 0.1f);
  EXPECT_NEAR(c1, aciq_kappa(4, WeightDist::kGaussian), 0.1f);
}

TEST(AciqTest, ClipIsBelowMaxForLargeSamples) {
  // The whole point of ACIQ: clip inside the observed range at low bits.
  Tensor w = laplace_samples(50000, 0.1f, 2);
  const float clip = aciq_clip(w, 2, WeightDist::kLaplace);
  const float max_abs = std::max(w.max(), -w.min());
  EXPECT_LT(clip, max_abs);
  EXPECT_GT(clip, 0.0f);
}

TEST(AciqTest, AciqClipBeatsMinMaxMseOnLaplaceData) {
  Tensor w = laplace_samples(20000, 0.05f, 3);
  const float aciq = aciq_clip(w, 3, WeightDist::kLaplace);
  const float minmax = std::max(w.max(), -w.min());
  EXPECT_LT(quantization_mse(w, 3, aciq), quantization_mse(w, 3, minmax));
}

TEST(KlTest, ClipWithinObservedRange) {
  Tensor w = laplace_samples(20000, 0.1f, 4);
  const float clip = kl_calibrate_clip(w, 4);
  EXPECT_GT(clip, 0.0f);
  EXPECT_LE(clip, std::max(w.max(), -w.min()) * 1.001f);
}

TEST(KlTest, CutsHeavyTailAtLowBits) {
  // With a Laplace tail the KL-optimal low-bit clip must discard a
  // substantial part of the observed range (the outliers carry almost no
  // probability mass but would waste grid resolution).
  Tensor w = laplace_samples(40000, 0.1f, 5);
  const float clip2 = kl_calibrate_clip(w, 2);
  const float max_abs = std::max(w.max(), -w.min());
  EXPECT_LT(clip2, 0.8f * max_abs);
}

TEST(KlTest, BeatsMinMaxMseAtTwoBitsOnHeavyTails) {
  Tensor w = laplace_samples(30000, 0.05f, 6);
  const float kl = kl_calibrate_clip(w, 2);
  const float minmax = std::max(w.max(), -w.min());
  EXPECT_LT(quantization_mse(w, 2, kl), quantization_mse(w, 2, minmax));
}

TEST(KlTest, HighPrecisionKeepsWideClip) {
  // At 8 bits nearly every threshold has ~zero divergence; the tie-break
  // must keep the widest clip instead of letting numerical noise pick a
  // degenerate tiny one (regression guard for a real failure seen in the
  // static-calibration bench).
  Tensor w = laplace_samples(30000, 0.1f, 9);
  const float clip8 = kl_calibrate_clip(w, 8);
  const float max_abs = std::max(w.max(), -w.min());
  EXPECT_GT(clip8, 0.5f * max_abs);
}

TEST(KlTest, UniformDataKeepsWideClip) {
  // For uniform data there are no outliers to cut: the KL-optimal clip
  // should stay close to the max.
  Rng rng(7);
  Tensor w = Tensor::rand_uniform({20000}, rng, -1.0f, 1.0f);
  const float clip = kl_calibrate_clip(w, 4);
  EXPECT_GT(clip, 0.7f);
}

TEST(KlTest, ValidatesArguments) {
  Tensor w = laplace_samples(100, 0.1f, 8);
  EXPECT_THROW(kl_calibrate_clip(w, 1), Error);
  EXPECT_THROW(kl_calibrate_clip(w, 4, 4), Error);
  Tensor empty;
  EXPECT_THROW(kl_calibrate_clip(empty, 4), Error);
}

TEST(KlTest, AllZeroInputYieldsTinyClip) {
  Tensor w({128});
  EXPECT_LE(kl_calibrate_clip(w, 4), 1e-6f);
}

}  // namespace
}  // namespace ccq::quant
