// Tests for quantized activation modules (ClipActQuant, PACT).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ccq/quant/act_quant.hpp"

namespace ccq::quant {
namespace {

TEST(ClipActTest, FullPrecisionIsClippedRelu) {
  Workspace ws;
  ClipActQuant act(1.0f);
  act.set_bits(32);
  Tensor x = Tensor::from({-0.5f, 0.4f, 1.7f});
  const Tensor y = act.forward(x, ws);
  EXPECT_FLOAT_EQ(y(0), 0.0f);
  EXPECT_FLOAT_EQ(y(1), 0.4f);
  EXPECT_FLOAT_EQ(y(2), 1.0f);
}

TEST(ClipActTest, QuantizedOutputOnGrid) {
  Workspace ws;
  ClipActQuant act(1.0f);
  act.set_bits(2);
  Rng rng(1);
  Tensor x = Tensor::rand_uniform({1000}, rng, -0.5f, 1.5f);
  const Tensor y = act.forward(x, ws);
  std::set<float> values(y.data().begin(), y.data().end());
  EXPECT_LE(values.size(), 4u);  // {0, 1/3, 2/3, 1}
  EXPECT_GE(y.min(), 0.0f);
  EXPECT_LE(y.max(), 1.0f);
}

TEST(ClipActTest, BackwardMasksOutsideActiveRange) {
  Workspace ws;
  ClipActQuant act(1.0f);
  act.set_bits(4);
  Tensor x = Tensor::from({-0.1f, 0.5f, 1.2f});
  act.forward(x, ws);
  const Tensor g = act.backward(Tensor({3}, 2.0f), ws);
  EXPECT_EQ(g(0), 0.0f);
  EXPECT_EQ(g(1), 2.0f);
  EXPECT_EQ(g(2), 0.0f);
}

TEST(ClipActTest, BitsSwitchTakesEffectImmediately) {
  Workspace ws;
  ClipActQuant act(1.0f);
  Tensor x = Tensor::from({0.4f});
  act.set_bits(32);
  EXPECT_FLOAT_EQ(act.forward(x, ws)(0), 0.4f);
  act.set_bits(1);
  const float q = act.forward(x, ws)(0);
  EXPECT_TRUE(q == 0.0f || q == 1.0f);
}

TEST(ClipActTest, InvalidConfigThrows) {
  EXPECT_THROW(ClipActQuant(-1.0f), Error);
  ClipActQuant act(1.0f);
  EXPECT_THROW(act.set_bits(0), Error);
  EXPECT_THROW(act.set_bits(64), Error);
}

TEST(PactTest, ForwardClipsAtAlpha) {
  Workspace ws;
  PactActivation act(2.0f);
  act.set_bits(32);
  Tensor x = Tensor::from({-1.0f, 1.0f, 3.0f});
  const Tensor y = act.forward(x, ws);
  EXPECT_FLOAT_EQ(y(0), 0.0f);
  EXPECT_FLOAT_EQ(y(1), 1.0f);
  EXPECT_FLOAT_EQ(y(2), 2.0f);
}

TEST(PactTest, QuantizedLevelsScaleWithAlpha) {
  Workspace ws;
  PactActivation act(4.0f);
  act.set_bits(2);
  Tensor x = Tensor::from({1.4f});
  // Grid over [0, 4] with 3 steps: {0, 4/3, 8/3, 4}; 1.4 → 4/3.
  EXPECT_NEAR(act.forward(x, ws)(0), 4.0f / 3.0f, 1e-5f);
}

TEST(PactTest, AlphaReceivesSaturatedGradient) {
  Workspace ws;
  PactActivation act(1.0f);
  act.set_bits(4);
  Tensor x = Tensor::from({0.5f, 2.0f, 3.0f});  // two saturated
  act.forward(x, ws);
  act.alpha_param().zero_grad();
  act.backward(Tensor({3}, 1.0f), ws);
  EXPECT_FLOAT_EQ(act.alpha_param().grad.at(0), 2.0f);
}

TEST(PactTest, AlphaGradientMatchesNumericWithoutDiscretisation) {
  Workspace ws;
  // PACT's published ∂y/∂α rule (1 where x ≥ α, 0 elsewhere) is exact for
  // the clipping function itself; with discretisation enabled the rule is
  // an STE approximation, so the numeric comparison uses 32-bit mode and
  // inputs away from the x = α kink.
  PactActivation act(1.0f);
  act.set_bits(32);
  Rng rng(2);
  Tensor x({64});
  for (std::size_t i = 0; i < 64; ++i) {
    x.at(i) = static_cast<float>(rng.uniform(-0.5, 2.0));
    if (std::fabs(x.at(i) - 1.0f) < 0.05f) x.at(i) = 1.5f;  // avoid kink
  }
  Tensor coeff = Tensor::randn({64}, rng);

  act.alpha_param().zero_grad();
  act.forward(x, ws);
  act.backward(coeff, ws);
  const float analytic = act.alpha_param().grad.at(0);

  const double eps = 1e-3;
  auto loss_at = [&](float a) {
    act.alpha_param().value.at(0) = a;
    const Tensor y = act.forward(x, ws);
    double acc = 0.0;
    for (std::size_t i = 0; i < 64; ++i) acc += coeff.at(i) * y.at(i);
    return acc;
  };
  const float a0 = act.alpha_param().value.at(0);
  const double numeric =
      (loss_at(a0 + static_cast<float>(eps)) -
       loss_at(a0 - static_cast<float>(eps))) /
      (2 * eps);
  act.alpha_param().value.at(0) = a0;
  EXPECT_NEAR(analytic, numeric, 0.02 * std::max(1.0, std::fabs(numeric)));
}

TEST(PactTest, InputGradientMasksLikePact) {
  Workspace ws;
  PactActivation act(1.0f);
  act.set_bits(4);
  Tensor x = Tensor::from({-0.5f, 0.5f, 1.5f});
  act.forward(x, ws);
  const Tensor g = act.backward(Tensor({3}, 3.0f), ws);
  EXPECT_EQ(g(0), 0.0f);  // below zero
  EXPECT_EQ(g(1), 3.0f);  // pass-through
  EXPECT_EQ(g(2), 0.0f);  // saturated (gradient went to α)
}

TEST(PactTest, AlphaIsRegisteredParameter) {
  PactActivation act(6.0f, "layer3");
  std::vector<nn::Parameter*> params;
  act.collect_parameters(params);
  ASSERT_EQ(params.size(), 1u);
  EXPECT_EQ(params[0]->name, "layer3.alpha");
  EXPECT_EQ(params[0]->weight_decay_scale, 1.0f);  // PACT L2-regularises α
}

TEST(PactTest, AlphaFloorPreventsCollapse) {
  Workspace ws;
  PactActivation act(6.0f);
  act.set_bits(4);
  act.alpha_param().value.at(0) = -5.0f;  // pathological update
  Tensor x = Tensor::from({0.5f});
  const Tensor y = act.forward(x, ws);  // must not divide by ≤ 0
  EXPECT_TRUE(std::isfinite(y(0)));
  EXPECT_GE(y(0), 0.0f);
}

TEST(PactTest, InvalidInitThrows) {
  EXPECT_THROW(PactActivation(-1.0f), Error);
}

}  // namespace
}  // namespace ccq::quant
