// Wire protocol and TCP front-end tests.
//
// Layer by layer: framing round-trips through arbitrarily chunked
// receive buffers and rejects hostile lengths before allocating; the
// body codec round-trips every float bit pattern exactly and throws
// named `ProtocolError`s on garbage; and the socket stack end to end
// returns logits bit-identical to an in-process `submit` from many
// concurrent clients — the property that makes the TCP boundary
// transparent to the serving contract.
//
// The SLA wire fields (priority tag 2, deadline tag 3) get the same
// treatment: round-trips in every combination, rejection of hostile
// values (priority past the enum, zero deadlines), truncation at every
// byte of a fully-tagged frame, and a golden byte-for-byte check that
// an untagged request still encodes exactly as it did before the tags
// existed — old clients and new servers interoperate.
//
// Labelled `serve` and run under the TSan quick tier
// (`CCQ_THREADS=4 ctest -L "parallel|telemetry|serve|igemm|engine|adaptive|sla"`).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ccq/models/simple.hpp"
#include "ccq/serve/harness.hpp"
#include "ccq/serve/net.hpp"

namespace ccq::serve {
namespace {

Tensor make_inputs(std::size_t n) {
  Tensor x({n, 3, 8, 8});
  auto data = x.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>((i * 2654435761u >> 8) & 255u) / 255.0f;
  }
  return x;
}

hw::IntegerNetwork make_network() {
  models::ModelConfig mc;
  mc.num_classes = 5;
  mc.image_size = 8;
  mc.width_multiplier = 0.25f;
  quant::QuantFactory factory{.policy = quant::Policy::kMinMax};
  auto model =
      models::make_simple_cnn(mc, factory, quant::BitLadder({8, 4, 2}));
  quant::LayerRegistry& registry = model.registry();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    registry.set_ladder_pos(i, i % 3);
  }
  Workspace ws;
  model.set_training(true);
  model.forward(make_inputs(16), ws);
  model.set_training(false);
  return hw::IntegerNetwork::compile(model);
}

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// ---- framing ---------------------------------------------------------------

TEST(WireFramingTest, RoundTripsThroughByteWiseFeeds) {
  std::string stream;
  wire::append_frame(stream, "first body");
  wire::append_frame(stream, "");  // empty bodies are legal frames
  wire::append_frame(stream, std::string(1000, 'x'));

  // Feed the receive buffer one byte at a time, the worst fragmentation
  // a socket can produce.
  std::string receive, body;
  std::vector<std::string> bodies;
  for (const char c : stream) {
    receive.push_back(c);
    while (wire::extract_frame(receive, body)) bodies.push_back(body);
  }
  EXPECT_TRUE(receive.empty());
  ASSERT_EQ(bodies.size(), 3u);
  EXPECT_EQ(bodies[0], "first body");
  EXPECT_EQ(bodies[1], "");
  EXPECT_EQ(bodies[2], std::string(1000, 'x'));
}

TEST(WireFramingTest, PartialFrameLeavesBufferUntouched) {
  std::string stream;
  wire::append_frame(stream, "payload");
  std::string receive = stream.substr(0, stream.size() - 1);
  const std::string before = receive;
  std::string body;
  EXPECT_FALSE(wire::extract_frame(receive, body));
  EXPECT_EQ(receive, before);
}

TEST(WireFramingTest, HostileLengthRejectedBeforeAllocation) {
  // A declared length just past the cap must throw, not allocate 4 GiB.
  const std::uint32_t declared = wire::kMaxFrameBytes + 1;
  std::string receive(4, '\0');
  std::memcpy(receive.data(), &declared, sizeof(declared));
  std::string body;
  const std::string message =
      error_message([&] { wire::extract_frame(receive, body); });
  EXPECT_NE(message.find("wire protocol"), std::string::npos) << message;
  EXPECT_NE(message.find("frame"), std::string::npos) << message;

  std::string out;
  EXPECT_THROW(
      wire::append_frame(out, std::string(wire::kMaxFrameBytes + 1, 'x')),
      wire::ProtocolError);
}

// ---- body codec ------------------------------------------------------------

TEST(WireCodecTest, RequestRoundTripsBitIdentically) {
  wire::InferRequest request;
  request.model = "resnet20-cifar";
  request.version = 7;
  request.channels = 2;
  request.height = 2;
  request.width = 3;
  // Adversarial float bit patterns: ±0, denormal, inf, NaN payloads —
  // the codec ships raw IEEE-754 bits and must preserve every one.
  request.data = {0.0f,
                  -0.0f,
                  1e-42f,
                  std::numeric_limits<float>::infinity(),
                  std::numeric_limits<float>::quiet_NaN(),
                  -1.5f,
                  3.25f,
                  255.0f,
                  -1e38f,
                  1e-38f,
                  0.1f,
                  42.0f};
  const std::string body = wire::encode_request(request);
  const wire::InferRequest decoded = wire::decode_request(body);
  EXPECT_EQ(decoded.model, request.model);
  EXPECT_EQ(decoded.version, request.version);
  EXPECT_EQ(decoded.channels, request.channels);
  EXPECT_EQ(decoded.height, request.height);
  EXPECT_EQ(decoded.width, request.width);
  EXPECT_TRUE(bits_equal(decoded.data, request.data));
}

TEST(WireCodecTest, ReplyRoundTripsBothArms) {
  wire::InferReply ok;
  ok.ok = true;
  ok.version = 3;
  ok.logits = {-0.0f, 1.25f, std::numeric_limits<float>::quiet_NaN()};
  const wire::InferReply ok2 = wire::decode_reply(wire::encode_reply(ok));
  EXPECT_TRUE(ok2.ok);
  EXPECT_EQ(ok2.version, 3u);
  EXPECT_TRUE(bits_equal(ok2.logits, ok.logits));
  EXPECT_TRUE(ok2.error.empty());

  wire::InferReply err;
  err.ok = false;
  err.error = "serve queue for model m full (capacity 4): request rejected";
  const wire::InferReply err2 = wire::decode_reply(wire::encode_reply(err));
  EXPECT_FALSE(err2.ok);
  EXPECT_EQ(err2.error, err.error);
  EXPECT_TRUE(err2.logits.empty());
}

TEST(WireCodecTest, GarbageRejectedWithNamedErrors) {
  wire::InferRequest request;
  request.model = "m";
  request.channels = 1;
  request.height = 1;
  request.width = 2;
  request.data = {1.0f, 2.0f};
  const std::string body = wire::encode_request(request);

  // Wrong tag: a reply body handed to the request decoder (and vice
  // versa), plus an outright unknown tag.
  const std::string bad_tag_msg = error_message(
      [&] { wire::decode_request(wire::encode_reply(wire::InferReply{})); });
  EXPECT_NE(bad_tag_msg.find("tag"), std::string::npos) << bad_tag_msg;
  std::string unknown = body;
  unknown[0] = static_cast<char>(0x7f);
  EXPECT_THROW(wire::decode_request(unknown), wire::ProtocolError);
  EXPECT_THROW(wire::decode_reply(unknown), wire::ProtocolError);

  // Truncation at every byte boundary must throw, never read past the
  // end or silently succeed.
  for (std::size_t cut = 1; cut < body.size(); ++cut) {
    EXPECT_THROW(wire::decode_request(body.substr(0, cut)),
                 wire::ProtocolError)
        << "cut at " << cut;
  }

  // Trailing garbage after a valid message.
  EXPECT_THROW(wire::decode_request(body + "z"), wire::ProtocolError);

  // Geometry that disagrees with the float count.
  wire::InferRequest skewed = request;
  skewed.width = 3;  // declares 3 floats, carries 2
  skewed.data = {1.0f, 2.0f};
  const std::string skew_msg = error_message([&] {
    wire::decode_request(wire::encode_request(skewed));
  });
  EXPECT_NE(skew_msg.find("geometry"), std::string::npos) << skew_msg;
}

TEST(WireCodecTest, OverflowingGeometryRejected) {
  // channels × height wraps std::size_t to 0: the unchecked multiply
  // used to admit this zero-float frame with 2^32-sized dims, handing
  // the engine garbage loop bounds over an empty buffer.
  wire::InferRequest hostile;
  hostile.model = "m";
  hostile.channels = std::size_t{1} << 32;
  hostile.height = std::size_t{1} << 32;
  hostile.width = 1;
  const std::string wrap_msg = error_message(
      [&] { wire::decode_request(wire::encode_request(hostile)); });
  EXPECT_NE(wrap_msg.find("frame cap"), std::string::npos) << wrap_msg;

  // Zero dims reject even though the (empty) float count "matches".
  wire::InferRequest zero;
  zero.model = "m";
  zero.channels = 0;
  zero.height = 4;
  zero.width = 4;
  EXPECT_THROW(wire::decode_request(wire::encode_request(zero)),
               wire::ProtocolError);

  // One dim past the frame's float capacity rejects before any multiply.
  wire::InferRequest wide;
  wide.model = "m";
  wide.channels = 1;
  wide.height = 1;
  wide.width = wire::kMaxFrameBytes / sizeof(float) + 1;
  EXPECT_THROW(wire::decode_request(wire::encode_request(wide)),
               wire::ProtocolError);
}

TEST(WireCodecTest, HostileFloatCountRejectedBeforeWrap) {
  // A declared float count of 2^62 makes n·sizeof(float) wrap to zero;
  // the decoder must reject it as truncation, not read past the end or
  // try to allocate.
  std::string body;
  body.push_back('\x01');  // tag: InferRequest
  body.push_back('\x01');  // model name length 1 …
  body.push_back('m');     // … "m"
  body.push_back('\x00');  // version 0
  body.push_back('\x01');  // channels 1
  body.push_back('\x01');  // height 1
  body.push_back('\x01');  // width 1
  std::uint64_t n = std::uint64_t{1} << 62;  // float count varint
  while (n >= 0x80) {
    body.push_back(static_cast<char>(n | 0x80));
    n >>= 7;
  }
  body.push_back(static_cast<char>(n));
  const std::string message =
      error_message([&] { wire::decode_request(body); });
  EXPECT_NE(message.find("truncated"), std::string::npos) << message;
}

// ---- SLA wire fields -------------------------------------------------------

wire::InferRequest small_request() {
  wire::InferRequest request;
  request.model = "m";
  request.channels = 1;
  request.height = 1;
  request.width = 2;
  request.data = {1.0f, 2.0f};
  return request;
}

TEST(WireSlaFieldTest, TagsRoundTripInEveryCombination) {
  // Each optional field independently, then all three together — the
  // decoder must not care which subset is present.
  for (const bool with_point : {false, true}) {
    for (const bool with_priority : {false, true}) {
      for (const bool with_deadline : {false, true}) {
        wire::InferRequest request = small_request();
        if (with_point) {
          request.has_point = true;
          request.point = -1;  // zigzag: "serve at the current rung"
        }
        if (with_priority) {
          request.has_priority = true;
          request.priority = 2;
        }
        if (with_deadline) {
          request.has_deadline = true;
          request.deadline_us = 1500;
        }
        const wire::InferRequest decoded =
            wire::decode_request(wire::encode_request(request));
        EXPECT_EQ(decoded.has_point, with_point);
        EXPECT_EQ(decoded.has_priority, with_priority);
        EXPECT_EQ(decoded.has_deadline, with_deadline);
        if (with_point) EXPECT_EQ(decoded.point, -1);
        if (with_priority) EXPECT_EQ(decoded.priority, 2);
        if (with_deadline) EXPECT_EQ(decoded.deadline_us, 1500u);
      }
    }
  }
}

TEST(WireSlaFieldTest, UntaggedRequestBytesNeverChanged) {
  // Golden bytes: a request with no optional fields must encode exactly
  // as it did before the SLA tags existed, so pre-SLA clients and
  // servers interoperate with tagged ones.  Any byte here changing is a
  // wire break, not a refactor.
  const wire::InferRequest request = small_request();
  std::string golden;
  golden.push_back('\x01');  // tag: InferRequest
  golden.push_back('\x01');  // model name length 1 …
  golden.push_back('m');     // … "m"
  golden.push_back('\x00');  // version 0
  golden.push_back('\x01');  // channels 1
  golden.push_back('\x01');  // height 1
  golden.push_back('\x02');  // width 2
  golden.push_back('\x02');  // float count 2
  const float floats[2] = {1.0f, 2.0f};
  golden.append(reinterpret_cast<const char*>(floats), sizeof(floats));
  EXPECT_EQ(wire::encode_request(request), golden);
}

TEST(WireSlaFieldTest, HostilePriorityAndDeadlineValuesRejected) {
  // Priority past the highest service class.
  wire::InferRequest loud = small_request();
  loud.has_priority = true;
  loud.priority = 3;
  const std::string range_msg = error_message(
      [&] { wire::decode_request(wire::encode_request(loud)); });
  EXPECT_NE(range_msg.find("out of range"), std::string::npos) << range_msg;

  // A zero deadline claims a budget while meaning "none": rejected.
  wire::InferRequest zero = small_request();
  zero.has_deadline = true;
  zero.deadline_us = 0;
  // The encoder would skip a zero via has_deadline, so force the bytes.
  std::string body = wire::encode_request(small_request());
  body.push_back('\x03');  // deadline tag …
  body.push_back('\x00');  // … budget 0
  const std::string zero_msg =
      error_message([&] { wire::decode_request(body); });
  EXPECT_NE(zero_msg.find("must be positive"), std::string::npos) << zero_msg;

  // A u64-max budget is legal on the wire (admission saturates it).
  wire::InferRequest forever = small_request();
  forever.has_deadline = true;
  forever.deadline_us = std::numeric_limits<std::uint64_t>::max();
  const wire::InferRequest decoded =
      wire::decode_request(wire::encode_request(forever));
  EXPECT_EQ(decoded.deadline_us, std::numeric_limits<std::uint64_t>::max());
}

TEST(WireSlaFieldTest, DuplicateAndUnknownTagsRejected) {
  const std::string base = wire::encode_request(small_request());
  for (const char tag : {'\x01', '\x02', '\x03'}) {
    // Two copies of the same optional field: the second falls through
    // to the unknown-tag arm — a frame states each fact at most once.
    std::string body = base;
    for (int copy = 0; copy < 2; ++copy) {
      body.push_back(tag);
      body.push_back('\x01');  // a valid value for all three fields
    }
    const std::string message =
        error_message([&] { wire::decode_request(body); });
    EXPECT_NE(message.find("unknown trailing field"), std::string::npos)
        << "tag " << static_cast<int>(tag) << ": " << message;
  }
  // A tag past the known set rejects outright.
  std::string body = base;
  body.push_back('\x04');
  body.push_back('\x01');
  EXPECT_THROW(wire::decode_request(body), wire::ProtocolError);
}

TEST(WireSlaFieldTest, FullyTaggedFrameTruncationLegalOnlyAtFieldBoundaries) {
  // Optional trailing fields make some truncations *legal*: a cut at a
  // field boundary is just a shorter valid message (that is the
  // backward-compatibility property).  Every other cut — anywhere
  // inside a field, including between a tag byte and its value — must
  // reject.  Build the boundary set by encoding with progressively
  // more fields so the test cannot drift from the encoder.
  wire::InferRequest request = small_request();
  std::set<std::size_t> boundaries;
  boundaries.insert(wire::encode_request(request).size());
  request.has_point = true;
  request.point = 1;
  boundaries.insert(wire::encode_request(request).size());
  request.has_priority = true;
  request.priority = 2;
  boundaries.insert(wire::encode_request(request).size());
  request.has_deadline = true;
  request.deadline_us = 300;  // two varint bytes: cuts land mid-field
  const std::string body = wire::encode_request(request);

  for (std::size_t cut = 1; cut <= body.size(); ++cut) {
    const std::string prefix = body.substr(0, cut);
    if (boundaries.count(cut) > 0 || cut == body.size()) {
      EXPECT_NO_THROW(wire::decode_request(prefix)) << "cut at " << cut;
    } else {
      EXPECT_THROW(wire::decode_request(prefix), wire::ProtocolError)
          << "cut at " << cut;
    }
  }
}

// ---- TCP end to end --------------------------------------------------------

wire::InferRequest request_for(const Tensor& x, std::size_t i,
                               std::string model) {
  wire::InferRequest request;
  request.model = std::move(model);
  request.channels = x.dim(1);
  request.height = x.dim(2);
  request.width = x.dim(3);
  const std::size_t numel = x.dim(1) * x.dim(2) * x.dim(3);
  const auto src = x.data().subspan(i * numel, numel);
  request.data.assign(src.begin(), src.end());
  return request;
}

TEST(TcpServeTest, ConcurrentClientsBitIdenticalToInProcess) {
  hw::IntegerNetwork net = make_network();
  const Tensor x = make_inputs(24);
  const Tensor reference = net.forward(x);

  ServeConfig config;
  config.workers = 2;
  InferenceServer server(config);
  ModelConfig mc;
  mc.max_batch = 5;
  mc.max_delay_us = 200;
  server.load("tcp", std::move(net), mc);
  TcpServer front(server, 0);  // ephemeral port
  ASSERT_NE(front.port(), 0);

  constexpr std::size_t kClients = 4;
  std::vector<wire::InferReply> replies(x.dim(0));
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TcpClient client("127.0.0.1", front.port());
      for (std::size_t i = c; i < x.dim(0); i += kClients) {
        replies[i] = client.infer(request_for(x, i, "tcp"));
      }
    });
  }
  for (auto& t : clients) t.join();

  for (std::size_t i = 0; i < x.dim(0); ++i) {
    ASSERT_TRUE(replies[i].ok) << "sample " << i << ": " << replies[i].error;
    EXPECT_EQ(replies[i].version, 1u);
    ASSERT_EQ(replies[i].logits.size(), reference.dim(1));
    for (std::size_t k = 0; k < replies[i].logits.size(); ++k) {
      EXPECT_EQ(replies[i].logits[k], reference(i, k))
          << "sample " << i << " logit " << k;
    }
  }
}

TEST(TcpServeTest, ErrorRepliesCarryServerDiagnostics) {
  InferenceServer server;
  server.load("known", make_network());
  TcpServer front(server, 0);
  TcpClient client("127.0.0.1", front.port());
  const Tensor x = make_inputs(1);

  // Unknown model: the registry's diagnostic crosses the wire.
  wire::InferReply reply = client.infer(request_for(x, 0, "missing"));
  EXPECT_FALSE(reply.ok);
  EXPECT_NE(reply.error.find("missing"), std::string::npos) << reply.error;

  // Unknown version of a known model.
  wire::InferRequest versioned = request_for(x, 0, "known");
  versioned.version = 99;
  reply = client.infer(versioned);
  EXPECT_FALSE(reply.ok);
  EXPECT_NE(reply.error.find("known"), std::string::npos) << reply.error;

  // The connection survived both errors: a good request still works.
  reply = client.infer(request_for(x, 0, "known"));
  EXPECT_TRUE(reply.ok) << reply.error;
}

TEST(TcpServeTest, HarnessTcpModeMatchesDirectForward) {
  hw::IntegerNetwork net = make_network();
  const Tensor x = make_inputs(12);
  const Tensor reference = net.forward(x);

  InferenceServer server;
  ModelConfig mc;
  mc.max_batch = 3;
  mc.max_delay_us = 200;
  server.load("bench", std::move(net), mc);
  TcpServer front(server, 0);

  ServeHarness harness("127.0.0.1", front.port(), "bench");
  const HarnessReport report = harness.run(x, {.producers = 3});
  EXPECT_EQ(report.requests, x.dim(0));
  ASSERT_EQ(report.outputs.size(), x.dim(0));
  EXPECT_EQ(report.latency_ns.size(), x.dim(0));  // TCP mode is exact
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    EXPECT_EQ(report.versions[i], 1u);
    ASSERT_EQ(report.outputs[i].dim(0), reference.dim(1));
    for (std::size_t k = 0; k < reference.dim(1); ++k) {
      EXPECT_EQ(report.outputs[i](k), reference(i, k))
          << "sample " << i << " logit " << k;
    }
  }
}

TEST(TcpServeTest, DeadlineMissCrossesTheWireAsTypedError) {
  // One worker, a queue that never flushes on fill or age: the only
  // event that can wake the worker is the request's own deadline, so
  // the miss is deterministic — and it must come back over the wire as
  // the typed diagnostic, not a generic failure.
  ServeConfig config;
  config.workers = 1;
  InferenceServer server(config);
  ModelConfig mc;
  mc.max_batch = 8;
  mc.max_delay_us = std::numeric_limits<std::uint64_t>::max();
  server.load("slow", make_network(), mc);
  TcpServer front(server, 0);
  TcpClient client("127.0.0.1", front.port());
  const Tensor x = make_inputs(1);

  wire::InferRequest request = request_for(x, 0, "slow");
  request.has_deadline = true;
  request.deadline_us = 1;  // expires while queued, guaranteed
  wire::InferReply reply = client.infer(request);
  EXPECT_FALSE(reply.ok);
  EXPECT_NE(reply.error.find("missed its 1us deadline"), std::string::npos)
      << reply.error;

  // The connection survived the miss: the next request works the same.
  reply = client.infer(request);
  EXPECT_FALSE(reply.ok);
  EXPECT_NE(reply.error.find("missed its"), std::string::npos) << reply.error;
}

TEST(TcpServeTest, HighPriorityEvictsQueuedLowOverTcp) {
  // A tagged high-priority request arriving over TCP must displace an
  // in-process low-priority request from a full queue — the wire field
  // reaches the same admission policy as a direct submit.
  ServeConfig config;
  config.workers = 1;
  InferenceServer server(config);
  ModelConfig mc;
  mc.queue_capacity = 1;
  mc.max_batch = 4;  // > capacity: nothing flushes until shutdown forces it
  mc.max_delay_us = std::numeric_limits<std::uint64_t>::max();
  const ModelHandle handle = server.load("contested", make_network(), mc);
  TcpServer front(server, 0);

  const Tensor x = make_inputs(2);
  const Tensor low_sample = make_inputs(1).reshaped({3, 8, 8});
  Tensor low_out;
  SubmitOptions low;
  low.priority = Priority::kLow;
  std::future<void> low_reply =
      server.submit(handle, low_sample, low_out, low);

  wire::InferReply high_reply;
  std::thread tcp_client([&] {
    TcpClient client("127.0.0.1", front.port());
    wire::InferRequest request = request_for(x, 1, "contested");
    request.has_priority = true;
    request.priority = 2;  // high
    high_reply = client.infer(request);
  });

  // The eviction happens synchronously inside the high's admission, so
  // waiting on the low's future cannot hang: it fails the moment the
  // TCP request is admitted.
  EXPECT_THROW(low_reply.get(), RequestShedError);

  // Shutdown force-flushes the queue; the high-priority request is the
  // one that got served.
  server.shutdown();
  tcp_client.join();
  ASSERT_TRUE(high_reply.ok) << high_reply.error;
  EXPECT_EQ(high_reply.logits.size(), 5u);
}

}  // namespace
}  // namespace ccq::serve
