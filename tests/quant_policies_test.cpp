// Tests for the weight-quantization hooks (DoReFa, WRPN, SAWB, LQ-Nets,
// LSQ, MinMax) and the policy factory.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "ccq/quant/policy.hpp"
#include "ccq/quant/uniform.hpp"
#include "ccq/quant/weight_hooks.hpp"

namespace ccq::quant {
namespace {

std::shared_ptr<WeightQuantHook> make_hook(Policy policy) {
  QuantFactory factory{.policy = policy};
  return factory.make_weight_hook("test");
}

std::size_t distinct_values(const Tensor& t) {
  std::set<float> values(t.data().begin(), t.data().end());
  return values.size();
}

/// Parameterised over (policy, bits): shared invariants for every policy.
class PolicyBitsTest
    : public ::testing::TestWithParam<std::tuple<Policy, int>> {};

TEST_P(PolicyBitsTest, CodomainBoundedByGrid) {
  auto [policy, bits] = GetParam();
  auto hook = make_hook(policy);
  hook->set_bits(bits);
  Rng rng(7);
  Tensor w = Tensor::randn({4000}, rng, 0.5f);
  const Tensor q = hook->quantize(w);
  // Symmetric k-bit grids have ≤ 2^k−1 values; DoReFa's unit grid has 2^k.
  EXPECT_LE(distinct_values(q), (1u << bits));
  EXPECT_GT(distinct_values(q), 1u);
}

TEST_P(PolicyBitsTest, QuantizationIsIdempotentOnItsOutput) {
  auto [policy, bits] = GetParam();
  auto hook = make_hook(policy);
  hook->set_bits(bits);
  Rng rng(8);
  Tensor w = Tensor::randn({1000}, rng, 0.5f);
  const Tensor q1 = hook->quantize(w);
  // Re-quantizing the already-quantized values must stay on a grid of the
  // same size (not necessarily the identical grid: data-dependent clips
  // re-fit).  This catches level-explosion bugs.
  const Tensor q2 = hook->quantize(q1);
  EXPECT_LE(distinct_values(q2), (1u << bits));
}

TEST_P(PolicyBitsTest, FullPrecisionIsPassThrough) {
  auto [policy, bits] = GetParam();
  (void)bits;
  auto hook = make_hook(policy);
  hook->set_bits(32);
  Rng rng(9);
  Tensor w = Tensor::randn({256}, rng);
  EXPECT_EQ(max_abs_diff(hook->quantize(w), w), 0.0f);
  Tensor g = Tensor::randn({256}, rng);
  EXPECT_EQ(max_abs_diff(hook->backward(w, g), g), 0.0f);
}

TEST_P(PolicyBitsTest, BackwardPreservesShapeAndFiniteness) {
  auto [policy, bits] = GetParam();
  auto hook = make_hook(policy);
  hook->set_bits(bits);
  Rng rng(10);
  Tensor w = Tensor::randn({300}, rng);
  hook->quantize(w);
  Tensor g = Tensor::randn({300}, rng);
  const Tensor gw = hook->backward(w, g);
  EXPECT_EQ(gw.shape(), w.shape());
  EXPECT_FALSE(gw.has_nonfinite());
}

TEST_P(PolicyBitsTest, QuantizationErrorBounded) {
  auto [policy, bits] = GetParam();
  auto hook = make_hook(policy);
  hook->set_bits(bits);
  Rng rng(11);
  Tensor w = Tensor::randn({2000}, rng, 0.3f);
  const Tensor q = hook->quantize(w);
  // Mean |w − q| must be well below the weight scale — a trivially broken
  // quantizer (all zeros, wrong scale) fails this.
  const Tensor diff = w - q;
  EXPECT_LT(diff.abs_mean(), 0.3f) << policy_str(policy) << " @" << bits;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyBitsTest,
    ::testing::Combine(::testing::Values(Policy::kDoReFa, Policy::kWrpn,
                                         Policy::kPact, Policy::kPactSawb,
                                         Policy::kLqNets, Policy::kLsq,
                                         Policy::kMinMax),
                       ::testing::Values(2, 3, 4, 8)),
    [](const testing::TestParamInfo<std::tuple<Policy, int>>& info) {
      std::string name = policy_str(std::get<0>(info.param)) +
                         std::to_string(std::get<1>(info.param));
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---- DoReFa ----------------------------------------------------------------

TEST(DoReFaTest, OutputInUnitRange) {
  DoReFaWeightHook hook;
  hook.set_bits(3);
  Rng rng(1);
  Tensor w = Tensor::randn({1000}, rng, 2.0f);
  const Tensor q = hook.quantize(w);
  EXPECT_LE(q.max(), 1.0f + 1e-6f);
  EXPECT_GE(q.min(), -1.0f - 1e-6f);
}

TEST(DoReFaTest, MaxMagnitudeWeightHitsGridEdge) {
  // Scale-preserving mode: the grid edge is ±max|tanh(w)|.
  DoReFaWeightHook hook;
  hook.set_bits(2);
  Tensor w = Tensor::from({-3.0f, 0.1f, 3.0f});
  const Tensor q = hook.quantize(w);
  const float edge = std::tanh(3.0f);
  EXPECT_NEAR(q(2), edge, 1e-6f);
  EXPECT_NEAR(q(0), -edge, 1e-6f);
}

TEST(DoReFaTest, LegacyModeNormalisesToUnitRange) {
  DoReFaWeightHook hook(/*scale_preserving=*/false);
  hook.set_bits(2);
  Tensor w = Tensor::from({-3.0f, 0.1f, 3.0f});
  const Tensor q = hook.quantize(w);
  EXPECT_NEAR(q(2), 1.0f, 1e-6f);
  EXPECT_NEAR(q(0), -1.0f, 1e-6f);
}

TEST(DoReFaTest, EightBitSnapIsNearLossless) {
  // The property the CCQ initial step depends on: quantizing a pretrained
  // layer to 8 bits must barely move the weights.
  DoReFaWeightHook hook;
  hook.set_bits(8);
  Rng rng(11);
  Tensor w = Tensor::randn({2000}, rng, 0.1f);
  const Tensor q = hook.quantize(w);
  const Tensor diff = w - q;
  EXPECT_LT(diff.abs_mean(), 0.02f * w.abs_mean() + 1e-3f);
}

TEST(DoReFaTest, AllZeroWeightsStayZero) {
  DoReFaWeightHook hook;
  hook.set_bits(2);
  Tensor w({16});
  const Tensor q = hook.quantize(w);
  EXPECT_EQ(q.max(), 0.0f);
  EXPECT_EQ(q.min(), 0.0f);
}

// ---- WRPN ------------------------------------------------------------------

TEST(WrpnTest, ClipsToUnitInterval) {
  WrpnWeightHook hook;
  hook.set_bits(4);
  Tensor w = Tensor::from({-2.0f, 0.5f, 2.0f});
  const Tensor q = hook.quantize(w);
  EXPECT_FLOAT_EQ(q(0), -1.0f);
  EXPECT_FLOAT_EQ(q(2), 1.0f);
}

TEST(WrpnTest, SteZerosSaturatedGradients) {
  WrpnWeightHook hook;
  hook.set_bits(4);
  Tensor w = Tensor::from({-2.0f, 0.5f, 2.0f});
  hook.quantize(w);
  const Tensor g = hook.backward(w, Tensor({3}, 1.0f));
  EXPECT_EQ(g(0), 0.0f);
  EXPECT_EQ(g(1), 1.0f);
  EXPECT_EQ(g(2), 0.0f);
}

// ---- SAWB ------------------------------------------------------------------

TEST(SawbTest, ClipIsPositiveForGaussianWeights) {
  Rng rng(2);
  Tensor w = Tensor::randn({5000}, rng, 0.1f);
  for (int bits : {2, 3, 4, 8}) {
    EXPECT_GT(SawbWeightHook::clip_for(w, bits), 0.0f) << bits;
  }
}

TEST(SawbTest, BeatsMinMaxMseAtLowBits) {
  // The statistics-aware clip should give lower quantization MSE than the
  // naive max-|w| clip for heavy-ish tailed data at 2 bits — that is its
  // entire reason to exist.
  Rng rng(3);
  Tensor w({8000});
  for (auto& v : w.data()) {
    // Laplace-ish: product of exponential magnitude and random sign.
    const double u = rng.uniform(1e-6, 1.0);
    v = static_cast<float>((rng.uniform() < 0.5 ? -1 : 1) * -std::log(u) * 0.1);
  }
  const float sawb_clip = SawbWeightHook::clip_for(w, 2);
  const float minmax_clip = std::max(w.max(), -w.min());
  EXPECT_LT(quantization_mse(w, 2, sawb_clip),
            quantization_mse(w, 2, minmax_clip));
}

TEST(SawbTest, DegenerateWeightsFallBack) {
  Tensor w({64}, 0.5f);  // constant weights → √E[w²] == E[|w|]
  const float clip = SawbWeightHook::clip_for(w, 2);
  EXPECT_GT(clip, 0.0f);
}

// ---- LQ-Nets ---------------------------------------------------------------

TEST(LqNetsTest, FitReducesMseVersusInitialGuess) {
  Rng rng(4);
  Tensor w = Tensor::randn({4000}, rng, 0.25f);
  const int bits = 3;
  const float n = symmetric_levels(bits);
  const float s0 = 2.0f * w.abs_mean() / n;  // the initial heuristic
  const float s_fit = LqNetsWeightHook::fit_scale(w, bits, 10);
  EXPECT_LE(quantization_mse(w, bits, s_fit * n),
            quantization_mse(w, bits, s0 * n) + 1e-8f);
}

TEST(LqNetsTest, ScaleRecoversPlantedGrid) {
  // Weights already on a 3-bit grid with step 0.2 → the fit should find
  // a scale very close to 0.2 (zero reconstruction error).
  const int bits = 3;
  Rng rng(5);
  Tensor w({500});
  const float n = symmetric_levels(bits);
  for (auto& v : w.data()) {
    v = 0.2f * static_cast<float>(
                   static_cast<long>(rng.uniform_int(2 * static_cast<std::uint64_t>(n) + 1)) -
                   static_cast<long>(n));
  }
  const float s = LqNetsWeightHook::fit_scale(w, bits, 20);
  EXPECT_NEAR(s, 0.2f, 0.02f);
}

// ---- LSQ -------------------------------------------------------------------

TEST(LsqTest, StepInitialisesFromStatistics) {
  LsqWeightHook hook("t");
  hook.set_bits(4);
  Rng rng(6);
  Tensor w = Tensor::randn({1000}, rng, 0.5f);
  hook.quantize(w);
  const float expected =
      2.0f * w.abs_mean() / std::sqrt(symmetric_levels(4));
  EXPECT_NEAR(hook.step(), expected, 1e-5f);
}

TEST(LsqTest, ExposesLearnableParameter) {
  LsqWeightHook hook("t");
  std::vector<nn::Parameter*> params;
  hook.collect_parameters(params);
  ASSERT_EQ(params.size(), 1u);
  EXPECT_EQ(params[0]->name, "t.step");
  EXPECT_EQ(params[0]->weight_decay_scale, 0.0f);
}

TEST(LsqTest, StepGradientMatchesPublishedFormula) {
  // Esser et al. (2019): ∂q/∂s = −Q_max (z ≤ −Q_max), +Q_max (z ≥ Q_max),
  // round(z) − z otherwise (the STE term included — note this is *not*
  // the a.e. derivative of the piecewise-constant quantizer, so a numeric
  // finite-difference comparison would be wrong by construction).
  LsqWeightHook hook("t");
  const int bits = 3;
  hook.set_bits(bits);
  Rng rng(7);
  Tensor warmup = Tensor::randn({64}, rng, 0.5f);
  hook.quantize(warmup);  // initialise step
  const float s0 = hook.step();
  const float n = symmetric_levels(bits);

  Tensor w({5});
  w.at(0) = 0.25f * s0;          // z = 0.25 → grad term −0.25
  w.at(1) = 1.6f * s0;           // z = 1.6  → round−z = 0.4
  w.at(2) = -2.3f * s0;          // z = −2.3 → round−z = 0.3
  w.at(3) = (n + 1.0f) * s0;     // saturated high → +n
  w.at(4) = -(n + 1.0f) * s0;    // saturated low → −n

  Tensor coeff = Tensor::from({1.0f, 2.0f, -1.0f, 0.5f, 0.5f});
  std::vector<nn::Parameter*> params;
  hook.collect_parameters(params);
  nn::Parameter& step = *params[0];
  step.zero_grad();
  hook.quantize(w);
  hook.backward(w, coeff);

  const double expected = 1.0 * -0.25 + 2.0 * 0.4 + -1.0 * 0.3 +
                          0.5 * n + 0.5 * -n;
  EXPECT_NEAR(step.grad.at(0), expected, 1e-4);

  // Saturated elements must not leak gradient into the weights.
  Tensor g = hook.backward(w, Tensor({5}, 1.0f));
  EXPECT_EQ(g(3), 0.0f);
  EXPECT_EQ(g(4), 0.0f);
  EXPECT_EQ(g(0), 1.0f);
}

// ---- MinMax ----------------------------------------------------------------

TEST(MinMaxTest, AutoClipTracksExtremes) {
  MinMaxWeightHook hook;
  hook.set_bits(4);
  Tensor w = Tensor::from({-0.3f, 0.9f, 0.1f});
  hook.quantize(w);
  EXPECT_FLOAT_EQ(hook.clip(), 0.9f);
}

TEST(MinMaxTest, ManualClipSticks) {
  MinMaxWeightHook hook;
  hook.set_bits(4);
  hook.set_clip(0.5f);
  Tensor w = Tensor::from({-3.0f, 3.0f});
  const Tensor q = hook.quantize(w);
  EXPECT_FLOAT_EQ(q(0), -0.5f);
  EXPECT_FLOAT_EQ(q(1), 0.5f);
  EXPECT_THROW(hook.set_clip(-1.0f), Error);
}

// ---- factory ---------------------------------------------------------------

TEST(PolicyTest, RoundTripNames) {
  for (Policy p : {Policy::kDoReFa, Policy::kWrpn, Policy::kPact,
                   Policy::kPactSawb, Policy::kLqNets, Policy::kLsq,
                   Policy::kMinMax}) {
    EXPECT_EQ(policy_from_str(policy_str(p)), p);
  }
  EXPECT_THROW(policy_from_str("nonsense"), Error);
}

TEST(PolicyTest, FactoryActivationsMatchPolicyFamily) {
  QuantFactory pact{.policy = Policy::kPact};
  auto act = pact.make_activation("a");
  EXPECT_EQ(act->type_name(), "PactActivation");
  QuantFactory dorefa{.policy = Policy::kDoReFa};
  EXPECT_EQ(dorefa.make_activation("a")->type_name(), "ClipActQuant");
}

TEST(PolicyTest, BitsRangeIsValidated) {
  DoReFaWeightHook hook;
  EXPECT_THROW(hook.set_bits(1), Error);
  EXPECT_THROW(hook.set_bits(33), Error);
  EXPECT_NO_THROW(hook.set_bits(2));
  EXPECT_NO_THROW(hook.set_bits(32));
}

}  // namespace
}  // namespace ccq::quant
